//! # PaRiS — causally consistent transactions with non-blocking reads and
//! partial replication
//!
//! A from-scratch Rust reproduction of *PaRiS: Causally Consistent
//! Transactions with Non-blocking Reads and Partial Replication*
//! (Spirovska, Didona, Zwaenepoel — ICDCS 2019).
//!
//! PaRiS implements **Transactional Causal Consistency** (TCC) on a
//! sharded, partially replicated key-value store. Its core mechanism is
//! the **Universal Stable Time (UST)**: a single scalar timestamp,
//! computed by background gossip, identifying a snapshot already installed
//! by *every* data center — so any server in any DC can serve
//! transactional reads from it without blocking. A small client-side write
//! cache preserves read-your-own-writes on top of the slightly stale
//! stable snapshot.
//!
//! ## The facade
//!
//! Everything is reached through one API: [`Paris::builder`] configures a
//! deployment, [`Backend`] picks the substrate, and the resulting
//! [`Cluster`] serves transactions through RAII [`Txn`] handles:
//!
//! | backend | substrate | use it for |
//! |---|---|---|
//! | [`Backend::Mini`] | synchronous in-process pump | examples, tests, learning the protocol |
//! | [`Backend::Sim`] | discrete-event WAN simulation | performance figures, fault injection |
//! | [`Backend::Thread`] | one OS thread per server | races, genuine concurrency |
//!
//! ## Quickstart
//!
//! ```
//! use paris::{Backend, Cluster, Mode, Paris};
//! use paris::types::{Key, Value};
//!
//! // 3 DCs × 6 partitions, replication factor 2: each DC stores only
//! // part of the keyspace — partial replication.
//! let mut cluster = Paris::builder()
//!     .dcs(3)
//!     .partitions(6)
//!     .replication(2)
//!     .mode(Mode::Paris)
//!     .backend(Backend::Mini)
//!     .build()?;
//!
//! // A transaction handle: reads, buffered writes, commit. Dropping the
//! // handle without committing aborts — no write takes effect.
//! let alice = cluster.open_client(0)?;
//! let mut txn = cluster.begin(alice)?;
//! txn.write(Key(1), Value::from("hello"));
//! let commit_ts = txn.commit()?;
//! assert!(commit_ts > paris::types::Timestamp::ZERO);
//!
//! // Background gossip stabilizes the snapshot; then any DC reads the
//! // write without blocking.
//! cluster.stabilize(5);
//! let bob = cluster.open_client(1)?;
//! let mut txn = cluster.begin(bob)?;
//! assert_eq!(txn.read_one(Key(1))?, Some(Value::from("hello")));
//! txn.commit()?;
//! # Ok::<(), paris::Error>(())
//! ```
//!
//! Swapping `.backend(Backend::Mini)` for [`Backend::Sim`] or
//! [`Backend::Thread`] runs the same code on the simulated WAN or on real
//! threads. For workload-style measurement, [`Cluster::run_workload`]
//! drives the configured closed-loop load and returns a [`RunReport`].
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`types`] | ids, timestamps, versions, cluster configuration, errors |
//! | [`clock`] | physical clocks and the Hybrid Logical Clock |
//! | [`storage`] | multi-version per-partition store with GC |
//! | [`proto`] | protocol messages + binary wire codec |
//! | [`net`] | discrete-event simulator and threaded transport |
//! | [`core`] | server/client state machines, topology, checker |
//! | [`runtime`] | the three backends and the [`Cluster`] facade |
//! | [`workload`] | YCSB-style generator and statistics |
//!
//! For driving the protocol by hand (your own substrate), see
//! [`core::Server`] and [`core::ClientSession`]; the `examples/`
//! directory walks through both the facade and the raw state machines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use paris_clock as clock;
pub use paris_core as core;
pub use paris_net as net;
pub use paris_proto as proto;
pub use paris_runtime as runtime;
pub use paris_storage as storage;
pub use paris_types as types;
pub use paris_workload as workload;

pub use paris_core::{ClientSession, HistoryChecker, Server, ServerOptions, Topology};
pub use paris_runtime::{
    Backend, BlockingStats, Cluster, ClusterBuilder, ClusterStats, Durability, FsyncPolicy,
    MiniCluster, Paris, RecoveryInfo, RunReport, SimCluster, ThreadCluster, Tuning, Txn,
};
pub use paris_types::{ClusterConfig, Error, Mode};
