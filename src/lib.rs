//! # PaRiS — causally consistent transactions with non-blocking reads and
//! partial replication
//!
//! A from-scratch Rust reproduction of *PaRiS: Causally Consistent
//! Transactions with Non-blocking Reads and Partial Replication*
//! (Spirovska, Didona, Zwaenepoel — ICDCS 2019).
//!
//! PaRiS implements **Transactional Causal Consistency** (TCC) on a
//! sharded, partially replicated key-value store. Its core mechanism is
//! the **Universal Stable Time (UST)**: a single scalar timestamp,
//! computed by background gossip, identifying a snapshot already installed
//! by *every* data center — so any server in any DC can serve
//! transactional reads from it without blocking. A small client-side write
//! cache preserves read-your-own-writes on top of the slightly stale
//! stable snapshot.
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`types`] | ids, timestamps, versions, cluster configuration |
//! | [`clock`] | physical clocks and the Hybrid Logical Clock |
//! | [`storage`] | multi-version per-partition store with GC |
//! | [`proto`] | protocol messages + binary wire codec |
//! | [`net`] | discrete-event simulator and threaded transport |
//! | [`core`] | server/client state machines, topology, checker |
//! | [`runtime`] | simulated and threaded cluster drivers |
//! | [`workload`] | YCSB-style generator and statistics |
//!
//! ## Quickstart
//!
//! The fastest way to a running system is the simulated cluster:
//!
//! ```
//! use paris::runtime::{SimCluster, SimConfig};
//! use paris::types::Mode;
//!
//! // 3 DCs × 6 partitions (replication factor 2), PaRiS mode.
//! let mut sim = SimCluster::new(SimConfig::small_test(3, 6, Mode::Paris, 7));
//! sim.run_workload(200_000, 800_000); // 0.2 s warmup, 0.8 s window
//! let report = sim.report();
//! assert!(report.stats.committed > 0);
//! assert!(report.violations.is_empty(), "TCC must hold");
//! ```
//!
//! For driving the protocol by hand (your own substrate), see
//! [`core::Server`] and [`core::ClientSession`]; the `examples/`
//! directory walks through both styles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mini;

pub use paris_clock as clock;
pub use paris_core as core;
pub use paris_net as net;
pub use paris_proto as proto;
pub use paris_runtime as runtime;
pub use paris_storage as storage;
pub use paris_types as types;
pub use paris_workload as workload;

pub use paris_core::{ClientSession, HistoryChecker, Server, ServerOptions, Topology};
pub use paris_runtime::{RunReport, SimCluster, SimConfig, ThreadCluster, ThreadClusterConfig};
pub use paris_types::{ClusterConfig, Mode};
