//! A miniature synchronous in-process cluster.
//!
//! [`MiniCluster`] wires the real PaRiS server and client state machines
//! together with a zero-latency FIFO message pump — no simulator, no
//! threads. It is the easiest way to *use* PaRiS as a library: examples,
//! unit tests and interactive exploration all fit in a few lines. The
//! background protocols (replication, UST stabilization) advance when you
//! call [`MiniCluster::stabilize`].
//!
//! For performance work use [`crate::runtime::SimCluster`] (WAN latency,
//! CPU model); for concurrency testing use
//! [`crate::runtime::ThreadCluster`].
//!
//! ```
//! use paris::mini::MiniCluster;
//! use paris::types::{Key, Mode, Value};
//!
//! let mut cluster = MiniCluster::new(3, 6, 2, Mode::Paris)?;
//! let alice = cluster.client(0);
//!
//! cluster.begin(alice)?;
//! cluster.write(alice, Key(1), Value::from("hello"))?;
//! cluster.commit(alice)?;
//!
//! // Our own write is readable immediately (client cache)...
//! cluster.begin(alice)?;
//! assert_eq!(cluster.read_one(alice, Key(1))?, Some(Value::from("hello")));
//! cluster.commit(alice)?;
//!
//! // ...and visible to everyone after stabilization.
//! cluster.stabilize(5);
//! let bob = cluster.client(1);
//! cluster.begin(bob)?;
//! assert_eq!(cluster.read_one(bob, Key(1))?, Some(Value::from("hello")));
//! # Ok::<(), paris::types::Error>(())
//! ```

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use paris_clock::SimClock;
use paris_core::{ClientEvent, ClientRead, ClientSession, ReadStep, Server, ServerOptions, Topology};
use paris_proto::{Endpoint, Envelope};
use paris_types::{
    ClientId, ClusterConfig, DcId, Error, Key, Mode, ServerId, Timestamp, Value,
};

/// A synchronous in-process PaRiS cluster. See the module docs.
pub struct MiniCluster {
    topo: Arc<Topology>,
    clock: SimClock,
    servers: HashMap<ServerId, Server>,
    clients: HashMap<ClientId, ClientSession>,
    queue: VecDeque<Envelope>,
    events: VecDeque<(ClientId, ClientEvent)>,
    next_client: HashMap<DcId, u32>,
    mode: Mode,
    now: u64,
}

impl MiniCluster {
    /// Builds a cluster of `dcs` DCs × `partitions` partitions with
    /// replication factor `r`.
    ///
    /// # Errors
    ///
    /// Returns a configuration error for impossible shapes (e.g. `r > dcs`).
    pub fn new(dcs: u16, partitions: u32, r: u16, mode: Mode) -> Result<Self, Error> {
        let cfg = ClusterConfig::builder()
            .dcs(dcs)
            .partitions(partitions)
            .replication_factor(r)
            .max_clock_skew_micros(0)
            .build()?;
        let topo = Arc::new(Topology::new(cfg));
        let clock = SimClock::new();
        clock.advance_to(1_000);
        let servers = topo
            .all_servers()
            .into_iter()
            .map(|id| {
                (
                    id,
                    Server::new(ServerOptions {
                        id,
                        topology: Arc::clone(&topo),
                        clock: Box::new(clock.clone()),
                        mode,
                        record_events: false,
                    }),
                )
            })
            .collect();
        Ok(MiniCluster {
            topo,
            clock,
            servers,
            clients: HashMap::new(),
            queue: VecDeque::new(),
            events: VecDeque::new(),
            next_client: HashMap::new(),
            mode,
            now: 1_000,
        })
    }

    /// Opens a client session in the given DC, collocated with a
    /// coordinator there.
    pub fn client(&mut self, dc: u16) -> ClientId {
        let dc = DcId(dc);
        let seq = self.next_client.entry(dc).or_insert(0);
        let id = ClientId::new(dc, *seq);
        *seq += 1;
        let coordinator = self.topo.coordinator_for(dc, id.seq);
        self.clients
            .insert(id, ClientSession::new(id, coordinator, self.mode));
        id
    }

    /// The topology, for inspecting placement.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The minimum UST across all servers (how stable the stable snapshot
    /// is).
    pub fn min_ust(&self) -> Timestamp {
        self.servers
            .values()
            .map(Server::ust)
            .min()
            .unwrap_or(Timestamp::ZERO)
    }

    /// Direct read-only access to a server (stores, stats).
    pub fn server(&self, id: ServerId) -> Option<&Server> {
        self.servers.get(&id)
    }

    fn pump(&mut self) {
        while let Some(env) = self.queue.pop_front() {
            match env.dst {
                Endpoint::Server(sid) => {
                    if let Some(server) = self.servers.get_mut(&sid) {
                        let out = server.handle(&env, self.now);
                        self.queue.extend(out);
                    }
                }
                Endpoint::Client(cid) => {
                    if let Some(session) = self.clients.get_mut(&cid) {
                        if let Some(ev) = session.handle(&env) {
                            self.events.push_back((cid, ev));
                        }
                    }
                }
            }
        }
    }

    /// Advances time and runs `rounds` of the background protocols
    /// (replication, GST/UST gossip) to completion. After enough rounds
    /// (3–5), all committed writes are in every DC's stable snapshot.
    pub fn stabilize(&mut self, rounds: usize) {
        let ids: Vec<ServerId> = {
            let mut v: Vec<ServerId> = self.servers.keys().copied().collect();
            v.sort_unstable();
            v
        };
        for _ in 0..rounds {
            self.now += 1_000;
            self.clock.advance_to(self.now);
            for id in &ids {
                let out = self.servers.get_mut(id).expect("known").on_replicate_tick(self.now);
                self.queue.extend(out);
            }
            self.pump();
            // Two aggregation passes so child reports reach the roots.
            for _ in 0..2 {
                for id in &ids {
                    let out = self.servers.get_mut(id).expect("known").on_gst_tick(self.now);
                    self.queue.extend(out);
                }
                self.pump();
            }
            for id in &ids {
                let out = self.servers.get_mut(id).expect("known").on_ust_tick(self.now);
                self.queue.extend(out);
            }
            self.pump();
        }
    }

    fn expect_event(&mut self, cid: ClientId) -> Result<ClientEvent, Error> {
        // The pump is synchronous: the response is already queued.
        match self.events.pop_front() {
            Some((id, ev)) if id == cid => Ok(ev),
            _ => Err(Error::UnknownTransaction),
        }
    }

    /// Starts a transaction for `client`.
    ///
    /// # Errors
    ///
    /// Propagates session errors (e.g. a transaction already open).
    pub fn begin(&mut self, client: ClientId) -> Result<Timestamp, Error> {
        self.now += 10;
        self.clock.advance_to(self.now);
        let env = self
            .clients
            .get_mut(&client)
            .ok_or(Error::UnknownTransaction)?
            .begin()?;
        self.queue.push_back(env);
        self.pump();
        match self.expect_event(client)? {
            ClientEvent::Started { snapshot, .. } => Ok(snapshot),
            _ => Err(Error::UnknownTransaction),
        }
    }

    /// Reads a set of keys within the open transaction.
    ///
    /// # Errors
    ///
    /// Propagates session errors (no open transaction, …).
    pub fn read(&mut self, client: ClientId, keys: &[Key]) -> Result<Vec<ClientRead>, Error> {
        let step = self
            .clients
            .get_mut(&client)
            .ok_or(Error::UnknownTransaction)?
            .read(keys)?;
        match step {
            ReadStep::Done(reads) => Ok(reads),
            ReadStep::Send(env) => {
                self.queue.push_back(env);
                self.pump();
                // Under BPR a fresh-snapshot read blocks server-side until
                // the snapshot is installed; advance background rounds
                // until it completes (PaRiS never takes this path).
                let mut rounds = 0;
                while self.events.is_empty() && rounds < 64 {
                    self.stabilize(1);
                    rounds += 1;
                }
                match self.expect_event(client)? {
                    ClientEvent::ReadDone { reads, .. } => Ok(reads),
                    _ => Err(Error::UnknownTransaction),
                }
            }
        }
    }

    /// Reads one key's value within the open transaction.
    ///
    /// # Errors
    ///
    /// Propagates session errors.
    pub fn read_one(&mut self, client: ClientId, key: Key) -> Result<Option<Value>, Error> {
        Ok(self
            .read(client, &[key])?
            .into_iter()
            .find(|r| r.key == key)
            .and_then(|r| r.value))
    }

    /// Buffers a write in the open transaction.
    ///
    /// # Errors
    ///
    /// Propagates session errors.
    pub fn write(&mut self, client: ClientId, key: Key, value: Value) -> Result<(), Error> {
        self.clients
            .get_mut(&client)
            .ok_or(Error::UnknownTransaction)?
            .write(&[(key, value)])
    }

    /// Commits the open transaction, returning its commit timestamp
    /// (`Timestamp::ZERO` for read-only transactions).
    ///
    /// # Errors
    ///
    /// Propagates session errors.
    pub fn commit(&mut self, client: ClientId) -> Result<Timestamp, Error> {
        self.now += 10;
        self.clock.advance_to(self.now);
        let env = self
            .clients
            .get_mut(&client)
            .ok_or(Error::UnknownTransaction)?
            .commit()?;
        self.queue.push_back(env);
        self.pump();
        match self.expect_event(client)? {
            ClientEvent::Committed { ct, .. } => Ok(ct),
            _ => Err(Error::UnknownTransaction),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mini_cluster_round_trip() {
        let mut c = MiniCluster::new(3, 6, 2, Mode::Paris).unwrap();
        let a = c.client(0);
        c.begin(a).unwrap();
        c.write(a, Key(2), Value::from("x")).unwrap();
        let ct = c.commit(a).unwrap();
        assert!(ct > Timestamp::ZERO);
        c.stabilize(5);
        assert!(c.min_ust() >= ct);
        let b = c.client(1);
        c.begin(b).unwrap();
        assert_eq!(c.read_one(b, Key(2)).unwrap(), Some(Value::from("x")));
        assert_eq!(c.commit(b).unwrap(), Timestamp::ZERO);
    }

    #[test]
    fn mini_cluster_rejects_bad_shapes() {
        assert!(MiniCluster::new(2, 4, 3, Mode::Paris).is_err());
    }

    #[test]
    fn mini_cluster_bpr_mode_works() {
        let mut c = MiniCluster::new(3, 6, 2, Mode::Bpr).unwrap();
        let a = c.client(0);
        c.begin(a).unwrap();
        c.write(a, Key(0), Value::from("b")).unwrap();
        c.commit(a).unwrap();
        c.stabilize(3);
        let b = c.client(1);
        c.begin(b).unwrap();
        // BPR read of an installed snapshot completes synchronously here
        // because stabilize() already advanced the version clocks.
        assert_eq!(c.read_one(b, Key(0)).unwrap(), Some(Value::from("b")));
    }
}
