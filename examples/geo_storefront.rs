//! A geo-distributed storefront on PaRiS: the partial-replication story.
//!
//! Partial replication is the paper's capacity argument: with replication
//! factor R over M DCs, each DC stores R/M of the data, so the same
//! machines hold an M/R× larger dataset than full replication — and
//! updates travel to R−1 replicas instead of M−1. This example shows a
//! catalog sharded over 5 DCs with R = 2, clients transparently reading
//! partitions their DC does not host, and atomic cross-partition order
//! placement.
//!
//! Run with: `cargo run --example geo_storefront`

use paris::types::{DcId, Key, PartitionId, Value};
use paris::{Backend, Cluster, Error, Mode, Paris};

fn main() -> Result<(), Error> {
    let (dcs, partitions, r) = (5u16, 20u32, 2u16);
    let mut shop = Paris::builder()
        .dcs(dcs)
        .partitions(partitions)
        .replication(r)
        .mode(Mode::Paris)
        .backend(Backend::Mini)
        .build_mini()?; // concrete backend: placement is inspected below

    // Capacity accounting (paper §I): each DC hosts N·R/M partitions.
    let per_dc = shop.topology().partitions_in_dc(DcId(0)).len();
    println!("deployment: {dcs} DCs × {partitions} partitions, R = {r}");
    println!(
        "  each DC hosts {per_dc}/{partitions} partitions → {}x the capacity of full replication",
        dcs as f64 / r as f64
    );
    println!(
        "  each update is pushed to {} remote replica(s) instead of {}",
        r - 1,
        dcs - 1
    );

    // The merchant (Frankfurt-ish DC 2) stocks the catalog.
    let merchant = shop.open_client(2)?;
    let mut txn = shop.begin(merchant)?;
    for item in 0..10u64 {
        txn.write(
            Key(item),
            Value::from(format!("stock=100 item={item}").as_str()),
        );
    }
    txn.commit()?;
    shop.stabilize(5);
    println!("\nmerchant stocked 10 items across the shards");

    // A shopper in DC 4 browses items on partitions DC 4 does not host:
    // the coordinator transparently reads the preferred remote replica.
    let shopper = shop.open_client(4)?;
    let not_local: Vec<Key> = (0..10u64)
        .map(Key)
        .filter(|k| {
            let p = shop.topology().partition_of(*k);
            !shop.topology().is_replicated_at(p, DcId(4))
        })
        .collect();
    println!(
        "shopper in dc4 browses {} items with no local replica",
        not_local.len()
    );
    let mut txn = shop.begin(shopper)?;
    let reads = txn.read(&not_local)?;
    txn.commit()?;
    for rd in reads.iter().take(3) {
        let p = shop.topology().partition_of(rd.key);
        let target = shop.topology().target_dc(p, DcId(4));
        println!(
            "  {} (partition {p}) served by {target}: {:?}",
            rd.key,
            rd.value
                .as_ref()
                .map(|v| String::from_utf8_lossy(v.as_bytes()).into_owned())
        );
        assert!(rd.value.is_some());
    }

    // Order placement: decrement stock of two items on different
    // partitions and write the order — all atomic under TCC.
    let order_key = Key(1_000);
    let mut txn = shop.begin(shopper)?;
    txn.write(Key(3), Value::from("stock=99 item=3"));
    txn.write(Key(7), Value::from("stock=99 item=7"));
    txn.write(order_key, Value::from("order: items [3,7] for dc4-shopper"));
    let ct = txn.commit()?;
    println!(
        "\norder committed atomically at {ct} across {} partitions",
        3
    );

    // Any observer sees the order with its stock updates, or neither.
    shop.stabilize(5);
    let auditor = shop.open_client(0)?;
    let mut txn = shop.begin(auditor)?;
    let order = txn.read_one(order_key)?;
    let stock3 = txn.read_one(Key(3))?;
    txn.commit()?;
    if order.is_some() {
        assert_eq!(stock3, Some(Value::from("stock=99 item=3")), "atomicity");
    }
    println!("auditor in dc0 sees a consistent order + stock state ✓");

    // Show the placement map for the curious.
    println!("\nplacement (partition → replica DCs):");
    for p in (0..partitions).step_by(5) {
        let reps = shop.topology().replicas(PartitionId(p));
        println!("  p{p:<3} → {reps:?}");
    }
    Ok(())
}
