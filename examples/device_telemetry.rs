//! Write-heavy device telemetry on the simulated WAN cluster.
//!
//! Uses the discrete-event backend (AWS latency matrix, CPU service
//! model) the way the benchmark harness does: run the paper's 50:50
//! write-heavy workload on a 3-DC deployment, then inspect throughput,
//! latency percentiles, update-visibility latency and the consistency
//! checker's verdict. This is the template to copy for your own
//! performance experiments.
//!
//! Run with: `cargo run --release --example device_telemetry`

use paris::workload::WorkloadConfig;
use paris::{Cluster, Mode, Paris};

fn main() -> Result<(), paris::Error> {
    // A telemetry fleet: many small writes, reads of recent readings.
    let mut sim = Paris::builder()
        .dcs(3)
        .partitions(12)
        .replication(2)
        .keys_per_partition(500)
        .mode(Mode::Paris)
        .uniform_latency_micros(10_000)
        .jitter(0.02)
        .clients_per_dc(8)
        .workload(WorkloadConfig::write_heavy()) // 10 reads + 10 writes per tx
        .seed(2024)
        .record_events(true)
        .record_history(true)
        .build_sim()?; // concrete backend: visibility + convergence below

    println!("running 3 DCs × 12 partitions, 50:50 r:w, 24 closed-loop devices…");
    let report = sim.run_workload(500_000, 3_000_000)?; // 0.5 s warmup, 3 s measured
    sim.settle(2_000_000); // let replication/stabilization drain

    println!("\n{}", report.summary());
    println!(
        "  p50 {:.2} ms   p95 {:.2} ms   p99 {:.2} ms",
        report.stats.percentile_ms(50.0),
        report.stats.percentile_ms(95.0),
        report.stats.percentile_ms(99.0),
    );
    println!(
        "  network: {} messages, {:.1} MiB",
        report.net_messages,
        report.net_bytes as f64 / (1024.0 * 1024.0)
    );

    if let Some(vis) = &report.visibility {
        println!(
            "  update visibility: p50 {:.1} ms, p90 {:.1} ms ({} samples)",
            vis.percentile(50.0) as f64 / 1_000.0,
            vis.percentile(90.0) as f64 / 1_000.0,
            vis.count()
        );
    }

    // The consistency checker replayed every session against the global
    // version history: TCC must hold.
    assert!(
        report.violations.is_empty(),
        "consistency violations: {:#?}",
        report.violations
    );
    let convergence = sim.check_convergence()?;
    assert!(
        convergence.is_empty(),
        "replicas diverged: {convergence:#?}"
    );
    println!(
        "\nTCC verified over {} recorded transactions ✓  replicas converged ✓",
        sim.recorded_transactions()
    );
    Ok(())
}
