//! A social-network timeline on PaRiS — the paper's motivating workload
//! class ("PaRiS targets applications that can tolerate weaker consistency
//! and some degree of data staleness, e.g., social networks", §VI).
//!
//! Demonstrates the anomaly causal consistency prevents: a reply can never
//! be seen without the post it answers, even when post and reply live on
//! different partitions replicated in different DCs.
//!
//! Run with: `cargo run --example social_network`

use paris::mini::MiniCluster;
use paris::types::{Error, Key, Mode, Value};

/// Key layout: user walls and posts spread over partitions by key.
fn wall(user: u64) -> Key {
    Key(user)
}
fn post(id: u64) -> Key {
    Key(100 + id)
}

fn text(v: &Option<Value>) -> String {
    v.as_ref()
        .map(|v| String::from_utf8_lossy(v.as_bytes()).into_owned())
        .unwrap_or_else(|| "∅".into())
}

fn main() -> Result<(), Error> {
    let mut net = MiniCluster::new(3, 9, 2, Mode::Paris)?;

    // Three users in three different data centers.
    let ana = net.client(0); // Virginia
    let bo = net.client(1); // Oregon
    let cai = net.client(2); // Ireland

    // 1. Ana posts on her wall.
    net.begin(ana)?;
    net.write(ana, post(1), Value::from("ana: heading to ICDCS!"))?;
    net.write(ana, wall(1), Value::from("latest=post1"))?;
    net.commit(ana)?;
    println!("ana posted (post 1 + wall pointer, atomically)");

    // Propagate: the UST advances past Ana's commit.
    net.stabilize(5);

    // 2. Bo reads Ana's post, then replies — his reply causally depends
    //    on her post (read-from relationship).
    net.begin(bo)?;
    let seen = net.read_one(bo, post(1))?;
    println!("bo sees: {}", text(&seen));
    assert!(seen.is_some(), "bo must see the stabilized post");
    net.write(bo, post(2), Value::from("bo: see you there @ana!"))?;
    net.write(bo, wall(2), Value::from("latest=post2"))?;
    net.commit(bo)?;
    println!("bo replied (causally after ana's post)");

    net.stabilize(5);

    // 3. Cai reads both posts from a third DC. Causal consistency
    //    guarantees: if the reply is visible, the original post is too.
    net.begin(cai)?;
    let reply = net.read_one(cai, post(2))?;
    let original = net.read_one(cai, post(1))?;
    println!("cai sees reply:    {}", text(&reply));
    println!("cai sees original: {}", text(&original));
    if reply.is_some() {
        assert!(
            original.is_some(),
            "causality violated: reply visible without its cause"
        );
    }
    net.commit(cai)?;

    // 4. Session guarantees: Bo immediately sees his own reply (cache)
    //    even before another stabilization round.
    net.begin(bo)?;
    let own = net.read_one(bo, post(2))?;
    assert!(own.is_some(), "read-your-own-writes");
    net.commit(bo)?;

    println!("\ncausal timeline preserved across 3 DCs ✓");
    Ok(())
}
