//! A social-network timeline on PaRiS — the paper's motivating workload
//! class ("PaRiS targets applications that can tolerate weaker consistency
//! and some degree of data staleness, e.g., social networks", §VI).
//!
//! Demonstrates the anomaly causal consistency prevents: a reply can never
//! be seen without the post it answers, even when post and reply live on
//! different partitions replicated in different DCs.
//!
//! Run with: `cargo run --example social_network`

use paris::types::{Key, Value};
use paris::{Backend, Error, Mode, Paris};

/// Key layout: user walls and posts spread over partitions by key.
fn wall(user: u64) -> Key {
    Key(user)
}
fn post(id: u64) -> Key {
    Key(100 + id)
}

fn text(v: &Option<Value>) -> String {
    v.as_ref()
        .map(|v| String::from_utf8_lossy(v.as_bytes()).into_owned())
        .unwrap_or_else(|| "∅".into())
}

fn main() -> Result<(), Error> {
    let mut net = Paris::builder()
        .dcs(3)
        .partitions(9)
        .replication(2)
        .mode(Mode::Paris)
        .backend(Backend::Mini)
        .build()?;

    // Three users in three different data centers.
    let ana = net.open_client(0)?; // Virginia
    let bo = net.open_client(1)?; // Oregon
    let cai = net.open_client(2)?; // Ireland

    // 1. Ana posts on her wall.
    let mut txn = net.begin(ana)?;
    txn.write(post(1), Value::from("ana: heading to ICDCS!"));
    txn.write(wall(1), Value::from("latest=post1"));
    txn.commit()?;
    println!("ana posted (post 1 + wall pointer, atomically)");

    // Propagate: the UST advances past Ana's commit.
    net.stabilize(5);

    // 2. Bo reads Ana's post, then replies — his reply causally depends
    //    on her post (read-from relationship).
    let mut txn = net.begin(bo)?;
    let seen = txn.read_one(post(1))?;
    println!("bo sees: {}", text(&seen));
    assert!(seen.is_some(), "bo must see the stabilized post");
    txn.write(post(2), Value::from("bo: see you there @ana!"));
    txn.write(wall(2), Value::from("latest=post2"));
    txn.commit()?;
    println!("bo replied (causally after ana's post)");

    net.stabilize(5);

    // 3. Cai reads both posts from a third DC. Causal consistency
    //    guarantees: if the reply is visible, the original post is too.
    let mut txn = net.begin(cai)?;
    let reply = txn.read_one(post(2))?;
    let original = txn.read_one(post(1))?;
    println!("cai sees reply:    {}", text(&reply));
    println!("cai sees original: {}", text(&original));
    if reply.is_some() {
        assert!(
            original.is_some(),
            "causality violated: reply visible without its cause"
        );
    }
    txn.commit()?;

    // 4. Session guarantees: Bo immediately sees his own reply (cache)
    //    even before another stabilization round.
    let mut txn = net.begin(bo)?;
    let own = txn.read_one(post(2))?;
    assert!(own.is_some(), "read-your-own-writes");
    txn.commit()?;

    println!("\ncausal timeline preserved across 3 DCs ✓");
    Ok(())
}
