//! Fault tolerance and availability (paper §III-C), live.
//!
//! Walks through the paper's failure scenarios on the simulated WAN
//! cluster: a DC partitions away → the UST freezes system-wide and
//! snapshots grow stale, but every DC keeps serving non-blocking causal
//! reads; with failure detection enabled, coordinators route around the
//! unreachable replica; on heal, held traffic is delivered, the UST
//! catches up, and all replicas converge.
//!
//! Run with: `cargo run --release --example fault_tolerance`

use paris::types::DcId;
use paris::{Cluster, Mode, Paris, SimCluster};

fn ust_lag_ms(sim: &SimCluster) -> f64 {
    (sim.now().saturating_sub(sim.min_ust().physical_micros())) as f64 / 1_000.0
}

fn main() -> Result<(), paris::Error> {
    let mut sim = Paris::builder()
        .dcs(3)
        .partitions(6)
        .replication(2)
        .keys_per_partition(200)
        .uniform_latency_micros(10_000)
        .jitter(0.02)
        .clients_per_dc(4)
        .mode(Mode::Paris)
        .seed(2026)
        .record_events(true)
        .record_history(true)
        .build_sim()?; // concrete backend: fault injection is a sim power
    sim.set_failure_detection(true);

    println!("running 3 DCs × 6 partitions (R=2), failure detection on…");
    let healthy = sim.run_workload(500_000, 1_500_000)?;
    println!(
        "healthy:     {:.1} KTx/s, UST lag {:.0} ms",
        healthy.ktps(),
        ust_lag_ms(&sim)
    );

    // DC2 partitions away from the rest of the system.
    sim.isolate_dc(DcId(2));
    let during = sim.run_workload(0, 2_000_000)?;
    println!(
        "partitioned: {:.1} KTx/s, UST lag {:.0} ms  ({} committed, {} aborted)",
        during.ktps(),
        ust_lag_ms(&sim),
        during.stats.committed,
        during.stats.aborted,
    );
    assert!(
        ust_lag_ms(&sim) > 2_000.0,
        "the UST is a global minimum: it must freeze during the partition"
    );
    assert!(
        during.stats.committed > 0,
        "DCs keep serving causal transactions on the frozen snapshot"
    );
    assert!(
        during.violations.is_empty(),
        "stale is fine, inconsistent is not: {:#?}",
        during.violations
    );

    // Heal: held traffic (TCP semantics) is delivered, the UST catches up.
    sim.heal_dc(DcId(2));
    let after = sim.run_workload(0, 1_500_000)?;
    sim.settle(3_000_000);
    println!(
        "healed:      {:.1} KTx/s, UST lag {:.0} ms",
        after.ktps(),
        ust_lag_ms(&sim)
    );
    assert!(ust_lag_ms(&sim) < 1_000.0, "UST must catch up after heal");
    assert!(after.violations.is_empty());
    let convergence = sim.check_convergence()?;
    assert!(
        convergence.is_empty(),
        "replicas diverged: {convergence:#?}"
    );

    println!("\nUST froze and recovered ✓  no data lost ✓  replicas converged ✓");
    Ok(())
}
