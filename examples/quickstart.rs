//! Quickstart: a PaRiS cluster in a dozen lines.
//!
//! Builds a 3-DC, partially replicated deployment, runs read-write
//! transactions through the public API, and shows the two core behaviours
//! of the paper: non-blocking reads from the universally stable snapshot,
//! and read-your-own-writes through the client cache while the snapshot
//! catches up.
//!
//! Run with: `cargo run --example quickstart`

use paris::mini::MiniCluster;
use paris::types::{Error, Key, Mode, Value};

fn main() -> Result<(), Error> {
    // 3 DCs, 6 partitions, replication factor 2: each DC stores only 4 of
    // the 6 partitions — partial replication.
    let mut cluster = MiniCluster::new(3, 6, 2, Mode::Paris)?;
    println!("deployment: 3 DCs × 6 partitions, R = 2");
    for dc in 0..3u16 {
        let parts = cluster.topology().partitions_in_dc(paris::types::DcId(dc));
        println!("  dc{dc} hosts partitions {parts:?}");
    }

    // Alice (DC0) writes two keys in one atomic transaction.
    let alice = cluster.client(0);
    cluster.begin(alice)?;
    cluster.write(alice, Key(0), Value::from("first post"))?;
    cluster.write(alice, Key(1), Value::from("profile v2"))?;
    let ct = cluster.commit(alice)?;
    println!("\nalice committed keys 0 and 1 atomically at {ct}");

    // Alice reads her own writes immediately — served by the client-side
    // cache because the stable snapshot does not cover them yet.
    cluster.begin(alice)?;
    let mine = cluster.read(alice, &[Key(0), Key(1)])?;
    for r in &mine {
        println!(
            "alice reads {} = {:?} (source: {:?})",
            r.key,
            r.value.as_ref().map(|v| String::from_utf8_lossy(v.as_bytes()).into_owned()),
            r.source
        );
    }
    cluster.commit(alice)?;

    // After the UST gossip stabilizes the snapshot, Bob in another DC
    // reads both keys — without blocking, from any replica.
    cluster.stabilize(5);
    println!("\nUST is now {} (snapshot installed everywhere)", cluster.min_ust());

    let bob = cluster.client(1);
    cluster.begin(bob)?;
    let seen = cluster.read(bob, &[Key(0), Key(1)])?;
    for r in &seen {
        println!(
            "bob   reads {} = {:?} (source: {:?})",
            r.key,
            r.value.as_ref().map(|v| String::from_utf8_lossy(v.as_bytes()).into_owned()),
            r.source
        );
    }
    cluster.commit(bob)?;

    // Atomicity: Bob saw either both of Alice's writes or neither.
    let values: Vec<bool> = seen.iter().map(|r| r.value.is_some()).collect();
    assert!(values.iter().all(|v| *v), "both writes visible together");
    println!("\natomic multi-partition visibility ✓  non-blocking reads ✓");
    Ok(())
}
