//! Quickstart: a PaRiS cluster in a dozen lines.
//!
//! Builds a 3-DC, partially replicated deployment through the unified
//! `Paris::builder()` facade, runs read-write transactions through RAII
//! `Txn` handles, and shows the two core behaviours of the paper:
//! non-blocking reads from the universally stable snapshot, and
//! read-your-own-writes through the client cache while the snapshot
//! catches up.
//!
//! Run with: `cargo run --example quickstart`

use paris::types::{DcId, Key, Value};
use paris::{Backend, Cluster, Error, Mode, Paris};

fn main() -> Result<(), Error> {
    // 3 DCs, 6 partitions, replication factor 2: each DC stores only 4 of
    // the 6 partitions — partial replication.
    let mut cluster = Paris::builder()
        .dcs(3)
        .partitions(6)
        .replication(2)
        .mode(Mode::Paris)
        .backend(Backend::Mini)
        .build_mini()?; // concrete backend: we inspect the topology below
    println!("deployment: 3 DCs × 6 partitions, R = 2");
    for dc in 0..3u16 {
        let parts = cluster.topology().partitions_in_dc(DcId(dc));
        println!("  dc{dc} hosts partitions {parts:?}");
    }

    // Alice (DC0) writes two keys in one atomic transaction.
    let alice = cluster.open_client(0)?;
    let mut txn = cluster.begin(alice)?;
    txn.write(Key(0), Value::from("first post"));
    txn.write(Key(1), Value::from("profile v2"));
    let ct = txn.commit()?;
    println!("\nalice committed keys 0 and 1 atomically at {ct}");

    // Alice reads her own writes immediately — served by the client-side
    // cache because the stable snapshot does not cover them yet.
    let mut txn = cluster.begin(alice)?;
    let mine = txn.read(&[Key(0), Key(1)])?;
    for r in &mine {
        println!(
            "alice reads {} = {:?} (source: {:?})",
            r.key,
            r.value
                .as_ref()
                .map(|v| String::from_utf8_lossy(v.as_bytes()).into_owned()),
            r.source
        );
    }
    txn.commit()?;

    // After the UST gossip stabilizes the snapshot, Bob in another DC
    // reads both keys — without blocking, from any replica.
    cluster.stabilize(5);
    println!(
        "\nUST is now {} (snapshot installed everywhere)",
        cluster.min_ust()
    );

    let bob = cluster.open_client(1)?;
    let mut txn = cluster.begin(bob)?;
    let seen = txn.read(&[Key(0), Key(1)])?;
    for r in &seen {
        println!(
            "bob   reads {} = {:?} (source: {:?})",
            r.key,
            r.value
                .as_ref()
                .map(|v| String::from_utf8_lossy(v.as_bytes()).into_owned()),
            r.source
        );
    }
    txn.commit()?;

    // Atomicity: Bob saw either both of Alice's writes or neither.
    let values: Vec<bool> = seen.iter().map(|r| r.value.is_some()).collect();
    assert!(values.iter().all(|v| *v), "both writes visible together");

    // Abort-on-drop: a transaction handle that goes out of scope without
    // commit() publishes nothing.
    {
        let mut txn = cluster.begin(bob)?;
        txn.write(Key(0), Value::from("never visible"));
        // dropped here -> aborted
    }
    let mut txn = cluster.begin(bob)?;
    assert_eq!(txn.read_one(Key(0))?, Some(Value::from("first post")));
    txn.commit()?;

    println!("\natomic multi-partition visibility ✓  non-blocking reads ✓  abort-on-drop ✓");
    Ok(())
}
