//! The socket backend: a real multi-process PaRiS deployment on one host.
//!
//! Builds a 2-DC × 2-partition deployment (R = 2) where every server is
//! its own OS process speaking length-prefixed protocol frames over
//! loopback TCP — the paper's one-machine-per-server shape scaled onto a
//! laptop. The facade is byte-for-byte the one the in-process backends
//! use: only `.backend(Backend::Socket)` changes.
//!
//! Run with:
//!
//! ```text
//! cargo build -p paris-runtime --bin paris-server   # the child binary
//! cargo run --example socket_demo
//! ```
//!
//! (Any workspace `cargo build` produces `paris-server` too; the parent
//! finds it next to its own executable, or via `PARIS_SERVER_BIN`.)

use paris::types::{DcId, Key, Value};
use paris::{Backend, Cluster, Error, Mode, Paris};

fn main() -> Result<(), Error> {
    let mut cluster = Paris::builder()
        .dcs(2)
        .partitions(2)
        .replication(2)
        .keys_per_partition(1_000)
        .mode(Mode::Paris)
        .clients_per_dc(2)
        .record_history(true)
        .backend(Backend::Socket)
        .build_socket()?; // concrete type: we list the child PIDs below

    println!("deployment: 2 DCs × 2 partitions, R = 2 — every server a process");
    for dc in 0..2u16 {
        for p in cluster.topology().partitions_in_dc(DcId(dc)) {
            let id = paris::types::ServerId::new(DcId(dc), p);
            println!(
                "  server {id} → OS process {}",
                cluster.server_pid(id).expect("child running")
            );
        }
    }

    // A causal chain across the two DCs, every hop a real TCP exchange.
    let alice = cluster.open_client(0)?;
    let mut txn = cluster.begin(alice)?;
    txn.write(Key(0), Value::from("hello from dc0"));
    let ct = txn.commit()?;
    println!("\nalice (DC0) committed key 0 at {ct}");

    cluster.stabilize(5);
    let bob = cluster.open_client(1)?;
    let mut txn = cluster.begin(bob)?;
    let seen = txn.read_one(Key(0))?;
    txn.write(Key(1), Value::from("hello back from dc1"));
    txn.commit()?;
    println!(
        "bob (DC1) read key 0 = {:?} and replied on key 1",
        seen.map(|v| String::from_utf8_lossy(v.as_bytes()).into_owned())
    );

    // A short closed-loop workload, then the checker's verdict.
    let report = cluster.run_workload(200_000, 800_000)?;
    println!(
        "\nworkload: {:.1} KTx/s, mean latency {:.2} ms, {} wire messages \
         ({} KiB), {} violations",
        report.ktps(),
        report.stats.mean_latency_ms(),
        report.net_messages,
        report.net_bytes / 1024,
        report.violations.len(),
    );
    assert!(report.violations.is_empty(), "TCC violated over TCP");

    // Drop stops every child: Ctrl::Stop, a grace window, then the axe.
    drop(cluster);
    println!("all server processes stopped and reaped");
    Ok(())
}
