//! Zipfian sampling (the YCSB generator of Gray et al.).

use rand::Rng;

/// A zipfian distribution over `{0, 1, …, n−1}` with exponent `θ`,
/// matching YCSB's `ZipfianGenerator`: rank 0 is the most popular item.
///
/// The paper uses θ = 0.99, "the default in YCSB", which "resembles the
/// strong skew that characterizes many production systems" (§V-A).
///
/// # Example
///
/// ```
/// use paris_workload::Zipfian;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let zipf = Zipfian::new(1_000, 0.99);
/// let mut rng = StdRng::seed_from_u64(7);
/// let sample = zipf.sample(&mut rng);
/// assert!(sample < 1_000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2theta: f64,
}

impl Zipfian {
    /// Creates a zipfian distribution over `n` items with exponent
    /// `theta` (0 < θ < 1 for the YCSB formulation).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is not in `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipfian needs at least one item");
        assert!(
            theta > 0.0 && theta < 1.0,
            "YCSB zipfian requires 0 < theta < 1"
        );
        let zetan = Self::zeta(n, theta);
        let zeta2theta = Self::zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2theta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The exponent θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws a rank in `0..n` (0 = most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) && self.n >= 2 {
            return 1;
        }
        let rank = ((self.n as f64) * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// Probability mass of rank `i` (for distribution tests).
    pub fn pmf(&self, rank: u64) -> f64 {
        assert!(rank < self.n);
        1.0 / ((rank + 1) as f64).powf(self.theta) / self.zetan
    }

    /// Internal consistency value used by tests.
    #[doc(hidden)]
    pub fn zeta2(&self) -> f64 {
        self.zeta2theta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range() {
        let z = Zipfian::new(100, 0.99);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn single_item_always_returns_zero() {
        let z = Zipfian::new(1, 0.5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    fn skew_concentrates_on_low_ranks() {
        let z = Zipfian::new(10_000, 0.99);
        let mut rng = StdRng::seed_from_u64(42);
        let samples = 200_000;
        let mut head = 0u64; // rank < 100 (top 1%)
        for _ in 0..samples {
            if z.sample(&mut rng) < 100 {
                head += 1;
            }
        }
        let frac = head as f64 / samples as f64;
        // θ=0.99 over 10k items puts roughly 55-70% of mass on the top 1%.
        assert!(frac > 0.45, "zipf not skewed enough: {frac}");
        assert!(frac < 0.85, "zipf too skewed: {frac}");
    }

    #[test]
    fn empirical_frequency_tracks_pmf_for_top_ranks() {
        let z = Zipfian::new(1_000, 0.99);
        let mut rng = StdRng::seed_from_u64(7);
        let samples = 300_000;
        let mut counts = [0u64; 3];
        for _ in 0..samples {
            let r = z.sample(&mut rng);
            if r < 3 {
                counts[r as usize] += 1;
            }
        }
        for rank in 0..3u64 {
            let expected = z.pmf(rank);
            let got = counts[rank as usize] as f64 / samples as f64;
            let rel = (got - expected).abs() / expected;
            // The YCSB sampler approximates ranks ≥ 2 with a continuous
            // inverse-CDF, which is mildly biased for the head — allow 20%.
            assert!(
                rel < 0.20,
                "rank {rank}: expected {expected:.4}, got {got:.4}"
            );
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipfian::new(500, 0.8);
        let total: f64 = (0..500).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let z = Zipfian::new(1_000, 0.99);
        let run = |seed| -> Vec<u64> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..50).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn rejects_zero_items() {
        let _ = Zipfian::new(0, 0.99);
    }

    #[test]
    #[should_panic(expected = "0 < theta < 1")]
    fn rejects_bad_theta() {
        let _ = Zipfian::new(10, 1.5);
    }
}
