//! Measurement statistics: log-bucketed histograms, percentiles, CDFs and
//! throughput accounting for the benchmark harness.

/// A log-bucketed latency histogram (HDR-style).
///
/// Values are bucketed with ~1.6% relative precision: 64 linear buckets
/// below 64, then 32 sub-buckets per power of two. Recording is O(1) and
/// allocation-free after construction; merging histograms is element-wise.
///
/// # Example
///
/// ```
/// use paris_workload::stats::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [100, 200, 300, 400, 1_000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert!(h.percentile(50.0) >= 290 && h.percentile(50.0) <= 310);
/// assert!(h.max() >= 1_000);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
    min: u64,
}

const SUB_BITS: u32 = 5; // 32 sub-buckets per octave
const LINEAR_MAX: u64 = 64;

impl Histogram {
    /// Creates an empty histogram covering `0..=u64::MAX`.
    pub fn new() -> Self {
        // 64 linear + (64 - 6) octaves × 32 sub-buckets is plenty.
        Histogram {
            buckets: vec![0; 64 + (64 - 6) as usize * (1 << SUB_BITS)],
            count: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    fn bucket_of(value: u64) -> usize {
        if value < LINEAR_MAX {
            return value as usize;
        }
        let exp = 63 - value.leading_zeros(); // ≥ 6
        let sub = ((value >> (exp - SUB_BITS)) & ((1 << SUB_BITS) - 1)) as usize;
        64 + ((exp - 6) as usize) * (1 << SUB_BITS) + sub
    }

    fn bucket_value(index: usize) -> u64 {
        if index < LINEAR_MAX as usize {
            return index as u64;
        }
        let rest = index - 64;
        let exp = (rest / (1 << SUB_BITS)) as u32 + 6;
        let sub = (rest % (1 << SUB_BITS)) as u64;
        // Midpoint of the bucket.
        (1u64 << exp) + (sub << (exp - SUB_BITS)) + (1u64 << (exp - SUB_BITS)) / 2
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
        self.min = self.min.min(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean of the recorded values.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Largest recorded value (exact).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Smallest recorded value (exact).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// The value at percentile `p` (0–100), within bucket precision.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_value(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }

    /// The CDF as `(value, cumulative fraction)` points, one per non-empty
    /// bucket — what Fig. 4 plots.
    pub fn cdf(&self) -> Vec<(u64, f64)> {
        let mut out = Vec::new();
        if self.count == 0 {
            return out;
        }
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            out.push((
                Self::bucket_value(i).min(self.max).max(self.min),
                seen as f64 / self.count as f64,
            ));
        }
        out
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Aggregate outcome of one benchmark run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Committed transactions inside the measurement window.
    pub committed: u64,
    /// Transactions aborted (no reachable replica for a target partition;
    /// zero in fault-free runs).
    pub aborted: u64,
    /// Window length in microseconds.
    pub window_micros: u64,
    /// Transaction latency histogram (microseconds).
    pub latency: Histogram,
    /// Latency of the start/snapshot-assignment phase alone
    /// (microseconds): from issuing `StartTxReq` to `Started`. Separates
    /// admission queueing from end-to-end transaction latency — what the
    /// pooled start-tx path is measured by.
    pub start_latency: Histogram,
}

impl RunStats {
    /// Creates empty stats for a window.
    pub fn new(window_micros: u64) -> Self {
        RunStats {
            committed: 0,
            aborted: 0,
            window_micros,
            latency: Histogram::new(),
            start_latency: Histogram::new(),
        }
    }

    /// Throughput in transactions per second.
    pub fn throughput_tps(&self) -> f64 {
        if self.window_micros == 0 {
            return 0.0;
        }
        self.committed as f64 * 1_000_000.0 / self.window_micros as f64
    }

    /// Mean latency in milliseconds.
    pub fn mean_latency_ms(&self) -> f64 {
        self.latency.mean() / 1_000.0
    }

    /// A latency percentile in milliseconds.
    pub fn percentile_ms(&self, p: f64) -> f64 {
        self.latency.percentile(p) as f64 / 1_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.percentile(99.0), 0);
        assert!(h.cdf().is_empty());
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..64 {
            h.record(v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 63);
        // ceil(0.5 · 64) = 32nd smallest value = 31.
        assert_eq!(h.percentile(50.0), 31);
    }

    #[test]
    fn large_values_within_bucket_precision() {
        let mut h = Histogram::new();
        h.record(1_000_000);
        let p = h.percentile(100.0);
        let rel = (p as f64 - 1_000_000.0).abs() / 1_000_000.0;
        assert!(rel < 0.04, "relative error {rel}");
    }

    #[test]
    fn percentiles_are_monotonic() {
        let mut h = Histogram::new();
        let mut x = 12345u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(x % 1_000_000);
        }
        let mut prev = 0;
        for p in [1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0] {
            let v = h.percentile(p);
            assert!(v >= prev, "p{p} regressed");
            prev = v;
        }
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        assert!((h.mean() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = Histogram::new();
        a.record(10);
        let mut b = Histogram::new();
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1_000_000);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let mut h = Histogram::new();
        for v in [5u64, 5, 50, 500, 5_000, 50_000] {
            h.record(v);
        }
        let cdf = h.cdf();
        assert!(!cdf.is_empty());
        let mut prev_v = 0;
        let mut prev_f = 0.0;
        for &(v, f) in &cdf {
            assert!(v >= prev_v);
            assert!(f >= prev_f);
            prev_v = v;
            prev_f = f;
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn run_stats_throughput_and_latency() {
        let mut s = RunStats::new(2_000_000); // 2 s window
        s.committed = 1_000;
        for _ in 0..100 {
            s.latency.record(5_000); // 5 ms
        }
        assert!((s.throughput_tps() - 500.0).abs() < 1e-9);
        assert!((s.mean_latency_ms() - 5.0).abs() < 1e-9);
        assert!(s.percentile_ms(50.0) > 4.5 && s.percentile_ms(50.0) < 5.5);
    }

    #[test]
    fn bucket_roundtrip_error_is_bounded() {
        for v in [100u64, 1_000, 10_000, 123_456, 9_999_999] {
            let b = Histogram::bucket_of(v);
            let mid = Histogram::bucket_value(b);
            let rel = (mid as f64 - v as f64).abs() / v as f64;
            assert!(rel < 0.05, "value {v}: bucket mid {mid}, err {rel}");
        }
    }
}
