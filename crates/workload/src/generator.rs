//! Transaction workload generation.

use paris_types::{Key, PartitionId, Value};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::zipf::Zipfian;

/// Workload parameters (paper §V-A).
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Reads per transaction (paper: 19 for 95:5, 10 for 50:50).
    pub reads_per_tx: usize,
    /// Writes per transaction (paper: 1 for 95:5, 10 for 50:50).
    pub writes_per_tx: usize,
    /// Distinct partitions touched per transaction (paper default: 4).
    pub partitions_per_tx: usize,
    /// Fraction of transactions that only touch partitions replicated in
    /// the client's local DC (paper sweeps 1.0, 0.95, 0.9, 0.5).
    pub local_tx_ratio: f64,
    /// Zipfian exponent for key popularity within a partition
    /// (paper: 0.99).
    pub zipf_theta: f64,
    /// Keys per partition.
    pub keys_per_partition: u64,
    /// Value payload size in bytes (paper: 8).
    pub value_size: usize,
}

impl WorkloadConfig {
    /// The paper's read-heavy default: 95:5 r:w (19 reads + 1 write),
    /// 4 partitions/tx, 95:5 local:multi, zipf 0.99, 8-byte items.
    pub fn read_heavy() -> Self {
        WorkloadConfig {
            reads_per_tx: 19,
            writes_per_tx: 1,
            partitions_per_tx: 4,
            local_tx_ratio: 0.95,
            zipf_theta: 0.99,
            keys_per_partition: 100_000,
            value_size: 8,
        }
    }

    /// The paper's write-heavy mix: 50:50 r:w (10 reads + 10 writes).
    pub fn write_heavy() -> Self {
        WorkloadConfig {
            reads_per_tx: 10,
            writes_per_tx: 10,
            ..WorkloadConfig::read_heavy()
        }
    }

    /// A read-dominant mix (~97:3 r:w) for exercising the parallel read
    /// path: wide slice reads (32 keys over 2 partitions → 16 keys per
    /// `ReadSliceReq`), one write per transaction to keep version chains
    /// and the stabilization pipeline live, all-local transactions so
    /// offered read load concentrates on the serving replicas.
    pub fn read_mostly() -> Self {
        WorkloadConfig {
            reads_per_tx: 32,
            writes_per_tx: 1,
            partitions_per_tx: 2,
            local_tx_ratio: 1.0,
            ..WorkloadConfig::read_heavy()
        }
    }

    /// Returns the config with a different locality ratio (Fig. 3 sweep).
    pub fn with_locality(mut self, local_tx_ratio: f64) -> Self {
        self.local_tx_ratio = local_tx_ratio;
        self
    }

    /// Operations per transaction (the paper's workloads always use 20).
    pub fn ops_per_tx(&self) -> usize {
        self.reads_per_tx + self.writes_per_tx
    }
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig::read_heavy()
    }
}

/// One generated transaction: the keys to read (in parallel), then the
/// writes to buffer before commit — the paper's execution shape ("a
/// transaction first executes all the reads in parallel, and then all the
/// writes in parallel", §V-A).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxSpec {
    /// Keys to read.
    pub read_keys: Vec<Key>,
    /// Key-value pairs to write.
    pub writes: Vec<(Key, Value)>,
    /// Whether the transaction was generated as local-DC only.
    pub local: bool,
}

/// Per-client transaction generator.
///
/// Constructed with the partitions replicated at the client's DC (for
/// local transactions) and the total partition count (for multi-DC
/// transactions and the key layout `key = partition + rank · N`, which
/// must match `Topology::key_at`).
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    config: WorkloadConfig,
    n_partitions: u32,
    local_partitions: Vec<PartitionId>,
    zipf: Zipfian,
    seq: u64,
}

impl WorkloadGenerator {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if `local_partitions` is empty or `partitions_per_tx` is 0.
    pub fn new(
        config: WorkloadConfig,
        n_partitions: u32,
        local_partitions: Vec<PartitionId>,
    ) -> Self {
        assert!(!local_partitions.is_empty(), "DC hosts no partitions");
        assert!(
            config.partitions_per_tx > 0,
            "transactions need a partition"
        );
        let zipf = Zipfian::new(config.keys_per_partition, config.zipf_theta);
        WorkloadGenerator {
            config,
            n_partitions,
            local_partitions,
            zipf,
            seq: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// The key at `rank` within `partition` — layout shared with
    /// `Topology::key_at`.
    fn key_at(&self, partition: PartitionId, rank: u64) -> Key {
        Key(u64::from(partition.0) + rank * u64::from(self.n_partitions))
    }

    /// Generates the next transaction.
    pub fn next_tx<R: Rng + ?Sized>(&mut self, rng: &mut R) -> TxSpec {
        self.seq += 1;
        let local = rng.gen::<f64>() < self.config.local_tx_ratio;

        // Choose the partitions the transaction touches.
        let wanted = self.config.partitions_per_tx;
        let partitions: Vec<PartitionId> = if local {
            let k = wanted.min(self.local_partitions.len());
            self.local_partitions
                .choose_multiple(rng, k)
                .copied()
                .collect()
        } else {
            // Multi-DC: random partitions from the whole keyspace
            // (paper: "touch random partitions in remote DCs").
            let mut chosen = Vec::with_capacity(wanted);
            while chosen.len() < wanted.min(self.n_partitions as usize) {
                let p = PartitionId(rng.gen_range(0..self.n_partitions));
                if !chosen.contains(&p) {
                    chosen.push(p);
                }
            }
            chosen
        };

        // Assign operations to partitions round-robin; draw each key's
        // rank from the zipfian.
        let mut read_keys = Vec::with_capacity(self.config.reads_per_tx);
        for i in 0..self.config.reads_per_tx {
            let p = partitions[i % partitions.len()];
            read_keys.push(self.key_at(p, self.zipf.sample(rng)));
        }
        let mut writes = Vec::with_capacity(self.config.writes_per_tx);
        for i in 0..self.config.writes_per_tx {
            let p = partitions[(self.config.reads_per_tx + i) % partitions.len()];
            let key = self.key_at(p, self.zipf.sample(rng));
            writes.push((key, Value::filled(self.config.value_size, self.seq)));
        }
        TxSpec {
            read_keys,
            writes,
            local,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn local_parts() -> Vec<PartitionId> {
        vec![
            PartitionId(0),
            PartitionId(2),
            PartitionId(3),
            PartitionId(5),
        ]
    }

    fn generator(cfg: WorkloadConfig) -> WorkloadGenerator {
        WorkloadGenerator::new(cfg, 6, local_parts())
    }

    #[test]
    fn presets_match_paper_mixes() {
        let b = WorkloadConfig::read_heavy();
        assert_eq!((b.reads_per_tx, b.writes_per_tx), (19, 1));
        assert_eq!(b.ops_per_tx(), 20);
        let a = WorkloadConfig::write_heavy();
        assert_eq!((a.reads_per_tx, a.writes_per_tx), (10, 10));
        assert_eq!(a.ops_per_tx(), 20);
        assert_eq!(a.partitions_per_tx, 4);
        assert_eq!(a.value_size, 8);
        assert!((a.zipf_theta - 0.99).abs() < 1e-9);
    }

    #[test]
    fn read_mostly_preset_shape() {
        let c = WorkloadConfig::read_mostly();
        assert_eq!((c.reads_per_tx, c.writes_per_tx), (32, 1));
        assert_eq!(c.partitions_per_tx, 2);
        assert!((c.local_tx_ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn generates_requested_op_counts() {
        let mut g = generator(WorkloadConfig {
            keys_per_partition: 100,
            ..WorkloadConfig::read_heavy()
        });
        let mut rng = StdRng::seed_from_u64(1);
        let tx = g.next_tx(&mut rng);
        assert_eq!(tx.read_keys.len(), 19);
        assert_eq!(tx.writes.len(), 1);
        assert_eq!(tx.writes[0].1.len(), 8);
    }

    #[test]
    fn local_transactions_only_touch_local_partitions() {
        let mut g = generator(WorkloadConfig {
            local_tx_ratio: 1.0,
            keys_per_partition: 100,
            ..WorkloadConfig::read_heavy()
        });
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let tx = g.next_tx(&mut rng);
            assert!(tx.local);
            for key in tx.read_keys.iter().chain(tx.writes.iter().map(|(k, _)| k)) {
                let p = PartitionId((key.as_u64() % 6) as u32);
                assert!(local_parts().contains(&p), "{key} not local");
            }
        }
    }

    #[test]
    fn zero_locality_generates_multi_dc_transactions() {
        let mut g = generator(WorkloadConfig {
            local_tx_ratio: 0.0,
            keys_per_partition: 100,
            ..WorkloadConfig::read_heavy()
        });
        let mut rng = StdRng::seed_from_u64(3);
        let remote_seen = (0..100).any(|_| {
            let tx = g.next_tx(&mut rng);
            assert!(!tx.local);
            tx.read_keys.iter().any(|k| {
                let p = PartitionId((k.as_u64() % 6) as u32);
                !local_parts().contains(&p)
            })
        });
        assert!(remote_seen, "multi-DC txs should hit remote partitions");
    }

    #[test]
    fn locality_ratio_is_respected_statistically() {
        let mut g = generator(WorkloadConfig {
            local_tx_ratio: 0.9,
            keys_per_partition: 100,
            ..WorkloadConfig::read_heavy()
        });
        let mut rng = StdRng::seed_from_u64(4);
        let n = 5_000;
        let local = (0..n).filter(|_| g.next_tx(&mut rng).local).count();
        let frac = local as f64 / n as f64;
        assert!((frac - 0.9).abs() < 0.03, "locality fraction {frac}");
    }

    #[test]
    fn transactions_span_the_requested_partition_count() {
        let mut g = generator(WorkloadConfig {
            local_tx_ratio: 1.0,
            partitions_per_tx: 4,
            keys_per_partition: 1_000,
            ..WorkloadConfig::read_heavy()
        });
        let mut rng = StdRng::seed_from_u64(5);
        let tx = g.next_tx(&mut rng);
        let parts: std::collections::HashSet<u64> =
            tx.read_keys.iter().map(|k| k.as_u64() % 6).collect();
        assert_eq!(parts.len(), 4);
    }

    #[test]
    fn with_locality_builder() {
        let cfg = WorkloadConfig::read_heavy().with_locality(0.5);
        assert!((cfg.local_tx_ratio - 0.5).abs() < 1e-9);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mk = || {
            let mut g = generator(WorkloadConfig {
                keys_per_partition: 100,
                ..WorkloadConfig::write_heavy()
            });
            let mut rng = StdRng::seed_from_u64(11);
            (0..10).map(|_| g.next_tx(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }
}
