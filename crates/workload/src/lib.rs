//! YCSB-style workload generation and measurement statistics.
//!
//! Reproduces the paper's evaluation workloads (§V-A): transactions of 20
//! operations — 19 reads + 1 write (the 95:5 read-heavy mix, YCSB-B-like)
//! or 10 reads + 10 writes (the 50:50 write-heavy mix, YCSB-A-like) —
//! touching a configurable number of partitions, with keys drawn from a
//! zipfian distribution (θ = 0.99, the YCSB default) *within* each
//! partition, 8-byte values, and a configurable local-DC : multi-DC
//! transaction ratio.
//!
//! The [`stats`] module provides the log-bucketed latency histogram,
//! percentile/CDF extraction and throughput accounting used by every
//! benchmark figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generator;
pub mod stats;
mod zipf;

pub use generator::{TxSpec, WorkloadConfig, WorkloadGenerator};
pub use zipf::Zipfian;
