//! Compact binary wire codec.
//!
//! Two encodings share this surface:
//!
//! * **v1** (this module's bare `encode`/`decode`/`encoded_len`): the
//!   original fixed-layout little-endian codec, kept bit-for-bit stable
//!   for interop with older peers;
//! * **v2** ([`crate::wire2`]): LEB128 varints for lengths, counts,
//!   sequence numbers, keys and ids, plus trimmed timestamps.
//!
//! The `*_with` functions dispatch on a [`WireFormat`];
//! [`decode_envelope_auto`] dispatches per frame on the first byte (v1
//! envelopes open with an endpoint tag 0/1, v2 frames with the
//! [`wire2::FRAME_V2`] marker), so a receiver
//! never misparses one encoding as the other. Its purposes:
//!
//! 1. **Metadata accounting** (Table I of the paper): [`encoded_len`] gives
//!    the exact on-wire size of every message, so the benchmark harness can
//!    measure how many metadata bytes PaRiS spends per operation — one
//!    timestamp, independent of the number of DCs or partitions.
//! 2. **Round-trip testing**: property tests assert `decode(encode(m)) == m`
//!    for arbitrary messages under both encodings, ensuring the message
//!    definitions have no hidden unserializable state.
//! 3. The threaded runtime can optionally ship encoded frames to account
//!    for bandwidth exactly as a networked deployment would.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use paris_types::{
    ClientId, DcId, Key, PartitionId, ServerId, Timestamp, TxId, Value, Version, WireFormat,
    WriteSetEntry,
};

use crate::messages::{DigestReport, Endpoint, Envelope, Msg, ReadResult, ReplicatedTx};
use crate::wire2;

/// Connection-preamble magic: every PaRiS socket connection opens with
/// these four bytes, so a stray client speaking another protocol is
/// rejected before any frame is parsed.
pub const MAGIC: [u8; 4] = *b"PaRS";

/// Highest wire protocol version this build speaks. Each side advertises
/// its *configured* encoding's version in the connection preamble right
/// after [`MAGIC`]; both sides then speak the minimum of the two
/// advertisements. A peer advertising a version outside
/// [`MIN_PROTOCOL_VERSION`]`..=`[`PROTOCOL_VERSION`] is refused instead
/// of misparsing frames.
pub const PROTOCOL_VERSION: u16 = 2;

/// Lowest wire protocol version still decoded (v1 is preserved
/// bit-for-bit).
pub const MIN_PROTOCOL_VERSION: u16 = 1;

/// Upper bound on the payload length of one framed wire message.
///
/// Enforced *before* any allocation on the receive path, so a malicious or
/// corrupt length prefix can neither trigger an OOM-sized allocation nor a
/// multi-gigabyte read loop. Generous enough for the largest legitimate
/// frame (a full store snapshot in a control reply).
pub const MAX_FRAME_LEN: usize = 32 << 20;

/// Error returned when decoding malformed bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the message was complete.
    Truncated,
    /// An unknown message tag was encountered.
    UnknownTag(u8),
    /// A collection length prefix exceeded the remaining buffer.
    BadLength,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "message truncated"),
            DecodeError::UnknownTag(t) => write!(f, "unknown message tag {t}"),
            DecodeError::BadLength => write!(f, "length prefix exceeds buffer"),
        }
    }
}

impl std::error::Error for DecodeError {}

// ---------------------------------------------------------------- helpers

pub(crate) fn need(buf: &impl Buf, n: usize) -> Result<(), DecodeError> {
    if buf.remaining() < n {
        Err(DecodeError::Truncated)
    } else {
        Ok(())
    }
}

pub(crate) fn put_ts(buf: &mut BytesMut, ts: Timestamp) {
    buf.put_u64_le(ts.as_u64());
}

pub(crate) fn get_ts(buf: &mut Bytes) -> Result<Timestamp, DecodeError> {
    need(buf, 8)?;
    Ok(Timestamp::from_u64(buf.get_u64_le()))
}

pub(crate) fn put_dc(buf: &mut BytesMut, dc: DcId) {
    buf.put_u16_le(dc.0);
}

pub(crate) fn get_dc(buf: &mut Bytes) -> Result<DcId, DecodeError> {
    need(buf, 2)?;
    Ok(DcId(buf.get_u16_le()))
}

pub(crate) fn put_partition(buf: &mut BytesMut, p: PartitionId) {
    buf.put_u32_le(p.0);
}

pub(crate) fn get_partition(buf: &mut Bytes) -> Result<PartitionId, DecodeError> {
    need(buf, 4)?;
    Ok(PartitionId(buf.get_u32_le()))
}

pub(crate) fn put_server(buf: &mut BytesMut, s: ServerId) {
    put_dc(buf, s.dc);
    put_partition(buf, s.partition);
}

pub(crate) fn get_server(buf: &mut Bytes) -> Result<ServerId, DecodeError> {
    Ok(ServerId::new(get_dc(buf)?, get_partition(buf)?))
}

pub(crate) fn put_tx(buf: &mut BytesMut, tx: TxId) {
    put_dc(buf, tx.dc);
    put_partition(buf, tx.partition);
    buf.put_u64_le(tx.seq);
}

pub(crate) fn get_tx(buf: &mut Bytes) -> Result<TxId, DecodeError> {
    let dc = get_dc(buf)?;
    let partition = get_partition(buf)?;
    need(buf, 8)?;
    let seq = buf.get_u64_le();
    Ok(TxId { dc, partition, seq })
}

pub(crate) fn put_key(buf: &mut BytesMut, k: Key) {
    buf.put_u64_le(k.0);
}

pub(crate) fn get_key(buf: &mut Bytes) -> Result<Key, DecodeError> {
    need(buf, 8)?;
    Ok(Key(buf.get_u64_le()))
}

pub(crate) fn put_len(buf: &mut BytesMut, len: usize) {
    buf.put_u32_le(len as u32);
}

pub(crate) fn get_len(buf: &mut Bytes) -> Result<usize, DecodeError> {
    need(buf, 4)?;
    Ok(buf.get_u32_le() as usize)
}

fn put_value(buf: &mut BytesMut, v: &Value) {
    put_len(buf, v.len());
    buf.put_slice(v.as_bytes());
}

fn get_value(buf: &mut Bytes) -> Result<Value, DecodeError> {
    let len = get_len(buf)?;
    if buf.remaining() < len {
        return Err(DecodeError::BadLength);
    }
    let mut bytes = vec![0u8; len];
    buf.copy_to_slice(&mut bytes);
    Ok(Value(bytes))
}

fn put_version(buf: &mut BytesMut, v: &Version) {
    put_key(buf, v.key);
    put_value(buf, &v.value);
    put_ts(buf, v.ut);
    put_tx(buf, v.tx);
    put_dc(buf, v.src);
}

fn get_version(buf: &mut Bytes) -> Result<Version, DecodeError> {
    Ok(Version {
        key: get_key(buf)?,
        value: get_value(buf)?,
        ut: get_ts(buf)?,
        tx: get_tx(buf)?,
        src: get_dc(buf)?,
    })
}

fn put_write(buf: &mut BytesMut, w: &WriteSetEntry) {
    put_key(buf, w.key);
    put_value(buf, &w.value);
}

fn get_write(buf: &mut Bytes) -> Result<WriteSetEntry, DecodeError> {
    Ok(WriteSetEntry {
        key: get_key(buf)?,
        value: get_value(buf)?,
    })
}

fn put_read_result(buf: &mut BytesMut, r: &ReadResult) {
    put_key(buf, r.key);
    match &r.version {
        None => buf.put_u8(0),
        Some(v) => {
            buf.put_u8(1);
            put_version(buf, v);
        }
    }
}

fn get_read_result(buf: &mut Bytes) -> Result<ReadResult, DecodeError> {
    let key = get_key(buf)?;
    need(buf, 1)?;
    let version = match buf.get_u8() {
        0 => None,
        _ => Some(get_version(buf)?),
    };
    Ok(ReadResult { key, version })
}

fn put_replicated_tx(buf: &mut BytesMut, t: &ReplicatedTx) {
    put_tx(buf, t.tx);
    put_ts(buf, t.ct);
    put_dc(buf, t.src);
    put_len(buf, t.writes.len());
    for w in &t.writes {
        put_write(buf, w);
    }
}

fn get_replicated_tx(buf: &mut Bytes) -> Result<ReplicatedTx, DecodeError> {
    let tx = get_tx(buf)?;
    let ct = get_ts(buf)?;
    let src = get_dc(buf)?;
    let m = get_len(buf)?;
    let mut writes = Vec::with_capacity(m.min(1024));
    for _ in 0..m {
        writes.push(get_write(buf)?);
    }
    Ok(ReplicatedTx {
        tx,
        ct,
        src,
        writes,
    })
}

fn put_digest_report(buf: &mut BytesMut, r: &DigestReport) {
    put_partition(buf, r.partition);
    put_ts(buf, r.oldest_active);
    put_len(buf, r.mins.len());
    for (dc, ts) in &r.mins {
        put_dc(buf, *dc);
        put_ts(buf, *ts);
    }
}

fn get_digest_report(buf: &mut Bytes) -> Result<DigestReport, DecodeError> {
    let partition = get_partition(buf)?;
    let oldest_active = get_ts(buf)?;
    let n = get_len(buf)?;
    let mut mins = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let dc = get_dc(buf)?;
        let ts = get_ts(buf)?;
        mins.push((dc, ts));
    }
    Ok(DigestReport {
        partition,
        mins,
        oldest_active,
    })
}

// Message tags (shared verbatim by the v2 codec in `wire2`).
pub(crate) const T_START_REQ: u8 = 1;
pub(crate) const T_START_RESP: u8 = 2;
pub(crate) const T_READ_REQ: u8 = 3;
pub(crate) const T_READ_RESP: u8 = 4;
pub(crate) const T_COMMIT_REQ: u8 = 5;
pub(crate) const T_COMMIT_RESP: u8 = 6;
pub(crate) const T_READ_SLICE_REQ: u8 = 7;
pub(crate) const T_READ_SLICE_RESP: u8 = 8;
pub(crate) const T_PREPARE_REQ: u8 = 9;
pub(crate) const T_PREPARE_RESP: u8 = 10;
pub(crate) const T_COMMIT_TX: u8 = 11;
pub(crate) const T_REPLICATE: u8 = 12;
pub(crate) const T_HEARTBEAT: u8 = 13;
pub(crate) const T_GST_REPORT: u8 = 14;
pub(crate) const T_ROOT_GST: u8 = 15;
pub(crate) const T_UST_BROADCAST: u8 = 16;
pub(crate) const T_OP_FAILED: u8 = 17;
pub(crate) const T_REPLICATE_BATCH: u8 = 18;
pub(crate) const T_GOSSIP_DIGEST: u8 = 19;

/// Encodes a message to its wire representation.
pub fn encode(msg: &Msg) -> Bytes {
    let mut buf = BytesMut::with_capacity(encoded_len(msg));
    match msg {
        Msg::StartTxReq { client_ust } => {
            buf.put_u8(T_START_REQ);
            put_ts(&mut buf, *client_ust);
        }
        Msg::StartTxResp { tx, snapshot } => {
            buf.put_u8(T_START_RESP);
            put_tx(&mut buf, *tx);
            put_ts(&mut buf, *snapshot);
        }
        Msg::ReadReq { tx, keys } => {
            buf.put_u8(T_READ_REQ);
            put_tx(&mut buf, *tx);
            put_len(&mut buf, keys.len());
            for k in keys {
                put_key(&mut buf, *k);
            }
        }
        Msg::ReadResp { tx, results } => {
            buf.put_u8(T_READ_RESP);
            put_tx(&mut buf, *tx);
            put_len(&mut buf, results.len());
            for r in results {
                put_read_result(&mut buf, r);
            }
        }
        Msg::CommitReq { tx, hwt, writes } => {
            buf.put_u8(T_COMMIT_REQ);
            put_tx(&mut buf, *tx);
            put_ts(&mut buf, *hwt);
            put_len(&mut buf, writes.len());
            for w in writes {
                put_write(&mut buf, w);
            }
        }
        Msg::CommitResp { tx, ct } => {
            buf.put_u8(T_COMMIT_RESP);
            put_tx(&mut buf, *tx);
            put_ts(&mut buf, *ct);
        }
        Msg::ReadSliceReq {
            tx,
            snapshot,
            keys,
            reply_to,
        } => {
            buf.put_u8(T_READ_SLICE_REQ);
            put_tx(&mut buf, *tx);
            put_ts(&mut buf, *snapshot);
            put_server(&mut buf, *reply_to);
            put_len(&mut buf, keys.len());
            for k in keys {
                put_key(&mut buf, *k);
            }
        }
        Msg::ReadSliceResp {
            tx,
            partition,
            results,
        } => {
            buf.put_u8(T_READ_SLICE_RESP);
            put_tx(&mut buf, *tx);
            put_partition(&mut buf, *partition);
            put_len(&mut buf, results.len());
            for r in results {
                put_read_result(&mut buf, r);
            }
        }
        Msg::PrepareReq {
            tx,
            snapshot,
            ht,
            writes,
            reply_to,
            src_dc,
        } => {
            buf.put_u8(T_PREPARE_REQ);
            put_tx(&mut buf, *tx);
            put_ts(&mut buf, *snapshot);
            put_ts(&mut buf, *ht);
            put_server(&mut buf, *reply_to);
            put_dc(&mut buf, *src_dc);
            put_len(&mut buf, writes.len());
            for w in writes {
                put_write(&mut buf, w);
            }
        }
        Msg::PrepareResp {
            tx,
            partition,
            proposed,
        } => {
            buf.put_u8(T_PREPARE_RESP);
            put_tx(&mut buf, *tx);
            put_partition(&mut buf, *partition);
            put_ts(&mut buf, *proposed);
        }
        Msg::CommitTx { tx, ct } => {
            buf.put_u8(T_COMMIT_TX);
            put_tx(&mut buf, *tx);
            put_ts(&mut buf, *ct);
        }
        Msg::Replicate {
            partition,
            txs,
            watermark,
        } => {
            buf.put_u8(T_REPLICATE);
            put_partition(&mut buf, *partition);
            put_ts(&mut buf, *watermark);
            put_len(&mut buf, txs.len());
            for t in txs {
                put_replicated_tx(&mut buf, t);
            }
        }
        Msg::ReplicateBatch {
            partition,
            txs,
            watermark,
            frames,
        } => {
            buf.put_u8(T_REPLICATE_BATCH);
            put_partition(&mut buf, *partition);
            put_ts(&mut buf, *watermark);
            buf.put_u32_le(*frames);
            put_len(&mut buf, txs.len());
            for t in txs {
                put_replicated_tx(&mut buf, t);
            }
        }
        Msg::Heartbeat {
            partition,
            watermark,
        } => {
            buf.put_u8(T_HEARTBEAT);
            put_partition(&mut buf, *partition);
            put_ts(&mut buf, *watermark);
        }
        Msg::GstReport {
            partition,
            mins,
            oldest_active,
        } => {
            buf.put_u8(T_GST_REPORT);
            put_partition(&mut buf, *partition);
            put_ts(&mut buf, *oldest_active);
            put_len(&mut buf, mins.len());
            for (dc, ts) in mins {
                put_dc(&mut buf, *dc);
                put_ts(&mut buf, *ts);
            }
        }
        Msg::RootGst {
            dc,
            gst,
            oldest_active,
        } => {
            buf.put_u8(T_ROOT_GST);
            put_dc(&mut buf, *dc);
            put_ts(&mut buf, *gst);
            put_ts(&mut buf, *oldest_active);
        }
        Msg::UstBroadcast { ust, s_old } => {
            buf.put_u8(T_UST_BROADCAST);
            put_ts(&mut buf, *ust);
            put_ts(&mut buf, *s_old);
        }
        Msg::GossipDigest {
            reports,
            roots,
            ust,
            frames,
        } => {
            buf.put_u8(T_GOSSIP_DIGEST);
            buf.put_u32_le(*frames);
            put_len(&mut buf, reports.len());
            for r in reports {
                put_digest_report(&mut buf, r);
            }
            put_len(&mut buf, roots.len());
            for (dc, gst, oldest) in roots {
                put_dc(&mut buf, *dc);
                put_ts(&mut buf, *gst);
                put_ts(&mut buf, *oldest);
            }
            match ust {
                None => buf.put_u8(0),
                Some((ust, s_old)) => {
                    buf.put_u8(1);
                    put_ts(&mut buf, *ust);
                    put_ts(&mut buf, *s_old);
                }
            }
        }
        Msg::OpFailed { tx } => {
            buf.put_u8(T_OP_FAILED);
            put_tx(&mut buf, *tx);
        }
    }
    buf.freeze()
}

/// Decodes a message from its wire representation.
///
/// # Errors
///
/// Returns a [`DecodeError`] when the buffer is truncated, carries an
/// unknown tag, or declares impossible lengths.
pub fn decode(bytes: &[u8]) -> Result<Msg, DecodeError> {
    let mut buf = Bytes::copy_from_slice(bytes);
    need(&buf, 1)?;
    let tag = buf.get_u8();
    let msg = match tag {
        T_START_REQ => Msg::StartTxReq {
            client_ust: get_ts(&mut buf)?,
        },
        T_START_RESP => Msg::StartTxResp {
            tx: get_tx(&mut buf)?,
            snapshot: get_ts(&mut buf)?,
        },
        T_READ_REQ => {
            let tx = get_tx(&mut buf)?;
            let n = get_len(&mut buf)?;
            let mut keys = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                keys.push(get_key(&mut buf)?);
            }
            Msg::ReadReq { tx, keys }
        }
        T_READ_RESP => {
            let tx = get_tx(&mut buf)?;
            let n = get_len(&mut buf)?;
            let mut results = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                results.push(get_read_result(&mut buf)?);
            }
            Msg::ReadResp { tx, results }
        }
        T_COMMIT_REQ => {
            let tx = get_tx(&mut buf)?;
            let hwt = get_ts(&mut buf)?;
            let n = get_len(&mut buf)?;
            let mut writes = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                writes.push(get_write(&mut buf)?);
            }
            Msg::CommitReq { tx, hwt, writes }
        }
        T_COMMIT_RESP => Msg::CommitResp {
            tx: get_tx(&mut buf)?,
            ct: get_ts(&mut buf)?,
        },
        T_READ_SLICE_REQ => {
            let tx = get_tx(&mut buf)?;
            let snapshot = get_ts(&mut buf)?;
            let reply_to = get_server(&mut buf)?;
            let n = get_len(&mut buf)?;
            let mut keys = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                keys.push(get_key(&mut buf)?);
            }
            Msg::ReadSliceReq {
                tx,
                snapshot,
                keys,
                reply_to,
            }
        }
        T_READ_SLICE_RESP => {
            let tx = get_tx(&mut buf)?;
            let partition = get_partition(&mut buf)?;
            let n = get_len(&mut buf)?;
            let mut results = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                results.push(get_read_result(&mut buf)?);
            }
            Msg::ReadSliceResp {
                tx,
                partition,
                results,
            }
        }
        T_PREPARE_REQ => {
            let tx = get_tx(&mut buf)?;
            let snapshot = get_ts(&mut buf)?;
            let ht = get_ts(&mut buf)?;
            let reply_to = get_server(&mut buf)?;
            let src_dc = get_dc(&mut buf)?;
            let n = get_len(&mut buf)?;
            let mut writes = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                writes.push(get_write(&mut buf)?);
            }
            Msg::PrepareReq {
                tx,
                snapshot,
                ht,
                writes,
                reply_to,
                src_dc,
            }
        }
        T_PREPARE_RESP => Msg::PrepareResp {
            tx: get_tx(&mut buf)?,
            partition: get_partition(&mut buf)?,
            proposed: get_ts(&mut buf)?,
        },
        T_COMMIT_TX => Msg::CommitTx {
            tx: get_tx(&mut buf)?,
            ct: get_ts(&mut buf)?,
        },
        T_REPLICATE => {
            let partition = get_partition(&mut buf)?;
            let watermark = get_ts(&mut buf)?;
            let n = get_len(&mut buf)?;
            let mut txs = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                txs.push(get_replicated_tx(&mut buf)?);
            }
            Msg::Replicate {
                partition,
                txs,
                watermark,
            }
        }
        T_REPLICATE_BATCH => {
            let partition = get_partition(&mut buf)?;
            let watermark = get_ts(&mut buf)?;
            need(&buf, 4)?;
            let frames = buf.get_u32_le();
            let n = get_len(&mut buf)?;
            let mut txs = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                txs.push(get_replicated_tx(&mut buf)?);
            }
            Msg::ReplicateBatch {
                partition,
                txs,
                watermark,
                frames,
            }
        }
        T_HEARTBEAT => Msg::Heartbeat {
            partition: get_partition(&mut buf)?,
            watermark: get_ts(&mut buf)?,
        },
        T_GST_REPORT => {
            let partition = get_partition(&mut buf)?;
            let oldest_active = get_ts(&mut buf)?;
            let n = get_len(&mut buf)?;
            let mut mins = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let dc = get_dc(&mut buf)?;
                let ts = get_ts(&mut buf)?;
                mins.push((dc, ts));
            }
            Msg::GstReport {
                partition,
                mins,
                oldest_active,
            }
        }
        T_ROOT_GST => Msg::RootGst {
            dc: get_dc(&mut buf)?,
            gst: get_ts(&mut buf)?,
            oldest_active: get_ts(&mut buf)?,
        },
        T_UST_BROADCAST => Msg::UstBroadcast {
            ust: get_ts(&mut buf)?,
            s_old: get_ts(&mut buf)?,
        },
        T_GOSSIP_DIGEST => {
            need(&buf, 4)?;
            let frames = buf.get_u32_le();
            let n = get_len(&mut buf)?;
            let mut reports = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                reports.push(get_digest_report(&mut buf)?);
            }
            let n = get_len(&mut buf)?;
            let mut roots = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let dc = get_dc(&mut buf)?;
                let gst = get_ts(&mut buf)?;
                let oldest = get_ts(&mut buf)?;
                roots.push((dc, gst, oldest));
            }
            need(&buf, 1)?;
            let ust = match buf.get_u8() {
                0 => None,
                _ => Some((get_ts(&mut buf)?, get_ts(&mut buf)?)),
            };
            Msg::GossipDigest {
                reports,
                roots,
                ust,
                frames,
            }
        }
        T_OP_FAILED => Msg::OpFailed {
            tx: get_tx(&mut buf)?,
        },
        other => return Err(DecodeError::UnknownTag(other)),
    };
    Ok(msg)
}

/// Exact encoded size of a message, without allocating.
///
/// Used by the simulated network for bandwidth accounting and by the
/// Table I metadata benchmark.
pub fn encoded_len(msg: &Msg) -> usize {
    const TS: usize = 8;
    const DC: usize = 2;
    const PART: usize = 4;
    const TX: usize = DC + PART + 8;
    const SERVER: usize = DC + PART;
    const KEY: usize = 8;
    const LEN: usize = 4;
    fn value_len(v: &Value) -> usize {
        LEN + v.len()
    }
    fn version_len(v: &Version) -> usize {
        KEY + value_len(&v.value) + TS + TX + DC
    }
    fn write_len(w: &WriteSetEntry) -> usize {
        KEY + value_len(&w.value)
    }
    fn result_len(r: &ReadResult) -> usize {
        KEY + 1 + r.version.as_ref().map_or(0, version_len)
    }
    fn replicated_tx_len(t: &ReplicatedTx) -> usize {
        TX + TS + DC + LEN + t.writes.iter().map(write_len).sum::<usize>()
    }
    fn report_len(r: &DigestReport) -> usize {
        PART + TS + LEN + r.mins.len() * (DC + TS)
    }
    1 + match msg {
        Msg::StartTxReq { .. } => TS,
        Msg::StartTxResp { .. } => TX + TS,
        Msg::ReadReq { keys, .. } => TX + LEN + keys.len() * KEY,
        Msg::ReadResp { results, .. } => TX + LEN + results.iter().map(result_len).sum::<usize>(),
        Msg::CommitReq { writes, .. } => {
            TX + TS + LEN + writes.iter().map(write_len).sum::<usize>()
        }
        Msg::CommitResp { .. } => TX + TS,
        Msg::ReadSliceReq { keys, .. } => TX + TS + SERVER + LEN + keys.len() * KEY,
        Msg::ReadSliceResp { results, .. } => {
            TX + PART + LEN + results.iter().map(result_len).sum::<usize>()
        }
        Msg::PrepareReq { writes, .. } => {
            TX + TS + TS + SERVER + DC + LEN + writes.iter().map(write_len).sum::<usize>()
        }
        Msg::PrepareResp { .. } => TX + PART + TS,
        Msg::CommitTx { .. } => TX + TS,
        Msg::Replicate { txs, .. } => {
            PART + TS + LEN + txs.iter().map(replicated_tx_len).sum::<usize>()
        }
        Msg::ReplicateBatch { txs, .. } => {
            PART + TS + 4 + LEN + txs.iter().map(replicated_tx_len).sum::<usize>()
        }
        Msg::Heartbeat { .. } => PART + TS,
        Msg::GossipDigest {
            reports,
            roots,
            ust,
            ..
        } => {
            4 + LEN
                + reports.iter().map(report_len).sum::<usize>()
                + LEN
                + roots.len() * (DC + TS + TS)
                + 1
                + if ust.is_some() { TS + TS } else { 0 }
        }
        Msg::GstReport { mins, .. } => PART + TS + LEN + mins.len() * (DC + TS),
        Msg::RootGst { .. } => DC + TS + TS,
        Msg::UstBroadcast { .. } => TS + TS,
        Msg::OpFailed { .. } => TX,
    }
}

/// Metadata bytes in a v1-encoded message: everything that is not key or
/// value payload and not the message tag — i.e. the dependency-tracking
/// cost the paper's Table I compares across systems.
pub fn metadata_len(msg: &Msg) -> usize {
    metadata_len_with(msg, WireFormat::V1)
}

/// Metadata bytes in a message under the given encoding.
///
/// Key and payload bytes are sized as the *active* codec ships them — a
/// key costs its fixed 8 bytes under v1 but its varint width under v2,
/// and a value's length prefix likewise — so the split stays exact for
/// both encodings instead of assuming v1's fixed field widths.
pub fn metadata_len_with(msg: &Msg, wire: WireFormat) -> usize {
    let key = |k: Key| match wire {
        WireFormat::V1 => 8,
        WireFormat::V2 => wire2::key_len(k),
    };
    let value = |v: &Value| match wire {
        WireFormat::V1 => 4 + v.len(), // length prefix + bytes
        WireFormat::V2 => wire2::value_len(v),
    };
    let result = |r: &ReadResult| {
        key(r.key)
            + r.version
                .as_ref()
                .map_or(0, |v| key(v.key) + value(&v.value))
    };
    let write = |w: &WriteSetEntry| key(w.key) + value(&w.value);
    let payload_bytes: usize = match msg {
        Msg::ReadReq { keys, .. } | Msg::ReadSliceReq { keys, .. } => {
            keys.iter().map(|k| key(*k)).sum()
        }
        Msg::ReadResp { results, .. } | Msg::ReadSliceResp { results, .. } => {
            results.iter().map(result).sum()
        }
        Msg::CommitReq { writes, .. } | Msg::PrepareReq { writes, .. } => {
            writes.iter().map(write).sum()
        }
        Msg::Replicate { txs, .. } | Msg::ReplicateBatch { txs, .. } => txs
            .iter()
            .map(|t| t.writes.iter().map(write).sum::<usize>())
            .sum(),
        _ => 0,
    };
    encoded_len_with(msg, wire) - 1 - payload_bytes
}

// ----------------------------------------------------- encoding dispatch

/// Encodes a message in the given encoding.
pub fn encode_with(msg: &Msg, wire: WireFormat) -> Bytes {
    match wire {
        WireFormat::V1 => encode(msg),
        WireFormat::V2 => wire2::encode(msg),
    }
}

/// Decodes a message known to be in the given encoding.
///
/// # Errors
///
/// Returns a [`DecodeError`] for malformed bytes, as [`decode`].
pub fn decode_with(bytes: &[u8], wire: WireFormat) -> Result<Msg, DecodeError> {
    match wire {
        WireFormat::V1 => decode(bytes),
        WireFormat::V2 => wire2::decode(bytes),
    }
}

/// Exact encoded size of a message under the given encoding.
pub fn encoded_len_with(msg: &Msg, wire: WireFormat) -> usize {
    match wire {
        WireFormat::V1 => encoded_len(msg),
        WireFormat::V2 => wire2::encoded_len(msg),
    }
}

/// Encodes an envelope as a frame payload in the given encoding.
pub fn encode_envelope_with(env: &Envelope, wire: WireFormat) -> Bytes {
    match wire {
        WireFormat::V1 => encode_envelope(env),
        WireFormat::V2 => wire2::encode_envelope(env),
    }
}

/// Exact frame-payload size of an envelope under the given encoding.
pub fn envelope_len_with(env: &Envelope, wire: WireFormat) -> usize {
    match wire {
        WireFormat::V1 => envelope_len(env),
        WireFormat::V2 => wire2::envelope_len(env),
    }
}

/// Decodes an envelope frame of either encoding, dispatching on the
/// first byte: v1 frames open with an endpoint tag (0 or 1), v2 frames
/// with the [`wire2::FRAME_V2`] marker. Any other first byte is rejected
/// as an unknown tag, so a frame can never be parsed under the wrong
/// codec.
///
/// # Errors
///
/// Returns a [`DecodeError`] for truncated or malformed frames of either
/// encoding — never panics, whatever the input.
pub fn decode_envelope_auto(bytes: &[u8]) -> Result<Envelope, DecodeError> {
    match bytes.first() {
        Some(&wire2::FRAME_V2) => wire2::decode_envelope(bytes),
        _ => decode_envelope(bytes),
    }
}

// ------------------------------------------------------------- envelopes

/// Endpoint discriminants in the envelope codec.
const E_SERVER: u8 = 0;
const E_CLIENT: u8 = 1;

/// Encoded size of an endpoint: tag byte + DC + partition/sequence.
const ENDPOINT_LEN: usize = 1 + 2 + 4;

fn put_endpoint(buf: &mut BytesMut, ep: Endpoint) {
    match ep {
        Endpoint::Server(s) => {
            buf.put_u8(E_SERVER);
            put_server(buf, s);
        }
        Endpoint::Client(c) => {
            buf.put_u8(E_CLIENT);
            put_dc(buf, c.dc);
            buf.put_u32_le(c.seq);
        }
    }
}

fn get_endpoint(buf: &mut Bytes) -> Result<Endpoint, DecodeError> {
    need(buf, 1)?;
    match buf.get_u8() {
        E_SERVER => Ok(Endpoint::Server(get_server(buf)?)),
        E_CLIENT => {
            let dc = get_dc(buf)?;
            need(buf, 4)?;
            Ok(Endpoint::Client(ClientId::new(dc, buf.get_u32_le())))
        }
        other => Err(DecodeError::UnknownTag(other)),
    }
}

/// Encodes a full envelope — source, destination and message — as one wire
/// frame payload. This is what the socket transport ships: endpoints ride
/// along so the receiving process can route replies without any
/// transport-level correlation state.
pub fn encode_envelope(env: &Envelope) -> Bytes {
    let mut buf = BytesMut::with_capacity(envelope_len(env));
    put_endpoint(&mut buf, env.src);
    put_endpoint(&mut buf, env.dst);
    buf.put_slice(&encode(&env.msg));
    buf.freeze()
}

/// Decodes an envelope produced by [`encode_envelope`].
///
/// # Errors
///
/// Returns a [`DecodeError`] for truncated buffers, unknown endpoint or
/// message tags, or impossible lengths — never panics, whatever the input.
pub fn decode_envelope(bytes: &[u8]) -> Result<Envelope, DecodeError> {
    let mut buf = Bytes::copy_from_slice(bytes);
    let src = get_endpoint(&mut buf)?;
    let dst = get_endpoint(&mut buf)?;
    let msg = decode(&bytes[bytes.len() - buf.remaining()..])?;
    Ok(Envelope { src, dst, msg })
}

/// Exact encoded size of an envelope, without allocating.
pub fn envelope_len(env: &Envelope) -> usize {
    2 * ENDPOINT_LEN + encoded_len(&env.msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tx(dc: u16, p: u32, seq: u64) -> TxId {
        TxId {
            dc: DcId(dc),
            partition: PartitionId(p),
            seq,
        }
    }

    fn sample_messages() -> Vec<Msg> {
        let t = tx(1, 2, 3);
        let srv = ServerId::new(DcId(0), PartitionId(7));
        let ver = Version::new(
            Key(9),
            Value::from("hello"),
            Timestamp::from_parts(100, 1),
            t,
            DcId(1),
        );
        vec![
            Msg::StartTxReq {
                client_ust: Timestamp::from_parts(5, 0),
            },
            Msg::StartTxResp {
                tx: t,
                snapshot: Timestamp::from_parts(10, 2),
            },
            Msg::ReadReq {
                tx: t,
                keys: vec![Key(1), Key(2)],
            },
            Msg::ReadResp {
                tx: t,
                results: vec![
                    ReadResult {
                        key: Key(1),
                        version: Some(ver.clone()),
                    },
                    ReadResult {
                        key: Key(2),
                        version: None,
                    },
                ],
            },
            Msg::CommitReq {
                tx: t,
                hwt: Timestamp::from_parts(50, 0),
                writes: vec![WriteSetEntry::new(Key(3), Value::from("v"))],
            },
            Msg::CommitResp {
                tx: t,
                ct: Timestamp::from_parts(60, 0),
            },
            Msg::ReadSliceReq {
                tx: t,
                snapshot: Timestamp::from_parts(10, 0),
                keys: vec![Key(4)],
                reply_to: srv,
            },
            Msg::ReadSliceResp {
                tx: t,
                partition: PartitionId(7),
                results: vec![ReadResult {
                    key: Key(4),
                    version: Some(ver.clone()),
                }],
            },
            Msg::PrepareReq {
                tx: t,
                snapshot: Timestamp::from_parts(10, 0),
                ht: Timestamp::from_parts(55, 0),
                writes: vec![WriteSetEntry::new(Key(3), Value::from("v"))],
                reply_to: srv,
                src_dc: DcId(1),
            },
            Msg::PrepareResp {
                tx: t,
                partition: PartitionId(7),
                proposed: Timestamp::from_parts(70, 1),
            },
            Msg::CommitTx {
                tx: t,
                ct: Timestamp::from_parts(71, 0),
            },
            Msg::Replicate {
                partition: PartitionId(7),
                txs: vec![ReplicatedTx {
                    tx: t,
                    ct: Timestamp::from_parts(71, 0),
                    src: DcId(1),
                    writes: vec![WriteSetEntry::new(Key(3), Value::from("v"))],
                }],
                watermark: Timestamp::from_parts(80, 0),
            },
            Msg::Heartbeat {
                partition: PartitionId(7),
                watermark: Timestamp::from_parts(81, 0),
            },
            Msg::GstReport {
                partition: PartitionId(7),
                mins: vec![
                    (DcId(0), Timestamp::from_parts(40, 0)),
                    (DcId(1), Timestamp::from_parts(41, 0)),
                ],
                oldest_active: Timestamp::from_parts(39, 0),
            },
            Msg::RootGst {
                dc: DcId(2),
                gst: Timestamp::from_parts(38, 0),
                oldest_active: Timestamp::from_parts(37, 0),
            },
            Msg::UstBroadcast {
                ust: Timestamp::from_parts(36, 0),
                s_old: Timestamp::from_parts(30, 0),
            },
            Msg::ReplicateBatch {
                partition: PartitionId(7),
                txs: vec![ReplicatedTx {
                    tx: t,
                    ct: Timestamp::from_parts(71, 0),
                    src: DcId(1),
                    writes: vec![WriteSetEntry::new(Key(3), Value::from("v"))],
                }],
                watermark: Timestamp::from_parts(90, 0),
                frames: 3,
            },
            Msg::GossipDigest {
                reports: vec![DigestReport {
                    partition: PartitionId(7),
                    mins: vec![(DcId(0), Timestamp::from_parts(40, 0))],
                    oldest_active: Timestamp::from_parts(39, 0),
                }],
                roots: vec![(
                    DcId(2),
                    Timestamp::from_parts(38, 0),
                    Timestamp::from_parts(37, 0),
                )],
                ust: Some((Timestamp::from_parts(36, 0), Timestamp::from_parts(30, 0))),
                frames: 4,
            },
            Msg::GossipDigest {
                reports: vec![],
                roots: vec![],
                ust: None,
                frames: 1,
            },
            Msg::OpFailed { tx: t },
        ]
    }

    #[test]
    fn every_message_roundtrips() {
        for msg in sample_messages() {
            let bytes = encode(&msg);
            let back = decode(&bytes).unwrap_or_else(|e| panic!("{}: {e}", msg.kind()));
            assert_eq!(back, msg, "{} roundtrip", msg.kind());
        }
    }

    #[test]
    fn encoded_len_is_exact_for_every_message() {
        for msg in sample_messages() {
            assert_eq!(
                encode(&msg).len(),
                encoded_len(&msg),
                "{} length",
                msg.kind()
            );
        }
    }

    #[test]
    fn decode_rejects_unknown_tag() {
        assert_eq!(decode(&[200u8]), Err(DecodeError::UnknownTag(200)));
    }

    #[test]
    fn decode_rejects_truncation_everywhere() {
        for msg in sample_messages() {
            let bytes = encode(&msg);
            // Every strict prefix must fail, never panic.
            for cut in 0..bytes.len() {
                assert!(
                    decode(&bytes[..cut]).is_err(),
                    "{} prefix {cut} decoded",
                    msg.kind()
                );
            }
        }
    }

    #[test]
    fn decode_rejects_oversized_value_length() {
        // CommitReq with a write whose value length prefix exceeds buffer.
        let msg = Msg::CommitReq {
            tx: tx(0, 0, 1),
            hwt: Timestamp::ZERO,
            writes: vec![WriteSetEntry::new(Key(1), Value::from("abc"))],
        };
        let mut bytes = encode(&msg).to_vec();
        // The value length prefix sits 4+3 bytes from the end; corrupt it.
        let n = bytes.len();
        bytes[n - 7..n - 3].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode(&bytes), Err(DecodeError::BadLength));
    }

    #[test]
    fn snapshot_metadata_is_one_timestamp() {
        // The headline Table I claim: transactional snapshot metadata in
        // client-facing messages is exactly one 8-byte timestamp.
        let start = Msg::StartTxReq {
            client_ust: Timestamp::ZERO,
        };
        assert_eq!(metadata_len(&start), 8);
        let ust = Msg::UstBroadcast {
            ust: Timestamp::ZERO,
            s_old: Timestamp::ZERO,
        };
        assert_eq!(metadata_len(&ust), 16);
    }

    #[test]
    fn metadata_excludes_key_and_value_payload() {
        let small = Msg::CommitReq {
            tx: tx(0, 0, 1),
            hwt: Timestamp::ZERO,
            writes: vec![WriteSetEntry::new(Key(1), Value::filled(8, 1))],
        };
        let large = Msg::CommitReq {
            tx: tx(0, 0, 1),
            hwt: Timestamp::ZERO,
            writes: vec![WriteSetEntry::new(Key(1), Value::filled(4096, 1))],
        };
        assert_eq!(
            metadata_len(&small),
            metadata_len(&large),
            "metadata must not scale with payload"
        );
    }

    #[test]
    fn display_of_decode_errors() {
        assert_eq!(DecodeError::Truncated.to_string(), "message truncated");
        assert_eq!(
            DecodeError::UnknownTag(9).to_string(),
            "unknown message tag 9"
        );
        assert_eq!(
            DecodeError::BadLength.to_string(),
            "length prefix exceeds buffer"
        );
    }

    // Strategies for arbitrary messages.
    fn arb_ts() -> impl Strategy<Value = Timestamp> {
        (0u64..(1 << 40), any::<u16>()).prop_map(|(p, l)| Timestamp::from_parts(p, l))
    }

    fn arb_tx() -> impl Strategy<Value = TxId> {
        (any::<u16>(), any::<u32>(), any::<u64>()).prop_map(|(d, p, s)| tx(d, p, s))
    }

    fn arb_value() -> impl Strategy<Value = Value> {
        proptest::collection::vec(any::<u8>(), 0..32).prop_map(Value)
    }

    fn arb_version() -> impl Strategy<Value = Version> {
        (any::<u64>(), arb_value(), arb_ts(), arb_tx(), any::<u16>())
            .prop_map(|(k, v, ts, tx, dc)| Version::new(Key(k), v, ts, tx, DcId(dc)))
    }

    fn arb_writes() -> impl Strategy<Value = Vec<WriteSetEntry>> {
        proptest::collection::vec(
            (any::<u64>(), arb_value()).prop_map(|(k, v)| WriteSetEntry::new(Key(k), v)),
            0..8,
        )
    }

    fn arb_results() -> impl Strategy<Value = Vec<ReadResult>> {
        proptest::collection::vec(
            (any::<u64>(), proptest::option::of(arb_version())).prop_map(|(k, v)| ReadResult {
                key: Key(k),
                version: v,
            }),
            0..8,
        )
    }

    fn arb_msg() -> impl Strategy<Value = Msg> {
        prop_oneof![
            arb_ts().prop_map(|client_ust| Msg::StartTxReq { client_ust }),
            (arb_tx(), arb_ts()).prop_map(|(tx, snapshot)| Msg::StartTxResp { tx, snapshot }),
            (arb_tx(), proptest::collection::vec(any::<u64>(), 0..16)).prop_map(|(tx, ks)| {
                Msg::ReadReq {
                    tx,
                    keys: ks.into_iter().map(Key).collect(),
                }
            }),
            (arb_tx(), arb_results()).prop_map(|(tx, results)| Msg::ReadResp { tx, results }),
            (arb_tx(), arb_ts(), arb_writes()).prop_map(|(tx, hwt, writes)| Msg::CommitReq {
                tx,
                hwt,
                writes
            }),
            (arb_tx(), arb_ts()).prop_map(|(tx, ct)| Msg::CommitResp { tx, ct }),
            (
                arb_tx(),
                arb_ts(),
                proptest::collection::vec(any::<u64>(), 0..16),
                any::<u16>(),
                any::<u32>()
            )
                .prop_map(|(tx, snapshot, ks, d, p)| Msg::ReadSliceReq {
                    tx,
                    snapshot,
                    keys: ks.into_iter().map(Key).collect(),
                    reply_to: ServerId::new(DcId(d), PartitionId(p)),
                }),
            (arb_tx(), any::<u32>(), arb_results()).prop_map(|(tx, p, results)| {
                Msg::ReadSliceResp {
                    tx,
                    partition: PartitionId(p),
                    results,
                }
            }),
            (
                arb_tx(),
                arb_ts(),
                arb_ts(),
                arb_writes(),
                any::<u16>(),
                any::<u32>(),
                any::<u16>()
            )
                .prop_map(|(tx, snapshot, ht, writes, d, p, sd)| Msg::PrepareReq {
                    tx,
                    snapshot,
                    ht,
                    writes,
                    reply_to: ServerId::new(DcId(d), PartitionId(p)),
                    src_dc: DcId(sd),
                }),
            (arb_tx(), any::<u32>(), arb_ts()).prop_map(|(tx, p, proposed)| Msg::PrepareResp {
                tx,
                partition: PartitionId(p),
                proposed,
            }),
            (arb_tx(), arb_ts()).prop_map(|(tx, ct)| Msg::CommitTx { tx, ct }),
            (
                any::<u32>(),
                arb_ts(),
                proptest::collection::vec((arb_tx(), arb_ts(), any::<u16>(), arb_writes()), 0..4)
            )
                .prop_map(|(p, wm, txs)| Msg::Replicate {
                    partition: PartitionId(p),
                    watermark: wm,
                    txs: txs
                        .into_iter()
                        .map(|(tx, ct, src, writes)| ReplicatedTx {
                            tx,
                            ct,
                            src: DcId(src),
                            writes,
                        })
                        .collect(),
                }),
            (any::<u32>(), arb_ts()).prop_map(|(p, wm)| Msg::Heartbeat {
                partition: PartitionId(p),
                watermark: wm,
            }),
            (
                any::<u32>(),
                proptest::collection::vec((any::<u16>(), arb_ts()), 0..8),
                arb_ts()
            )
                .prop_map(|(p, mins, oa)| Msg::GstReport {
                    partition: PartitionId(p),
                    mins: mins.into_iter().map(|(d, t)| (DcId(d), t)).collect(),
                    oldest_active: oa,
                }),
            (any::<u16>(), arb_ts(), arb_ts()).prop_map(|(d, gst, oa)| Msg::RootGst {
                dc: DcId(d),
                gst,
                oldest_active: oa,
            }),
            (arb_ts(), arb_ts()).prop_map(|(ust, s_old)| Msg::UstBroadcast { ust, s_old }),
            arb_tx().prop_map(|tx| Msg::OpFailed { tx }),
            (
                any::<u32>(),
                arb_ts(),
                any::<u32>(),
                proptest::collection::vec((arb_tx(), arb_ts(), any::<u16>(), arb_writes()), 0..4)
            )
                .prop_map(|(p, wm, frames, txs)| Msg::ReplicateBatch {
                    partition: PartitionId(p),
                    watermark: wm,
                    frames,
                    txs: txs
                        .into_iter()
                        .map(|(tx, ct, src, writes)| ReplicatedTx {
                            tx,
                            ct,
                            src: DcId(src),
                            writes,
                        })
                        .collect(),
                }),
            (
                proptest::collection::vec(arb_digest_report(), 0..4),
                proptest::collection::vec((any::<u16>(), arb_ts(), arb_ts()), 0..4),
                proptest::option::of((arb_ts(), arb_ts())),
                any::<u32>()
            )
                .prop_map(|(reports, roots, ust, frames)| Msg::GossipDigest {
                    reports,
                    roots: roots.into_iter().map(|(d, g, o)| (DcId(d), g, o)).collect(),
                    ust,
                    frames,
                }),
        ]
    }

    fn arb_digest_report() -> impl Strategy<Value = DigestReport> {
        (
            any::<u32>(),
            proptest::collection::vec((any::<u16>(), arb_ts()), 0..6),
            arb_ts(),
        )
            .prop_map(|(p, mins, oldest_active)| DigestReport {
                partition: PartitionId(p),
                mins: mins.into_iter().map(|(d, t)| (DcId(d), t)).collect(),
                oldest_active,
            })
    }

    #[test]
    fn envelopes_roundtrip_with_exact_length() {
        let endpoints = [
            Endpoint::Server(ServerId::new(DcId(3), PartitionId(17))),
            Endpoint::Client(ClientId::new(DcId(1), u32::MAX - 7)),
        ];
        for src in endpoints {
            for dst in endpoints {
                for msg in sample_messages() {
                    let env = Envelope { src, dst, msg };
                    let bytes = encode_envelope(&env);
                    assert_eq!(bytes.len(), envelope_len(&env));
                    assert_eq!(decode_envelope(&bytes).unwrap(), env);
                }
            }
        }
    }

    #[test]
    fn envelope_decode_rejects_truncation_and_bad_endpoint_tags() {
        let env = Envelope::new(
            ClientId::new(DcId(0), 1),
            ServerId::new(DcId(0), PartitionId(0)),
            Msg::StartTxReq {
                client_ust: Timestamp::ZERO,
            },
        );
        let bytes = encode_envelope(&env);
        for cut in 0..bytes.len() {
            assert!(decode_envelope(&bytes[..cut]).is_err(), "prefix {cut}");
        }
        let mut corrupt = bytes.to_vec();
        corrupt[0] = 9; // endpoint tags are 0 or 1
        assert_eq!(decode_envelope(&corrupt), Err(DecodeError::UnknownTag(9)));
    }

    #[test]
    fn v1_encoding_is_bit_for_bit_stable() {
        // Golden bytes: v1 must never change shape, whatever happens to
        // v2 — older peers negotiate down to exactly these frames.
        let msg = Msg::StartTxReq {
            client_ust: Timestamp::from_parts(0x0102_0304, 5),
        };
        assert_eq!(
            encode(&msg).as_ref(),
            [1u8, 5, 0, 4, 3, 2, 1, 0, 0],
            "tag + packed LE timestamp"
        );
        let hb = Msg::Heartbeat {
            partition: PartitionId(7),
            watermark: Timestamp::from_parts(2, 1),
        };
        assert_eq!(
            encode(&hb).as_ref(),
            [13u8, 7, 0, 0, 0, 1, 0, 2, 0, 0, 0, 0, 0],
            "tag + u32 partition + packed LE timestamp"
        );
        let env = Envelope::new(
            ClientId::new(DcId(3), 9),
            ServerId::new(DcId(0), PartitionId(2)),
            msg,
        );
        assert_eq!(
            encode_envelope(&env).as_ref(),
            [
                1u8, 3, 0, 9, 0, 0, 0, // client endpoint
                0, 0, 0, 2, 0, 0, 0, // server endpoint
                1, 5, 0, 4, 3, 2, 1, 0, 0, // message
            ],
        );
    }

    #[test]
    fn v2_roundtrips_every_sample_with_exact_length() {
        for msg in sample_messages() {
            let bytes = wire2::encode(&msg);
            assert_eq!(bytes.len(), wire2::encoded_len(&msg), "{}", msg.kind());
            assert_eq!(wire2::decode(&bytes).unwrap(), msg, "{}", msg.kind());
        }
    }

    #[test]
    fn v2_rejects_truncation_everywhere() {
        for msg in sample_messages() {
            let bytes = wire2::encode(&msg);
            for cut in 0..bytes.len() {
                assert!(
                    wire2::decode(&bytes[..cut]).is_err(),
                    "{} v2 prefix {cut} decoded",
                    msg.kind()
                );
            }
        }
    }

    #[test]
    fn v2_shrinks_background_traffic() {
        // The tentpole claim, on representative background frames
        // (envelope included — that is what the byte accounting counts)
        // with realistic timestamps: varints plus trimmed timestamps
        // must cut at least 30% of v1's bytes.
        let now = Timestamp::from_parts(3_600_000_000, 3); // 1h uptime in µs
        let background = [
            Msg::Heartbeat {
                partition: PartitionId(17),
                watermark: now,
            },
            Msg::GstReport {
                partition: PartitionId(17),
                mins: vec![(DcId(0), now), (DcId(1), now)],
                oldest_active: now,
            },
            Msg::RootGst {
                dc: DcId(2),
                gst: now,
                oldest_active: now,
            },
            Msg::UstBroadcast {
                ust: now,
                s_old: now,
            },
            Msg::Replicate {
                partition: PartitionId(17),
                txs: vec![ReplicatedTx {
                    tx: tx(1, 17, 12_345),
                    ct: now,
                    src: DcId(1),
                    writes: vec![WriteSetEntry::new(Key(831), Value::filled(8, 1))],
                }],
                watermark: now,
            },
        ];
        for msg in background {
            assert!(msg.is_background(), "{} classed background", msg.kind());
            let env = Envelope::new(
                ServerId::new(DcId(0), PartitionId(17)),
                ServerId::new(DcId(1), PartitionId(17)),
                msg,
            );
            let (v1, v2) = (envelope_len(&env), wire2::envelope_len(&env));
            assert!(
                (v2 as f64) <= 0.70 * v1 as f64,
                "{}: v2 {v2}B vs v1 {v1}B — less than a 30% cut",
                env.msg.kind()
            );
        }
    }

    #[test]
    fn v2_handles_u64_boundary_values() {
        // Maximum-width varints everywhere a u64/u48/u32/u16 can ride.
        let max_ts = Timestamp::from_parts((1 << 48) - 1, u16::MAX);
        let msg = Msg::ReadResp {
            tx: tx(u16::MAX, u32::MAX, u64::MAX),
            results: vec![ReadResult {
                key: Key(u64::MAX),
                version: Some(Version::new(
                    Key(u64::MAX),
                    Value::filled(8, 0xff),
                    max_ts,
                    tx(u16::MAX, u32::MAX, u64::MAX),
                    DcId(u16::MAX),
                )),
            }],
        };
        let bytes = wire2::encode(&msg);
        assert_eq!(bytes.len(), wire2::encoded_len(&msg));
        assert_eq!(wire2::decode(&bytes).unwrap(), msg);
        // A physical part beyond 48 bits cannot come off the encoder;
        // the decoder must reject it rather than silently truncate.
        let mut forged = BytesMut::new();
        forged.put_u8(T_UST_BROADCAST);
        crate::varint::put(&mut forged, 1 << 48);
        assert!(wire2::decode(forged.as_ref()).is_err());
    }

    #[test]
    fn auto_dispatch_decodes_both_encodings_and_rejects_others() {
        for msg in sample_messages() {
            let env = Envelope::new(
                ServerId::new(DcId(1), PartitionId(2)),
                ServerId::new(DcId(3), PartitionId(4)),
                msg,
            );
            let v1 = encode_envelope(&env);
            let v2 = wire2::encode_envelope(&env);
            assert_eq!(decode_envelope_auto(&v1).unwrap(), env);
            assert_eq!(decode_envelope_auto(&v2).unwrap(), env);
            assert_ne!(v1, v2, "{} encodings are distinguishable", env.msg.kind());
        }
        assert!(decode_envelope_auto(&[]).is_err());
        assert_eq!(
            decode_envelope_auto(&[9u8, 0, 0]),
            Err(DecodeError::UnknownTag(9))
        );
    }

    #[test]
    fn dispatch_helpers_agree_with_their_codecs() {
        for msg in sample_messages() {
            for wire in [WireFormat::V1, WireFormat::V2] {
                let bytes = encode_with(&msg, wire);
                assert_eq!(bytes.len(), encoded_len_with(&msg, wire));
                assert_eq!(decode_with(&bytes, wire).unwrap(), msg);
                let env = Envelope::new(
                    ClientId::new(DcId(0), 1),
                    ServerId::new(DcId(1), PartitionId(0)),
                    msg.clone(),
                );
                let frame = encode_envelope_with(&env, wire);
                assert_eq!(frame.len(), envelope_len_with(&env, wire));
                assert_eq!(decode_envelope_auto(&frame).unwrap(), env);
            }
        }
    }

    #[test]
    fn metadata_len_is_encoding_derived() {
        // Metadata never scales with payload, under either encoding.
        let mk = |size: usize| Msg::CommitReq {
            tx: tx(0, 0, 1),
            hwt: Timestamp::ZERO,
            writes: vec![WriteSetEntry::new(Key(1), Value::filled(size, 1))],
        };
        for wire in [WireFormat::V1, WireFormat::V2] {
            assert_eq!(
                metadata_len_with(&mk(8), wire),
                metadata_len_with(&mk(4096), wire),
                "{wire}: metadata must not scale with payload"
            );
        }
        // And the v2 split stays exact: tag + metadata + payload must
        // reconstruct the full frame for a value whose varint length
        // prefix is shorter than v1's fixed 4 bytes.
        let msg = mk(8);
        let payload_v2 = wire2::encoded_len(&msg) - 1 - metadata_len_with(&msg, WireFormat::V2);
        assert_eq!(
            payload_v2,
            /* key varint */ 1 + /* len varint */ 1 + /* value */ 8
        );
        // Snapshot metadata stays one (now trimmed) timestamp under v2.
        let start = Msg::StartTxReq {
            client_ust: Timestamp::from_parts(123_456, 7),
        };
        assert_eq!(
            metadata_len_with(&start, WireFormat::V2),
            wire2::encoded_len(&start) - 1
        );
    }

    proptest! {
        #[test]
        fn prop_roundtrip_arbitrary_messages(msg in arb_msg()) {
            let bytes = encode(&msg);
            prop_assert_eq!(bytes.len(), encoded_len(&msg));
            prop_assert_eq!(decode(&bytes).unwrap(), msg);
        }

        #[test]
        fn prop_v2_roundtrip_arbitrary_messages(msg in arb_msg()) {
            let bytes = wire2::encode(&msg);
            prop_assert_eq!(bytes.len(), wire2::encoded_len(&msg));
            prop_assert_eq!(wire2::decode(&bytes).unwrap(), msg);
        }

        #[test]
        fn prop_v2_decode_arbitrary_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = wire2::decode(&bytes);
        }

        #[test]
        fn prop_v2_envelopes_roundtrip_and_auto_dispatch(msg in arb_msg(), d in any::<u16>(), s in any::<u32>()) {
            let env = Envelope::new(
                ClientId::new(DcId(d), s),
                ServerId::new(DcId(d), PartitionId(s)),
                msg,
            );
            let bytes = wire2::encode_envelope(&env);
            prop_assert_eq!(bytes.len(), wire2::envelope_len(&env));
            prop_assert_eq!(wire2::decode_envelope(&bytes).unwrap(), env.clone());
            prop_assert_eq!(decode_envelope_auto(&bytes).unwrap(), env.clone());
            // The same envelope through v1 auto-dispatches too.
            prop_assert_eq!(decode_envelope_auto(&encode_envelope(&env)).unwrap(), env);
        }

        #[test]
        fn prop_auto_dispatch_arbitrary_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = decode_envelope_auto(&bytes);
        }

        #[test]
        fn prop_metadata_len_is_exact_under_both(msg in arb_msg()) {
            // metadata + payload + tag == total, for each encoding.
            for wire in [WireFormat::V1, WireFormat::V2] {
                let meta = metadata_len_with(&msg, wire);
                prop_assert!(meta < encoded_len_with(&msg, wire));
            }
            prop_assert_eq!(metadata_len(&msg), metadata_len_with(&msg, WireFormat::V1));
        }

        #[test]
        fn prop_decode_arbitrary_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = decode(&bytes);
        }

        #[test]
        fn prop_envelopes_roundtrip_arbitrary_messages(msg in arb_msg(), d in any::<u16>(), s in any::<u32>()) {
            let env = Envelope::new(
                ClientId::new(DcId(d), s),
                ServerId::new(DcId(d), PartitionId(s)),
                msg,
            );
            let bytes = encode_envelope(&env);
            prop_assert_eq!(bytes.len(), envelope_len(&env));
            prop_assert_eq!(decode_envelope(&bytes).unwrap(), env);
        }

        #[test]
        fn prop_decode_envelope_arbitrary_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = decode_envelope(&bytes);
        }
    }
}
