//! Protocol messages and wire codec for PaRiS.
//!
//! Every message exchanged by clients and servers in Algorithms 1–4 of the
//! paper is defined here, plus the stabilization-tree messages that
//! implement the UST gossip (§IV-B, "Stabilization protocol") and the
//! garbage-collection aggregate piggybacked on it.
//!
//! The crate also provides two compact hand-rolled binary codecs — the
//! fixed-width **v1** ([`wire`]) and the varint **v2** ([`wire2`]),
//! selected by `paris_types::WireFormat` and negotiated per connection —
//! used to (a) measure the *metadata* cost of each message — reproducing
//! the "1 timestamp" claim of the paper's Table I — and (b) property-test
//! that every message round-trips losslessly under both encodings.
//!
//! # Example
//!
//! ```
//! use paris_proto::{Msg, wire};
//! use paris_types::Timestamp;
//!
//! let msg = Msg::StartTxReq { client_ust: Timestamp::from_parts(42, 1) };
//! let bytes = wire::encode(&msg);
//! assert_eq!(wire::decode(&bytes)?, msg);
//! # Ok::<(), paris_proto::wire::DecodeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ctrl;
mod messages;
pub mod varint;
pub mod wire;
pub mod wire2;

pub use ctrl::{Ctrl, ServerSnapshot, SnapshotCounters};
pub use messages::{DigestReport, Endpoint, Envelope, Msg, ReadResult, ReplicatedTx};
