//! Wire encoding **v2**: the varint codec.
//!
//! Same message set and tag bytes as [`wire`](crate::wire) v1, but every
//! length, count, sequence number, key and id ships as a LEB128 varint
//! ([`varint`]), and timestamps are trimmed: the 48-bit
//! physical part and the 16-bit logical part are encoded as two separate
//! varints instead of one fixed 8-byte word, so the zero-heavy stamps of
//! background traffic (watermarks, GST/UST reports, heartbeats) collapse
//! from 8 bytes to 2–7.
//!
//! Envelope frames open with the [`FRAME_V2`] marker byte, which is
//! disjoint from the v1 endpoint tags (0/1), so a per-frame decoder can
//! dispatch on the first byte and never misparse a v1 frame as v2 or
//! vice versa (see [`wire::decode_envelope_auto`](crate::wire::decode_envelope_auto)).
//!
//! Everything here is exact-length accounted: `encoded_len` and
//! `envelope_len` match the byte-for-byte output of the encoders, which
//! the property tests assert for arbitrary messages.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use paris_types::{
    ClientId, DcId, Key, PartitionId, ServerId, Timestamp, TxId, Value, Version, WriteSetEntry,
};

use crate::messages::{DigestReport, Endpoint, Envelope, Msg, ReadResult, ReplicatedTx};
use crate::varint;
use crate::wire::{
    need, DecodeError, T_COMMIT_REQ, T_COMMIT_RESP, T_COMMIT_TX, T_GOSSIP_DIGEST, T_GST_REPORT,
    T_HEARTBEAT, T_OP_FAILED, T_PREPARE_REQ, T_PREPARE_RESP, T_READ_REQ, T_READ_RESP,
    T_READ_SLICE_REQ, T_READ_SLICE_RESP, T_REPLICATE, T_REPLICATE_BATCH, T_ROOT_GST, T_START_REQ,
    T_START_RESP, T_UST_BROADCAST,
};

/// First byte of a v2 envelope frame. Chosen disjoint from the v1
/// endpoint tags (0 = server, 1 = client) so the first byte of any frame
/// identifies its encoding.
pub const FRAME_V2: u8 = 0xF2;

// ---------------------------------------------------------------- fields

fn put_ts(buf: &mut BytesMut, ts: Timestamp) {
    varint::put(buf, ts.physical_micros());
    varint::put(buf, u64::from(ts.logical()));
}

fn get_ts(buf: &mut Bytes) -> Result<Timestamp, DecodeError> {
    let physical = varint::get(buf)?;
    // The physical part is 48 bits wide; anything larger cannot have
    // been produced by the encoder.
    if physical >= 1 << 48 {
        return Err(DecodeError::BadLength);
    }
    let logical = varint::get_u16(buf)?;
    Ok(Timestamp::from_parts(physical, logical))
}

pub(crate) fn ts_len(ts: Timestamp) -> usize {
    varint::len(ts.physical_micros()) + varint::len(u64::from(ts.logical()))
}

fn put_dc(buf: &mut BytesMut, dc: DcId) {
    varint::put(buf, u64::from(dc.0));
}

fn get_dc(buf: &mut Bytes) -> Result<DcId, DecodeError> {
    Ok(DcId(varint::get_u16(buf)?))
}

fn dc_len(dc: DcId) -> usize {
    varint::len(u64::from(dc.0))
}

fn put_partition(buf: &mut BytesMut, p: PartitionId) {
    varint::put(buf, u64::from(p.0));
}

fn get_partition(buf: &mut Bytes) -> Result<PartitionId, DecodeError> {
    Ok(PartitionId(varint::get_u32(buf)?))
}

fn partition_len(p: PartitionId) -> usize {
    varint::len(u64::from(p.0))
}

fn put_server(buf: &mut BytesMut, s: ServerId) {
    put_dc(buf, s.dc);
    put_partition(buf, s.partition);
}

fn get_server(buf: &mut Bytes) -> Result<ServerId, DecodeError> {
    Ok(ServerId::new(get_dc(buf)?, get_partition(buf)?))
}

fn server_len(s: ServerId) -> usize {
    dc_len(s.dc) + partition_len(s.partition)
}

fn put_tx(buf: &mut BytesMut, tx: TxId) {
    put_dc(buf, tx.dc);
    put_partition(buf, tx.partition);
    varint::put(buf, tx.seq);
}

fn get_tx(buf: &mut Bytes) -> Result<TxId, DecodeError> {
    let dc = get_dc(buf)?;
    let partition = get_partition(buf)?;
    let seq = varint::get(buf)?;
    Ok(TxId { dc, partition, seq })
}

fn tx_len(tx: TxId) -> usize {
    dc_len(tx.dc) + partition_len(tx.partition) + varint::len(tx.seq)
}

fn put_key(buf: &mut BytesMut, k: Key) {
    varint::put(buf, k.0);
}

fn get_key(buf: &mut Bytes) -> Result<Key, DecodeError> {
    Ok(Key(varint::get(buf)?))
}

pub(crate) fn key_len(k: Key) -> usize {
    varint::len(k.0)
}

fn put_len(buf: &mut BytesMut, len: usize) {
    varint::put(buf, len as u64);
}

fn get_len(buf: &mut Bytes) -> Result<usize, DecodeError> {
    usize::try_from(varint::get(buf)?).map_err(|_| DecodeError::BadLength)
}

fn len_len(len: usize) -> usize {
    varint::len(len as u64)
}

fn put_value(buf: &mut BytesMut, v: &Value) {
    put_len(buf, v.len());
    buf.put_slice(v.as_bytes());
}

fn get_value(buf: &mut Bytes) -> Result<Value, DecodeError> {
    let len = get_len(buf)?;
    if buf.remaining() < len {
        return Err(DecodeError::BadLength);
    }
    let mut bytes = vec![0u8; len];
    buf.copy_to_slice(&mut bytes);
    Ok(Value(bytes))
}

pub(crate) fn value_len(v: &Value) -> usize {
    len_len(v.len()) + v.len()
}

fn put_version(buf: &mut BytesMut, v: &Version) {
    put_key(buf, v.key);
    put_value(buf, &v.value);
    put_ts(buf, v.ut);
    put_tx(buf, v.tx);
    put_dc(buf, v.src);
}

fn get_version(buf: &mut Bytes) -> Result<Version, DecodeError> {
    Ok(Version {
        key: get_key(buf)?,
        value: get_value(buf)?,
        ut: get_ts(buf)?,
        tx: get_tx(buf)?,
        src: get_dc(buf)?,
    })
}

fn version_len(v: &Version) -> usize {
    key_len(v.key) + value_len(&v.value) + ts_len(v.ut) + tx_len(v.tx) + dc_len(v.src)
}

fn put_write(buf: &mut BytesMut, w: &WriteSetEntry) {
    put_key(buf, w.key);
    put_value(buf, &w.value);
}

fn get_write(buf: &mut Bytes) -> Result<WriteSetEntry, DecodeError> {
    Ok(WriteSetEntry {
        key: get_key(buf)?,
        value: get_value(buf)?,
    })
}

fn write_len(w: &WriteSetEntry) -> usize {
    key_len(w.key) + value_len(&w.value)
}

fn put_read_result(buf: &mut BytesMut, r: &ReadResult) {
    put_key(buf, r.key);
    match &r.version {
        None => buf.put_u8(0),
        Some(v) => {
            buf.put_u8(1);
            put_version(buf, v);
        }
    }
}

fn get_read_result(buf: &mut Bytes) -> Result<ReadResult, DecodeError> {
    let key = get_key(buf)?;
    need(buf, 1)?;
    let version = match buf.get_u8() {
        0 => None,
        _ => Some(get_version(buf)?),
    };
    Ok(ReadResult { key, version })
}

fn result_len(r: &ReadResult) -> usize {
    key_len(r.key) + 1 + r.version.as_ref().map_or(0, version_len)
}

fn put_replicated_tx(buf: &mut BytesMut, t: &ReplicatedTx) {
    put_tx(buf, t.tx);
    put_ts(buf, t.ct);
    put_dc(buf, t.src);
    put_len(buf, t.writes.len());
    for w in &t.writes {
        put_write(buf, w);
    }
}

fn get_replicated_tx(buf: &mut Bytes) -> Result<ReplicatedTx, DecodeError> {
    let tx = get_tx(buf)?;
    let ct = get_ts(buf)?;
    let src = get_dc(buf)?;
    let m = get_len(buf)?;
    let mut writes = Vec::with_capacity(m.min(1024));
    for _ in 0..m {
        writes.push(get_write(buf)?);
    }
    Ok(ReplicatedTx {
        tx,
        ct,
        src,
        writes,
    })
}

fn replicated_tx_len(t: &ReplicatedTx) -> usize {
    tx_len(t.tx)
        + ts_len(t.ct)
        + dc_len(t.src)
        + len_len(t.writes.len())
        + t.writes.iter().map(write_len).sum::<usize>()
}

fn put_digest_report(buf: &mut BytesMut, r: &DigestReport) {
    put_partition(buf, r.partition);
    put_ts(buf, r.oldest_active);
    put_len(buf, r.mins.len());
    for (dc, ts) in &r.mins {
        put_dc(buf, *dc);
        put_ts(buf, *ts);
    }
}

fn get_digest_report(buf: &mut Bytes) -> Result<DigestReport, DecodeError> {
    let partition = get_partition(buf)?;
    let oldest_active = get_ts(buf)?;
    let n = get_len(buf)?;
    let mut mins = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let dc = get_dc(buf)?;
        let ts = get_ts(buf)?;
        mins.push((dc, ts));
    }
    Ok(DigestReport {
        partition,
        mins,
        oldest_active,
    })
}

fn report_len(r: &DigestReport) -> usize {
    partition_len(r.partition)
        + ts_len(r.oldest_active)
        + len_len(r.mins.len())
        + r.mins
            .iter()
            .map(|(dc, ts)| dc_len(*dc) + ts_len(*ts))
            .sum::<usize>()
}

// -------------------------------------------------------------- messages

/// Encodes a message in the v2 varint encoding.
pub fn encode(msg: &Msg) -> Bytes {
    let mut buf = BytesMut::with_capacity(encoded_len(msg));
    match msg {
        Msg::StartTxReq { client_ust } => {
            buf.put_u8(T_START_REQ);
            put_ts(&mut buf, *client_ust);
        }
        Msg::StartTxResp { tx, snapshot } => {
            buf.put_u8(T_START_RESP);
            put_tx(&mut buf, *tx);
            put_ts(&mut buf, *snapshot);
        }
        Msg::ReadReq { tx, keys } => {
            buf.put_u8(T_READ_REQ);
            put_tx(&mut buf, *tx);
            put_len(&mut buf, keys.len());
            for k in keys {
                put_key(&mut buf, *k);
            }
        }
        Msg::ReadResp { tx, results } => {
            buf.put_u8(T_READ_RESP);
            put_tx(&mut buf, *tx);
            put_len(&mut buf, results.len());
            for r in results {
                put_read_result(&mut buf, r);
            }
        }
        Msg::CommitReq { tx, hwt, writes } => {
            buf.put_u8(T_COMMIT_REQ);
            put_tx(&mut buf, *tx);
            put_ts(&mut buf, *hwt);
            put_len(&mut buf, writes.len());
            for w in writes {
                put_write(&mut buf, w);
            }
        }
        Msg::CommitResp { tx, ct } => {
            buf.put_u8(T_COMMIT_RESP);
            put_tx(&mut buf, *tx);
            put_ts(&mut buf, *ct);
        }
        Msg::ReadSliceReq {
            tx,
            snapshot,
            keys,
            reply_to,
        } => {
            buf.put_u8(T_READ_SLICE_REQ);
            put_tx(&mut buf, *tx);
            put_ts(&mut buf, *snapshot);
            put_server(&mut buf, *reply_to);
            put_len(&mut buf, keys.len());
            for k in keys {
                put_key(&mut buf, *k);
            }
        }
        Msg::ReadSliceResp {
            tx,
            partition,
            results,
        } => {
            buf.put_u8(T_READ_SLICE_RESP);
            put_tx(&mut buf, *tx);
            put_partition(&mut buf, *partition);
            put_len(&mut buf, results.len());
            for r in results {
                put_read_result(&mut buf, r);
            }
        }
        Msg::PrepareReq {
            tx,
            snapshot,
            ht,
            writes,
            reply_to,
            src_dc,
        } => {
            buf.put_u8(T_PREPARE_REQ);
            put_tx(&mut buf, *tx);
            put_ts(&mut buf, *snapshot);
            put_ts(&mut buf, *ht);
            put_server(&mut buf, *reply_to);
            put_dc(&mut buf, *src_dc);
            put_len(&mut buf, writes.len());
            for w in writes {
                put_write(&mut buf, w);
            }
        }
        Msg::PrepareResp {
            tx,
            partition,
            proposed,
        } => {
            buf.put_u8(T_PREPARE_RESP);
            put_tx(&mut buf, *tx);
            put_partition(&mut buf, *partition);
            put_ts(&mut buf, *proposed);
        }
        Msg::CommitTx { tx, ct } => {
            buf.put_u8(T_COMMIT_TX);
            put_tx(&mut buf, *tx);
            put_ts(&mut buf, *ct);
        }
        Msg::Replicate {
            partition,
            txs,
            watermark,
        } => {
            buf.put_u8(T_REPLICATE);
            put_partition(&mut buf, *partition);
            put_ts(&mut buf, *watermark);
            put_len(&mut buf, txs.len());
            for t in txs {
                put_replicated_tx(&mut buf, t);
            }
        }
        Msg::ReplicateBatch {
            partition,
            txs,
            watermark,
            frames,
        } => {
            buf.put_u8(T_REPLICATE_BATCH);
            put_partition(&mut buf, *partition);
            put_ts(&mut buf, *watermark);
            varint::put(&mut buf, u64::from(*frames));
            put_len(&mut buf, txs.len());
            for t in txs {
                put_replicated_tx(&mut buf, t);
            }
        }
        Msg::Heartbeat {
            partition,
            watermark,
        } => {
            buf.put_u8(T_HEARTBEAT);
            put_partition(&mut buf, *partition);
            put_ts(&mut buf, *watermark);
        }
        Msg::GstReport {
            partition,
            mins,
            oldest_active,
        } => {
            buf.put_u8(T_GST_REPORT);
            put_partition(&mut buf, *partition);
            put_ts(&mut buf, *oldest_active);
            put_len(&mut buf, mins.len());
            for (dc, ts) in mins {
                put_dc(&mut buf, *dc);
                put_ts(&mut buf, *ts);
            }
        }
        Msg::RootGst {
            dc,
            gst,
            oldest_active,
        } => {
            buf.put_u8(T_ROOT_GST);
            put_dc(&mut buf, *dc);
            put_ts(&mut buf, *gst);
            put_ts(&mut buf, *oldest_active);
        }
        Msg::UstBroadcast { ust, s_old } => {
            buf.put_u8(T_UST_BROADCAST);
            put_ts(&mut buf, *ust);
            put_ts(&mut buf, *s_old);
        }
        Msg::GossipDigest {
            reports,
            roots,
            ust,
            frames,
        } => {
            buf.put_u8(T_GOSSIP_DIGEST);
            varint::put(&mut buf, u64::from(*frames));
            put_len(&mut buf, reports.len());
            for r in reports {
                put_digest_report(&mut buf, r);
            }
            put_len(&mut buf, roots.len());
            for (dc, gst, oldest) in roots {
                put_dc(&mut buf, *dc);
                put_ts(&mut buf, *gst);
                put_ts(&mut buf, *oldest);
            }
            match ust {
                None => buf.put_u8(0),
                Some((ust, s_old)) => {
                    buf.put_u8(1);
                    put_ts(&mut buf, *ust);
                    put_ts(&mut buf, *s_old);
                }
            }
        }
        Msg::OpFailed { tx } => {
            buf.put_u8(T_OP_FAILED);
            put_tx(&mut buf, *tx);
        }
    }
    debug_assert_eq!(buf.len(), encoded_len(msg), "v2 encoded_len is exact");
    buf.freeze()
}

/// Decodes a v2-encoded message.
///
/// # Errors
///
/// Returns a [`DecodeError`] when the buffer is truncated, carries an
/// unknown tag, or declares impossible lengths or field widths.
pub fn decode(bytes: &[u8]) -> Result<Msg, DecodeError> {
    let mut buf = Bytes::copy_from_slice(bytes);
    need(&buf, 1)?;
    let tag = buf.get_u8();
    let msg = match tag {
        T_START_REQ => Msg::StartTxReq {
            client_ust: get_ts(&mut buf)?,
        },
        T_START_RESP => Msg::StartTxResp {
            tx: get_tx(&mut buf)?,
            snapshot: get_ts(&mut buf)?,
        },
        T_READ_REQ => {
            let tx = get_tx(&mut buf)?;
            let n = get_len(&mut buf)?;
            let mut keys = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                keys.push(get_key(&mut buf)?);
            }
            Msg::ReadReq { tx, keys }
        }
        T_READ_RESP => {
            let tx = get_tx(&mut buf)?;
            let n = get_len(&mut buf)?;
            let mut results = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                results.push(get_read_result(&mut buf)?);
            }
            Msg::ReadResp { tx, results }
        }
        T_COMMIT_REQ => {
            let tx = get_tx(&mut buf)?;
            let hwt = get_ts(&mut buf)?;
            let n = get_len(&mut buf)?;
            let mut writes = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                writes.push(get_write(&mut buf)?);
            }
            Msg::CommitReq { tx, hwt, writes }
        }
        T_COMMIT_RESP => Msg::CommitResp {
            tx: get_tx(&mut buf)?,
            ct: get_ts(&mut buf)?,
        },
        T_READ_SLICE_REQ => {
            let tx = get_tx(&mut buf)?;
            let snapshot = get_ts(&mut buf)?;
            let reply_to = get_server(&mut buf)?;
            let n = get_len(&mut buf)?;
            let mut keys = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                keys.push(get_key(&mut buf)?);
            }
            Msg::ReadSliceReq {
                tx,
                snapshot,
                keys,
                reply_to,
            }
        }
        T_READ_SLICE_RESP => {
            let tx = get_tx(&mut buf)?;
            let partition = get_partition(&mut buf)?;
            let n = get_len(&mut buf)?;
            let mut results = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                results.push(get_read_result(&mut buf)?);
            }
            Msg::ReadSliceResp {
                tx,
                partition,
                results,
            }
        }
        T_PREPARE_REQ => {
            let tx = get_tx(&mut buf)?;
            let snapshot = get_ts(&mut buf)?;
            let ht = get_ts(&mut buf)?;
            let reply_to = get_server(&mut buf)?;
            let src_dc = get_dc(&mut buf)?;
            let n = get_len(&mut buf)?;
            let mut writes = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                writes.push(get_write(&mut buf)?);
            }
            Msg::PrepareReq {
                tx,
                snapshot,
                ht,
                writes,
                reply_to,
                src_dc,
            }
        }
        T_PREPARE_RESP => Msg::PrepareResp {
            tx: get_tx(&mut buf)?,
            partition: get_partition(&mut buf)?,
            proposed: get_ts(&mut buf)?,
        },
        T_COMMIT_TX => Msg::CommitTx {
            tx: get_tx(&mut buf)?,
            ct: get_ts(&mut buf)?,
        },
        T_REPLICATE => {
            let partition = get_partition(&mut buf)?;
            let watermark = get_ts(&mut buf)?;
            let n = get_len(&mut buf)?;
            let mut txs = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                txs.push(get_replicated_tx(&mut buf)?);
            }
            Msg::Replicate {
                partition,
                txs,
                watermark,
            }
        }
        T_REPLICATE_BATCH => {
            let partition = get_partition(&mut buf)?;
            let watermark = get_ts(&mut buf)?;
            let frames = varint::get_u32(&mut buf)?;
            let n = get_len(&mut buf)?;
            let mut txs = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                txs.push(get_replicated_tx(&mut buf)?);
            }
            Msg::ReplicateBatch {
                partition,
                txs,
                watermark,
                frames,
            }
        }
        T_HEARTBEAT => Msg::Heartbeat {
            partition: get_partition(&mut buf)?,
            watermark: get_ts(&mut buf)?,
        },
        T_GST_REPORT => {
            let partition = get_partition(&mut buf)?;
            let oldest_active = get_ts(&mut buf)?;
            let n = get_len(&mut buf)?;
            let mut mins = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let dc = get_dc(&mut buf)?;
                let ts = get_ts(&mut buf)?;
                mins.push((dc, ts));
            }
            Msg::GstReport {
                partition,
                mins,
                oldest_active,
            }
        }
        T_ROOT_GST => Msg::RootGst {
            dc: get_dc(&mut buf)?,
            gst: get_ts(&mut buf)?,
            oldest_active: get_ts(&mut buf)?,
        },
        T_UST_BROADCAST => Msg::UstBroadcast {
            ust: get_ts(&mut buf)?,
            s_old: get_ts(&mut buf)?,
        },
        T_GOSSIP_DIGEST => {
            let frames = varint::get_u32(&mut buf)?;
            let n = get_len(&mut buf)?;
            let mut reports = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                reports.push(get_digest_report(&mut buf)?);
            }
            let n = get_len(&mut buf)?;
            let mut roots = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let dc = get_dc(&mut buf)?;
                let gst = get_ts(&mut buf)?;
                let oldest = get_ts(&mut buf)?;
                roots.push((dc, gst, oldest));
            }
            need(&buf, 1)?;
            let ust = match buf.get_u8() {
                0 => None,
                _ => Some((get_ts(&mut buf)?, get_ts(&mut buf)?)),
            };
            Msg::GossipDigest {
                reports,
                roots,
                ust,
                frames,
            }
        }
        T_OP_FAILED => Msg::OpFailed {
            tx: get_tx(&mut buf)?,
        },
        other => return Err(DecodeError::UnknownTag(other)),
    };
    Ok(msg)
}

/// Exact v2-encoded size of a message, without allocating.
pub fn encoded_len(msg: &Msg) -> usize {
    1 + match msg {
        Msg::StartTxReq { client_ust } => ts_len(*client_ust),
        Msg::StartTxResp { tx, snapshot } => tx_len(*tx) + ts_len(*snapshot),
        Msg::ReadReq { tx, keys } => {
            tx_len(*tx) + len_len(keys.len()) + keys.iter().map(|k| key_len(*k)).sum::<usize>()
        }
        Msg::ReadResp { tx, results } => {
            tx_len(*tx) + len_len(results.len()) + results.iter().map(result_len).sum::<usize>()
        }
        Msg::CommitReq { tx, hwt, writes } => {
            tx_len(*tx)
                + ts_len(*hwt)
                + len_len(writes.len())
                + writes.iter().map(write_len).sum::<usize>()
        }
        Msg::CommitResp { tx, ct } => tx_len(*tx) + ts_len(*ct),
        Msg::ReadSliceReq {
            tx,
            snapshot,
            keys,
            reply_to,
        } => {
            tx_len(*tx)
                + ts_len(*snapshot)
                + server_len(*reply_to)
                + len_len(keys.len())
                + keys.iter().map(|k| key_len(*k)).sum::<usize>()
        }
        Msg::ReadSliceResp {
            tx,
            partition,
            results,
        } => {
            tx_len(*tx)
                + partition_len(*partition)
                + len_len(results.len())
                + results.iter().map(result_len).sum::<usize>()
        }
        Msg::PrepareReq {
            tx,
            snapshot,
            ht,
            writes,
            reply_to,
            src_dc,
        } => {
            tx_len(*tx)
                + ts_len(*snapshot)
                + ts_len(*ht)
                + server_len(*reply_to)
                + dc_len(*src_dc)
                + len_len(writes.len())
                + writes.iter().map(write_len).sum::<usize>()
        }
        Msg::PrepareResp {
            tx,
            partition,
            proposed,
        } => tx_len(*tx) + partition_len(*partition) + ts_len(*proposed),
        Msg::CommitTx { tx, ct } => tx_len(*tx) + ts_len(*ct),
        Msg::Replicate {
            partition,
            txs,
            watermark,
        } => {
            partition_len(*partition)
                + ts_len(*watermark)
                + len_len(txs.len())
                + txs.iter().map(replicated_tx_len).sum::<usize>()
        }
        Msg::ReplicateBatch {
            partition,
            txs,
            watermark,
            frames,
        } => {
            partition_len(*partition)
                + ts_len(*watermark)
                + varint::len(u64::from(*frames))
                + len_len(txs.len())
                + txs.iter().map(replicated_tx_len).sum::<usize>()
        }
        Msg::Heartbeat {
            partition,
            watermark,
        } => partition_len(*partition) + ts_len(*watermark),
        Msg::GossipDigest {
            reports,
            roots,
            ust,
            frames,
        } => {
            varint::len(u64::from(*frames))
                + len_len(reports.len())
                + reports.iter().map(report_len).sum::<usize>()
                + len_len(roots.len())
                + roots
                    .iter()
                    .map(|(dc, gst, oldest)| dc_len(*dc) + ts_len(*gst) + ts_len(*oldest))
                    .sum::<usize>()
                + 1
                + ust.map_or(0, |(u, s)| ts_len(u) + ts_len(s))
        }
        Msg::GstReport {
            partition,
            mins,
            oldest_active,
        } => {
            partition_len(*partition)
                + ts_len(*oldest_active)
                + len_len(mins.len())
                + mins
                    .iter()
                    .map(|(dc, ts)| dc_len(*dc) + ts_len(*ts))
                    .sum::<usize>()
        }
        Msg::RootGst {
            dc,
            gst,
            oldest_active,
        } => dc_len(*dc) + ts_len(*gst) + ts_len(*oldest_active),
        Msg::UstBroadcast { ust, s_old } => ts_len(*ust) + ts_len(*s_old),
        Msg::OpFailed { tx } => tx_len(*tx),
    }
}

// ------------------------------------------------------------- envelopes

fn put_endpoint(buf: &mut BytesMut, ep: Endpoint) {
    match ep {
        Endpoint::Server(s) => {
            buf.put_u8(0);
            put_server(buf, s);
        }
        Endpoint::Client(c) => {
            buf.put_u8(1);
            put_dc(buf, c.dc);
            varint::put(buf, u64::from(c.seq));
        }
    }
}

fn get_endpoint(buf: &mut Bytes) -> Result<Endpoint, DecodeError> {
    need(buf, 1)?;
    match buf.get_u8() {
        0 => Ok(Endpoint::Server(get_server(buf)?)),
        1 => {
            let dc = get_dc(buf)?;
            let seq = varint::get_u32(buf)?;
            Ok(Endpoint::Client(ClientId::new(dc, seq)))
        }
        other => Err(DecodeError::UnknownTag(other)),
    }
}

fn endpoint_len(ep: Endpoint) -> usize {
    1 + match ep {
        Endpoint::Server(s) => server_len(s),
        Endpoint::Client(c) => dc_len(c.dc) + varint::len(u64::from(c.seq)),
    }
}

/// Encodes an envelope as a v2 frame payload: the [`FRAME_V2`] marker,
/// both endpoints, then the message — all varint-coded.
pub fn encode_envelope(env: &Envelope) -> Bytes {
    let mut buf = BytesMut::with_capacity(envelope_len(env));
    buf.put_u8(FRAME_V2);
    put_endpoint(&mut buf, env.src);
    put_endpoint(&mut buf, env.dst);
    buf.put_slice(&encode(&env.msg));
    debug_assert_eq!(buf.len(), envelope_len(env), "v2 envelope_len is exact");
    buf.freeze()
}

/// Decodes a v2 envelope frame (including the leading [`FRAME_V2`]
/// marker).
///
/// # Errors
///
/// Returns a [`DecodeError`] for truncated buffers, a missing marker,
/// unknown endpoint or message tags, or impossible lengths — never
/// panics, whatever the input.
pub fn decode_envelope(bytes: &[u8]) -> Result<Envelope, DecodeError> {
    let mut buf = Bytes::copy_from_slice(bytes);
    need(&buf, 1)?;
    let marker = buf.get_u8();
    if marker != FRAME_V2 {
        return Err(DecodeError::UnknownTag(marker));
    }
    let src = get_endpoint(&mut buf)?;
    let dst = get_endpoint(&mut buf)?;
    let msg = decode(&bytes[bytes.len() - buf.remaining()..])?;
    Ok(Envelope { src, dst, msg })
}

/// Exact v2-encoded size of an envelope, without allocating.
pub fn envelope_len(env: &Envelope) -> usize {
    1 + endpoint_len(env.src) + endpoint_len(env.dst) + encoded_len(&env.msg)
}
