//! Control-plane frames of the socket deployment.
//!
//! A multi-process deployment needs a thin out-of-band channel next to the
//! protocol traffic: the parent process spawns one child per partition
//! server, learns each child's data port, distributes the peer map, pulls
//! run statistics, and asks for graceful shutdown. These frames travel on
//! a dedicated control connection per child, framed exactly like protocol
//! envelopes (length prefix, [`crate::wire::MAX_FRAME_LEN`] bound, magic +
//! version preamble) but in their own tag space so a control frame can
//! never be confused with a [`crate::Msg`].
//!
//! Keeping `Ctrl` separate from `Msg` preserves the protocol codec's
//! paper-facing properties: `encoded_len`/`metadata_len` keep measuring
//! exactly the algorithmic messages of Table I.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use paris_types::{Key, ServerId, Timestamp, VersionOrd};

use crate::wire::{
    get_dc, get_key, get_len, get_server, get_ts, get_tx, need, put_dc, put_key, put_len,
    put_server, put_ts, put_tx, DecodeError,
};

/// The flat protocol/pipeline counter block a child reports alongside its
/// snapshot — a wire-stable mirror of the server's internal statistics
/// (message counts, 2PC roles, replication applies) plus the per-shard
/// commit-pipeline counters, so the parent can aggregate a cluster-wide
/// view without reaching into child processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SnapshotCounters {
    /// Messages handled, any kind.
    pub msgs_handled: u64,
    /// Update transactions committed with this server as coordinator.
    pub txs_coordinated: u64,
    /// Slice reads served.
    pub slice_reads: u64,
    /// Keys returned by slice reads.
    pub keys_read: u64,
    /// Prepares handled.
    pub prepares: u64,
    /// Transactions applied locally (as 2PC participant).
    pub applied_local: u64,
    /// Transactions applied from remote replication.
    pub applied_remote: u64,
    /// Replication batches sent.
    pub replicate_batches: u64,
    /// Heartbeats sent.
    pub heartbeats: u64,
    /// Logical frames folded inside coalesced messages.
    pub coalesced_frames: u64,
    /// Whole coalesced gossip digests served off the server loop by the
    /// read pool (through the published `ReadView`).
    pub pooled_gossip_digests: u64,
    /// Versions removed by GC.
    pub gc_removed: u64,
    /// Prepares staged through the commit pipeline.
    pub staged_prepares: u64,
    /// Replication frames applied through the pipeline's lanes.
    pub lane_batches: u64,
    /// Versions inserted through the pipeline's lanes.
    pub lane_applies: u64,
}

impl SnapshotCounters {
    const WIRE_LEN: usize = 15 * 8;

    fn encode(&self, buf: &mut BytesMut) {
        for v in [
            self.msgs_handled,
            self.txs_coordinated,
            self.slice_reads,
            self.keys_read,
            self.prepares,
            self.applied_local,
            self.applied_remote,
            self.replicate_batches,
            self.heartbeats,
            self.coalesced_frames,
            self.pooled_gossip_digests,
            self.gc_removed,
            self.staged_prepares,
            self.lane_batches,
            self.lane_applies,
        ] {
            buf.put_u64_le(v);
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        need(buf, Self::WIRE_LEN)?;
        Ok(SnapshotCounters {
            msgs_handled: buf.get_u64_le(),
            txs_coordinated: buf.get_u64_le(),
            slice_reads: buf.get_u64_le(),
            keys_read: buf.get_u64_le(),
            prepares: buf.get_u64_le(),
            applied_local: buf.get_u64_le(),
            applied_remote: buf.get_u64_le(),
            replicate_batches: buf.get_u64_le(),
            heartbeats: buf.get_u64_le(),
            coalesced_frames: buf.get_u64_le(),
            pooled_gossip_digests: buf.get_u64_le(),
            gc_removed: buf.get_u64_le(),
            staged_prepares: buf.get_u64_le(),
            lane_batches: buf.get_u64_le(),
            lane_applies: buf.get_u64_le(),
        })
    }
}

/// Everything the parent needs from one child at collection time: the
/// server's stable frontier, its blocking counters, its wire accounting,
/// its protocol/pipeline counter block and the retained version orders of
/// every key — the checker's ground truth and the convergence oracle's
/// input.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServerSnapshot {
    /// The reporting server.
    pub server: Option<ServerId>,
    /// Its current universal stable time.
    pub ust: Timestamp,
    /// BPR reads that blocked on this server.
    pub blocked_reads: u64,
    /// Total microseconds those reads spent blocked.
    pub blocked_micros_total: u64,
    /// Longest single block, in microseconds.
    pub blocked_micros_max: u64,
    /// Wire messages this child's node sent.
    pub net_messages: u64,
    /// Wire bytes this child's node sent.
    pub net_bytes: u64,
    /// Protocol and commit-pipeline counters.
    pub counters: SnapshotCounters,
    /// Per key: every retained version's order stamp, freshest first.
    pub chains: Vec<(Key, Vec<VersionOrd>)>,
}

/// A control-plane frame between the parent process and a child server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ctrl {
    /// Child → parent, first frame after the preamble: which server this
    /// process hosts and which loopback port its data listener bound.
    Hello {
        /// The server this child runs.
        server: ServerId,
        /// The child's data-plane listener port (on 127.0.0.1).
        data_port: u16,
    },
    /// Parent → child: the full peer map. Sent once every child has said
    /// hello, so every listed listener is already accepting.
    Peers {
        /// The parent's data-plane port — every client endpoint routes here.
        client_port: u16,
        /// Data-plane port of every server in the deployment.
        servers: Vec<(ServerId, u16)>,
    },
    /// Parent → child: report your statistics and store contents.
    StatsReq,
    /// Child → parent: the requested snapshot.
    StatsResp(Box<ServerSnapshot>),
    /// Parent → child: shut down gracefully and exit.
    Stop,
}

// Control frame tags (a tag space distinct from the `Msg` codec's).
const C_HELLO: u8 = 1;
const C_PEERS: u8 = 2;
const C_STATS_REQ: u8 = 3;
const C_STATS_RESP: u8 = 4;
const C_STOP: u8 = 5;

/// Encodes a control frame payload.
pub fn encode_ctrl(ctrl: &Ctrl) -> Bytes {
    let mut buf = BytesMut::new();
    match ctrl {
        Ctrl::Hello { server, data_port } => {
            buf.put_u8(C_HELLO);
            put_server(&mut buf, *server);
            buf.put_u16_le(*data_port);
        }
        Ctrl::Peers {
            client_port,
            servers,
        } => {
            buf.put_u8(C_PEERS);
            buf.put_u16_le(*client_port);
            put_len(&mut buf, servers.len());
            for (s, port) in servers {
                put_server(&mut buf, *s);
                buf.put_u16_le(*port);
            }
        }
        Ctrl::StatsReq => buf.put_u8(C_STATS_REQ),
        Ctrl::StatsResp(snap) => {
            buf.put_u8(C_STATS_RESP);
            match snap.server {
                None => buf.put_u8(0),
                Some(s) => {
                    buf.put_u8(1);
                    put_server(&mut buf, s);
                }
            }
            put_ts(&mut buf, snap.ust);
            buf.put_u64_le(snap.blocked_reads);
            buf.put_u64_le(snap.blocked_micros_total);
            buf.put_u64_le(snap.blocked_micros_max);
            buf.put_u64_le(snap.net_messages);
            buf.put_u64_le(snap.net_bytes);
            snap.counters.encode(&mut buf);
            put_len(&mut buf, snap.chains.len());
            for (key, orders) in &snap.chains {
                put_key(&mut buf, *key);
                put_len(&mut buf, orders.len());
                for ord in orders {
                    put_ts(&mut buf, ord.ut);
                    put_tx(&mut buf, ord.tx);
                    put_dc(&mut buf, ord.src);
                }
            }
        }
        Ctrl::Stop => buf.put_u8(C_STOP),
    }
    buf.freeze()
}

/// Decodes a control frame payload.
///
/// # Errors
///
/// Returns a [`DecodeError`] for truncated buffers, unknown tags or
/// impossible lengths — never panics, whatever the input.
pub fn decode_ctrl(bytes: &[u8]) -> Result<Ctrl, DecodeError> {
    let mut buf = Bytes::copy_from_slice(bytes);
    need(&buf, 1)?;
    let tag = buf.get_u8();
    let ctrl = match tag {
        C_HELLO => {
            let server = get_server(&mut buf)?;
            need(&buf, 2)?;
            Ctrl::Hello {
                server,
                data_port: buf.get_u16_le(),
            }
        }
        C_PEERS => {
            need(&buf, 2)?;
            let client_port = buf.get_u16_le();
            let n = get_len(&mut buf)?;
            let mut servers = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let s = get_server(&mut buf)?;
                need(&buf, 2)?;
                servers.push((s, buf.get_u16_le()));
            }
            Ctrl::Peers {
                client_port,
                servers,
            }
        }
        C_STATS_REQ => Ctrl::StatsReq,
        C_STATS_RESP => {
            need(&buf, 1)?;
            let server = match buf.get_u8() {
                0 => None,
                _ => Some(get_server(&mut buf)?),
            };
            let ust = get_ts(&mut buf)?;
            need(&buf, 40)?;
            let blocked_reads = buf.get_u64_le();
            let blocked_micros_total = buf.get_u64_le();
            let blocked_micros_max = buf.get_u64_le();
            let net_messages = buf.get_u64_le();
            let net_bytes = buf.get_u64_le();
            let counters = SnapshotCounters::decode(&mut buf)?;
            let n = get_len(&mut buf)?;
            let mut chains = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let key = get_key(&mut buf)?;
                let m = get_len(&mut buf)?;
                let mut orders = Vec::with_capacity(m.min(1024));
                for _ in 0..m {
                    orders.push(VersionOrd {
                        ut: get_ts(&mut buf)?,
                        tx: get_tx(&mut buf)?,
                        src: get_dc(&mut buf)?,
                    });
                }
                chains.push((key, orders));
            }
            Ctrl::StatsResp(Box::new(ServerSnapshot {
                server,
                ust,
                blocked_reads,
                blocked_micros_total,
                blocked_micros_max,
                net_messages,
                net_bytes,
                counters,
                chains,
            }))
        }
        C_STOP => Ctrl::Stop,
        other => return Err(DecodeError::UnknownTag(other)),
    };
    Ok(ctrl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use paris_types::{DcId, PartitionId, TxId};
    use proptest::prelude::*;

    fn sample_frames() -> Vec<Ctrl> {
        let s = ServerId::new(DcId(1), PartitionId(2));
        vec![
            Ctrl::Hello {
                server: s,
                data_port: 40_001,
            },
            Ctrl::Peers {
                client_port: 40_000,
                servers: vec![
                    (s, 40_001),
                    (ServerId::new(DcId(0), PartitionId(0)), 40_002),
                ],
            },
            Ctrl::StatsReq,
            Ctrl::StatsResp(Box::new(ServerSnapshot {
                server: Some(s),
                ust: Timestamp::from_parts(100, 3),
                blocked_reads: 7,
                blocked_micros_total: 4_200,
                blocked_micros_max: 900,
                net_messages: 12,
                net_bytes: 3_456,
                counters: SnapshotCounters {
                    msgs_handled: 1,
                    txs_coordinated: 2,
                    slice_reads: 3,
                    keys_read: 4,
                    prepares: 5,
                    applied_local: 6,
                    applied_remote: 7,
                    replicate_batches: 8,
                    heartbeats: 9,
                    coalesced_frames: 10,
                    pooled_gossip_digests: 15,
                    gc_removed: 11,
                    staged_prepares: 12,
                    lane_batches: 13,
                    lane_applies: 14,
                },
                chains: vec![
                    (
                        Key(9),
                        vec![
                            VersionOrd {
                                ut: Timestamp::from_parts(90, 1),
                                tx: TxId::new(s, 4),
                                src: DcId(1),
                            },
                            VersionOrd {
                                ut: Timestamp::from_parts(80, 0),
                                tx: TxId::new(s, 2),
                                src: DcId(0),
                            },
                        ],
                    ),
                    (Key(10), vec![]),
                ],
            })),
            Ctrl::StatsResp(Box::default()),
            Ctrl::Stop,
        ]
    }

    #[test]
    fn every_ctrl_frame_roundtrips() {
        for frame in sample_frames() {
            let bytes = encode_ctrl(&frame);
            assert_eq!(decode_ctrl(&bytes).unwrap(), frame, "{frame:?}");
        }
    }

    #[test]
    fn ctrl_decode_rejects_truncation_everywhere() {
        for frame in sample_frames() {
            let bytes = encode_ctrl(&frame);
            for cut in 0..bytes.len() {
                assert!(
                    decode_ctrl(&bytes[..cut]).is_err(),
                    "{frame:?} prefix {cut} decoded"
                );
            }
        }
    }

    #[test]
    fn ctrl_decode_rejects_unknown_tag() {
        assert_eq!(decode_ctrl(&[77u8]), Err(DecodeError::UnknownTag(77)));
    }

    proptest! {
        #[test]
        fn prop_decode_ctrl_arbitrary_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = decode_ctrl(&bytes);
        }
    }
}
