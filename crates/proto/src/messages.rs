//! Message definitions.

use paris_types::{
    ClientId, DcId, Key, PartitionId, ServerId, Timestamp, TxId, Version, WriteSetEntry,
};

/// A network endpoint: either a partition server or a client session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Endpoint {
    /// A partition server `p_n^m`.
    Server(ServerId),
    /// A client session.
    Client(ClientId),
}

impl Endpoint {
    /// The DC this endpoint lives in.
    pub fn dc(&self) -> DcId {
        match self {
            Endpoint::Server(s) => s.dc,
            Endpoint::Client(c) => c.dc,
        }
    }

    /// The server id, if this endpoint is a server.
    pub fn as_server(&self) -> Option<ServerId> {
        match self {
            Endpoint::Server(s) => Some(*s),
            Endpoint::Client(_) => None,
        }
    }

    /// A stable routing key for this endpoint (Fibonacci-mixed packed
    /// identity). The write-path taps key lanes by **source** with it —
    /// per-src FIFO is what keeps commit-after-prepare and
    /// watermark-after-apply ordering intact when write traffic fans out
    /// over pool lanes — and the deterministic simulator uses the same
    /// key, so every backend shards sources identically.
    pub fn route_key(&self) -> u64 {
        let packed = match self {
            Endpoint::Server(s) => (u64::from(s.dc.0) << 32) | u64::from(s.partition.0),
            Endpoint::Client(c) => (1 << 63) | (u64::from(c.dc.0) << 32) | u64::from(c.seq),
        };
        packed.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32
    }
}

impl From<ServerId> for Endpoint {
    fn from(s: ServerId) -> Self {
        Endpoint::Server(s)
    }
}

impl From<ClientId> for Endpoint {
    fn from(c: ClientId) -> Self {
        Endpoint::Client(c)
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Server(s) => write!(f, "{s}"),
            Endpoint::Client(c) => write!(f, "{c}"),
        }
    }
}

/// A message in flight between two endpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Sender.
    pub src: Endpoint,
    /// Receiver.
    pub dst: Endpoint,
    /// Payload.
    pub msg: Msg,
}

impl Envelope {
    /// Creates an envelope.
    pub fn new(src: impl Into<Endpoint>, dst: impl Into<Endpoint>, msg: Msg) -> Self {
        Envelope {
            src: src.into(),
            dst: dst.into(),
            msg,
        }
    }
}

/// Per-key outcome of a slice read: the key may have no version visible in
/// the snapshot (the paper returns only found items; carrying the miss
/// explicitly lets the client distinguish "absent" from "lost").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadResult {
    /// The requested key.
    pub key: Key,
    /// The freshest visible version, if any.
    pub version: Option<Version>,
}

/// One transaction inside a replication batch (Alg. 4 lines 9–16): the
/// updates a replica applied locally and now pushes to its peer replicas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicatedTx {
    /// The transaction id.
    pub tx: TxId,
    /// Its commit timestamp (= update time of every written version).
    pub ct: Timestamp,
    /// Source DC that committed the updates (the coordinator's DC).
    pub src: DcId,
    /// The writes that hit the sending partition.
    pub writes: Vec<WriteSetEntry>,
}

/// One subtree report inside a [`Msg::GossipDigest`]: the freshest
/// `GstReport` a coalescing window saw from one reporting partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigestReport {
    /// Reporting partition.
    pub partition: PartitionId,
    /// `(source DC, min VV entry)` per DC the subtree replicates with.
    pub mins: Vec<(DcId, Timestamp)>,
    /// Oldest active snapshot in the subtree.
    pub oldest_active: Timestamp,
}

/// Every PaRiS protocol message.
///
/// Naming follows the paper's algorithms; the `reply_to` fields make the
/// state machines self-contained (no transport-level correlation needed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    // ------------------------------------------------------ client ↔ server
    /// Client → coordinator: start a transaction, piggybacking the highest
    /// stable snapshot the client has seen (Alg. 1 line 2).
    StartTxReq {
        /// The client's `ust_c`.
        client_ust: Timestamp,
    },
    /// Coordinator → client: transaction id and assigned snapshot
    /// (Alg. 2 line 5).
    StartTxResp {
        /// Fresh transaction id.
        tx: TxId,
        /// Snapshot timestamp visible to the transaction.
        snapshot: Timestamp,
    },
    /// Client → coordinator: read a set of keys within a transaction
    /// (Alg. 1 line 15).
    ReadReq {
        /// Transaction id.
        tx: TxId,
        /// Keys not satisfied from the client-local sets.
        keys: Vec<Key>,
    },
    /// Coordinator → client: the assembled read results (Alg. 2 line 16).
    ReadResp {
        /// Transaction id.
        tx: TxId,
        /// Per-key results.
        results: Vec<ReadResult>,
    },
    /// Client → coordinator: commit the transaction's buffered writes
    /// (Alg. 1 line 27).
    CommitReq {
        /// Transaction id.
        tx: TxId,
        /// Commit time of the client's previous update transaction
        /// (`hwt_c`), so commit timestamps reflect session order.
        hwt: Timestamp,
        /// The buffered write set.
        writes: Vec<WriteSetEntry>,
    },
    /// Coordinator → client: the commit timestamp (Alg. 2 line 29).
    CommitResp {
        /// Transaction id.
        tx: TxId,
        /// Commit timestamp.
        ct: Timestamp,
    },
    /// Coordinator → client: the operation could not be completed and the
    /// transaction is aborted — in this reproduction this happens only
    /// when *no* replica of a target partition is reachable (§III-C:
    /// "If all replicas of one partition cannot be reached by a DC, then
    /// PaRiS cannot complete remote operations that target that
    /// partition, thus leading to unavailability").
    OpFailed {
        /// Transaction id.
        tx: TxId,
    },

    // ------------------------------------------------------ server ↔ server
    /// Coordinator → cohort: read `keys` at `snapshot` (Alg. 2 line 12).
    /// The cohort may be in any DC that replicates the partition.
    ReadSliceReq {
        /// Transaction id (correlation only).
        tx: TxId,
        /// Snapshot to read at.
        snapshot: Timestamp,
        /// Keys owned by the cohort's partition.
        keys: Vec<Key>,
        /// Coordinator to reply to.
        reply_to: ServerId,
    },
    /// Cohort → coordinator: slice results (Alg. 3 line 8).
    ReadSliceResp {
        /// Transaction id.
        tx: TxId,
        /// Partition that served the slice.
        partition: PartitionId,
        /// Per-key results.
        results: Vec<ReadResult>,
    },
    /// Coordinator → cohort: first phase of 2PC (Alg. 2 line 23).
    PrepareReq {
        /// Transaction id.
        tx: TxId,
        /// Transaction snapshot timestamp.
        snapshot: Timestamp,
        /// `ht`: max(snapshot, client's `hwt`) (Alg. 2 line 19).
        ht: Timestamp,
        /// Writes owned by the cohort's partition.
        writes: Vec<WriteSetEntry>,
        /// Coordinator to reply to.
        reply_to: ServerId,
        /// DC of the committing client/coordinator — recorded as the
        /// version's source (`sr`) consistently at every replica.
        src_dc: DcId,
    },
    /// Cohort → coordinator: proposed prepare timestamp (Alg. 3 line 14).
    PrepareResp {
        /// Transaction id.
        tx: TxId,
        /// Partition that prepared.
        partition: PartitionId,
        /// Proposed commit timestamp.
        proposed: Timestamp,
    },
    /// Coordinator → cohort: second phase of 2PC with the final commit
    /// timestamp (Alg. 2 line 27).
    CommitTx {
        /// Transaction id.
        tx: TxId,
        /// Final commit timestamp (max over proposals).
        ct: Timestamp,
    },
    /// Replica → peer replicas of the same partition: transactions applied
    /// locally, in commit-timestamp order, plus the sender's new version
    /// clock (Alg. 4 lines 15 and 23–30).
    Replicate {
        /// Partition the batch belongs to.
        partition: PartitionId,
        /// Applied transactions, ascending by `ct`.
        txs: Vec<ReplicatedTx>,
        /// Sender's version clock after the batch (`ub`): the receiver may
        /// set `VV[sender] = watermark`, as no later update from the sender
        /// can carry a smaller timestamp.
        watermark: Timestamp,
    },
    /// Replica → peer replicas: version-clock heartbeat in the absence of
    /// updates (Alg. 4 line 21).
    Heartbeat {
        /// Partition the heartbeat belongs to.
        partition: PartitionId,
        /// Sender's version clock.
        watermark: Timestamp,
    },
    /// Several replication-class frames ([`Msg::Replicate`] /
    /// [`Msg::Heartbeat`]) on one link, coalesced into a single wire
    /// message by the batching layer. FIFO channels make the fold exact:
    /// transactions stay in ascending `ct` order across the merged frames
    /// and the surviving watermark is the newest one, so the receiver
    /// applies the batch in one pass and advances the sender's
    /// version-vector entry once.
    ReplicateBatch {
        /// Partition the batch belongs to.
        partition: PartitionId,
        /// Applied transactions, ascending by `ct`, concatenated across
        /// the coalesced frames.
        txs: Vec<ReplicatedTx>,
        /// The newest sender version clock among the coalesced frames.
        watermark: Timestamp,
        /// Number of logical frames folded into this message (accounting:
        /// `frames − 1` wire messages were saved).
        frames: u32,
    },

    // ------------------------------------------------- stabilization tree
    /// Tree child → parent (within a DC): the child's aggregated minimum of
    /// version-vector entries per source DC, and the subtree's oldest
    /// active snapshot (for GC).
    GstReport {
        /// Reporting partition.
        partition: PartitionId,
        /// `(source DC, min VV entry)` for every DC the subtree's
        /// partitions replicate with.
        mins: Vec<(DcId, Timestamp)>,
        /// Oldest snapshot of any transaction running in the subtree
        /// (or the reporter's stable time if none).
        oldest_active: Timestamp,
    },
    /// DC root → other DC roots: this DC's Global Stable Time — the minimum
    /// over its GSV entries — plus the DC's oldest active snapshot.
    RootGst {
        /// Originating DC.
        dc: DcId,
        /// min over the DC's Global Stabilization Vector.
        gst: Timestamp,
        /// Oldest active snapshot in the DC.
        oldest_active: Timestamp,
    },
    /// DC root → all servers in the DC (down the tree): the new universal
    /// stable time and GC horizon.
    UstBroadcast {
        /// Universal stable time: every partition in every DC has
        /// installed a snapshot at least this fresh.
        ust: Timestamp,
        /// GC horizon `S_old`: oldest snapshot visible to any running
        /// transaction, system-wide.
        s_old: Timestamp,
    },
    /// Stabilization-class frames ([`Msg::GstReport`] / [`Msg::RootGst`] /
    /// [`Msg::UstBroadcast`]) on one link, coalesced into a digest.
    /// Every component is monotonic and its handler keeps only the
    /// freshest value, so the fold keeps the latest report per partition,
    /// the latest GST per DC and the maximum UST — semantically identical
    /// to delivering the frames individually, in order.
    GossipDigest {
        /// Freshest subtree report per reporting partition (tree edges).
        reports: Vec<DigestReport>,
        /// Freshest `(dc, gst, oldest_active)` per DC (root exchange).
        roots: Vec<(DcId, Timestamp, Timestamp)>,
        /// Freshest `(ust, s_old)` broadcast, if any was coalesced.
        ust: Option<(Timestamp, Timestamp)>,
        /// Number of logical frames folded into this message.
        frames: u32,
    },
}

impl Msg {
    /// Short human-readable tag, for traces and stats.
    pub fn kind(&self) -> &'static str {
        match self {
            Msg::StartTxReq { .. } => "StartTxReq",
            Msg::StartTxResp { .. } => "StartTxResp",
            Msg::ReadReq { .. } => "ReadReq",
            Msg::ReadResp { .. } => "ReadResp",
            Msg::CommitReq { .. } => "CommitReq",
            Msg::CommitResp { .. } => "CommitResp",
            Msg::OpFailed { .. } => "OpFailed",
            Msg::ReadSliceReq { .. } => "ReadSliceReq",
            Msg::ReadSliceResp { .. } => "ReadSliceResp",
            Msg::PrepareReq { .. } => "PrepareReq",
            Msg::PrepareResp { .. } => "PrepareResp",
            Msg::CommitTx { .. } => "CommitTx",
            Msg::Replicate { .. } => "Replicate",
            Msg::Heartbeat { .. } => "Heartbeat",
            Msg::ReplicateBatch { .. } => "ReplicateBatch",
            Msg::GstReport { .. } => "GstReport",
            Msg::RootGst { .. } => "RootGst",
            Msg::UstBroadcast { .. } => "UstBroadcast",
            Msg::GossipDigest { .. } => "GossipDigest",
        }
    }

    /// Whether this is a background (stabilization/replication) message as
    /// opposed to foreground transaction traffic.
    pub fn is_background(&self) -> bool {
        matches!(
            self,
            Msg::Replicate { .. }
                | Msg::Heartbeat { .. }
                | Msg::ReplicateBatch { .. }
                | Msg::GstReport { .. }
                | Msg::RootGst { .. }
                | Msg::UstBroadcast { .. }
                | Msg::GossipDigest { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paris_types::Value;

    #[test]
    fn endpoint_dc_and_conversions() {
        let s = ServerId::new(DcId(1), PartitionId(2));
        let c = ClientId::new(DcId(3), 4);
        assert_eq!(Endpoint::from(s).dc(), DcId(1));
        assert_eq!(Endpoint::from(c).dc(), DcId(3));
        assert_eq!(Endpoint::from(s).as_server(), Some(s));
        assert_eq!(Endpoint::from(c).as_server(), None);
    }

    #[test]
    fn endpoint_display() {
        let s = Endpoint::from(ServerId::new(DcId(1), PartitionId(2)));
        assert_eq!(s.to_string(), "dc1/p2");
        let c = Endpoint::from(ClientId::new(DcId(0), 9));
        assert_eq!(c.to_string(), "c0.9");
    }

    #[test]
    fn envelope_new_converts_endpoints() {
        let s = ServerId::new(DcId(0), PartitionId(0));
        let c = ClientId::new(DcId(0), 1);
        let env = Envelope::new(
            c,
            s,
            Msg::StartTxReq {
                client_ust: Timestamp::ZERO,
            },
        );
        assert_eq!(env.src, Endpoint::Client(c));
        assert_eq!(env.dst, Endpoint::Server(s));
    }

    #[test]
    fn msg_kind_covers_background_classification() {
        let hb = Msg::Heartbeat {
            partition: PartitionId(0),
            watermark: Timestamp::ZERO,
        };
        assert_eq!(hb.kind(), "Heartbeat");
        assert!(hb.is_background());

        let rr = Msg::ReadReq {
            tx: TxId::new(ServerId::new(DcId(0), PartitionId(0)), 1),
            keys: vec![Key(1)],
        };
        assert_eq!(rr.kind(), "ReadReq");
        assert!(!rr.is_background());
    }

    #[test]
    fn replicated_tx_holds_batch_fields() {
        let tx = TxId::new(ServerId::new(DcId(0), PartitionId(0)), 1);
        let r = ReplicatedTx {
            tx,
            ct: Timestamp::from_physical_micros(10),
            src: DcId(0),
            writes: vec![WriteSetEntry::new(Key(1), Value::from("x"))],
        };
        assert_eq!(r.writes.len(), 1);
        assert_eq!(r.ct.physical_micros(), 10);
    }
}
