//! LEB128 unsigned varints for the v2 wire codec.
//!
//! Little-endian base-128: each byte carries 7 value bits, the high bit
//! flags continuation. Values below 128 cost one byte; `u64::MAX` costs
//! the maximum ten. Decoding is strict — a varint longer than ten bytes
//! or with set bits beyond the 64th is rejected rather than wrapped, so
//! every encoded value has exactly one accepted representation length.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::wire::DecodeError;

/// Most bytes a `u64` LEB128 varint can legally occupy.
pub const MAX_VARINT_LEN: usize = 10;

/// Exact encoded size of `v` as a LEB128 varint.
pub const fn len(v: u64) -> usize {
    // ceil(bits/7), with 0 costing one byte.
    match v {
        0 => 1,
        _ => (64 - v.leading_zeros() as usize).div_ceil(7),
    }
}

/// Appends `v` as a LEB128 varint.
pub fn put(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Reads a LEB128 varint.
///
/// # Errors
///
/// [`DecodeError::Truncated`] when the buffer ends mid-varint,
/// [`DecodeError::BadLength`] when the encoding exceeds ten bytes or
/// overflows 64 bits.
pub fn get(buf: &mut Bytes) -> Result<u64, DecodeError> {
    let mut v: u64 = 0;
    for i in 0..MAX_VARINT_LEN {
        if buf.remaining() == 0 {
            return Err(DecodeError::Truncated);
        }
        let byte = buf.get_u8();
        let bits = u64::from(byte & 0x7f);
        // The tenth byte may only carry the single remaining bit.
        if i == MAX_VARINT_LEN - 1 && bits > 1 {
            return Err(DecodeError::BadLength);
        }
        v |= bits << (7 * i);
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(DecodeError::BadLength)
}

/// Reads a varint that must fit `u16` (DC ids, logical clocks).
pub fn get_u16(buf: &mut Bytes) -> Result<u16, DecodeError> {
    u16::try_from(get(buf)?).map_err(|_| DecodeError::BadLength)
}

/// Reads a varint that must fit `u32` (partitions, frame counts, client
/// sequence numbers).
pub fn get_u32(buf: &mut Bytes) -> Result<u32, DecodeError> {
    u32::try_from(get(buf)?).map_err(|_| DecodeError::BadLength)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(v: u64) -> u64 {
        let mut buf = BytesMut::new();
        put(&mut buf, v);
        assert_eq!(buf.len(), len(v), "len({v}) exact");
        let mut bytes = buf.freeze();
        let back = get(&mut bytes).unwrap();
        assert_eq!(bytes.remaining(), 0, "no trailing bytes for {v}");
        back
    }

    #[test]
    fn boundaries_roundtrip_at_exact_width() {
        // Every 7-bit boundary, both sides.
        for shift in 0..9 {
            let edge = 1u64 << (7 * (shift + 1));
            for v in [edge - 1, edge] {
                assert_eq!(roundtrip(v), v);
            }
        }
        assert_eq!(roundtrip(0), 0);
        assert_eq!(roundtrip(u64::MAX), u64::MAX);
        assert_eq!(len(0), 1);
        assert_eq!(len(127), 1);
        assert_eq!(len(128), 2);
        assert_eq!(len(u64::MAX), MAX_VARINT_LEN);
    }

    #[test]
    fn truncated_varint_is_rejected() {
        let mut bytes = Bytes::copy_from_slice(&[0x80, 0x80]);
        assert_eq!(get(&mut bytes), Err(DecodeError::Truncated));
        let mut empty = Bytes::copy_from_slice(&[]);
        assert_eq!(get(&mut empty), Err(DecodeError::Truncated));
    }

    #[test]
    fn overlong_and_overflowing_varints_are_rejected() {
        // Eleven continuation bytes: too long however it ends.
        let mut bytes = Bytes::copy_from_slice(&[0x80; 11]);
        assert_eq!(get(&mut bytes), Err(DecodeError::BadLength));
        // Ten bytes whose last carries more than the one bit left of a
        // u64: would silently drop bits.
        let mut overflow =
            Bytes::copy_from_slice(&[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02]);
        assert_eq!(get(&mut overflow), Err(DecodeError::BadLength));
        // u64::MAX itself (last byte 0x01) stays legal.
        let mut max =
            Bytes::copy_from_slice(&[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01]);
        assert_eq!(get(&mut max), Ok(u64::MAX));
    }

    #[test]
    fn narrow_reads_enforce_their_width() {
        let mut buf = BytesMut::new();
        put(&mut buf, u64::from(u16::MAX) + 1);
        assert_eq!(get_u16(&mut buf.freeze()), Err(DecodeError::BadLength));
        let mut buf = BytesMut::new();
        put(&mut buf, u64::from(u32::MAX) + 1);
        assert_eq!(get_u32(&mut buf.freeze()), Err(DecodeError::BadLength));
        let mut buf = BytesMut::new();
        put(&mut buf, u64::from(u32::MAX));
        assert_eq!(get_u32(&mut buf.freeze()), Ok(u32::MAX));
    }

    proptest! {
        #[test]
        fn prop_roundtrip(v in any::<u64>()) {
            prop_assert_eq!(roundtrip(v), v);
        }

        #[test]
        fn prop_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..16)) {
            let mut b = Bytes::from(bytes);
            let _ = get(&mut b);
        }
    }
}
