//! Microbenchmarks of the PaRiS building blocks: storage, clocks, wire
//! codec, workload generation and the end-to-end protocol path. These
//! quantify the per-operation costs that the paper's "resource
//! efficiency" claims rest on (single-timestamp metadata makes most
//! operations O(1) in M and N).
//!
//! Runs under `cargo bench` with the in-file harness below (`harness =
//! false`; the registry criterion crate is unavailable offline).

use harness::{black_box, BenchmarkId, Criterion};
use paris_clock::{Hlc, PhysicalClock, SimClock};
use paris_core::{ClientSession, Mode, Server, ServerOptions, Topology};
use paris_proto::{wire, Envelope, Msg};
use paris_storage::PartitionStore;
use paris_types::{
    ClientId, ClusterConfig, DcId, Key, PartitionId, ServerId, Timestamp, TxId, Value,
    WriteSetEntry,
};
use paris_workload::stats::Histogram;
use paris_workload::Zipfian;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn bench_storage(c: &mut Criterion) {
    let mut g = c.benchmark_group("storage");
    let tx = TxId::new(ServerId::new(DcId(0), PartitionId(0)), 1);

    g.bench_function("apply", |b| {
        let store = PartitionStore::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            store.apply(
                Key(t % 1_000),
                Value::filled(8, t),
                Timestamp::from_physical_micros(t),
                tx,
                DcId(0),
            )
        });
    });

    for chain_len in [1usize, 16, 256] {
        let store = PartitionStore::new();
        for i in 0..chain_len as u64 {
            store.apply(
                Key(7),
                Value::filled(8, i),
                Timestamp::from_physical_micros(i * 10),
                TxId::new(ServerId::new(DcId(0), PartitionId(0)), i),
                DcId(0),
            );
        }
        g.bench_with_input(
            BenchmarkId::new("read_at_mid_chain", chain_len),
            &chain_len,
            |b, &n| {
                let snap = Timestamp::from_physical_micros(n as u64 * 5);
                b.iter(|| black_box(store.read_at(Key(7), snap)));
            },
        );
    }
    g.finish();
}

fn bench_clock(c: &mut Criterion) {
    let mut g = c.benchmark_group("clock");
    g.bench_function("hlc_now", |b| {
        let clock = SimClock::new();
        clock.advance_to(1_000_000);
        let mut hlc = Hlc::new();
        b.iter(|| black_box(hlc.now(&clock)));
    });
    g.bench_function("hlc_observe", |b| {
        let clock = SimClock::new();
        let mut hlc = Hlc::new();
        let ts = Timestamp::from_parts(123, 4);
        b.iter(|| hlc.observe(&clock, black_box(ts)));
    });
    g.bench_function("sim_clock_read", |b| {
        let clock = SimClock::new();
        b.iter(|| black_box(clock.now_micros()));
    });
    g.finish();
}

fn bench_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire");
    let tx = TxId::new(ServerId::new(DcId(0), PartitionId(0)), 1);
    let prepare = Msg::PrepareReq {
        tx,
        snapshot: Timestamp::from_parts(10, 0),
        ht: Timestamp::from_parts(11, 0),
        writes: (0..5)
            .map(|i| WriteSetEntry::new(Key(i), Value::filled(8, i)))
            .collect(),
        reply_to: ServerId::new(DcId(1), PartitionId(2)),
        src_dc: DcId(0),
    };
    g.bench_function("encode_prepare", |b| {
        b.iter(|| black_box(wire::encode(black_box(&prepare))))
    });
    let bytes = wire::encode(&prepare);
    g.bench_function("decode_prepare", |b| {
        b.iter(|| black_box(wire::decode(black_box(&bytes)).unwrap()))
    });
    g.bench_function("encoded_len_prepare", |b| {
        b.iter(|| black_box(wire::encoded_len(black_box(&prepare))))
    });
    g.finish();
}

fn bench_workload(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload");
    g.bench_function("zipf_sample", |b| {
        let zipf = Zipfian::new(100_000, 0.99);
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(zipf.sample(&mut rng)));
    });
    g.bench_function("histogram_record", |b| {
        let mut h = Histogram::new();
        let mut v = 1u64;
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(v % 1_000_000);
        });
    });
    g.finish();
}

/// The full server fast path: start, slice read, prepare, commit — the
/// per-transaction server-side cost with everything in memory.
fn bench_server_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("server");
    let cfg = ClusterConfig::builder()
        .dcs(3)
        .partitions(3)
        .replication_factor(2)
        .build()
        .unwrap();
    let topo = Arc::new(Topology::new(cfg));
    let clock = SimClock::new();
    clock.advance_to(1_000_000);
    let sid = ServerId::new(DcId(0), PartitionId(0));
    let client = ClientId::new(DcId(0), 0);

    g.bench_function("start_tx", |b| {
        let mut server = Server::new(ServerOptions {
            id: sid,
            topology: Arc::clone(&topo),
            clock: Box::new(clock.clone()),
            mode: Mode::Paris,
            record_events: false,
        });
        let env = Envelope::new(
            client,
            sid,
            Msg::StartTxReq {
                client_ust: Timestamp::ZERO,
            },
        );
        b.iter(|| black_box(server.handle(&env, 0)));
    });

    g.bench_function("read_slice_5_keys", |b| {
        let mut server = Server::new(ServerOptions {
            id: sid,
            topology: Arc::clone(&topo),
            clock: Box::new(clock.clone()),
            mode: Mode::Paris,
            record_events: false,
        });
        let tx = TxId::new(sid, 1);
        for i in 0..100u64 {
            server.handle(
                &Envelope::new(
                    ServerId::new(DcId(1), PartitionId(0)),
                    sid,
                    Msg::Replicate {
                        partition: PartitionId(0),
                        txs: vec![paris_proto::ReplicatedTx {
                            tx: TxId::new(ServerId::new(DcId(1), PartitionId(0)), i),
                            ct: Timestamp::from_physical_micros(i * 10),
                            src: DcId(1),
                            writes: vec![WriteSetEntry::new(Key(i * 3 % 30), Value::filled(8, i))],
                        }],
                        watermark: Timestamp::from_physical_micros(i * 10),
                    },
                ),
                0,
            );
        }
        let env = Envelope::new(
            sid,
            sid,
            Msg::ReadSliceReq {
                tx,
                snapshot: Timestamp::from_physical_micros(500),
                keys: vec![Key(0), Key(3), Key(6), Key(9), Key(12)],
                reply_to: sid,
            },
        );
        b.iter(|| black_box(server.handle(&env, 0)));
    });
    g.finish();
}

/// One complete client transaction against a hand-pumped server pair —
/// the end-to-end protocol cost without any network.
fn bench_end_to_end(c: &mut Criterion) {
    let cfg = ClusterConfig::builder()
        .dcs(3)
        .partitions(3)
        .replication_factor(2)
        .build()
        .unwrap();
    let topo = Arc::new(Topology::new(cfg));
    let clock = SimClock::new();
    clock.advance_to(1_000_000);
    let mut servers: std::collections::HashMap<ServerId, Server> = topo
        .all_servers()
        .into_iter()
        .map(|id| {
            (
                id,
                Server::new(ServerOptions {
                    id,
                    topology: Arc::clone(&topo),
                    clock: Box::new(clock.clone()),
                    mode: Mode::Paris,
                    record_events: false,
                }),
            )
        })
        .collect();
    let cid = ClientId::new(DcId(0), 0);
    let coord = topo.coordinator_for(DcId(0), 0);
    let mut session = ClientSession::new(cid, coord, Mode::Paris);

    c.bench_function("end_to_end_write_tx", |b| {
        b.iter(|| {
            let mut queue: Vec<Envelope> = vec![session.begin().unwrap()];
            let mut result = None;
            while let Some(env) = queue.pop() {
                match env.dst {
                    paris_proto::Endpoint::Server(sid) => {
                        queue.extend(servers.get_mut(&sid).unwrap().handle(&env, 0));
                    }
                    paris_proto::Endpoint::Client(_) => {
                        if let Some(ev) = session.handle(&env) {
                            match ev {
                                paris_core::ClientEvent::Started { .. } => {
                                    session.write(&[(Key(0), Value::filled(8, 1))]).unwrap();
                                    queue.push(session.commit().unwrap());
                                }
                                paris_core::ClientEvent::Committed { ct, .. } => {
                                    result = Some(ct);
                                }
                                paris_core::ClientEvent::ReadDone { .. }
                                | paris_core::ClientEvent::Aborted { .. } => {}
                            }
                        }
                    }
                }
            }
            black_box(result)
        });
    });
}

fn main() {
    let mut c = Criterion::new();
    bench_storage(&mut c);
    bench_clock(&mut c);
    bench_wire(&mut c);
    bench_workload(&mut c);
    bench_server_paths(&mut c);
    bench_end_to_end(&mut c);
}

/// A minimal stand-in for the criterion API surface used above: enough to
/// time each closure and print a ns/iter line per benchmark.
mod harness {
    use std::fmt::Display;
    use std::time::{Duration, Instant};

    pub use std::hint::black_box;

    const WARMUP: Duration = Duration::from_millis(30);
    const MEASURE: Duration = Duration::from_millis(200);

    pub struct Criterion {
        _priv: (),
    }

    impl Criterion {
        pub fn new() -> Self {
            Criterion { _priv: () }
        }

        pub fn benchmark_group(&mut self, name: &str) -> Group {
            Group {
                name: name.to_string(),
            }
        }

        pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
            run_one(name, &mut f);
        }
    }

    pub struct Group {
        name: String,
    }

    impl Group {
        pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
            run_one(&format!("{}/{}", self.name, name), &mut f);
        }

        pub fn bench_with_input<I>(
            &mut self,
            id: BenchmarkId,
            input: &I,
            mut f: impl FnMut(&mut Bencher, &I),
        ) {
            run_one(&format!("{}/{}", self.name, id.0), &mut |b| f(b, input));
        }

        pub fn finish(self) {}
    }

    pub struct BenchmarkId(pub(super) String);

    impl BenchmarkId {
        pub fn new(name: &str, param: impl Display) -> Self {
            BenchmarkId(format!("{name}/{param}"))
        }
    }

    pub struct Bencher {
        iters: u64,
        elapsed: Duration,
        measuring: bool,
    }

    impl Bencher {
        pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
            let budget = if self.measuring { MEASURE } else { WARMUP };
            let start = Instant::now();
            let mut iters = 0u64;
            loop {
                black_box(f());
                iters += 1;
                // Amortize the clock read over batches of iterations.
                if iters.is_multiple_of(64) && start.elapsed() >= budget {
                    break;
                }
            }
            self.iters = iters;
            self.elapsed = start.elapsed();
        }
    }

    fn run_one(name: &str, f: &mut impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
            measuring: false,
        };
        f(&mut b); // warmup
        b.measuring = true;
        f(&mut b);
        let ns_per_iter = b.elapsed.as_nanos() as f64 / b.iters.max(1) as f64;
        println!(
            "{name:<44} {ns_per_iter:>12.1} ns/iter   ({} iters)",
            b.iters
        );
    }
}
