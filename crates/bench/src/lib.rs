//! Shared harness for the figure/table benchmarks.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md` for the index) by running simulated deployments
//! shaped like the paper's AWS testbed, all assembled through the
//! `Paris::builder()` facade. The helpers here centralize deployment
//! construction, load sweeps, and CSV output so the binaries stay
//! declarative.
//!
//! Scale note: the simulator reproduces *shapes* (who wins, by what
//! factor, where knees fall), not the paper's absolute numbers — the
//! service-time model is calibrated so a deployment saturates at a few
//! tens of thousands of transactions per second instead of hundreds
//! (which keeps every figure regenerable in minutes on a laptop). Set
//! `PARIS_BENCH_QUICK=1` to shrink windows further for smoke runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

use std::io::Write;
use std::path::Path;

use paris_net::sim::ServiceModel;
use paris_runtime::{Cluster, ClusterBuilder, Paris, RunReport};
use paris_types::Mode;
use paris_workload::WorkloadConfig;

/// The service model used by all figure benches: the default per-message
/// costs scaled ×50 so that the paper-shaped deployment (90 servers)
/// saturates around 16 KTx/s — large enough for stable statistics, small
/// enough to simulate in seconds.
pub fn bench_service() -> ServiceModel {
    let d = ServiceModel::default();
    let scale = 50;
    ServiceModel {
        start_tx: d.start_tx * scale,
        read_coord: d.read_coord * scale,
        read_slice_base: d.read_slice_base * scale,
        read_per_key: d.read_per_key * scale,
        prepare_base: d.prepare_base * scale,
        prepare_per_key: d.prepare_per_key * scale,
        commit: d.commit * scale,
        apply_per_key: d.apply_per_key * scale,
        replicate_base: d.replicate_base * scale,
        // Stabilization messages are tiny (a handful of timestamps) and
        // their handling is a few comparisons — scaling them with data-path
        // costs would saturate the tree roots, which no real deployment
        // does.
        gossip: d.gossip * 5,
        // Blocking/unblocking a read costs parking, wake-up and re-dispatch
        // work; the paper attributes BPR's throughput gap to exactly this
        // overhead (§V-B), so it is modelled explicitly (charged once to
        // park and once to wake).
        block_overhead: 300,
    }
}

/// Whether quick mode is on (`PARIS_BENCH_QUICK=1`): shorter windows,
/// fewer sweep points.
pub fn quick() -> bool {
    std::env::var("PARIS_BENCH_QUICK").is_ok_and(|v| v == "1")
}

/// Warmup duration in simulated microseconds.
pub fn warmup_micros() -> u64 {
    if quick() {
        300_000
    } else {
        1_000_000
    }
}

/// Measurement window in simulated microseconds.
pub fn window_micros() -> u64 {
    if quick() {
        1_000_000
    } else {
        3_000_000
    }
}

/// Builds a deployment shaped like the paper's: `dcs` DCs on the AWS
/// matrix, `partitions` partitions, replication factor 2 — with the bench
/// service model and a smaller keyspace (zipf construction cost).
pub fn deployment(
    dcs: u16,
    partitions: u32,
    mode: Mode,
    workload: WorkloadConfig,
    clients_per_dc: u32,
    seed: u64,
) -> ClusterBuilder {
    Paris::builder()
        .dcs(dcs)
        .partitions(partitions)
        .replication(2)
        .keys_per_partition(10_000)
        .mode(mode)
        .aws_latencies()
        .jitter(0.05)
        .service(bench_service())
        .clients_per_dc(clients_per_dc)
        .workload(workload)
        .seed(seed)
}

/// The paper's default deployment: 5 DCs, 45 partitions, R=2
/// (18 servers/DC).
pub fn paper_deployment(
    mode: Mode,
    workload: WorkloadConfig,
    clients_per_dc: u32,
    seed: u64,
) -> ClusterBuilder {
    deployment(5, 45, mode, workload, clients_per_dc, seed)
}

/// Runs one deployment and returns its report.
pub fn run_point(builder: ClusterBuilder) -> RunReport {
    let mut sim = builder.build_sim().expect("valid bench deployment");
    sim.run_workload(warmup_micros(), window_micros())
        .expect("simulated workload cannot fail")
}

/// Runs one deployment, lets background protocols settle for a second of
/// simulated time, and returns the report (visibility histograms want the
/// settle so late applies are counted).
pub fn run_settled(builder: ClusterBuilder) -> RunReport {
    let mut sim = builder.build_sim().expect("valid bench deployment");
    sim.run_workload(warmup_micros(), window_micros())
        .expect("simulated workload cannot fail");
    sim.settle(1_000_000);
    sim.report()
}

/// One point of a load sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Client sessions per DC at this point.
    pub clients_per_dc: u32,
    /// The measurement.
    pub report: RunReport,
}

/// Sweeps offered load (client sessions per DC), as the paper does by
/// varying threads per client process; each "dot" in Fig. 1 corresponds
/// to one entry of `clients`.
pub fn load_sweep(
    mode: Mode,
    workload: &WorkloadConfig,
    clients: &[u32],
    mk: impl Fn(Mode, WorkloadConfig, u32) -> ClusterBuilder,
) -> Vec<SweepPoint> {
    clients
        .iter()
        .map(|&c| {
            let report = run_point(mk(mode, workload.clone(), c));
            eprintln!("  [{mode} {c:>4} clients/DC] {}", report.summary());
            SweepPoint {
                clients_per_dc: c,
                report,
            }
        })
        .collect()
}

/// The client-count ladder for throughput/latency curves.
///
/// BPR gets a taller ladder: "because BPR is a blocking protocol, it
/// needs a higher number of concurrent client threads to fully utilize
/// the processing power left idle by blocked reads" (§V-B).
pub fn client_ladder(mode: Mode) -> Vec<u32> {
    match (mode, quick()) {
        (Mode::Paris, false) => vec![2, 4, 8, 16, 32, 64, 128, 192],
        (Mode::Paris, true) => vec![4, 16, 64],
        (Mode::Bpr, false) => vec![64, 128, 256, 512, 768, 1024],
        (Mode::Bpr, true) => vec![64, 256, 512],
    }
}

/// The peak-throughput point of a sweep.
pub fn peak(points: &[SweepPoint]) -> &SweepPoint {
    points
        .iter()
        .max_by(|a, b| {
            a.report
                .ktps()
                .partial_cmp(&b.report.ktps())
                .expect("throughput is finite")
        })
        .expect("sweep is non-empty")
}

/// Writes CSV rows (with header) under `results/` in the working
/// directory.
///
/// # Panics
///
/// Panics on I/O errors — benches should fail loudly.
pub fn write_csv(path: impl AsRef<Path>, header: &str, rows: &[String]) {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(path.as_ref());
    let path = path.as_path();
    let mut f =
        std::fs::File::create(path).unwrap_or_else(|e| panic!("create {}: {e}", path.display()));
    writeln!(f, "{header}").expect("write header");
    for row in rows {
        writeln!(f, "{row}").expect("write row");
    }
    eprintln!("  wrote {}", path.display());
}

/// Prints a boxed section header so figure output is easy to scan.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

/// Writes a machine-readable `BENCH_*.json` document under `results/` in
/// the working directory. The schema every emitter follows:
///
/// ```json
/// {
///   "schema": "paris-bench/v1",
///   "bench": "<name>",
///   "quick": true,
///   "metrics": { "<flat_metric_key>": <number>, ... },
///   "points": [ { ...per-measurement detail... }, ... ]
/// }
/// ```
///
/// `metrics` is the flat key → number map the CI regression gate
/// (`bench_gate`) compares against `bench/baseline.json`; `points` carries
/// the full sweep for humans and plots. The simulator is deterministic, so
/// the same seed produces bit-identical metrics on any machine.
///
/// # Panics
///
/// Panics on I/O errors — benches should fail loudly.
pub fn write_bench_json(file: impl AsRef<Path>, doc: &json::Json) {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(file.as_ref());
    std::fs::write(&path, doc.render()).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    eprintln!("  wrote {}", path.display());
}

/// Wraps a flat metrics map and per-point detail into the
/// `paris-bench/v1` envelope used by every `BENCH_*.json` file.
pub fn bench_doc(bench: &str, metrics: Vec<(String, f64)>, points: Vec<json::Json>) -> json::Json {
    json::Json::obj(vec![
        ("schema", "paris-bench/v1".into()),
        ("bench", bench.into()),
        ("quick", quick().into()),
        (
            "metrics",
            json::Json::Obj(
                metrics
                    .into_iter()
                    .map(|(k, v)| (k, json::Json::Num(v)))
                    .collect(),
            ),
        ),
        ("points", json::Json::Arr(points)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_service_scales_defaults() {
        let b = bench_service();
        let d = ServiceModel::default();
        assert_eq!(b.read_slice_base, d.read_slice_base * 50);
        assert_eq!(b.gossip, d.gossip * 5, "gossip stays cheap");
        assert_eq!(b.block_overhead, 300);
    }

    #[test]
    fn deployment_has_paper_shape() {
        let sim = paper_deployment(Mode::Paris, WorkloadConfig::read_heavy(), 8, 1)
            .build_sim()
            .unwrap();
        assert_eq!(sim.topology().dcs(), 5);
        assert_eq!(sim.topology().partitions(), 45);
        assert_eq!(sim.topology().servers_in_dc(paris_types::DcId(0)).len(), 18);
    }

    #[test]
    fn peak_finds_max_throughput() {
        let mk = |c: u32, ktps: f64| {
            let mut stats = paris_workload::stats::RunStats::new(1_000_000);
            stats.committed = (ktps * 1_000.0) as u64;
            SweepPoint {
                clients_per_dc: c,
                report: RunReport {
                    mode: Mode::Paris,
                    stats,
                    blocking: Default::default(),
                    visibility: None,
                    violations: vec![],
                    net_messages: 0,
                    net_bytes: 0,
                },
            }
        };
        let points = vec![mk(2, 5.0), mk(4, 9.0), mk(8, 7.0)];
        assert_eq!(peak(&points).clients_per_dc, 4);
    }

    #[test]
    fn tiny_simulation_runs_end_to_end() {
        // A minimal smoke run through the bench path (not paper-sized).
        let report = run_point(deployment(
            3,
            6,
            Mode::Paris,
            WorkloadConfig::read_heavy(),
            2,
            5,
        ));
        assert!(report.stats.committed > 0);
    }
}
