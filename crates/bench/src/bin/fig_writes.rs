//! Per-shard commit pipelines: write throughput vs. writer threads.
//!
//! PR "parallel write path" evidence: the commit pipeline splits prepare
//! into an off-loop stage (snapshot UST, shard partitioning) and a cheap
//! loop-owned admit (HLC stamp), and applies replication batches on
//! per-shard lanes — so the write path parallelizes across a worker pool
//! while the HLC and the UST/S_old root state stay loop-owned. Three
//! measurements:
//!
//! 1. **Write-pool ladder (threaded backend).** The paper's write-heavy
//!    mix (50:50 r:w, 10+10 ops) at a fixed offered load sweeps
//!    `write_threads ∈ {1, 2, 4}` with modeled per-prepare/per-apply
//!    occupancy (`write_service_micros`) — occupancy overlaps across pool
//!    lanes, so write throughput must scale with the pool on any host,
//!    while 2PC, replication, the concurrency and the consistency
//!    checking stay fully real.
//! 2. **Loop baseline.** `write_threads = 0` serves the same load on the
//!    server loops, which then charge the same modeled occupancy inline.
//!    Context, not a rung of the ladder: the pool is cluster-wide (N
//!    lanes total) while the loop path spreads occupancy over one loop
//!    per server, so the loop arm sits near where a server-count-sized
//!    pool would — what the pool buys is making write capacity a *knob*
//!    (and, per server process, the socket backend's per-child pools
//!    scale beyond its single loop).
//! 3. **Sim lane ladder.** The deterministic backend's write-lane service
//!    model (same source-keyed routing as the threaded tap) sweeps the
//!    same pool sizes in simulated time — exact, machine-independent
//!    scaling evidence, gated tightly.
//!
//! Every arm also snapshots [`Cluster::stats`] and asserts the commit
//! pipeline actually carried the writes (`staged_prepares`,
//! `lane_batches` > 0) — a silent fallback to a monolithic write path
//! would pass the throughput gates on a big host, but not this.
//!
//! History recording is on and batching is on: every arm must finish with
//! **zero** checker violations.
//!
//! Self-checks (non-zero exit on failure):
//! * thread ladder throughput increases monotonically 1 → 2 → 4 writer
//!   threads (each step ≥ `MIN_STEP_GAIN`);
//! * sim lane ladder gains ≥ `SIM_MIN_TOTAL_GAIN` from 1 → 4 lanes;
//! * the pipeline counters are live in every arm;
//! * zero consistency violations in every arm.
//!
//! Emits `results/fig_writes.csv` and `results/BENCH_writes.json`.

use paris_bench::{bench_doc, json::Json, quick, section, write_bench_json, write_csv};
use paris_runtime::{Cluster, ClusterStats, Paris, RunReport, Tuning};
use paris_types::Mode;
use paris_workload::WorkloadConfig;

/// Writer-thread ladder (the tentpole scales writes across server cores).
const THREADS: [usize; 3] = [1, 2, 4];
/// Modeled per-prepare/per-apply service occupancy (µs): large enough
/// that the write pool — not the transport or the OS scheduler — is the
/// bottleneck.
const WRITE_SERVICE_MICROS: u64 = 250;
/// Offered load: closed-loop sessions per DC, identical in every arm.
const CLIENTS_PER_DC: u32 = 8;
/// Required per-step throughput gain (2 pool lanes should roughly double
/// a pool-bound arm; 1.25× is a conservative floor).
const MIN_STEP_GAIN: f64 = 1.25;
/// Required total 1 → 4 lane gain on the deterministic backend (exact
/// simulated time, so there is no noise).
const SIM_MIN_TOTAL_GAIN: f64 = 1.5;

struct Arm {
    label: String,
    write_threads: usize,
    ktps: f64,
    kwrites_s: f64,
    mean_ms: f64,
    p99_ms: f64,
    staged_prepares: u64,
    lane_batches: u64,
    lane_applies: u64,
    violations: usize,
}

fn arm_of(label: &str, write_threads: usize, report: &RunReport, stats: &ClusterStats) -> Arm {
    let writes_per_tx = WorkloadConfig::write_heavy().writes_per_tx as f64;
    Arm {
        label: label.to_string(),
        write_threads,
        ktps: report.ktps(),
        kwrites_s: report.ktps() * writes_per_tx,
        mean_ms: report.stats.mean_latency_ms(),
        p99_ms: report.stats.percentile_ms(99.0),
        staged_prepares: stats.staged_prepares,
        lane_batches: stats.lane_batches,
        lane_applies: stats.lane_applies,
        violations: report.violations.len(),
    }
}

/// One threaded arm: `write_threads` pool lanes per server (0 = loop
/// baseline), modeled write occupancy, write-heavy mix, checker on.
fn run_thread_arm(label: &str, write_threads: usize, warmup: u64, window: u64) -> Arm {
    let mut cluster = Paris::builder()
        .dcs(2)
        .partitions(6)
        .replication(2)
        .keys_per_partition(64)
        .mode(Mode::Paris)
        .workload(WorkloadConfig::write_heavy())
        .clients_per_dc(CLIENTS_PER_DC)
        .uniform_latency_micros(10_000)
        .latency_scale(0.01) // 100 µs one-way inter-DC; local links are free
        .jitter(0.0)
        .seed(42)
        .batch_size(32) // batching on: coalescing must not disturb the write path
        .record_history(true)
        .tuning(
            Tuning::default()
                .write_threads(write_threads)
                .write_service_micros(WRITE_SERVICE_MICROS),
        )
        .build_thread()
        .expect("valid fig_writes deployment");
    let report = cluster
        .run_workload(warmup, window)
        .expect("threaded workload cannot fail");
    let stats = cluster.stats().expect("in-process stats cannot fail");
    let arm = arm_of(label, write_threads, &report, &stats);
    eprintln!(
        "  [{}] {} | {:.1} Kwrites/s | {} staged, {} lane batches",
        label,
        report.summary(),
        arm.kwrites_s,
        arm.staged_prepares,
        arm.lane_batches
    );
    arm
}

/// One deterministic sim arm of the write-lane ladder: short WAN, heavy
/// modeled write occupancy, so the lanes bound the closed loop.
fn run_sim_arm(lanes: usize, warmup: u64, window: u64) -> Arm {
    let mut sim = Paris::builder()
        .dcs(2)
        .partitions(6)
        .replication(2)
        .keys_per_partition(64)
        .mode(Mode::Paris)
        .workload(WorkloadConfig::write_heavy())
        .clients_per_dc(CLIENTS_PER_DC)
        .uniform_latency_micros(1_000)
        .jitter(0.0)
        .seed(42)
        .batch_size(32)
        .tuning(
            Tuning::default()
                .write_threads(lanes)
                .write_service_micros(2_000),
        )
        .record_history(true)
        .build_sim()
        .expect("valid sim deployment");
    let report = sim
        .run_workload(warmup, window)
        .expect("sim workload cannot fail");
    let stats = sim.stats().expect("in-process stats cannot fail");
    let arm = arm_of(&format!("sim {lanes} lane(s)"), lanes, &report, &stats);
    eprintln!("  [{}] {}", arm.label, report.summary());
    arm
}

fn main() {
    section("Per-shard commit pipelines: write-pool scaling, loop baseline, sim write lanes");
    // Wall-clock windows: the threaded backend measures real time.
    let (warmup, window) = if quick() {
        (200_000, 1_200_000)
    } else {
        (500_000, 4_000_000)
    };

    let mut rows = Vec::new();
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let mut points: Vec<Json> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    let mut violations_total = 0u64;

    let mut record =
        |arm: &Arm, rows: &mut Vec<String>, points: &mut Vec<Json>, failures: &mut Vec<String>| {
            println!(
                "  {:>16} {:>14.2} {:>14.1} {:>11.2} {:>10.2} {:>10} {:>12} {:>11}",
                arm.label,
                arm.ktps,
                arm.kwrites_s,
                arm.mean_ms,
                arm.p99_ms,
                arm.staged_prepares,
                arm.lane_batches,
                arm.violations
            );
            rows.push(format!(
                "{},{},{:.3},{:.1},{:.3},{:.3},{},{},{},{}",
                arm.label.replace(',', ";"),
                arm.write_threads,
                arm.ktps,
                arm.kwrites_s,
                arm.mean_ms,
                arm.p99_ms,
                arm.staged_prepares,
                arm.lane_batches,
                arm.lane_applies,
                arm.violations
            ));
            points.push(Json::obj(vec![
                ("arm", arm.label.clone().into()),
                ("write_threads", (arm.write_threads as u64).into()),
                ("ktps", arm.ktps.into()),
                ("kwrites_s", arm.kwrites_s.into()),
                ("mean_ms", arm.mean_ms.into()),
                ("p99_ms", arm.p99_ms.into()),
                ("staged_prepares", arm.staged_prepares.into()),
                ("lane_batches", arm.lane_batches.into()),
                ("lane_applies", arm.lane_applies.into()),
                ("violations", (arm.violations as u64).into()),
            ]));
            violations_total += arm.violations as u64;
            if arm.violations != 0 {
                failures.push(format!(
                    "{}: {} consistency violations",
                    arm.label, arm.violations
                ));
            }
            // The pipeline must actually carry the writes: every backend
            // routes prepare staging and replication applies through the
            // same CommitPipeline halves, pooled or loop-driven.
            if arm.staged_prepares == 0 || arm.lane_batches == 0 {
                failures.push(format!(
                    "{}: commit pipeline is not carrying the write path \
                 (staged_prepares {}, lane_batches {})",
                    arm.label, arm.staged_prepares, arm.lane_batches
                ));
            }
        };

    println!(
        "\n  {:>16} {:>14} {:>14} {:>11} {:>10} {:>10} {:>12} {:>11}",
        "arm",
        "tput (KTx/s)",
        "Kwrites/s",
        "mean (ms)",
        "p99 (ms)",
        "staged",
        "lane batch",
        "violations"
    );

    // 1. Writer-pool ladder (service-occupancy bound).
    let ladder: Vec<Arm> = THREADS
        .iter()
        .map(|&n| {
            run_thread_arm(
                match n {
                    1 => "pool 1",
                    2 => "pool 2",
                    _ => "pool 4",
                },
                n,
                warmup,
                window,
            )
        })
        .collect();
    for arm in &ladder {
        record(arm, &mut rows, &mut points, &mut failures);
        // Deliberately no "ktps" substring: wall-clock thread throughput
        // is machine-dependent, so bench_gate treats the absolute numbers
        // as informational and gates only the ratios below.
        metrics.push((
            format!("writes_t{}_tx_s", arm.write_threads),
            arm.ktps * 1_000.0,
        ));
    }
    for pair in ladder.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        let gain = b.ktps / a.ktps.max(1e-9);
        println!(
            "  {} → {} writer threads: {:.2}× throughput",
            a.write_threads, b.write_threads, gain
        );
        if gain < MIN_STEP_GAIN {
            failures.push(format!(
                "{} → {} writer threads gained only {gain:.2}× (< {MIN_STEP_GAIN}×): \
                 write throughput must increase monotonically with the pool",
                a.write_threads, b.write_threads
            ));
        }
    }
    let speedup = ladder.last().unwrap().ktps / ladder.first().unwrap().ktps.max(1e-9);
    println!("  1 → 4 writer threads: {speedup:.2}× write throughput");
    metrics.push(("writes_speedup_4v1".into(), speedup));

    // 2. Loop baseline: the same modeled occupancy charged on the server
    //    loops themselves (write_threads = 0) — context for the ladder
    //    (one loop per server ≈ a server-count-sized pool) and a
    //    regression canary for the loop write path.
    let loop_arm = run_thread_arm("loop (pool 0)", 0, warmup, window);
    record(&loop_arm, &mut rows, &mut points, &mut failures);
    metrics.push(("writes_loop_tx_s".into(), loop_arm.ktps * 1_000.0));

    // 3. Deterministic write-lane ladder on the simulated backend.
    println!();
    let (sim_warmup, sim_window) = (300_000, 2_000_000); // simulated time: always cheap
    let sim_ladder: Vec<Arm> = THREADS
        .iter()
        .map(|&n| run_sim_arm(n, sim_warmup, sim_window))
        .collect();
    for arm in &sim_ladder {
        record(arm, &mut rows, &mut points, &mut failures);
    }
    let sim_speedup = sim_ladder.last().unwrap().ktps / sim_ladder.first().unwrap().ktps.max(1e-9);
    println!("  sim 1 → 4 write lanes: {sim_speedup:.2}× throughput (exact simulated time)");
    metrics.push(("writes_sim_speedup_4v1".into(), sim_speedup));
    if sim_speedup < SIM_MIN_TOTAL_GAIN {
        failures.push(format!(
            "sim write lanes gained only {sim_speedup:.2}× from 1 → 4 \
             (< {SIM_MIN_TOTAL_GAIN}×): the write-lane service model stopped scaling"
        ));
    }

    metrics.push(("writes_violations_total".into(), violations_total as f64));

    write_csv(
        "fig_writes.csv",
        "arm,write_threads,ktps,kwrites_s,mean_ms,p99_ms,staged_prepares,lane_batches,lane_applies,violations",
        &rows,
    );
    write_bench_json(
        "BENCH_writes.json",
        &bench_doc("fig_writes", metrics, points),
    );

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("\n  (prepares are staged and replication batches applied off the server loop by");
    println!("   source-keyed pool lanes; the HLC stamp and the UST root state stay loop-owned —");
    println!("   the per-shard commit pipeline claim, measured end to end)");
}
