//! §V-B "Blocking time": the average blocking time of the read phase of a
//! transaction in BPR at peak throughput.
//!
//! Paper result: 29 ms for the read-dominated workload and 41 ms for the
//! write-dominated workload. PaRiS blocks zero reads by construction.

use paris_bench::{client_ladder, paper_deployment, run_point, section, write_csv};
use paris_types::Mode;
use paris_workload::WorkloadConfig;

fn main() {
    section("Blocking time of BPR reads at peak throughput (§V-B)");
    let mut rows = Vec::new();
    for (label, workload, paper_ms) in [
        ("95:5", WorkloadConfig::read_heavy(), 29.0),
        ("50:50", WorkloadConfig::write_heavy(), 41.0),
    ] {
        // Find BPR's peak-throughput point, then report its blocking stats.
        let mut best: Option<(f64, paris_runtime::BlockingStats, u64)> = None;
        for &clients in &client_ladder(Mode::Bpr) {
            let report = run_point(paper_deployment(Mode::Bpr, workload.clone(), clients, 42));
            eprintln!("  [{label} {clients:>4} clients/DC] {}", report.summary());
            let better = best.as_ref().is_none_or(|(k, _, _)| report.ktps() > *k);
            if better {
                best = Some((
                    report.ktps(),
                    report.blocking,
                    report.blocking.blocked_reads,
                ));
            }
        }
        let (ktps, blocking, _) = best.expect("sweep non-empty");
        println!(
            "\n  {label}: at peak {:.1} KTx/s — {} blocked reads, mean block {:.1} ms, max {:.1} ms",
            ktps,
            blocking.blocked_reads,
            blocking.mean_ms(),
            blocking.max_micros as f64 / 1_000.0,
        );
        println!("  (paper: {paper_ms} ms average at top throughput)");
        rows.push(format!(
            "{label},{ktps:.3},{},{:.3},{:.3}",
            blocking.blocked_reads,
            blocking.mean_ms(),
            blocking.max_micros as f64 / 1_000.0
        ));

        // PaRiS control: zero blocked reads.
        let report = run_point(paper_deployment(Mode::Paris, workload.clone(), 32, 42));
        assert_eq!(
            report.blocking.blocked_reads, 0,
            "PaRiS must never block a read"
        );
        println!("  PaRiS control: 0 blocked reads ✓");
    }
    write_csv(
        "blocking.csv",
        "workload,peak_ktps,blocked_reads,mean_block_ms,max_block_ms",
        &rows,
    );
}
