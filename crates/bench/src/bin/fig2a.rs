//! Figure 2a: PaRiS throughput when varying the number of machines per DC
//! (6, 12, 18) at 3 and 5 DCs.
//!
//! Paper result: "the ideal improvement of 3x when scaling from 6 to 18
//! machines/DC" — near-linear horizontal scalability. Machines per DC
//! maps to partitions via N = M·K/R (each server hosts one partition
//! replica, R = 2).
//!
//! Besides the CSV, emits `results/BENCH_fig2a.json`. The simulator is
//! deterministic, so the per-point `ktps` metrics are bit-stable and feed
//! the CI perf-regression gate (`bench_gate`); the 18-vs-6 scaling ratios
//! ride along as informational.

use paris_bench::{
    bench_doc, deployment, json::Json, paper_deployment, quick, run_point, section,
    write_bench_json, write_csv,
};
use paris_types::Mode;
use paris_workload::WorkloadConfig;

fn main() {
    section("Fig 2a: throughput vs machines per DC (PaRiS)");
    let machines = [6u32, 12, 18];
    let dcs = [3u16, 5];
    // Saturating load, proportional to the deployment size.
    let clients_per_machine = if quick() { 4 } else { 8 };

    let mut rows = Vec::new();
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let mut points: Vec<Json> = Vec::new();
    println!(
        "\n  {:>4} {:>8} {:>14} {:>12}",
        "DCs", "M/DC", "tput (KTx/s)", "scale vs 6"
    );
    for &m in &dcs {
        let mut base = None;
        let mut last_scale = 1.0;
        for &k in &machines {
            let partitions = u32::from(m) * k / 2; // N = M·K/R
            let config = if m == 5 && partitions == 45 {
                paper_deployment(
                    Mode::Paris,
                    WorkloadConfig::read_heavy(),
                    clients_per_machine * k,
                    42,
                )
            } else {
                deployment(
                    m,
                    partitions,
                    Mode::Paris,
                    WorkloadConfig::read_heavy(),
                    clients_per_machine * k,
                    42,
                )
            };
            let report = run_point(config);
            let ktps = report.ktps();
            let scale = match base {
                None => {
                    base = Some(ktps);
                    1.0
                }
                Some(b) => ktps / b,
            };
            last_scale = scale;
            println!("  {m:>4} {k:>8} {ktps:>14.1} {scale:>11.2}x");
            rows.push(format!("{m},{k},{ktps:.3},{scale:.3}"));
            metrics.push((format!("fig2a_{m}dc_{k}m_ktps"), ktps));
            points.push(Json::obj(vec![
                ("figure", "fig2a".into()),
                ("dcs", u64::from(m).into()),
                ("machines_per_dc", u64::from(k).into()),
                ("ktps", ktps.into()),
                ("scale_vs_6", scale.into()),
                ("net_messages", report.net_messages.into()),
                ("net_bytes", report.net_bytes.into()),
            ]));
        }
        metrics.push((format!("fig2a_{m}dc_scale_18v6"), last_scale));
    }
    write_csv("fig2a.csv", "dcs,machines_per_dc,ktps,scale_vs_6", &rows);
    write_bench_json("BENCH_fig2a.json", &bench_doc("fig2a", metrics, points));
    println!("\n  (paper: ideal 3x from 6 to 18 machines/DC at both 3 and 5 DCs)");
}
