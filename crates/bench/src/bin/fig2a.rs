//! Figure 2a: PaRiS throughput when varying the number of machines per DC
//! (6, 12, 18) at 3 and 5 DCs.
//!
//! Paper result: "the ideal improvement of 3x when scaling from 6 to 18
//! machines/DC" — near-linear horizontal scalability. Machines per DC
//! maps to partitions via N = M·K/R (each server hosts one partition
//! replica, R = 2).

use paris_bench::deployment;
use paris_bench::{paper_deployment, quick, run_point, section, write_csv};
use paris_types::Mode;
use paris_workload::WorkloadConfig;

fn main() {
    section("Fig 2a: throughput vs machines per DC (PaRiS)");
    let machines = [6u32, 12, 18];
    let dcs = [3u16, 5];
    // Saturating load, proportional to the deployment size.
    let clients_per_machine = if quick() { 4 } else { 8 };

    let mut rows = Vec::new();
    println!(
        "\n  {:>4} {:>8} {:>14} {:>12}",
        "DCs", "M/DC", "tput (KTx/s)", "scale vs 6"
    );
    for &m in &dcs {
        let mut base = None;
        for &k in &machines {
            let partitions = u32::from(m) * k / 2; // N = M·K/R
            let config = if m == 5 && partitions == 45 {
                paper_deployment(
                    Mode::Paris,
                    WorkloadConfig::read_heavy(),
                    clients_per_machine * k,
                    42,
                )
            } else {
                deployment(
                    m,
                    partitions,
                    Mode::Paris,
                    WorkloadConfig::read_heavy(),
                    clients_per_machine * k,
                    42,
                )
            };
            let report = run_point(config);
            let ktps = report.ktps();
            let scale = match base {
                None => {
                    base = Some(ktps);
                    1.0
                }
                Some(b) => ktps / b,
            };
            println!("  {m:>4} {k:>8} {ktps:>14.1} {scale:>11.2}x");
            rows.push(format!("{m},{k},{ktps:.3},{scale:.3}"));
        }
    }
    write_csv("fig2a.csv", "dcs,machines_per_dc,ktps,scale_vs_6", &rows);
    println!("\n  (paper: ideal 3x from 6 to 18 machines/DC at both 3 and 5 DCs)");
}
