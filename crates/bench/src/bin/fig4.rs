//! Figure 4: update-visibility latency — PaRiS vs BPR, and the batching
//! staleness characterization.
//!
//! The visibility latency of an update X in DC_i is the wall-clock delta
//! between X becoming visible in DC_i and X's commit in its origin DC.
//! Paper result: PaRiS has *higher* visibility latency than BPR (~200 ms
//! worse in the tail) — the deliberate freshness cost of reading from the
//! universally-stable snapshot instead of blocking.
//!
//! This bench also answers the question that kept batching off by
//! default through PR 2: **what does coalescing cost in freshness?**
//! A second sweep runs PaRiS with batching off, with a ladder of fixed
//! flush deadlines, and with the adaptive (default) policy, recording
//! per-arm visibility percentiles and network message counts — the
//! visibility/freshness trade-off as data instead of a footnote.
//!
//! Self-checks (non-zero exit on failure) — the bars that justify
//! adaptive batching as the default:
//!
//! * the adaptive arm keeps ≥ 25% total message reduction vs batching
//!   off (the `ablation_batch` invariant, re-proven at fig4's load);
//! * the adaptive arm's p90 visibility inflation over batching-off stays
//!   within the configured staleness ceiling (`max_flush`);
//! * zero consistency violations in every arm (history checker on).
//!
//! Emits `results/fig4.csv` (CDFs), `results/fig4_batching.csv` (sweep
//! summary) and `results/BENCH_fig4.json` (gated by `bench_gate`).

use paris_bench::{
    bench_doc, json::Json, paper_deployment, run_settled, section, write_bench_json, write_csv,
};
use paris_runtime::{ClusterBuilder, RunReport};
use paris_types::Mode;
use paris_workload::stats::Histogram;
use paris_workload::WorkloadConfig;

/// Adaptive flush bounds of the swept arm — the same values the builder
/// derives for the paper's 5 ms replication tick, spelled out because
/// `ADAPTIVE_MAX_MICROS` doubles as the self-check's staleness bound:
/// the controller settles near two inter-arrival gaps per hop, and the
/// ceiling budgets the whole multi-hop visibility pipeline.
const ADAPTIVE_MIN_MICROS: u64 = 625;
const ADAPTIVE_MAX_MICROS: u64 = 30_000;
/// Fixed flush-deadline ladder (µs).
fn fixed_ladder() -> &'static [u64] {
    if paris_bench::quick() {
        &[2_000, 10_000]
    } else {
        &[2_000, 5_000, 10_000, 20_000]
    }
}
/// Required total message reduction of the adaptive arm at equal load.
const MIN_REDUCTION: f64 = 0.25;
const CLIENTS_PER_DC: u32 = 16;

/// One measured arm of the sweep.
struct Arm {
    slug: String,
    label: String,
    visibility: Histogram,
    net_messages: u64,
    ktps: f64,
    violations: usize,
}

fn measure(
    slug: &str,
    label: &str,
    configure: impl FnOnce(ClusterBuilder) -> ClusterBuilder,
) -> Arm {
    eprintln!("running {label}...");
    let builder = configure(
        paper_deployment(
            Mode::Paris,
            WorkloadConfig::read_heavy(),
            CLIENTS_PER_DC,
            42,
        )
        .record_events(true)
        .record_history(true),
    );
    let report: RunReport = run_settled(builder);
    let ktps = report.ktps();
    Arm {
        slug: slug.to_string(),
        label: label.to_string(),
        net_messages: report.net_messages,
        ktps,
        violations: report.violations.len(),
        visibility: report.visibility.expect("events recorded"),
    }
}

fn vis_ms(hist: &Histogram, p: f64) -> f64 {
    hist.percentile(p) as f64 / 1_000.0
}

fn print_arm(label: &str, hist: &Histogram) {
    println!(
        "\n  {label}: {} samples — p50 {:.1} ms, p90 {:.1} ms, p99 {:.1} ms, max {:.1} ms",
        hist.count(),
        vis_ms(hist, 50.0),
        vis_ms(hist, 90.0),
        vis_ms(hist, 99.0),
        hist.max() as f64 / 1_000.0,
    );
}

fn main() {
    section("Fig 4: update visibility latency CDF (PaRiS vs BPR)");
    let mut cdf_rows = Vec::new();
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let mut points: Vec<Json> = Vec::new();
    let mut failures: Vec<String> = Vec::new();

    // The BPR side of the paper's comparison, batching off so the
    // protocol is measured bare.
    eprintln!("running BPR (batching off)...");
    let bpr = {
        let builder = paper_deployment(Mode::Bpr, WorkloadConfig::read_heavy(), CLIENTS_PER_DC, 42)
            .no_batching()
            .record_events(true);
        run_settled(builder).visibility.expect("events recorded")
    };
    // The PaRiS side doubles as the sweep's "off" arm — one simulation,
    // used by both figures (it additionally records history so the
    // sweep's checker bar covers it).
    let off_arm = measure("off", "PaRiS batching off", |b| b.no_batching());
    let paris = &off_arm.visibility;
    for (label, hist) in [("BPR", &bpr), ("PaRiS", paris)] {
        print_arm(label, hist);
        println!("  CDF (visibility ms : cumulative fraction):");
        for p in [10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0] {
            println!("    p{p:<4} {:>10.1} ms", vis_ms(hist, p));
        }
        for (v, f) in hist.cdf() {
            cdf_rows.push(format!("{label},{v},{f:.6}"));
        }
    }
    for (p, name) in [(50.0, "p50"), (90.0, "p90"), (99.0, "p99")] {
        metrics.push((format!("fig4_bpr_{name}_vis_ms"), vis_ms(&bpr, p)));
    }
    println!(
        "\n  PaRiS p90 is {:.0} ms higher than BPR p90 (paper: ~200 ms difference in the tail)",
        vis_ms(paris, 90.0) - vis_ms(&bpr, 90.0)
    );
    assert!(
        paris.percentile(50.0) > bpr.percentile(50.0),
        "PaRiS must trade freshness for non-blocking reads"
    );

    // The batching sweep: what coalescing costs in freshness, PaRiS only
    // (the protocol whose visibility the paper characterizes).
    section("Fig 4b: batching staleness sweep (off / fixed ladder / adaptive)");
    let mut arms: Vec<Arm> = vec![off_arm];
    for &flush in fixed_ladder() {
        arms.push(measure(
            &format!("fixed_{}ms", flush / 1_000),
            &format!("PaRiS fixed ∆={} ms", flush as f64 / 1_000.0),
            move |b| b.batch_size(64).flush_interval_micros(flush),
        ));
    }
    arms.push(measure("adaptive", "PaRiS adaptive (default)", |b| {
        b.batch_size(64)
            .adaptive_flush(ADAPTIVE_MIN_MICROS, ADAPTIVE_MAX_MICROS)
    }));

    println!(
        "\n  {:<14} {:>10} {:>10} {:>10} {:>12} {:>10} {:>11}",
        "arm", "p50 (ms)", "p90 (ms)", "p99 (ms)", "net msgs", "Δmsgs", "violations"
    );
    let off_msgs = arms[0].net_messages;
    let off_p90 = arms[0].visibility.percentile(90.0);
    let mut sweep_rows = Vec::new();
    for arm in &arms {
        let reduction = 1.0 - arm.net_messages as f64 / off_msgs.max(1) as f64;
        println!(
            "  {:<14} {:>10.1} {:>10.1} {:>10.1} {:>12} {:>9.1}% {:>11}",
            arm.slug,
            vis_ms(&arm.visibility, 50.0),
            vis_ms(&arm.visibility, 90.0),
            vis_ms(&arm.visibility, 99.0),
            arm.net_messages,
            reduction * 100.0,
            arm.violations,
        );
        sweep_rows.push(format!(
            "{},{:.3},{:.3},{:.3},{},{:.3},{}",
            arm.slug,
            vis_ms(&arm.visibility, 50.0),
            vis_ms(&arm.visibility, 90.0),
            vis_ms(&arm.visibility, 99.0),
            arm.net_messages,
            arm.ktps,
            arm.violations,
        ));
        for (p, name) in [(50.0, "p50"), (90.0, "p90"), (99.0, "p99")] {
            metrics.push((
                format!("fig4_{}_{name}_vis_ms", arm.slug),
                vis_ms(&arm.visibility, p),
            ));
        }
        metrics.push((
            format!("fig4_{}_net_messages", arm.slug),
            arm.net_messages as f64,
        ));
        points.push(Json::obj(vec![
            ("arm", arm.slug.as_str().into()),
            ("label", arm.label.as_str().into()),
            ("clients_per_dc", CLIENTS_PER_DC.into()),
            ("p50_vis_ms", vis_ms(&arm.visibility, 50.0).into()),
            ("p90_vis_ms", vis_ms(&arm.visibility, 90.0).into()),
            ("p99_vis_ms", vis_ms(&arm.visibility, 99.0).into()),
            ("net_messages", arm.net_messages.into()),
            ("ktps", arm.ktps.into()),
            ("violations", (arm.violations as u64).into()),
        ]));
        if arm.violations != 0 {
            failures.push(format!(
                "{}: {} consistency violations",
                arm.slug, arm.violations
            ));
        }
        for (v, f) in arm.visibility.cdf() {
            cdf_rows.push(format!("PaRiS-{},{v},{f:.6}", arm.slug));
        }
    }

    // The two bars that make adaptive batching defensible as a default.
    let adaptive = arms.last().expect("adaptive arm present");
    let reduction = 1.0 - adaptive.net_messages as f64 / off_msgs.max(1) as f64;
    let inflation_us = adaptive.visibility.percentile(90.0) as f64 - off_p90 as f64;
    println!(
        "\n  adaptive vs off: {:.1}% fewer messages, p90 visibility {:+.1} ms \
         (staleness ceiling: {:.1} ms)",
        reduction * 100.0,
        inflation_us / 1_000.0,
        ADAPTIVE_MAX_MICROS as f64 / 1_000.0,
    );
    metrics.push(("fig4_adaptive_reduction_pct".into(), reduction * 100.0));
    metrics.push((
        "fig4_adaptive_p90_inflation_ms".into(),
        inflation_us / 1_000.0,
    ));
    metrics.push((
        "fig4_violations_total".into(),
        arms.iter().map(|a| a.violations as f64).sum(),
    ));
    if reduction < MIN_REDUCTION {
        failures.push(format!(
            "adaptive batching reduces messages by only {:.1}% (bar: {:.0}%)",
            reduction * 100.0,
            MIN_REDUCTION * 100.0
        ));
    }
    if inflation_us > ADAPTIVE_MAX_MICROS as f64 {
        failures.push(format!(
            "adaptive batching inflates p90 visibility by {:.1} ms, above the \
             {:.1} ms max_flush ceiling",
            inflation_us / 1_000.0,
            ADAPTIVE_MAX_MICROS as f64 / 1_000.0
        ));
    }

    write_csv("fig4.csv", "mode,visibility_micros,cum_fraction", &cdf_rows);
    write_csv(
        "fig4_batching.csv",
        "arm,p50_vis_ms,p90_vis_ms,p99_vis_ms,net_messages,ktps,violations",
        &sweep_rows,
    );
    write_bench_json("BENCH_fig4.json", &bench_doc("fig4", metrics, points));

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("\n  (adaptive keeps the message reduction while holding the freshness tax under its ceiling)");
}
