//! Figure 4: CDF of update visibility latency, PaRiS vs BPR.
//!
//! The visibility latency of an update X in DC_i is the wall-clock delta
//! between X becoming visible in DC_i and X's commit in its origin DC.
//! Paper result: PaRiS has *higher* visibility latency than BPR (~200 ms
//! worse in the tail) — the deliberate freshness cost of reading from the
//! universally-stable snapshot instead of blocking.

use paris_bench::{paper_deployment, run_settled, section, write_csv};
use paris_types::Mode;
use paris_workload::stats::Histogram;
use paris_workload::WorkloadConfig;

fn run_visibility(mode: Mode) -> Histogram {
    let config = paper_deployment(mode, WorkloadConfig::read_heavy(), 16, 42).record_events(true);
    run_settled(config).visibility.expect("events recorded")
}

fn main() {
    section("Fig 4: update visibility latency CDF (PaRiS vs BPR)");
    let mut rows = Vec::new();
    let mut summaries = Vec::new();
    for mode in [Mode::Bpr, Mode::Paris] {
        eprintln!("running {mode}...");
        let hist = run_visibility(mode);
        println!(
            "\n  {mode}: {} samples — p50 {:.1} ms, p90 {:.1} ms, p99 {:.1} ms, max {:.1} ms",
            hist.count(),
            hist.percentile(50.0) as f64 / 1_000.0,
            hist.percentile(90.0) as f64 / 1_000.0,
            hist.percentile(99.0) as f64 / 1_000.0,
            hist.max() as f64 / 1_000.0,
        );
        println!("  CDF (visibility ms : cumulative fraction):");
        // Print a decile sketch of the CDF like the paper's figure.
        for p in [10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0] {
            println!(
                "    p{p:<4} {:>10.1} ms",
                hist.percentile(p) as f64 / 1_000.0
            );
        }
        for (v, f) in hist.cdf() {
            rows.push(format!("{mode},{v},{f:.6}"));
        }
        summaries.push((mode, hist));
    }
    write_csv("fig4.csv", "mode,visibility_micros,cum_fraction", &rows);

    let bpr = &summaries[0].1;
    let paris = &summaries[1].1;
    println!(
        "\n  PaRiS p90 is {:.0} ms higher than BPR p90 (paper: ~200 ms difference in the tail)",
        (paris.percentile(90.0) as f64 - bpr.percentile(90.0) as f64) / 1_000.0
    );
    assert!(
        paris.percentile(50.0) > bpr.percentile(50.0),
        "PaRiS must trade freshness for non-blocking reads"
    );
}
