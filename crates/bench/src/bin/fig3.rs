//! Figure 3: PaRiS throughput (a) and latency (b) when varying the
//! locality of transactions: 100:0, 95:5, 90:10, 50:50 local:multi-DC.
//!
//! Paper result: maximum throughput drops only mildly (350 → 300 KTx/s,
//! ~16%) while latency is hit hard (8 → 150 ms), because multi-DC
//! transactions spend their time on WAN round trips, not on server CPU —
//! "the inevitable price to pay to enable higher storage capacity".

use paris_bench::{
    bench_doc, client_ladder, json::Json, load_sweep, paper_deployment, peak, section,
    write_bench_json, write_csv,
};
use paris_types::Mode;
use paris_workload::WorkloadConfig;

fn main() {
    section("Fig 3: throughput and latency vs transaction locality (PaRiS)");
    let ratios = [
        (1.00, "100:0"),
        (0.95, "95:5"),
        (0.90, "90:10"),
        (0.50, "50:50"),
    ];

    let mut rows = Vec::new();
    let mut metrics = Vec::new();
    let mut bench_points = Vec::new();
    println!(
        "\n  {:>8} {:>14} {:>12} {:>12}",
        "locality", "peak (KTx/s)", "mean (ms)", "p99 (ms)"
    );
    for (ratio, label) in ratios {
        // "The number of threads needed to saturate the system increases
        // as the locality decreases (from 32 to 512)" — §V-D. Extend the
        // ladder for low-locality points.
        let mut ladder = client_ladder(Mode::Paris);
        if ratio < 0.9 && !paris_bench::quick() {
            ladder.extend([256, 384, 512]);
        }
        let workload = WorkloadConfig::read_heavy().with_locality(ratio);
        let points = load_sweep(Mode::Paris, &workload, &ladder, |mode, wl, c| {
            paper_deployment(mode, wl, c, 42 + u64::from(c))
        });
        let best = peak(&points);
        println!(
            "  {label:>8} {:>14.1} {:>12.2} {:>12.2}",
            best.report.ktps(),
            best.report.stats.mean_latency_ms(),
            best.report.stats.percentile_ms(99.0),
        );
        rows.push(format!(
            "{label},{:.3},{:.3},{:.3}",
            best.report.ktps(),
            best.report.stats.mean_latency_ms(),
            best.report.stats.percentile_ms(99.0),
        ));
        // "100:0" → "100_0": metric keys stay flat identifiers. The peak
        // throughput per locality gates at −10%; latencies are carried in
        // the points (informational — the peak's client count can move).
        let key = label.replace(':', "_");
        metrics.push((format!("fig3_{key}_peak_ktps"), best.report.ktps()));
        bench_points.push(Json::obj(vec![
            ("figure", "fig3".into()),
            ("locality", label.into()),
            ("peak_clients_per_dc", u64::from(best.clients_per_dc).into()),
            ("peak_ktps", best.report.ktps().into()),
            ("mean_ms", best.report.stats.mean_latency_ms().into()),
            ("p99_ms", best.report.stats.percentile_ms(99.0).into()),
            ("committed", best.report.stats.committed.into()),
        ]));
    }
    write_csv("fig3.csv", "locality,peak_ktps,mean_ms,p99_ms", &rows);
    write_bench_json("BENCH_fig3.json", &bench_doc("fig3", metrics, bench_points));
    println!(
        "\n  (paper: throughput drops ~16% from 100:0 to 50:50; latency grows ~8 ms → ~150 ms)"
    );
}
