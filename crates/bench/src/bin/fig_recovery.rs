//! Fault-recovery drill: kill a server mid-workload, restart it, and prove
//! that every committed version survived via the durable engine's
//! checkpoint + WAL replay. Also measures what durability costs.
//!
//! Two arms, both on the socket backend (real child processes over
//! loopback TCP — the only substrate where a crash is a crash):
//!
//! **Arm A — crash drill.** A 2-DC × 2-partition deployment (R = 2, four
//! child processes) runs with durability on. Interactive clients commit a
//! tracked set of writes, the cluster stabilizes, then `dc0-p0` is killed
//! with SIGKILL. While it is down, a DC-1 client keeps committing — to
//! partition-1 keys only, because PaRiS replication is fire-and-forget:
//! a replica that is dead when the origin pushes a batch never receives
//! it, so writes to the killed partition during the outage would be
//! *correctly* lost at that replica and prove nothing about recovery.
//! `restart_server` then respawns the child, which replays its checkpoint
//! and WAL suffix before rejoining. Fresh clients in **both** DCs read
//! back every tracked key (the DC-0 reads hit the restarted server for
//! even keys), and the history checker verifies convergence. Any
//! mismatch or violation fails the gate.
//!
//! **Arm B — durability overhead.** The same workload deployment runs
//! twice, durability off vs. on (`fsync = Never`), and the throughput
//! ratio must stay ≥ 0.85 (ISSUE acceptance: ≤ 15% cost).
//!
//! Emits `results/BENCH_recovery.json`. The `*_violations*` metrics are
//! gated to exactly 0 by `bench_gate`; the wall-clock numbers
//! (restart time, WAL size, throughput ratio) are informational because
//! they track host speed, not protocol behavior.

use std::collections::BTreeMap;
use std::path::Path;
use std::time::Instant;

use paris_bench::{
    bench_doc, json::Json, quick, section, warmup_micros, window_micros, write_bench_json,
};
use paris_runtime::{Backend, Cluster, Durability, FsyncPolicy, Paris};
use paris_types::{Key, Mode, Value};
use paris_workload::WorkloadConfig;

/// Recursively sum file sizes under `dir` (WAL segments + checkpoints).
fn dir_size_bytes(dir: &Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut total = 0;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            total += dir_size_bytes(&path);
        } else if let Ok(meta) = entry.metadata() {
            total += meta.len();
        }
    }
    total
}

fn drill_cluster(dir: &Path) -> Box<dyn Cluster> {
    Paris::builder()
        .dcs(2)
        .partitions(2)
        .replication(2)
        .keys_per_partition(100)
        .mode(Mode::Paris)
        .clients_per_dc(0)
        .uniform_latency_micros(2_000)
        .jitter(0.0)
        .seed(907)
        .record_history(true)
        .durability(Durability::new(dir).fsync(FsyncPolicy::Never))
        .backend(Backend::Socket)
        .build()
        .expect("valid socket deployment")
}

/// Arm A: kill `dc0-p0` under tracked load, restart, prove nothing
/// committed was lost. Returns (metrics, points).
fn crash_drill() -> (Vec<(String, f64)>, Vec<Json>) {
    section("Arm A: crash + recovery drill (socket, durability on)");
    let dir = std::env::temp_dir().join(format!("paris-fig-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (pre_kill, outage) = if quick() { (24u64, 12u64) } else { (60, 30) };

    let mut cluster = drill_cluster(&dir);
    // Every commit lands here; readback must reproduce this map exactly.
    let mut expected: BTreeMap<Key, Value> = BTreeMap::new();

    // Phase 1: tracked writes to both partitions, from both DCs.
    let writer0 = cluster.open_client(0).expect("open dc0 client");
    let writer1 = cluster.open_client(1).expect("open dc1 client");
    for i in 0..pre_kill {
        let writer = if i % 2 == 0 { writer0 } else { writer1 };
        let key = Key(i % 40);
        let value = Value::from(format!("pre-kill-{i}").as_str());
        let mut txn = cluster.begin(writer).expect("begin");
        txn.write(key, value.clone());
        txn.commit().expect("pre-kill commit");
        expected.insert(key, value);
    }
    // Replication is fire-and-forget: let the origin DCs push their
    // committed batches to peer replicas *before* we kill one, or the
    // dead replica would (by design) never see them.
    cluster.stabilize(8);

    println!("  killing dc0-p0 with {pre_kill} commits on disk...");
    cluster.kill_server(0).expect("kill dc0-p0");

    // Phase 2: keep committing through the outage — DC-1 coordinators,
    // odd keys only (partition 1; `partition_of(key) = key % partitions`),
    // so no path touches the dead server.
    for i in 0..outage {
        let key = Key(2 * (i % 20) + 1);
        let value = Value::from(format!("outage-{i}").as_str());
        let mut txn = cluster.begin(writer1).expect("begin during outage");
        txn.write(key, value.clone());
        txn.commit().expect("outage commit");
        expected.insert(key, value);
    }

    let restart_started = Instant::now();
    cluster.restart_server(0).expect("restart dc0-p0");
    let restart_wall_ms = restart_started.elapsed().as_secs_f64() * 1e3;
    println!("  dc0-p0 back (recovered + rejoined) in {restart_wall_ms:.1} ms");

    // Let the outage-window writes stabilize below UST so fresh clients
    // (empty write caches) can see them from the stable snapshot.
    cluster.stabilize(8);

    // Readback from fresh clients in both DCs. The DC-0 client serves
    // even keys from the restarted server: those values exist there only
    // if checkpoint + WAL replay restored them.
    let mut lost = 0usize;
    for dc in 0..2u16 {
        let reader = cluster.open_client(dc).expect("open reader");
        for (key, want) in &expected {
            let mut txn = cluster.begin(reader).expect("begin readback");
            let got = txn.read_one(*key).expect("readback read");
            txn.commit().expect("readback commit");
            if got.as_ref() != Some(want) {
                lost += 1;
                println!("  LOST dc{dc} {key:?}: want {want:?}, got {got:?}");
            }
        }
    }
    let violations = cluster.check_convergence().expect("convergence check");
    for v in &violations {
        println!("  VIOLATION {v:?}");
    }
    let wal_disk_kb = dir_size_bytes(&dir) as f64 / 1024.0;
    println!(
        "  readback: {} keys across 2 DCs, {lost} lost, {} checker violations, \
         {wal_disk_kb:.1} KiB on disk",
        expected.len(),
        violations.len(),
    );
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);

    let metrics = vec![
        (
            "recovery_violations_total".to_string(),
            violations.len() as f64,
        ),
        ("recovery_lost_commit_violations".to_string(), lost as f64),
        (
            "recovery_commits_preserved".to_string(),
            (expected.len() - lost) as f64,
        ),
        ("recovery_restart_wall_ms".to_string(), restart_wall_ms),
        ("recovery_wal_disk_kb".to_string(), wal_disk_kb),
    ];
    let points = vec![Json::obj(vec![
        ("figure", "fig_recovery".into()),
        ("phase", "crash_drill".into()),
        ("pre_kill_commits", pre_kill.into()),
        ("outage_commits", outage.into()),
        ("tracked_keys", (expected.len() as u64).into()),
        ("lost", (lost as u64).into()),
        ("checker_violations", (violations.len() as u64).into()),
        ("restart_wall_ms", restart_wall_ms.into()),
        ("wal_disk_kb", wal_disk_kb.into()),
    ])];
    assert_eq!(lost, 0, "crash recovery lost committed versions");
    assert!(violations.is_empty(), "crash recovery violated convergence");
    (metrics, points)
}

/// Arm B: identical socket workload with durability off vs. on
/// (`fsync = Never`); the throughput ratio is the WAL's cost.
///
/// Wall-clock loopback throughput wobbles ±20% run to run on a loaded
/// host, so each arm is best-of-3 — the per-arm maxima sit against the
/// same machine ceiling and their ratio isolates the WAL's actual cost.
fn overhead_arm() -> (Vec<(String, f64)>, Vec<Json>) {
    section("Arm B: durability overhead (socket, fsync = Never)");
    let dir = std::env::temp_dir().join(format!("paris-fig-recovery-ovh-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut results: Vec<(&str, f64, usize)> = Vec::new();
    for durable in [false, true] {
        let label = if durable { "durable" } else { "baseline" };
        let mut best_ktps = 0.0f64;
        let mut violations = 0usize;
        for attempt in 0..3u64 {
            let _ = std::fs::remove_dir_all(&dir);
            let mut builder = Paris::builder()
                .dcs(2)
                .partitions(2)
                .replication(2)
                .keys_per_partition(10_000)
                .mode(Mode::Paris)
                .clients_per_dc(4)
                .workload(WorkloadConfig::write_heavy())
                .uniform_latency_micros(2_000)
                .jitter(0.0)
                .seed(911 + attempt)
                .record_history(true)
                .backend(Backend::Socket);
            if durable {
                builder = builder.durability(Durability::new(&dir).fsync(FsyncPolicy::Never));
            }
            let mut cluster = builder.build().expect("valid socket deployment");
            let report = cluster
                .run_workload(warmup_micros(), window_micros())
                .expect("overhead workload failed");
            best_ktps = best_ktps.max(report.ktps());
            violations += report.violations.len();
        }
        println!("  {label:<8}: best of 3: {best_ktps:.1} KTx/s, {violations} violations");
        results.push((label, best_ktps, violations));
    }
    let _ = std::fs::remove_dir_all(&dir);

    let baseline = results[0].1;
    let durable = results[1].1;
    let ratio = durable / baseline.max(f64::MIN_POSITIVE);
    let overhead_violations = results[0].2 + results[1].2;
    println!("  durable/baseline throughput ratio: {ratio:.3}");

    let metrics = vec![
        ("recovery_durable_tput_ratio".to_string(), ratio),
        (
            "recovery_overhead_violations".to_string(),
            overhead_violations as f64,
        ),
    ];
    let points = results
        .iter()
        .map(|(label, ktps, violations)| {
            Json::obj(vec![
                ("figure", "fig_recovery".into()),
                ("phase", "overhead".into()),
                ("arm", (*label).into()),
                ("wall_ktps", (*ktps).into()),
                ("violations", (*violations as u64).into()),
            ])
        })
        .collect();
    assert_eq!(overhead_violations, 0, "overhead arm violated TCC");
    assert!(
        ratio >= 0.85,
        "durability (fsync=Never) cost more than 15% throughput: ratio {ratio:.3}"
    );
    (metrics, points)
}

fn main() {
    let (mut metrics, mut points) = crash_drill();
    let (ovh_metrics, ovh_points) = overhead_arm();
    metrics.extend(ovh_metrics);
    points.extend(ovh_points);
    write_bench_json(
        "BENCH_recovery.json",
        &bench_doc("fig_recovery", metrics, points),
    );
    println!("\nfig_recovery: all assertions passed (nothing committed was lost)");
}
