//! Ablation: stabilization interval vs. data staleness and throughput.
//!
//! The paper fixes ∆R = ∆G = ∆U = 5 ms (§V-A). This ablation sweeps the
//! interval to expose the design trade-off behind that choice: shorter
//! intervals tighten the UST (fresher snapshots, lower update-visibility
//! latency) at the cost of more background messages; longer intervals do
//! the opposite. Throughput is largely insensitive — stabilization is off
//! the critical path — which is exactly why PaRiS can afford a fresh UST.

use paris_bench::{paper_deployment, run_settled, section, write_csv};
use paris_types::{Intervals, Mode};
use paris_workload::WorkloadConfig;

fn main() {
    section("Ablation: stabilization interval (∆R=∆G=∆U) vs staleness");
    let intervals_ms = [1u64, 5, 20, 50];
    let mut rows = Vec::new();
    println!(
        "\n  {:>6} {:>14} {:>16} {:>16} {:>14}",
        "∆ (ms)", "tput (KTx/s)", "visib. p50 (ms)", "visib. p90 (ms)", "net msgs/tx"
    );
    for &delta in &intervals_ms {
        let config = paper_deployment(Mode::Paris, WorkloadConfig::read_heavy(), 16, 42)
            .intervals(Intervals {
                replication_micros: delta * 1_000,
                gst_micros: delta * 1_000,
                ust_micros: delta * 1_000,
                gc_micros: 1_000_000,
            })
            .record_events(true);
        let report = run_settled(config);
        let vis = report.visibility.as_ref().expect("events recorded");
        let msgs_per_tx = report.net_messages as f64 / report.stats.committed.max(1) as f64;
        println!(
            "  {delta:>6} {:>14.1} {:>16.1} {:>16.1} {:>14.1}",
            report.ktps(),
            vis.percentile(50.0) as f64 / 1_000.0,
            vis.percentile(90.0) as f64 / 1_000.0,
            msgs_per_tx,
        );
        rows.push(format!(
            "{delta},{:.3},{:.3},{:.3},{:.3}",
            report.ktps(),
            vis.percentile(50.0) as f64 / 1_000.0,
            vis.percentile(90.0) as f64 / 1_000.0,
            msgs_per_tx,
        ));
    }
    write_csv(
        "ablation_gossip.csv",
        "interval_ms,ktps,visibility_p50_ms,visibility_p90_ms,net_msgs_per_tx",
        &rows,
    );
    println!("\n  (expectation: visibility grows with ∆; throughput ~flat; msgs/tx shrink with ∆)");
}
