//! Figure 2b: PaRiS throughput when varying the number of DCs (3, 5, 10)
//! at 6 and 12 machines per DC.
//!
//! Paper result: "the ideal improvement of 3.33x when scaling from 3 to
//! 10 DCs" — adding replication sites adds throughput proportionally,
//! because UST metadata stays a single timestamp regardless of M.

use paris_bench::{
    bench_doc, deployment, json::Json, quick, run_point, section, write_bench_json, write_csv,
};
use paris_types::Mode;
use paris_workload::WorkloadConfig;

fn main() {
    section("Fig 2b: throughput vs number of DCs (PaRiS)");
    let dcs = [3u16, 5, 10];
    let machines = [6u32, 12];
    let clients_per_machine = if quick() { 4 } else { 8 };

    let mut rows = Vec::new();
    let mut metrics = Vec::new();
    let mut points = Vec::new();
    println!(
        "\n  {:>5} {:>6} {:>14} {:>12}",
        "M/DC", "DCs", "tput (KTx/s)", "scale vs 3"
    );
    for &k in &machines {
        let mut base = None;
        for &m in &dcs {
            let partitions = u32::from(m) * k / 2; // N = M·K/R
            let config = deployment(
                m,
                partitions,
                Mode::Paris,
                WorkloadConfig::read_heavy(),
                clients_per_machine * k,
                42,
            );
            let report = run_point(config);
            let ktps = report.ktps();
            let scale = match base {
                None => {
                    base = Some(ktps);
                    1.0
                }
                Some(b) => ktps / b,
            };
            println!("  {k:>5} {m:>6} {ktps:>14.1} {scale:>11.2}x");
            rows.push(format!("{k},{m},{ktps:.3},{scale:.3}"));
            // Deterministic sim: per-point throughput gates at −10%, the
            // scaling factor (the figure's actual claim) at −50%.
            metrics.push((format!("fig2b_{m}dc_{k}m_ktps"), ktps));
            if m != dcs[0] {
                metrics.push((format!("fig2b_{m}dc_{k}m_speedup"), scale));
            }
            points.push(Json::obj(vec![
                ("figure", "fig2b".into()),
                ("machines_per_dc", u64::from(k).into()),
                ("dcs", u64::from(m).into()),
                ("partitions", u64::from(partitions).into()),
                ("ktps", ktps.into()),
                ("scale_vs_3", scale.into()),
                ("committed", report.stats.committed.into()),
            ]));
        }
    }
    write_csv("fig2b.csv", "machines_per_dc,dcs,ktps,scale_vs_3", &rows);
    write_bench_json("BENCH_fig2b.json", &bench_doc("fig2b", metrics, points));
    println!("\n  (paper: ideal 3.33x from 3 to 10 DCs at both 6 and 12 machines/DC)");
}
