//! Ablation: stabilization-tree shape.
//!
//! The paper organizes the nodes of a DC "as a tree to reduce message
//! exchange" (§IV-B) without evaluating the shape. This ablation compares
//! a flat (depth-1) tree against bounded fanouts: deeper trees shrink the
//! root's fan-in (max messages any single node handles per round) but add
//! hops, so the UST lags more and update visibility grows. The flat tree
//! is the right default at the paper's 18 servers/DC.

use paris_bench::{paper_deployment, run_settled, section, write_csv};
use paris_types::Mode;
use paris_workload::WorkloadConfig;

fn main() {
    section("Ablation: stabilization tree branching factor");
    // 0 = flat (root has 17 children at 18 servers/DC).
    let branchings = [0usize, 4, 2];
    let mut rows = Vec::new();
    println!(
        "\n  {:>9} {:>12} {:>14} {:>16} {:>16}",
        "branching", "tree depth", "tput (KTx/s)", "visib. p50 (ms)", "visib. p90 (ms)"
    );
    for &bf in &branchings {
        let config = paper_deployment(Mode::Paris, WorkloadConfig::read_heavy(), 16, 42)
            .record_events(true)
            .stab_branching(bf);
        // Depth of a complete bf-ary tree over 18 nodes (flat = 1).
        let depth = match bf {
            0 => 1,
            _ => {
                let mut nodes = 1usize;
                let mut level = 1usize;
                let mut depth = 0usize;
                while nodes < 18 {
                    level *= bf;
                    nodes += level;
                    depth += 1;
                }
                depth
            }
        };
        let report = run_settled(config);
        let vis = report.visibility.as_ref().expect("events recorded");
        let label = if bf == 0 {
            "flat".to_string()
        } else {
            bf.to_string()
        };
        println!(
            "  {label:>9} {depth:>12} {:>14.1} {:>16.1} {:>16.1}",
            report.ktps(),
            vis.percentile(50.0) as f64 / 1_000.0,
            vis.percentile(90.0) as f64 / 1_000.0,
        );
        rows.push(format!(
            "{label},{depth},{:.3},{:.3},{:.3}",
            report.ktps(),
            vis.percentile(50.0) as f64 / 1_000.0,
            vis.percentile(90.0) as f64 / 1_000.0,
        ));
    }
    write_csv(
        "ablation_tree.csv",
        "branching,depth,ktps,visibility_p50_ms,visibility_p90_ms",
        &rows,
    );
    println!("\n  (expectation: deeper trees add aggregation hops → higher visibility latency)");
}
