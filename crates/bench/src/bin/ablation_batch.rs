//! Ablation: background-traffic batching on vs. off, PaRiS and BPR.
//!
//! PaRiS's metadata is one 8-byte timestamp per message (Table I), so at
//! scale the per-message overhead — not the metadata — dominates the
//! background planes: one `Replicate` push per peer per ∆R and one gossip
//! frame per tree edge per ∆G/∆U. The batching layer coalesces those
//! per-link into `ReplicateBatch`/`GossipDigest` wire frames. This
//! ablation runs the paper-shaped deployment at a fixed offered load with
//! batching off and on (both protocol modes), with history recording
//! enabled so the consistency checker vouches that coalescing changes
//! *when* messages travel but never *what* replicas agree on.
//!
//! The run fails (non-zero exit) unless batching cuts total network
//! messages by ≥ 25% at equal offered load with zero consistency
//! violations — the acceptance bar the CI gate builds on. Emits
//! `results/ablation_batch.csv` and `results/BENCH_batch.json`.

use paris_bench::{
    bench_doc, deployment, json::Json, section, warmup_micros, window_micros, write_bench_json,
    write_csv,
};
use paris_runtime::Cluster;
use paris_types::{Intervals, Mode};
use paris_workload::WorkloadConfig;

/// Stabilization period for this ablation: 2 ms instead of the paper's
/// 5 ms, the "fresher UST" end of the trade-off where per-message
/// background overhead is at its worst and batching matters most.
const TICK_MICROS: u64 = 2_000;
/// Flush deadline: four ticks' worth of accumulation per link.
const FLUSH_MICROS: u64 = 8_000;
const BATCH_FRAMES: usize = 64;
const CLIENTS_PER_DC: u32 = 8;
/// Required message reduction at equal offered load.
const MIN_REDUCTION: f64 = 0.25;

struct Arm {
    mode: Mode,
    batched: bool,
    ktps: f64,
    mean_ms: f64,
    net_messages: u64,
    net_bytes: u64,
    violations: usize,
}

fn run_arm(mode: Mode, batched: bool) -> Arm {
    let mut builder = deployment(
        5,
        45,
        mode,
        WorkloadConfig::read_heavy(),
        CLIENTS_PER_DC,
        42,
    )
    .intervals(Intervals {
        replication_micros: TICK_MICROS,
        gst_micros: TICK_MICROS,
        ust_micros: TICK_MICROS,
        gc_micros: 1_000_000,
    })
    .record_history(true);
    // Batching is on by default now: the off arm must opt out explicitly,
    // and the on arm pins the PR-2 fixed policy so the ablation keeps
    // measuring the same thing across releases (fig4 sweeps adaptive).
    builder = if batched {
        builder
            .batch_size(BATCH_FRAMES)
            .flush_interval_micros(FLUSH_MICROS)
    } else {
        builder.no_batching()
    };
    let mut sim = builder.build_sim().expect("valid ablation deployment");
    let report = sim
        .run_workload(warmup_micros(), window_micros())
        .expect("simulated workload cannot fail");
    eprintln!(
        "  [{mode} batch={}] {} | {} net msgs",
        if batched { "on " } else { "off" },
        report.summary(),
        report.net_messages,
    );
    Arm {
        mode,
        batched,
        ktps: report.ktps(),
        mean_ms: report.stats.mean_latency_ms(),
        net_messages: report.net_messages,
        net_bytes: report.net_bytes,
        violations: report.violations.len(),
    }
}

fn main() {
    section("Ablation: replication & gossip batching (off vs on)");
    println!(
        "\n  {:<6} {:>6} {:>14} {:>12} {:>14} {:>12} {:>11}",
        "mode", "batch", "tput (KTx/s)", "mean (ms)", "net msgs", "msgs/tx", "violations"
    );

    let mut rows = Vec::new();
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let mut points: Vec<Json> = Vec::new();
    let mut failures: Vec<String> = Vec::new();

    for mode in [Mode::Paris, Mode::Bpr] {
        let mode_slug = match mode {
            Mode::Paris => "paris",
            Mode::Bpr => "bpr",
        };
        let arms: Vec<Arm> = [false, true].map(|b| run_arm(mode, b)).into();
        for arm in &arms {
            let committed = (arm.ktps * window_micros() as f64 / 1_000.0).max(1.0);
            println!(
                "  {:<6} {:>6} {:>14.1} {:>12.2} {:>14} {:>12.1} {:>11}",
                arm.mode.to_string(),
                if arm.batched { "on" } else { "off" },
                arm.ktps,
                arm.mean_ms,
                arm.net_messages,
                arm.net_messages as f64 / committed,
                arm.violations,
            );
            let onoff = if arm.batched { "on" } else { "off" };
            rows.push(format!(
                "{},{},{:.3},{:.3},{},{},{}",
                arm.mode,
                onoff,
                arm.ktps,
                arm.mean_ms,
                arm.net_messages,
                arm.net_bytes,
                arm.violations,
            ));
            metrics.push((format!("batch_{mode_slug}_{onoff}_ktps"), arm.ktps));
            metrics.push((
                format!("batch_{mode_slug}_{onoff}_net_messages"),
                arm.net_messages as f64,
            ));
            points.push(Json::obj(vec![
                ("mode", arm.mode.to_string().into()),
                ("batched", arm.batched.into()),
                ("clients_per_dc", CLIENTS_PER_DC.into()),
                ("ktps", arm.ktps.into()),
                ("mean_ms", arm.mean_ms.into()),
                ("net_messages", arm.net_messages.into()),
                ("net_bytes", arm.net_bytes.into()),
                ("violations", (arm.violations as u64).into()),
            ]));
            if arm.violations != 0 {
                failures.push(format!(
                    "{} batch={onoff}: {} consistency violations",
                    arm.mode, arm.violations
                ));
            }
        }
        let (off, on) = (&arms[0], &arms[1]);
        let reduction = 1.0 - on.net_messages as f64 / off.net_messages.max(1) as f64;
        println!(
            "  {mode:<6} batching cuts messages by {:.1}% at equal offered load",
            reduction * 100.0
        );
        metrics.push((
            format!("batch_{mode_slug}_reduction_pct"),
            reduction * 100.0,
        ));
        if reduction < MIN_REDUCTION {
            failures.push(format!(
                "{mode}: message reduction {:.1}% is below the {:.0}% bar",
                reduction * 100.0,
                MIN_REDUCTION * 100.0
            ));
        }
    }

    write_csv(
        "ablation_batch.csv",
        "mode,batched,ktps,mean_ms,net_messages,net_bytes,violations",
        &rows,
    );
    write_bench_json(
        "BENCH_batch.json",
        &bench_doc("ablation_batch", metrics, points),
    );

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("\n  (batching trades bounded extra staleness — one flush interval — for fewer, fatter frames)");
}
