//! CI perf-regression gate.
//!
//! Compares the `metrics` maps of freshly emitted `BENCH_*.json` files
//! against the committed `bench/baseline.json` and fails (non-zero exit)
//! when performance regressed:
//!
//! * any `*ktps*` metric may not drop more than 10% below baseline;
//! * any `*net_messages*` metric may not rise more than 10% above
//!   baseline;
//! * any `*speedup*` metric (the read-pool / read-lane scaling factors,
//!   the slot-vs-mutex registry contention ratio and the pooled start-tx
//!   scaling of `fig_reads`) may not drop more than 50% below baseline —
//!   ratios are machine-robust (service-occupancy overlap), unlike the
//!   wall-clock absolute throughputs they are derived from, which stay
//!   informational;
//! * any `*pooled_mean_us*` metric (pooled start-tx admission latency)
//!   may not rise more than 150% above baseline — wall-clock latency is
//!   machine-sensitive, so only a catastrophic regression (starts wedged
//!   behind loop work again) trips it;
//! * any `*violations*` metric must be exactly zero;
//! * every baseline metric must be present in the current results
//!   (a silently vanished benchmark is a regression too).
//!
//! The simulator is deterministic (simulated time, seeded RNG), so these
//! thresholds are slack for drift in the *code*, not the machine.
//!
//! Paths: baseline from `PARIS_BASELINE` (default `bench/baseline.json`),
//! results from `PARIS_RESULTS_DIR` (default `results`). To refresh the
//! baseline after an intentional performance change, rerun
//! `PARIS_BENCH_QUICK=1 cargo run --release -p paris-bench --bin fig1`,
//! `... --bin ablation_batch` and `... --bin fig_reads`, then copy the
//! union of the emitted `metrics` maps into `bench/baseline.json`.

use paris_bench::json::Json;

const KTPS_DROP_TOLERANCE: f64 = 0.10;
const MSGS_RISE_TOLERANCE: f64 = 0.10;
const SPEEDUP_DROP_TOLERANCE: f64 = 0.50;
const LATENCY_RISE_TOLERANCE: f64 = 1.50;

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench_gate: cannot read {path}: {e}"));
    Json::parse(&text).unwrap_or_else(|e| panic!("bench_gate: {path} is not valid JSON: {e}"))
}

/// Collects the flat `metrics` map of one emitted results file.
fn metrics_of(doc: &Json, path: &str) -> Vec<(String, f64)> {
    doc.get("metrics")
        .and_then(Json::as_obj)
        .unwrap_or_else(|| panic!("bench_gate: {path} has no metrics object"))
        .iter()
        .filter_map(|(k, v)| v.as_f64().map(|n| (k.clone(), n)))
        .collect()
}

fn main() {
    let baseline_path =
        std::env::var("PARIS_BASELINE").unwrap_or_else(|_| "bench/baseline.json".to_string());
    let results_dir = std::env::var("PARIS_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());

    let baseline = load(&baseline_path);
    let baseline_metrics = baseline
        .get("metrics")
        .and_then(Json::as_obj)
        .unwrap_or_else(|| panic!("bench_gate: {baseline_path} has no metrics object"));

    let mut current: Vec<(String, f64)> = Vec::new();
    for file in ["BENCH_fig1.json", "BENCH_batch.json", "BENCH_reads.json"] {
        let path = format!("{results_dir}/{file}");
        current.extend(metrics_of(&load(&path), &path));
    }

    let mut failures = 0usize;
    println!(
        "{:<38} {:>12} {:>12} {:>9}  verdict",
        "metric", "baseline", "current", "delta"
    );
    for (key, base) in baseline_metrics
        .iter()
        .filter_map(|(k, v)| v.as_f64().map(|n| (k, n)))
    {
        let Some((_, cur)) = current.iter().find(|(k, _)| k == key) else {
            println!(
                "{key:<38} {base:>12.2} {:>12} {:>9}  FAIL (metric missing)",
                "-", "-"
            );
            failures += 1;
            continue;
        };
        let delta_pct = if base != 0.0 {
            (cur - base) / base * 100.0
        } else {
            0.0
        };
        let ok = if key.contains("ktps") {
            *cur >= base * (1.0 - KTPS_DROP_TOLERANCE)
        } else if key.contains("net_messages") {
            *cur <= base * (1.0 + MSGS_RISE_TOLERANCE)
        } else if key.contains("speedup") {
            *cur >= base * (1.0 - SPEEDUP_DROP_TOLERANCE)
        } else if key.contains("pooled_mean_us") {
            *cur <= base * (1.0 + LATENCY_RISE_TOLERANCE)
        } else if key.contains("violations") {
            *cur == 0.0
        } else {
            // Informational metrics (e.g. reduction_pct) are reported but
            // not gated; the emitting bench enforces its own floor.
            true
        };
        println!(
            "{key:<38} {base:>12.2} {cur:>12.2} {delta_pct:>+8.1}%  {}",
            if ok { "ok" } else { "FAIL" }
        );
        if !ok {
            failures += 1;
        }
    }

    if failures > 0 {
        eprintln!("\nbench_gate: {failures} metric(s) regressed beyond tolerance");
        std::process::exit(1);
    }
    println!("\nbench_gate: all metrics within tolerance");
}
