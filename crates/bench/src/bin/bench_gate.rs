//! CI perf-regression gate.
//!
//! Compares the `metrics` maps of freshly emitted `BENCH_*.json` files
//! against the committed `bench/baseline.json` and fails (non-zero exit)
//! when performance regressed:
//!
//! * any `*ktps*` metric may not drop more than 10% below baseline;
//! * any `*net_messages*` metric may not rise more than 10% above
//!   baseline;
//! * any `*net_bytes*` / `*bytes_per_tx*` metric may not rise more than
//!   10% above baseline — wire bytes are a first-class perf axis, so a
//!   codec or framing change that bloats traffic fails the gate;
//! * any `*speedup*` metric (the read-pool / read-lane scaling factors,
//!   the slot-vs-mutex registry contention ratio and the pooled start-tx
//!   scaling of `fig_reads`) may not drop more than 50% below baseline —
//!   ratios are machine-robust (service-occupancy overlap), unlike the
//!   wall-clock absolute throughputs they are derived from, which stay
//!   informational;
//! * any `*pooled_mean_us*` metric (pooled start-tx admission latency)
//!   may not rise more than 150% above baseline — wall-clock latency is
//!   machine-sensitive, so only a catastrophic regression (starts wedged
//!   behind loop work again) trips it;
//! * any `*violations*` metric must be exactly zero;
//! * every baseline metric must be present in the current results
//!   (a silently vanished benchmark is a regression too).
//!
//! The simulator is deterministic (simulated time, seeded RNG), so these
//! thresholds are slack for drift in the *code*, not the machine.
//!
//! The pass/fail table goes to stdout and — when `$GITHUB_STEP_SUMMARY`
//! is set (GitHub Actions) — to the step summary as a markdown table, so
//! a red gate explains itself without digging through logs.
//!
//! Subcommands:
//!
//! * `--list-gated` prints the gated bench binaries (one per line) — the
//!   single source the CI workflow reads, both to run the gated figures
//!   in the regression job and to exclude them from the smoke loop.
//! * `--write-baseline` refreshes `bench/baseline.json` from the current
//!   `results/BENCH_*.json` files — the one documented command for
//!   intentional perf changes (no hand-editing).
//!
//! Paths: baseline from `PARIS_BASELINE` (default `bench/baseline.json`),
//! results from `PARIS_RESULTS_DIR` (default `results`). To refresh the
//! baseline after an intentional performance change, rerun every gated
//! bench in quick mode and write the union of their metrics:
//!
//! ```sh
//! for b in $(cargo run -p paris-bench --bin bench_gate -- --list-gated); do
//!   PARIS_BENCH_QUICK=1 cargo run --release -p paris-bench --bin $b
//! done
//! cargo run --release -p paris-bench --bin bench_gate -- --write-baseline
//! ```

use std::io::Write as _;

use paris_bench::json::Json;

const KTPS_DROP_TOLERANCE: f64 = 0.10;
const MSGS_RISE_TOLERANCE: f64 = 0.10;
const BYTES_RISE_TOLERANCE: f64 = 0.10;
const SPEEDUP_DROP_TOLERANCE: f64 = 0.50;
const LATENCY_RISE_TOLERANCE: f64 = 1.50;

/// The gated benches: every binary here must emit the paired results
/// file, runs in the CI bench-regression job (and the nightly full-mode
/// workflow), and is excluded from the smoke loop. Adding a gated figure
/// is a one-line change here.
const GATED: &[(&str, &str)] = &[
    ("fig1", "BENCH_fig1.json"),
    ("table1", "BENCH_table1.json"),
    ("ablation_batch", "BENCH_batch.json"),
    ("fig_reads", "BENCH_reads.json"),
    ("fig_writes", "BENCH_writes.json"),
    ("fig4", "BENCH_fig4.json"),
    ("fig2a", "BENCH_fig2a.json"),
    ("fig_recovery", "BENCH_recovery.json"),
    ("fig2b", "BENCH_fig2b.json"),
    ("fig3", "BENCH_fig3.json"),
    ("fig_chaos", "BENCH_chaos.json"),
];

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench_gate: cannot read {path}: {e}"));
    Json::parse(&text).unwrap_or_else(|e| panic!("bench_gate: {path} is not valid JSON: {e}"))
}

/// Collects the flat `metrics` map of one emitted results file.
fn metrics_of(doc: &Json, path: &str) -> Vec<(String, f64)> {
    doc.get("metrics")
        .and_then(Json::as_obj)
        .unwrap_or_else(|| panic!("bench_gate: {path} has no metrics object"))
        .iter()
        .filter_map(|(k, v)| v.as_f64().map(|n| (k.clone(), n)))
        .collect()
}

/// The union of every gated bench's current metrics.
fn current_metrics(results_dir: &str) -> Vec<(String, f64)> {
    let mut current: Vec<(String, f64)> = Vec::new();
    for (_, file) in GATED {
        let path = format!("{results_dir}/{file}");
        current.extend(metrics_of(&load(&path), &path));
    }
    current
}

/// One gate verdict, kept structured so stdout and the step summary
/// render from the same data.
struct Row {
    key: String,
    baseline: f64,
    current: Option<f64>,
    delta_pct: f64,
    rule: &'static str,
    ok: bool,
}

/// The tolerance rule a metric name selects, and whether `cur` passes it.
fn judge(key: &str, base: f64, cur: f64) -> (&'static str, bool) {
    if key.contains("ktps") {
        (
            "ktps ≥ baseline −10%",
            cur >= base * (1.0 - KTPS_DROP_TOLERANCE),
        )
    } else if key.contains("net_messages") {
        (
            "messages ≤ baseline +10%",
            cur <= base * (1.0 + MSGS_RISE_TOLERANCE),
        )
    } else if key.contains("net_bytes") || key.contains("bytes_per_tx") {
        (
            "bytes ≤ baseline +10%",
            cur <= base * (1.0 + BYTES_RISE_TOLERANCE),
        )
    } else if key.contains("speedup") {
        (
            "speedup ≥ baseline −50%",
            cur >= base * (1.0 - SPEEDUP_DROP_TOLERANCE),
        )
    } else if key.contains("pooled_mean_us") {
        (
            "latency ≤ baseline +150%",
            cur <= base * (1.0 + LATENCY_RISE_TOLERANCE),
        )
    } else if key.contains("violations") {
        ("must be 0", cur == 0.0)
    } else {
        // Informational metrics (e.g. reduction_pct, visibility
        // percentiles) are reported but not gated; the emitting bench
        // enforces its own floor.
        ("informational", true)
    }
}

/// The baseline's metric map with its `curated` overrides applied — the
/// same precedence `--write-baseline` persists, so a hand-edited curated
/// entry changes the gate immediately, not only after the next refresh.
fn baseline_metrics_with_curated(baseline: &Json, baseline_path: &str) -> Vec<(String, f64)> {
    let mut metrics: Vec<(String, f64)> = baseline
        .get("metrics")
        .and_then(Json::as_obj)
        .unwrap_or_else(|| panic!("bench_gate: {baseline_path} has no metrics object"))
        .iter()
        .filter_map(|(k, v)| v.as_f64().map(|n| (k.clone(), n)))
        .collect();
    if let Some(curated) = baseline.get("curated").and_then(Json::as_obj) {
        for (key, pinned) in curated
            .iter()
            .filter_map(|(k, v)| v.as_f64().map(|n| (k, n)))
        {
            match metrics.iter_mut().find(|(k, _)| k == key) {
                Some((_, v)) => *v = pinned,
                None => metrics.push((key.clone(), pinned)),
            }
        }
    }
    metrics
}

fn gate(baseline_path: &str, results_dir: &str) -> ! {
    let baseline = load(baseline_path);
    let baseline_metrics = baseline_metrics_with_curated(&baseline, baseline_path);
    let current = current_metrics(results_dir);

    let mut rows: Vec<Row> = Vec::new();
    for (key, base) in baseline_metrics.iter().map(|(k, n)| (k, *n)) {
        match current.iter().find(|(k, _)| k == key) {
            None => rows.push(Row {
                key: key.clone(),
                baseline: base,
                current: None,
                delta_pct: 0.0,
                rule: "metric must exist",
                ok: false,
            }),
            Some((_, cur)) => {
                let delta_pct = if base != 0.0 {
                    (cur - base) / base * 100.0
                } else {
                    0.0
                };
                let (rule, ok) = judge(key, base, *cur);
                rows.push(Row {
                    key: key.clone(),
                    baseline: base,
                    current: Some(*cur),
                    delta_pct,
                    rule,
                    ok,
                });
            }
        }
    }

    println!(
        "{:<38} {:>12} {:>12} {:>9}  {:<26} verdict",
        "metric", "baseline", "current", "delta", "rule"
    );
    for r in &rows {
        match r.current {
            Some(cur) => println!(
                "{:<38} {:>12.2} {cur:>12.2} {:>+8.1}%  {:<26} {}",
                r.key,
                r.baseline,
                r.delta_pct,
                r.rule,
                if r.ok { "ok" } else { "FAIL" }
            ),
            None => println!(
                "{:<38} {:>12.2} {:>12} {:>9}  {:<26} FAIL (missing)",
                r.key, r.baseline, "-", "-", r.rule
            ),
        }
    }
    write_step_summary(&rows);

    let failures = rows.iter().filter(|r| !r.ok).count();
    if failures > 0 {
        eprintln!("\nbench_gate: {failures} metric(s) regressed beyond tolerance");
        std::process::exit(1);
    }
    println!("\nbench_gate: all metrics within tolerance");
    std::process::exit(0);
}

/// Appends the verdict table (markdown) to `$GITHUB_STEP_SUMMARY` when CI
/// provides one; silently skips otherwise (stdout already has the table).
fn write_step_summary(rows: &[Row]) {
    let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") else {
        return;
    };
    let failures = rows.iter().filter(|r| !r.ok).count();
    let mut md = String::new();
    md.push_str(&format!(
        "## bench_gate: {}\n\n",
        if failures == 0 {
            "all metrics within tolerance ✅".to_string()
        } else {
            format!("{failures} metric(s) regressed ❌")
        }
    ));
    md.push_str("| metric | baseline | current | delta | rule | verdict |\n");
    md.push_str("|---|---:|---:|---:|---|---|\n");
    for r in rows {
        let (cur, delta) = match r.current {
            Some(c) => (format!("{c:.2}"), format!("{:+.1}%", r.delta_pct)),
            None => ("–".to_string(), "–".to_string()),
        };
        md.push_str(&format!(
            "| `{}` | {:.2} | {} | {} | {} | {} |\n",
            r.key,
            r.baseline,
            cur,
            delta,
            r.rule,
            if r.ok { "ok" } else { "**FAIL**" }
        ));
    }
    match std::fs::OpenOptions::new()
        .append(true)
        .create(true)
        .open(&path)
    {
        Ok(mut f) => {
            let _ = f.write_all(md.as_bytes());
        }
        Err(e) => eprintln!("bench_gate: cannot append step summary {path}: {e}"),
    }
}

/// Writes `bench/baseline.json` (or `$PARIS_BASELINE`) from the current
/// results — the documented refresh path after an intentional perf
/// change.
///
/// Hand-curated thresholds survive the refresh: any entry of the
/// existing baseline's optional `curated` object (key → value +
/// `curated_notes` prose) overrides the freshly measured value and is
/// carried into the new file verbatim, so deliberately slack baselines
/// (e.g. ratios committed below one machine's measurement to keep
/// 1-core CI hosts inside the tolerance) are never silently clobbered
/// by a single machine's numbers.
fn write_baseline(baseline_path: &str, results_dir: &str) -> ! {
    let mut metrics = current_metrics(results_dir);
    let (curated, curated_notes) = match std::fs::read_to_string(baseline_path) {
        Ok(text) => {
            let old = Json::parse(&text)
                .unwrap_or_else(|e| panic!("bench_gate: {baseline_path} is not valid JSON: {e}"));
            (
                old.get("curated").and_then(Json::as_obj).map(<[_]>::to_vec),
                old.get("curated_notes").cloned(),
            )
        }
        Err(_) => (None, None),
    };
    if let Some(curated) = &curated {
        for (key, value) in curated {
            let Some(pinned) = value.as_f64() else {
                continue;
            };
            match metrics.iter_mut().find(|(k, _)| k == key) {
                Some((_, v)) => *v = pinned,
                None => metrics.push((key.clone(), pinned)),
            }
            println!("bench_gate: kept curated {key} = {pinned}");
        }
    }
    metrics.sort_by(|a, b| a.0.cmp(&b.0));
    let gated: Vec<&str> = GATED.iter().map(|(bin, _)| *bin).collect();
    let mut fields: Vec<(&str, Json)> = vec![
        ("schema", "paris-bench-baseline/v1".into()),
        (
            "note",
            format!(
                "Quick-mode (PARIS_BENCH_QUICK=1) metrics from the gated benches ({}). \
                 Sim metrics are deterministic in simulated time; fig_reads' absolute \
                 threaded throughputs/latencies are machine-dependent and informational \
                 — the gate checks ratios, ceilings and violation counts. Refresh with \
                 `bench_gate --write-baseline` after rerunning the gated benches; \
                 entries in `curated` override measured values and survive refreshes.",
                gated.join(", ")
            )
            .into(),
        ),
        (
            "metrics",
            Json::Obj(
                metrics
                    .into_iter()
                    .map(|(k, v)| (k, Json::Num(v)))
                    .collect(),
            ),
        ),
    ];
    if let Some(curated) = curated {
        fields.push(("curated", Json::Obj(curated)));
    }
    if let Some(notes) = curated_notes {
        fields.push(("curated_notes", notes));
    }
    let doc = Json::obj(fields);
    std::fs::write(baseline_path, doc.render())
        .unwrap_or_else(|e| panic!("bench_gate: cannot write {baseline_path}: {e}"));
    println!("bench_gate: wrote {baseline_path}");
    std::process::exit(0);
}

fn main() {
    let baseline_path =
        std::env::var("PARIS_BASELINE").unwrap_or_else(|_| "bench/baseline.json".to_string());
    let results_dir = std::env::var("PARIS_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());

    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--list-gated") => {
            for (bin, _) in GATED {
                println!("{bin}");
            }
        }
        Some("--write-baseline") => write_baseline(&baseline_path, &results_dir),
        Some(other) => {
            eprintln!(
                "bench_gate: unknown argument {other} (try --list-gated or --write-baseline)"
            );
            std::process::exit(2);
        }
        None => gate(&baseline_path, &results_dir),
    }
}
