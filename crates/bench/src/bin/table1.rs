//! Table I: taxonomy of causally consistent systems — transaction support,
//! non-blocking reads, partial replication and dependency-metadata cost —
//! with PaRiS's "1 timestamp" claim *measured* on the wire codec.

use paris_bench::section;
use paris_core::metadata::{measured_paris_snapshot_metadata, table1, MetadataCost};
use paris_proto::{wire, Msg};
use paris_types::{DcId, Key, PartitionId, ServerId, Timestamp, TxId, Value, WriteSetEntry};

fn main() {
    section("Table I: taxonomy of CC systems");
    println!(
        "\n  {:<16} {:>9} {:>13} {:>13} {:>11} {:>12}",
        "System", "Txs", "Nonbl.reads", "Partial rep.", "Meta-data", "bytes (M=10)"
    );
    for row in table1() {
        println!(
            "  {:<16} {:>9} {:>13} {:>13} {:>11} {:>12}",
            row.name,
            row.txs.to_string(),
            if row.nonblocking_reads { "yes" } else { "no" },
            if row.partial_replication { "yes" } else { "no" },
            row.metadata.label(),
            row.metadata.bytes(10, 25),
        );
    }

    section("Measured PaRiS metadata (wire codec)");
    let snapshot_meta = measured_paris_snapshot_metadata();
    println!("\n  snapshot/dependency metadata on StartTxReq: {snapshot_meta} bytes (one 8-byte timestamp)");

    // Metadata per protocol message, independent of M and N.
    let tx = TxId::new(ServerId::new(DcId(3), PartitionId(17)), 9);
    let srv = ServerId::new(DcId(1), PartitionId(4));
    let msgs = vec![
        Msg::StartTxReq {
            client_ust: Timestamp::from_parts(1, 0),
        },
        Msg::StartTxResp {
            tx,
            snapshot: Timestamp::from_parts(2, 0),
        },
        Msg::ReadSliceReq {
            tx,
            snapshot: Timestamp::from_parts(2, 0),
            keys: vec![Key(1), Key(2), Key(3)],
            reply_to: srv,
        },
        Msg::PrepareReq {
            tx,
            snapshot: Timestamp::from_parts(2, 0),
            ht: Timestamp::from_parts(3, 0),
            writes: vec![WriteSetEntry::new(Key(1), Value::filled(8, 1))],
            reply_to: srv,
            src_dc: DcId(3),
        },
        Msg::CommitTx {
            tx,
            ct: Timestamp::from_parts(4, 0),
        },
        Msg::Heartbeat {
            partition: PartitionId(4),
            watermark: Timestamp::from_parts(5, 0),
        },
        Msg::UstBroadcast {
            ust: Timestamp::from_parts(6, 0),
            s_old: Timestamp::from_parts(5, 0),
        },
    ];
    println!(
        "\n  {:<16} {:>12} {:>16}",
        "message", "total bytes", "metadata bytes"
    );
    for msg in &msgs {
        println!(
            "  {:<16} {:>12} {:>16}",
            msg.kind(),
            wire::encoded_len(msg),
            wire::metadata_len(msg),
        );
    }
    println!(
        "\n  For comparison, a per-DC vector at M=10 costs {} bytes and a\n  \
         dependency list at 25 deps costs {} bytes per message.",
        MetadataCost::PerDc.bytes(10, 0),
        MetadataCost::PerDependency.bytes(10, 25),
    );
    assert_eq!(
        snapshot_meta, 8,
        "PaRiS tracks dependencies with 1 timestamp"
    );
}
