//! Table I: taxonomy of causally consistent systems — transaction support,
//! non-blocking reads, partial replication and dependency-metadata cost —
//! with PaRiS's "1 timestamp" claim *measured* on the wire codec, for both
//! wire encodings (fixed-width v1 and varint v2).
//!
//! Besides the taxonomy, this bench is the byte-level acceptance gate of
//! wire v2: it runs the same seeded simulated deployment twice (identical
//! load, identical message flow — only the byte accounting differs) and
//! **fails** unless v2 cuts background wire bytes (Replicate, Gossip,
//! Heartbeat, UST broadcast) by at least 30% with zero consistency
//! violations. The per-run byte totals feed `bench/baseline.json` through
//! `BENCH_table1.json`, so a codec change that bloats frames trips the CI
//! perf gate even when it stays above the 30% floor.

use paris_bench::json::Json;
use paris_bench::{
    bench_doc, paper_deployment, section, warmup_micros, window_micros, write_bench_json,
};
use paris_core::metadata::{measured_paris_snapshot_metadata, table1, MetadataCost};
use paris_proto::{wire, wire2, Msg};
use paris_runtime::{Cluster, RunReport};
use paris_types::{
    DcId, Key, PartitionId, ServerId, Timestamp, TxId, Value, WireFormat, WriteSetEntry,
};
use paris_workload::WorkloadConfig;

/// Minimum background-traffic byte reduction v2 must deliver (fraction).
const REQUIRED_BACKGROUND_CUT: f64 = 0.30;

/// Representative protocol messages with realistic field magnitudes: an
/// uptime-scale timestamp (an hour of microseconds exercises multi-byte
/// varints; Unix-epoch stamps do not fit the 48-bit physical field).
fn sample_messages() -> Vec<Msg> {
    let ts = |seq: u64| Timestamp::from_parts(3_600_000_000 + seq, 3);
    let tx = TxId::new(ServerId::new(DcId(3), PartitionId(17)), 9);
    let srv = ServerId::new(DcId(1), PartitionId(4));
    vec![
        Msg::StartTxReq { client_ust: ts(0) },
        Msg::StartTxResp {
            tx,
            snapshot: ts(1),
        },
        Msg::ReadSliceReq {
            tx,
            snapshot: ts(1),
            keys: vec![Key(1), Key(2), Key(3)],
            reply_to: srv,
        },
        Msg::PrepareReq {
            tx,
            snapshot: ts(1),
            ht: ts(2),
            writes: vec![WriteSetEntry::new(Key(1), Value::filled(8, 1))],
            reply_to: srv,
            src_dc: DcId(3),
        },
        Msg::CommitTx { tx, ct: ts(3) },
        Msg::Heartbeat {
            partition: PartitionId(4),
            watermark: ts(4),
        },
        Msg::UstBroadcast {
            ust: ts(5),
            s_old: ts(4),
        },
    ]
}

/// One equal-load simulated run under the given encoding.
fn equal_load_run(wire: WireFormat) -> (RunReport, u64) {
    let mut sim = paper_deployment(
        paris_types::Mode::Paris,
        WorkloadConfig::read_heavy(),
        8,
        42,
    )
    .record_history(true)
    .wire_format(wire)
    .build_sim()
    .expect("valid table1 deployment");
    let report = sim
        .run_workload(warmup_micros(), window_micros())
        .expect("simulated workload cannot fail");
    let background = sim.net_background_bytes();
    (report, background)
}

fn main() {
    section("Table I: taxonomy of CC systems");
    println!(
        "\n  {:<16} {:>9} {:>13} {:>13} {:>11} {:>12}",
        "System", "Txs", "Nonbl.reads", "Partial rep.", "Meta-data", "bytes (M=10)"
    );
    for row in table1() {
        println!(
            "  {:<16} {:>9} {:>13} {:>13} {:>11} {:>12}",
            row.name,
            row.txs.to_string(),
            if row.nonblocking_reads { "yes" } else { "no" },
            if row.partial_replication { "yes" } else { "no" },
            row.metadata.label(),
            row.metadata.bytes(10, 25),
        );
    }

    section("Measured PaRiS metadata (wire codec)");
    let snapshot_meta = measured_paris_snapshot_metadata();
    let start = Msg::StartTxReq {
        client_ust: Timestamp::from_parts(3_600_000_000, 3),
    };
    let v2_snapshot_meta = wire::metadata_len_with(&start, WireFormat::V2);
    println!(
        "\n  snapshot/dependency metadata on StartTxReq: {snapshot_meta} bytes under v1 \
         (one fixed-width timestamp), {v2_snapshot_meta} bytes under v2 (varint-trimmed)"
    );

    section("Wire v1 vs v2: per-message bytes");
    let msgs = sample_messages();
    println!(
        "\n  {:<16} {:>8} {:>8} {:>8}   {:>10} {:>10}",
        "message", "v1 B", "v2 B", "cut %", "v1 meta B", "v2 meta B"
    );
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let mut points: Vec<Json> = Vec::new();
    for msg in &msgs {
        let v1 = wire::encoded_len(msg);
        let v2 = wire2::encoded_len(msg);
        let m1 = wire::metadata_len_with(msg, WireFormat::V1);
        let m2 = wire::metadata_len_with(msg, WireFormat::V2);
        let cut = 100.0 * (1.0 - v2 as f64 / v1 as f64);
        println!(
            "  {:<16} {v1:>8} {v2:>8} {cut:>7.1}%   {m1:>10} {m2:>10}",
            msg.kind()
        );
        points.push(Json::obj(vec![
            ("figure", "table1_wire".into()),
            ("message", msg.kind().into()),
            ("v1_bytes", (v1 as u64).into()),
            ("v2_bytes", (v2 as u64).into()),
            ("v1_metadata_bytes", (m1 as u64).into()),
            ("v2_metadata_bytes", (m2 as u64).into()),
        ]));
    }
    println!(
        "\n  For comparison, a per-DC vector at M=10 costs {} bytes and a\n  \
         dependency list at 25 deps costs {} bytes per message.",
        MetadataCost::PerDc.bytes(10, 0),
        MetadataCost::PerDependency.bytes(10, 25),
    );

    section("Equal-load byte accounting: v1 vs v2 (same seed, same flow)");
    let (r1, bg1) = equal_load_run(WireFormat::V1);
    let (r2, bg2) = equal_load_run(WireFormat::V2);
    let cut = 1.0 - bg2 as f64 / bg1 as f64;
    println!(
        "\n  v1: {:>12} total B  {:>12} background B  {} msgs  {:.1} KTx/s",
        r1.net_bytes,
        bg1,
        r1.net_messages,
        r1.ktps()
    );
    println!(
        "  v2: {:>12} total B  {:>12} background B  {} msgs  {:.1} KTx/s",
        r2.net_bytes,
        bg2,
        r2.net_messages,
        r2.ktps()
    );
    println!(
        "  background cut: {:.1}% (required ≥ {:.0}%)",
        cut * 100.0,
        REQUIRED_BACKGROUND_CUT * 100.0
    );

    let committed = r2.stats.committed.max(1) as f64;
    metrics.push(("table1_v1_net_bytes".into(), r1.net_bytes as f64));
    metrics.push(("table1_v2_net_bytes".into(), r2.net_bytes as f64));
    metrics.push(("table1_v1_background_net_bytes".into(), bg1 as f64));
    metrics.push(("table1_v2_background_net_bytes".into(), bg2 as f64));
    metrics.push(("table1_net_messages".into(), r2.net_messages as f64));
    metrics.push(("table1_background_reduction_pct".into(), cut * 100.0));
    metrics.push((
        "table1_v2_bytes_per_tx".into(),
        r2.net_bytes as f64 / committed,
    ));
    metrics.push((
        "table1_violations".into(),
        (r1.violations.len() + r2.violations.len()) as f64,
    ));
    points.push(Json::obj(vec![
        ("figure", "table1_equal_load".into()),
        ("v1_net_bytes", r1.net_bytes.into()),
        ("v2_net_bytes", r2.net_bytes.into()),
        ("v1_background_bytes", bg1.into()),
        ("v2_background_bytes", bg2.into()),
        ("net_messages", r2.net_messages.into()),
        ("background_reduction_pct", (cut * 100.0).into()),
    ]));
    write_bench_json("BENCH_table1.json", &bench_doc("table1", metrics, points));

    // Acceptance: the claims this table makes must hold on the codecs it
    // describes, or the bench itself goes red.
    assert_eq!(
        snapshot_meta, 8,
        "PaRiS tracks dependencies with 1 timestamp"
    );
    assert!(
        v2_snapshot_meta < snapshot_meta,
        "v2 must trim the one-timestamp metadata below v1's fixed 8 bytes"
    );
    assert_eq!(
        r1.net_messages, r2.net_messages,
        "the encoding must not change the message flow (byte accounting only)"
    );
    assert!(
        r1.violations.is_empty() && r2.violations.is_empty(),
        "equal-load runs must be violation-free"
    );
    assert!(
        cut >= REQUIRED_BACKGROUND_CUT,
        "wire v2 must cut background traffic by ≥{:.0}% (measured {:.1}%)",
        REQUIRED_BACKGROUND_CUT * 100.0,
        cut * 100.0
    );
}
