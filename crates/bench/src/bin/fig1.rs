//! Figure 1: throughput vs. average transaction latency, PaRiS vs BPR.
//!
//! (a) 95:5 r:w ratio — paper: PaRiS up to 1.47× higher throughput with
//!     5.91× lower latency.
//! (b) 50:50 r:w ratio — paper: up to 1.46× higher throughput with
//!     20.56× lower latency.
//!
//! Deployment: 5 DCs, 45 partitions, R = 2, 4 partitions per transaction,
//! zipfian 0.99, 95:5 local:multi (paper §V-A defaults). Each dot is one
//! offered-load level (client sessions per DC).
//!
//! Besides the CSVs, emits `results/BENCH_fig1.json` whose flat `metrics`
//! map (peak KTx/s and peak-point message counts per mode and workload)
//! feeds the CI perf-regression gate (`bench_gate`).

use paris_bench::{
    bench_doc, client_ladder, json::Json, load_sweep, paper_deployment, peak, section,
    warmup_micros, window_micros, write_bench_json, write_csv,
};
use paris_runtime::{Backend, Paris};
use paris_types::Mode;
use paris_workload::WorkloadConfig;

/// `PARIS_BENCH_BACKEND=socket` reroutes fig1 to a multi-process smoke:
/// the paper shape (90 servers) is unreasonable as one process each, so
/// the socket run measures a 2-DC × 4-partition deployment (8 child
/// processes) over loopback, checks the consistency checker's verdict,
/// and emits `BENCH_fig1_socket.json` — informational, never part of the
/// perf gate baseline.
fn socket_smoke() {
    section("Fig 1 socket smoke: multi-process over loopback TCP");
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let mut points: Vec<Json> = Vec::new();
    let mut violations_total = 0usize;
    for mode in [Mode::Bpr, Mode::Paris] {
        for clients in [2u32, 8] {
            let mut cluster = Paris::builder()
                .dcs(2)
                .partitions(4)
                .replication(2)
                .keys_per_partition(10_000)
                .mode(mode)
                .clients_per_dc(clients)
                .workload(WorkloadConfig::read_heavy())
                .seed(42 + u64::from(clients))
                .record_history(true)
                .backend(Backend::Socket)
                .build()
                .expect("valid socket deployment");
            let report = cluster
                .run_workload(warmup_micros(), window_micros())
                .expect("socket workload failed");
            println!(
                "  {mode:<6} {clients:>3} clients/DC: {:.1} KTx/s, mean {:.2} ms, \
                 {} wire msgs, {} violations",
                report.ktps(),
                report.stats.mean_latency_ms(),
                report.net_messages,
                report.violations.len(),
            );
            violations_total += report.violations.len();
            let mode_slug = match mode {
                Mode::Paris => "paris",
                Mode::Bpr => "bpr",
            };
            metrics.push((format!("socket_{mode_slug}_{clients}c_ktps"), report.ktps()));
            metrics.push((
                format!("socket_{mode_slug}_{clients}c_net_bytes"),
                report.net_bytes as f64,
            ));
            points.push(Json::obj(vec![
                ("figure", "fig1_socket".into()),
                ("mode", mode.to_string().into()),
                ("clients_per_dc", clients.into()),
                ("ktps", report.ktps().into()),
                ("mean_ms", report.stats.mean_latency_ms().into()),
                ("net_messages", report.net_messages.into()),
                ("net_bytes", report.net_bytes.into()),
                ("violations", (report.violations.len() as u64).into()),
            ]));
        }
    }
    write_bench_json(
        "BENCH_fig1_socket.json",
        &bench_doc("fig1_socket", metrics, points),
    );
    assert_eq!(violations_total, 0, "socket backend violated TCC");
}

fn main() {
    if std::env::var("PARIS_BENCH_BACKEND").as_deref() == Ok("socket") {
        return socket_smoke();
    }
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let mut points: Vec<Json> = Vec::new();
    for (label, slug, workload, csv) in [
        (
            "Fig 1a: 95:5 r:w",
            "fig1a",
            WorkloadConfig::read_heavy(),
            "fig1a.csv",
        ),
        (
            "Fig 1b: 50:50 r:w",
            "fig1b",
            WorkloadConfig::write_heavy(),
            "fig1b.csv",
        ),
    ] {
        section(label);
        let mut rows = Vec::new();
        let mut peaks = Vec::new();
        for mode in [Mode::Bpr, Mode::Paris] {
            eprintln!("{mode} sweep:");
            let sweep = load_sweep(mode, &workload, &client_ladder(mode), |mode, wl, c| {
                paper_deployment(mode, wl, c, 42 + u64::from(c))
            });
            println!(
                "\n  {mode:<6} {:>12} {:>14} {:>12} {:>12}",
                "clients/DC", "tput (KTx/s)", "mean (ms)", "p99 (ms)"
            );
            for p in &sweep {
                println!(
                    "  {mode:<6} {:>12} {:>14.1} {:>12.2} {:>12.2}",
                    p.clients_per_dc,
                    p.report.ktps(),
                    p.report.stats.mean_latency_ms(),
                    p.report.stats.percentile_ms(99.0),
                );
                rows.push(format!(
                    "{mode},{},{:.3},{:.3},{:.3}",
                    p.clients_per_dc,
                    p.report.ktps(),
                    p.report.stats.mean_latency_ms(),
                    p.report.stats.percentile_ms(99.0),
                ));
                points.push(Json::obj(vec![
                    ("figure", slug.into()),
                    ("mode", mode.to_string().into()),
                    ("clients_per_dc", p.clients_per_dc.into()),
                    ("ktps", p.report.ktps().into()),
                    ("mean_ms", p.report.stats.mean_latency_ms().into()),
                    ("p99_ms", p.report.stats.percentile_ms(99.0).into()),
                    ("net_messages", p.report.net_messages.into()),
                    ("net_bytes", p.report.net_bytes.into()),
                ]));
            }
            let best = peak(&sweep).report.clone();
            let mode_slug = match mode {
                Mode::Paris => "paris",
                Mode::Bpr => "bpr",
            };
            metrics.push((format!("{slug}_{mode_slug}_peak_ktps"), best.ktps()));
            metrics.push((
                format!("{slug}_{mode_slug}_peak_net_messages"),
                best.net_messages as f64,
            ));
            metrics.push((
                format!("{slug}_{mode_slug}_peak_net_bytes"),
                best.net_bytes as f64,
            ));
            metrics.push((
                format!("{slug}_{mode_slug}_peak_bytes_per_tx"),
                best.net_bytes as f64 / best.stats.committed.max(1) as f64,
            ));
            peaks.push((mode, best));
        }
        write_csv(csv, "mode,clients_per_dc,ktps,mean_ms,p99_ms", &rows);

        // The paper's headline ratios at peak throughput.
        let bpr = &peaks[0].1;
        let paris = &peaks[1].1;
        println!(
            "\n  PaRiS/BPR at peak: throughput {:.2}x, latency {:.2}x lower",
            paris.ktps() / bpr.ktps(),
            bpr.stats.mean_latency_ms() / paris.stats.mean_latency_ms(),
        );
        println!(
            "  (paper: {} — throughput up to {}, latency {} lower)",
            label,
            if label.contains("95:5") {
                "1.47x"
            } else {
                "1.46x"
            },
            if label.contains("95:5") {
                "5.91x"
            } else {
                "20.56x"
            },
        );
    }
    write_bench_json("BENCH_fig1.json", &bench_doc("fig1", metrics, points));
}
