//! Figure 1: throughput vs. average transaction latency, PaRiS vs BPR.
//!
//! (a) 95:5 r:w ratio — paper: PaRiS up to 1.47× higher throughput with
//!     5.91× lower latency.
//! (b) 50:50 r:w ratio — paper: up to 1.46× higher throughput with
//!     20.56× lower latency.
//!
//! Deployment: 5 DCs, 45 partitions, R = 2, 4 partitions per transaction,
//! zipfian 0.99, 95:5 local:multi (paper §V-A defaults). Each dot is one
//! offered-load level (client sessions per DC).

use paris_bench::{client_ladder, load_sweep, paper_deployment, peak, section, write_csv};
use paris_types::Mode;
use paris_workload::WorkloadConfig;

fn main() {
    for (label, workload, csv) in [
        (
            "Fig 1a: 95:5 r:w",
            WorkloadConfig::read_heavy(),
            "fig1a.csv",
        ),
        (
            "Fig 1b: 50:50 r:w",
            WorkloadConfig::write_heavy(),
            "fig1b.csv",
        ),
    ] {
        section(label);
        let mut rows = Vec::new();
        let mut peaks = Vec::new();
        for mode in [Mode::Bpr, Mode::Paris] {
            eprintln!("{mode} sweep:");
            let points = load_sweep(mode, &workload, &client_ladder(mode), |mode, wl, c| {
                paper_deployment(mode, wl, c, 42 + u64::from(c))
            });
            println!(
                "\n  {mode:<6} {:>12} {:>14} {:>12} {:>12}",
                "clients/DC", "tput (KTx/s)", "mean (ms)", "p99 (ms)"
            );
            for p in &points {
                println!(
                    "  {mode:<6} {:>12} {:>14.1} {:>12.2} {:>12.2}",
                    p.clients_per_dc,
                    p.report.ktps(),
                    p.report.stats.mean_latency_ms(),
                    p.report.stats.percentile_ms(99.0),
                );
                rows.push(format!(
                    "{mode},{},{:.3},{:.3},{:.3}",
                    p.clients_per_dc,
                    p.report.ktps(),
                    p.report.stats.mean_latency_ms(),
                    p.report.stats.percentile_ms(99.0),
                ));
            }
            peaks.push((mode, peak(&points).report.clone()));
        }
        write_csv(csv, "mode,clients_per_dc,ktps,mean_ms,p99_ms", &rows);

        // The paper's headline ratios at peak throughput.
        let bpr = &peaks[0].1;
        let paris = &peaks[1].1;
        println!(
            "\n  PaRiS/BPR at peak: throughput {:.2}x, latency {:.2}x lower",
            paris.ktps() / bpr.ktps(),
            bpr.stats.mean_latency_ms() / paris.stats.mean_latency_ms(),
        );
        println!(
            "  (paper: {} — throughput up to {}, latency {} lower)",
            label,
            if label.contains("95:5") {
                "1.47x"
            } else {
                "1.46x"
            },
            if label.contains("95:5") {
                "5.91x"
            } else {
                "20.56x"
            },
        );
    }
}
