//! Figure 1: throughput vs. average transaction latency, PaRiS vs BPR.
//!
//! (a) 95:5 r:w ratio — paper: PaRiS up to 1.47× higher throughput with
//!     5.91× lower latency.
//! (b) 50:50 r:w ratio — paper: up to 1.46× higher throughput with
//!     20.56× lower latency.
//!
//! Deployment: 5 DCs, 45 partitions, R = 2, 4 partitions per transaction,
//! zipfian 0.99, 95:5 local:multi (paper §V-A defaults). Each dot is one
//! offered-load level (client sessions per DC).
//!
//! Besides the CSVs, emits `results/BENCH_fig1.json` whose flat `metrics`
//! map (peak KTx/s and peak-point message counts per mode and workload)
//! feeds the CI perf-regression gate (`bench_gate`).

use paris_bench::{
    bench_doc, client_ladder, json::Json, load_sweep, paper_deployment, peak, section,
    write_bench_json, write_csv,
};
use paris_types::Mode;
use paris_workload::WorkloadConfig;

fn main() {
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let mut points: Vec<Json> = Vec::new();
    for (label, slug, workload, csv) in [
        (
            "Fig 1a: 95:5 r:w",
            "fig1a",
            WorkloadConfig::read_heavy(),
            "fig1a.csv",
        ),
        (
            "Fig 1b: 50:50 r:w",
            "fig1b",
            WorkloadConfig::write_heavy(),
            "fig1b.csv",
        ),
    ] {
        section(label);
        let mut rows = Vec::new();
        let mut peaks = Vec::new();
        for mode in [Mode::Bpr, Mode::Paris] {
            eprintln!("{mode} sweep:");
            let sweep = load_sweep(mode, &workload, &client_ladder(mode), |mode, wl, c| {
                paper_deployment(mode, wl, c, 42 + u64::from(c))
            });
            println!(
                "\n  {mode:<6} {:>12} {:>14} {:>12} {:>12}",
                "clients/DC", "tput (KTx/s)", "mean (ms)", "p99 (ms)"
            );
            for p in &sweep {
                println!(
                    "  {mode:<6} {:>12} {:>14.1} {:>12.2} {:>12.2}",
                    p.clients_per_dc,
                    p.report.ktps(),
                    p.report.stats.mean_latency_ms(),
                    p.report.stats.percentile_ms(99.0),
                );
                rows.push(format!(
                    "{mode},{},{:.3},{:.3},{:.3}",
                    p.clients_per_dc,
                    p.report.ktps(),
                    p.report.stats.mean_latency_ms(),
                    p.report.stats.percentile_ms(99.0),
                ));
                points.push(Json::obj(vec![
                    ("figure", slug.into()),
                    ("mode", mode.to_string().into()),
                    ("clients_per_dc", p.clients_per_dc.into()),
                    ("ktps", p.report.ktps().into()),
                    ("mean_ms", p.report.stats.mean_latency_ms().into()),
                    ("p99_ms", p.report.stats.percentile_ms(99.0).into()),
                    ("net_messages", p.report.net_messages.into()),
                    ("net_bytes", p.report.net_bytes.into()),
                ]));
            }
            let best = peak(&sweep).report.clone();
            let mode_slug = match mode {
                Mode::Paris => "paris",
                Mode::Bpr => "bpr",
            };
            metrics.push((format!("{slug}_{mode_slug}_peak_ktps"), best.ktps()));
            metrics.push((
                format!("{slug}_{mode_slug}_peak_net_messages"),
                best.net_messages as f64,
            ));
            peaks.push((mode, best));
        }
        write_csv(csv, "mode,clients_per_dc,ktps,mean_ms,p99_ms", &rows);

        // The paper's headline ratios at peak throughput.
        let bpr = &peaks[0].1;
        let paris = &peaks[1].1;
        println!(
            "\n  PaRiS/BPR at peak: throughput {:.2}x, latency {:.2}x lower",
            paris.ktps() / bpr.ktps(),
            bpr.stats.mean_latency_ms() / paris.stats.mean_latency_ms(),
        );
        println!(
            "  (paper: {} — throughput up to {}, latency {} lower)",
            label,
            if label.contains("95:5") {
                "1.47x"
            } else {
                "1.46x"
            },
            if label.contains("95:5") {
                "5.91x"
            } else {
                "20.56x"
            },
        );
    }
    write_bench_json("BENCH_fig1.json", &bench_doc("fig1", metrics, points));
}
