//! Chaos suite: scripted fault schedules with the consistency checker as
//! the judge.
//!
//! **Sim drills.** Every scenario in
//! [`paris_runtime::CHAOS_SCENARIOS`] runs on the deterministic sim
//! backend with a scripted [`paris_types::FaultPlan`] — partitions
//! mid-commit, a DC crash that rejoins far behind the UST, clock-skew
//! steps past the bound, a slowed gossip link, a flapping link, rolling
//! DC outages. Each drill gates on: zero checker violations, zero
//! convergence violations (no committed write lost), a UST that stays
//! monotone through the heal and recovers, and clients that kept
//! committing. Deterministic: same scenario ⇒ bit-identical verdicts.
//!
//! **Socket rolling-restart arm.** On the socket backend (real child
//! processes, durability on) every server is killed and restarted in
//! turn — the rolling-maintenance drill — with tracked commits between
//! rounds; afterwards every tracked key must read back exactly from both
//! DCs and the replicas must converge.
//!
//! Emits `results/BENCH_chaos.json`; `chaos_violations_total` and the
//! per-scenario `chaos_<name>_violations` metrics are gated to exactly 0
//! by `bench_gate`. Committed counts are informational.
//!
//! CLI (for CI isolation): `--list` prints one scenario name per line;
//! `--scenario <name>` runs a single drill (no JSON) and exits non-zero
//! on any violation.

use std::collections::BTreeMap;

use paris_bench::{bench_doc, json::Json, quick, section, write_bench_json};
use paris_runtime::{chaos_scenario, Backend, Cluster, Durability, FsyncPolicy, Paris};
use paris_runtime::{ChaosOutcome, CHAOS_SCENARIOS};
use paris_types::{Key, Mode, Value};

/// The socket arm's name in `--list`/`--scenario` (it is not a sim
/// scenario, so it lives here rather than in the library).
const SOCKET_ARM: &str = "rolling_restart_socket";

fn print_outcome(o: &ChaosOutcome) {
    println!(
        "  {:<28} committed {:>6}  aborted {:>4}  checker {}  convergence {}  \
         ust monotone {}  recovered {} (lag {} µs)  => {}",
        o.name,
        o.committed,
        o.aborted,
        o.checker_violations,
        o.convergence_violations,
        o.ust_monotone,
        o.ust_recovered,
        o.ust_lag_micros,
        if o.passed() { "PASS" } else { "FAIL" },
    );
}

/// Runs one sim drill and returns (metrics, point).
fn run_sim_scenario(name: &str) -> (Vec<(String, f64)>, Json) {
    let scenario = chaos_scenario(name).unwrap_or_else(|| panic!("unknown chaos scenario {name}"));
    let outcome = scenario.run(quick()).expect("chaos drill shape is valid");
    print_outcome(&outcome);
    let metrics = vec![
        (
            format!("chaos_{name}_violations"),
            outcome.violations_total() as f64,
        ),
        (format!("chaos_{name}_committed"), outcome.committed as f64),
    ];
    let point = Json::obj(vec![
        ("figure", "fig_chaos".into()),
        ("scenario", name.into()),
        ("backend", "sim".into()),
        ("summary", scenario.summary.into()),
        ("committed", outcome.committed.into()),
        ("aborted", outcome.aborted.into()),
        (
            "checker_violations",
            (outcome.checker_violations as u64).into(),
        ),
        (
            "convergence_violations",
            (outcome.convergence_violations as u64).into(),
        ),
        ("ust_monotone", outcome.ust_monotone.into()),
        ("ust_recovered", outcome.ust_recovered.into()),
        ("ust_lag_micros", outcome.ust_lag_micros.into()),
        ("violations_total", outcome.violations_total().into()),
    ]);
    (metrics, point)
}

/// The socket arm: roll a kill + recover + rejoin across every server
/// (2 DCs × 2 partitions × R = 2 → four child processes), tracked
/// commits between rounds, full readback from both DCs at the end.
/// Returns (violations_total, metrics, point).
fn rolling_restart_socket() -> (u64, Vec<(String, f64)>, Json) {
    section("rolling restart (socket, durability on)");
    let dir = std::env::temp_dir().join(format!("paris-fig-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let commits_per_round = if quick() { 8u64 } else { 20 };

    let mut cluster = Paris::builder()
        .dcs(2)
        .partitions(2)
        .replication(2)
        .keys_per_partition(100)
        .mode(Mode::Paris)
        .clients_per_dc(0)
        .uniform_latency_micros(2_000)
        .jitter(0.0)
        .seed(1303)
        .record_history(true)
        .durability(Durability::new(&dir).fsync(FsyncPolicy::Never))
        .backend(Backend::Socket)
        .build()
        .expect("valid socket deployment");

    let writer0 = cluster.open_client(0).expect("open dc0 client");
    let writer1 = cluster.open_client(1).expect("open dc1 client");
    let mut expected: BTreeMap<Key, Value> = BTreeMap::new();
    let mut tick = 0u64;
    let mut commit_round = |cluster: &mut Box<dyn Cluster>, round: u64| {
        for i in 0..commits_per_round {
            let writer = if i % 2 == 0 { writer0 } else { writer1 };
            let key = Key((tick + i) % 40);
            let value = Value::from(format!("round-{round}-{i}").as_str());
            let mut txn = cluster.begin(writer).expect("begin");
            txn.write(key, value.clone());
            txn.commit().expect("tracked commit");
            expected.insert(key, value);
        }
        tick += commits_per_round;
        // Fire-and-forget replication: push every batch to its peer
        // replica before the next kill, or the outage would (correctly)
        // drop it at the dead server and prove nothing about recovery.
        cluster.stabilize(8);
    };

    commit_round(&mut cluster, 0);
    // 2 DCs × 2 partitions: server index = dc * 2 + partition.
    for index in 0..4usize {
        println!("  rolling server {index}: kill, recover, rejoin");
        cluster.kill_server(index).expect("kill server");
        cluster.restart_server(index).expect("restart server");
        cluster.stabilize(4);
        commit_round(&mut cluster, 1 + index as u64);
    }

    let mut lost = 0u64;
    for dc in 0..2u16 {
        let reader = cluster.open_client(dc).expect("open reader");
        for (key, want) in &expected {
            let mut txn = cluster.begin(reader).expect("begin readback");
            let got = txn.read_one(*key).expect("readback read");
            txn.commit().expect("readback commit");
            if got.as_ref() != Some(want) {
                lost += 1;
                println!("  LOST dc{dc} {key:?}: want {want:?}, got {got:?}");
            }
        }
    }
    let convergence = cluster.check_convergence().expect("convergence check");
    for v in &convergence {
        println!("  VIOLATION {v:?}");
    }
    let preserved = expected.len() as u64 - lost;
    let violations_total = lost + convergence.len() as u64;
    println!(
        "  {} tracked keys × 2 DCs, {lost} lost, {} convergence violations => {}",
        expected.len(),
        convergence.len(),
        if violations_total == 0 {
            "PASS"
        } else {
            "FAIL"
        },
    );
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);

    let metrics = vec![
        (
            format!("chaos_{SOCKET_ARM}_violations"),
            violations_total as f64,
        ),
        (
            format!("chaos_{SOCKET_ARM}_commits_preserved"),
            preserved as f64,
        ),
    ];
    let point = Json::obj(vec![
        ("figure", "fig_chaos".into()),
        ("scenario", SOCKET_ARM.into()),
        ("backend", "socket".into()),
        ("tracked_keys", (expected.len() as u64).into()),
        ("lost", lost.into()),
        ("convergence_violations", (convergence.len() as u64).into()),
        ("violations_total", violations_total.into()),
    ]);
    (violations_total, metrics, point)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--list") => {
            for s in CHAOS_SCENARIOS {
                println!("{}", s.name);
            }
            println!("{SOCKET_ARM}");
            return;
        }
        Some("--scenario") => {
            let name = args.get(1).expect("--scenario needs a name");
            let total = if name == SOCKET_ARM {
                rolling_restart_socket().0
            } else {
                let scenario =
                    chaos_scenario(name).unwrap_or_else(|| panic!("unknown chaos scenario {name}"));
                let outcome = scenario.run(quick()).expect("chaos drill shape is valid");
                print_outcome(&outcome);
                outcome.violations_total()
            };
            assert_eq!(total, 0, "chaos scenario {name} failed its verdicts");
            println!("fig_chaos --scenario {name}: PASS");
            return;
        }
        Some(other) => panic!("unknown argument {other} (use --list or --scenario <name>)"),
        None => {}
    }

    section("sim chaos drills (deterministic)");
    let mut metrics = Vec::new();
    let mut points = Vec::new();
    let mut total = 0u64;
    for s in CHAOS_SCENARIOS {
        let (m, p) = run_sim_scenario(s.name);
        // The per-scenario violations metric is the first entry.
        total += m[0].1 as u64;
        metrics.extend(m);
        points.push(p);
    }

    let (socket_total, socket_metrics, socket_point) = rolling_restart_socket();
    total += socket_total;
    metrics.extend(socket_metrics);
    points.push(socket_point);

    metrics.insert(0, ("chaos_violations_total".to_string(), total as f64));
    write_bench_json("BENCH_chaos.json", &bench_doc("fig_chaos", metrics, points));
    assert_eq!(total, 0, "chaos suite found violations");
    println!("\nfig_chaos: every drill passed (checker silent, nothing lost, UST recovered)");
}
