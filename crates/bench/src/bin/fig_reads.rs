//! Parallel non-blocking reads: read throughput vs. reader threads, read
//! admission vs. the registry, and pooled snapshot assignment.
//!
//! The paper's headline property (§I, §V) is that transactional reads are
//! served from the UST snapshot "on any server … with minimal overhead and
//! without blocking" — i.e. the read path parallelizes. Four measurements:
//!
//! 1. **Pool ladder (threaded backend).** A read-dominant zipfian mix at a
//!    fixed offered load sweeps `read_threads ∈ {1, 2, 4}` with modeled
//!    per-read occupancy (`read_service_micros`) — occupancy overlaps
//!    across pool threads, so read throughput must scale with the pool on
//!    any host, while the served data, the concurrency and the
//!    consistency checking stay fully real.
//! 2. **Registry contention point.** At `read_service_micros = 0` and the
//!    maximum pool, nothing throttles read admission — the in-flight
//!    registry itself is the hot spot. The same arm runs once with the
//!    slot registry (lock-free CAS admission) and once with
//!    `read_slots(0)` (the pre-slot mutexed registry); the ratio is what
//!    the slots buy at full contention. On a single-core host the two
//!    paths serialize anyway, so the ratio is gated relative to the
//!    committed baseline rather than self-checked.
//! 3. **Pooled start-tx latency.** `StartTxReq` (snapshot assignment,
//!    Alg. 2) also rides the pool, so the start phase must get *faster*
//!    as the pool widens — under the modeled occupancy, loop-served
//!    starts would be flat across pool sizes, while pooled starts shed
//!    lane queueing with every doubling. The ladder's start-latency
//!    ratio evidences that, and the service-0 max-pool arm contributes
//!    the absolute pooled start latency the gate tracks over time.
//! 4. **Sim lane ladder.** The deterministic backend's multi-queue read
//!    service model sweeps the same pool sizes in simulated time — exact,
//!    machine-independent scaling evidence, gated tightly.
//!
//! History recording is on and batching is on: every arm must finish with
//! **zero** checker violations.
//!
//! Self-checks (non-zero exit on failure):
//! * thread ladder throughput increases monotonically 1 → 2 → 4 reader
//!   threads (each step ≥ `MIN_STEP_GAIN`);
//! * sim lane ladder gains ≥ `SIM_MIN_TOTAL_GAIN` from 1 → 4 lanes;
//! * start-tx latency improves with the pool (≥ `MIN_STEP_GAIN` from
//!   1 → 4 reader threads — flat latency would mean starts fell back to
//!   the loop);
//! * zero consistency violations in every arm.
//!
//! Emits `results/fig_reads.csv` and `results/BENCH_reads.json`.

use paris_bench::{bench_doc, json::Json, quick, section, write_bench_json, write_csv};
use paris_runtime::{Cluster, Paris, RunReport, Tuning};
use paris_types::Mode;
use paris_workload::WorkloadConfig;

/// Reader-thread ladder (the paper scales reads across server cores).
const THREADS: [usize; 3] = [1, 2, 4];
/// Modeled per-slice-read service occupancy (µs): large enough that the
/// pool — not the transport or the OS scheduler — is the bottleneck.
const READ_SERVICE_MICROS: u64 = 250;
/// Offered load: closed-loop sessions per DC, identical in every arm.
const CLIENTS_PER_DC: u32 = 8;
/// Required per-step throughput gain (2 pool threads should roughly
/// double a pool-bound arm; 1.25× is a conservative floor).
const MIN_STEP_GAIN: f64 = 1.25;
/// Required total 1 → 4 lane gain on the deterministic backend (exact
/// simulated time, so there is no noise; it currently measures 1.86×,
/// leaving ~25% headroom before a modeled-scaling regression trips).
const SIM_MIN_TOTAL_GAIN: f64 = 1.5;

struct Arm {
    label: String,
    read_threads: usize,
    ktps: f64,
    kreads_s: f64,
    mean_ms: f64,
    p99_ms: f64,
    start_mean_us: f64,
    violations: usize,
}

struct ArmSpec {
    label: &'static str,
    read_threads: usize,
    read_service_micros: u64,
    /// `Some(0)` forces the mutexed fallback registry.
    read_slots: Option<usize>,
}

fn run_thread_arm(spec: &ArmSpec, warmup: u64, window: u64) -> Arm {
    let mut builder = Paris::builder()
        .dcs(2)
        .partitions(4)
        .replication(2)
        .keys_per_partition(64)
        .mode(Mode::Paris)
        .workload(WorkloadConfig::read_mostly())
        .clients_per_dc(CLIENTS_PER_DC)
        .uniform_latency_micros(10_000)
        .latency_scale(0.01) // 100 µs one-way inter-DC; local links are free
        .jitter(0.0)
        .seed(42)
        .batch_size(32) // batching on: coalescing must not disturb reads
        .record_history(true);
    let mut tuning = Tuning::default()
        .read_threads(spec.read_threads)
        .read_service_micros(spec.read_service_micros);
    if let Some(slots) = spec.read_slots {
        tuning = tuning.read_slots(slots);
    }
    builder = builder.tuning(tuning);
    let mut cluster = builder.build_thread().expect("valid fig_reads deployment");
    let report = cluster
        .run_workload(warmup, window)
        .expect("threaded workload cannot fail");
    let arm = arm_of(spec.label, spec.read_threads, &report);
    eprintln!(
        "  [{}] {} | {:.1} Kreads/s | start mean {:.0} µs",
        spec.label,
        report.summary(),
        arm.kreads_s,
        arm.start_mean_us
    );
    arm
}

fn arm_of(label: &str, read_threads: usize, report: &RunReport) -> Arm {
    let reads_per_tx = WorkloadConfig::read_mostly().reads_per_tx as f64;
    Arm {
        label: label.to_string(),
        read_threads,
        ktps: report.ktps(),
        kreads_s: report.ktps() * reads_per_tx,
        mean_ms: report.stats.mean_latency_ms(),
        p99_ms: report.stats.percentile_ms(99.0),
        start_mean_us: report.stats.start_latency.mean(),
        violations: report.violations.len(),
    }
}

/// One deterministic sim arm of the lane ladder: short WAN, heavy modeled
/// read occupancy, so the lanes bound the closed loop.
fn run_sim_arm(lanes: usize, warmup: u64, window: u64) -> Arm {
    let mut sim = Paris::builder()
        .dcs(2)
        .partitions(4)
        .replication(2)
        .keys_per_partition(64)
        .mode(Mode::Paris)
        .workload(WorkloadConfig::read_mostly())
        .clients_per_dc(CLIENTS_PER_DC)
        .uniform_latency_micros(1_000)
        .jitter(0.0)
        .seed(42)
        .batch_size(32)
        .tuning(
            Tuning::default()
                .read_threads(lanes)
                .read_service_micros(2_000),
        )
        .record_history(true)
        .build_sim()
        .expect("valid sim deployment");
    let report = sim
        .run_workload(warmup, window)
        .expect("sim workload cannot fail");
    let arm = arm_of(&format!("sim {lanes} lane(s)"), lanes, &report);
    eprintln!("  [{}] {}", arm.label, report.summary());
    arm
}

fn main() {
    section("Parallel non-blocking reads: pool scaling, registry contention, pooled starts");
    // Wall-clock windows: the threaded backend measures real time.
    let (warmup, window) = if quick() {
        (200_000, 1_200_000)
    } else {
        (500_000, 4_000_000)
    };

    let mut rows = Vec::new();
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let mut points: Vec<Json> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    let mut violations_total = 0u64;

    let record =
        |arm: &Arm, rows: &mut Vec<String>, points: &mut Vec<Json>, violations_total: &mut u64| {
            println!(
                "  {:>26} {:>14.2} {:>14.1} {:>11.2} {:>10.2} {:>13.0} {:>11}",
                arm.label,
                arm.ktps,
                arm.kreads_s,
                arm.mean_ms,
                arm.p99_ms,
                arm.start_mean_us,
                arm.violations
            );
            rows.push(format!(
                "{},{},{:.3},{:.1},{:.3},{:.3},{:.1},{}",
                arm.label.replace(',', ";"),
                arm.read_threads,
                arm.ktps,
                arm.kreads_s,
                arm.mean_ms,
                arm.p99_ms,
                arm.start_mean_us,
                arm.violations
            ));
            points.push(Json::obj(vec![
                ("arm", arm.label.clone().into()),
                ("read_threads", (arm.read_threads as u64).into()),
                ("ktps", arm.ktps.into()),
                ("kreads_s", arm.kreads_s.into()),
                ("mean_ms", arm.mean_ms.into()),
                ("p99_ms", arm.p99_ms.into()),
                ("start_mean_us", arm.start_mean_us.into()),
                ("violations", (arm.violations as u64).into()),
            ]));
            *violations_total += arm.violations as u64;
        };

    println!(
        "\n  {:>26} {:>14} {:>14} {:>11} {:>10} {:>13} {:>11}",
        "arm", "tput (KTx/s)", "Kreads/s", "mean (ms)", "p99 (ms)", "start (µs)", "violations"
    );

    // 1. Thread pool ladder (service-occupancy bound).
    let ladder: Vec<Arm> = THREADS
        .iter()
        .map(|&n| {
            run_thread_arm(
                &ArmSpec {
                    label: match n {
                        1 => "pool 1",
                        2 => "pool 2",
                        _ => "pool 4",
                    },
                    read_threads: n,
                    read_service_micros: READ_SERVICE_MICROS,
                    read_slots: None,
                },
                warmup,
                window,
            )
        })
        .collect();
    for arm in &ladder {
        record(arm, &mut rows, &mut points, &mut violations_total);
        // Deliberately no "ktps" substring: wall-clock thread throughput
        // is machine-dependent, so bench_gate treats the absolute numbers
        // as informational and gates only the ratios below.
        metrics.push((
            format!("reads_t{}_tx_s", arm.read_threads),
            arm.ktps * 1_000.0,
        ));
        if arm.violations != 0 {
            failures.push(format!(
                "{}: {} consistency violations",
                arm.label, arm.violations
            ));
        }
    }
    for pair in ladder.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        let gain = b.ktps / a.ktps.max(1e-9);
        println!(
            "  {} → {} reader threads: {:.2}× throughput",
            a.read_threads, b.read_threads, gain
        );
        if gain < MIN_STEP_GAIN {
            failures.push(format!(
                "{} → {} reader threads gained only {gain:.2}× (< {MIN_STEP_GAIN}×): \
                 read throughput must increase monotonically with the pool",
                a.read_threads, b.read_threads
            ));
        }
    }
    let speedup = ladder.last().unwrap().ktps / ladder.first().unwrap().ktps.max(1e-9);
    println!("  1 → 4 reader threads: {speedup:.2}× read throughput");
    metrics.push(("reads_speedup_4v1".into(), speedup));

    // 2. Pooled start-tx latency. Starts ride the same lanes as the
    //    occupancy-modeled reads, so the start phase must shed queueing
    //    with every pool doubling — if the StartTxReq tap silently broke
    //    (starts falling back to the mostly-idle loop), the start
    //    latencies across the ladder would flatten out instead. The loop
    //    baseline below is context: with reads occupying the 8 server
    //    loops at ~50% there is little queueing anywhere, which is why
    //    loop starts are cheap here — the pooled path is not a latency
    //    shortcut under saturation, it is what lets admission scale with
    //    the pool at all.
    let loop_arm = run_thread_arm(
        &ArmSpec {
            label: "loop (pool 0)",
            read_threads: 0,
            read_service_micros: READ_SERVICE_MICROS,
            read_slots: None,
        },
        warmup,
        window,
    );
    record(&loop_arm, &mut rows, &mut points, &mut violations_total);
    if loop_arm.violations != 0 {
        failures.push(format!(
            "loop baseline: {} consistency violations",
            loop_arm.violations
        ));
    }
    let start_pool_speedup =
        ladder.first().unwrap().start_mean_us / ladder.last().unwrap().start_mean_us.max(1e-9);
    println!(
        "  start-tx mean latency across the ladder: {:.0} → {:.0} → {:.0} µs \
         ({start_pool_speedup:.2}× from 1 → 4 reader threads; loop baseline {:.0} µs)",
        ladder[0].start_mean_us,
        ladder[1].start_mean_us,
        ladder[2].start_mean_us,
        loop_arm.start_mean_us
    );
    metrics.push(("reads_start_loop_mean_us".into(), loop_arm.start_mean_us));
    metrics.push(("reads_start_pool_speedup_4v1".into(), start_pool_speedup));
    if start_pool_speedup < MIN_STEP_GAIN {
        failures.push(format!(
            "start-tx latency improved only {start_pool_speedup:.2}× from 1 → 4 reader \
             threads (< {MIN_STEP_GAIN}×): starts are not riding the pool"
        ));
    }

    // 3. Registry contention point: zero service time, max pool — read
    //    admission itself is the hot spot. Slots vs the mutex registry.
    let contention_slots = run_thread_arm(
        &ArmSpec {
            label: "contention slots",
            read_threads: *THREADS.last().unwrap(),
            read_service_micros: 0,
            read_slots: None,
        },
        warmup,
        window,
    );
    let contention_mutex = run_thread_arm(
        &ArmSpec {
            label: "contention mutex",
            read_threads: *THREADS.last().unwrap(),
            read_service_micros: 0,
            read_slots: Some(0),
        },
        warmup,
        window,
    );
    for arm in [&contention_slots, &contention_mutex] {
        record(arm, &mut rows, &mut points, &mut violations_total);
        if arm.violations != 0 {
            failures.push(format!(
                "{}: {} consistency violations",
                arm.label, arm.violations
            ));
        }
    }
    let contention_ratio = contention_slots.ktps / contention_mutex.ktps.max(1e-9);
    println!(
        "  registry contention (service 0, pool {}): slots {:.2} KTx/s vs mutex {:.2} KTx/s \
         ({contention_ratio:.2}×)",
        THREADS.last().unwrap(),
        contention_slots.ktps,
        contention_mutex.ktps
    );
    metrics.push((
        "reads_contention_slot_tx_s".into(),
        contention_slots.ktps * 1_000.0,
    ));
    metrics.push((
        "reads_contention_mutex_tx_s".into(),
        contention_mutex.ktps * 1_000.0,
    ));
    // Gated against the baseline (the "speedup" rule): on multi-core
    // hosts the slots win outright; on a single hardware thread the two
    // admissions serialize and the ratio hovers near 1 — which is why
    // there is no absolute self-check here.
    metrics.push(("reads_contention_speedup_slots".into(), contention_ratio));
    // The absolute pooled start latency at the realistic (service-0)
    // operating point, tracked by the gate's latency rule.
    metrics.push((
        "reads_start_pooled_mean_us".into(),
        contention_slots.start_mean_us,
    ));

    // 4. Deterministic lane ladder on the simulated backend.
    println!();
    let (sim_warmup, sim_window) = (300_000, 2_000_000); // simulated time: always cheap
    let sim_ladder: Vec<Arm> = THREADS
        .iter()
        .map(|&n| run_sim_arm(n, sim_warmup, sim_window))
        .collect();
    for arm in &sim_ladder {
        record(arm, &mut rows, &mut points, &mut violations_total);
        if arm.violations != 0 {
            failures.push(format!(
                "{}: {} consistency violations",
                arm.label, arm.violations
            ));
        }
    }
    let sim_speedup = sim_ladder.last().unwrap().ktps / sim_ladder.first().unwrap().ktps.max(1e-9);
    println!("  sim 1 → 4 read lanes: {sim_speedup:.2}× throughput (exact simulated time)");
    metrics.push(("reads_sim_speedup_4v1".into(), sim_speedup));
    if sim_speedup < SIM_MIN_TOTAL_GAIN {
        failures.push(format!(
            "sim read lanes gained only {sim_speedup:.2}× from 1 → 4 \
             (< {SIM_MIN_TOTAL_GAIN}×): the multi-queue read service model stopped scaling"
        ));
    }

    metrics.push(("reads_violations_total".into(), violations_total as f64));

    write_csv(
        "fig_reads.csv",
        "arm,read_threads,ktps,kreads_s,mean_ms,p99_ms,start_mean_us,violations",
        &rows,
    );
    write_bench_json("BENCH_reads.json", &bench_doc("fig_reads", metrics, points));

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!(
        "\n  (reads and starts are served off the server loop by the pool; scaling comes from"
    );
    println!("   overlapping per-read occupancy, and admission is one CAS on a snapshot slot —");
    println!("   the parallel non-blocking read claim, measured end to end)");
}
