//! Parallel non-blocking reads: read throughput vs. reader threads.
//!
//! The paper's headline property (§I, §V) is that transactional reads are
//! served from the UST snapshot "on any server … with minimal overhead and
//! without blocking" — i.e. the read path parallelizes. This bench runs
//! the **threaded** backend (real server threads, real read-pool threads,
//! real races) under a read-dominant zipfian mix at a fixed offered load
//! (same clients, same workload, same seed) and sweeps the read-pool size
//! `read_threads ∈ {1, 2, 4}`.
//!
//! Per-slice-read service occupancy is modeled with
//! `read_service_micros` — the threaded counterpart of the sim's
//! `ServiceModel` read costs: each read *holds its serving thread* for a
//! fixed wall-clock interval, the way storage/CPU time occupies a core on
//! the paper's servers. Occupancy overlaps across pool threads, so read
//! throughput scales with the pool on any host (including single-core CI
//! boxes), while the served data, the concurrency, and the consistency
//! checking stay fully real. History recording is on and batching is on:
//! every arm must finish with **zero** checker violations.
//!
//! Self-checks (non-zero exit on failure):
//! * throughput increases monotonically 1 → 2 → 4 reader threads, with a
//!   real margin (each step ≥ `MIN_STEP_GAIN`);
//! * zero consistency violations in every arm.
//!
//! Emits `results/fig_reads.csv` and `results/BENCH_reads.json`.

use paris_bench::{bench_doc, json::Json, quick, section, write_bench_json, write_csv};
use paris_runtime::{Cluster, Paris};
use paris_types::Mode;
use paris_workload::WorkloadConfig;

/// Reader-thread ladder (the paper scales reads across server cores).
const THREADS: [usize; 3] = [1, 2, 4];
/// Modeled per-slice-read service occupancy (µs): large enough that the
/// pool — not the transport or the OS scheduler — is the bottleneck.
const READ_SERVICE_MICROS: u64 = 250;
/// Offered load: closed-loop sessions per DC, identical in every arm.
const CLIENTS_PER_DC: u32 = 8;
/// Required per-step throughput gain (2 pool threads should roughly
/// double a pool-bound arm; 1.25× is a conservative floor).
const MIN_STEP_GAIN: f64 = 1.25;

struct Arm {
    read_threads: usize,
    ktps: f64,
    kreads_s: f64,
    mean_ms: f64,
    p99_ms: f64,
    violations: usize,
}

fn run_arm(read_threads: usize, warmup: u64, window: u64) -> Arm {
    let mut cluster = Paris::builder()
        .dcs(2)
        .partitions(4)
        .replication(2)
        .keys_per_partition(64)
        .mode(Mode::Paris)
        .workload(WorkloadConfig::read_mostly())
        .clients_per_dc(CLIENTS_PER_DC)
        .uniform_latency_micros(10_000)
        .latency_scale(0.01) // 100 µs one-way inter-DC; local links are free
        .jitter(0.0)
        .seed(42)
        .batch_size(32) // batching on: coalescing must not disturb reads
        .read_threads(read_threads)
        .read_service_micros(READ_SERVICE_MICROS)
        .record_history(true)
        .build_thread()
        .expect("valid fig_reads deployment");
    let report = cluster
        .run_workload(warmup, window)
        .expect("threaded workload cannot fail");
    let reads_per_tx = WorkloadConfig::read_mostly().reads_per_tx as f64;
    let arm = Arm {
        read_threads,
        ktps: report.ktps(),
        kreads_s: report.ktps() * reads_per_tx,
        mean_ms: report.stats.mean_latency_ms(),
        p99_ms: report.stats.percentile_ms(99.0),
        violations: report.violations.len(),
    };
    eprintln!(
        "  [{} reader thread(s)] {} | {:.1} Kreads/s",
        read_threads,
        report.summary(),
        arm.kreads_s
    );
    arm
}

fn main() {
    section("Parallel non-blocking reads: throughput vs. reader threads (threaded backend)");
    // Wall-clock windows: the threaded backend measures real time.
    let (warmup, window) = if quick() {
        (200_000, 1_200_000)
    } else {
        (500_000, 4_000_000)
    };
    println!(
        "\n  {:>14} {:>14} {:>14} {:>11} {:>10} {:>11}",
        "read_threads", "tput (KTx/s)", "Kreads/s", "mean (ms)", "p99 (ms)", "violations"
    );

    let arms: Vec<Arm> = THREADS
        .iter()
        .map(|&n| run_arm(n, warmup, window))
        .collect();

    let mut rows = Vec::new();
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let mut points: Vec<Json> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for arm in &arms {
        println!(
            "  {:>14} {:>14.2} {:>14.1} {:>11.2} {:>10.2} {:>11}",
            arm.read_threads, arm.ktps, arm.kreads_s, arm.mean_ms, arm.p99_ms, arm.violations
        );
        rows.push(format!(
            "{},{:.3},{:.1},{:.3},{:.3},{}",
            arm.read_threads, arm.ktps, arm.kreads_s, arm.mean_ms, arm.p99_ms, arm.violations
        ));
        // Deliberately no "ktps" substring: wall-clock thread throughput
        // is machine-dependent, so bench_gate treats the absolute numbers
        // as informational and gates only the speedup ratio below.
        metrics.push((
            format!("reads_t{}_tx_s", arm.read_threads),
            arm.ktps * 1_000.0,
        ));
        points.push(Json::obj(vec![
            ("read_threads", (arm.read_threads as u64).into()),
            ("ktps", arm.ktps.into()),
            ("kreads_s", arm.kreads_s.into()),
            ("mean_ms", arm.mean_ms.into()),
            ("p99_ms", arm.p99_ms.into()),
            ("violations", (arm.violations as u64).into()),
        ]));
        if arm.violations != 0 {
            failures.push(format!(
                "{} reader threads: {} consistency violations",
                arm.read_threads, arm.violations
            ));
        }
    }

    for pair in arms.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        let gain = b.ktps / a.ktps.max(1e-9);
        println!(
            "  {} → {} reader threads: {:.2}× throughput",
            a.read_threads, b.read_threads, gain
        );
        if gain < MIN_STEP_GAIN {
            failures.push(format!(
                "{} → {} reader threads gained only {gain:.2}× (< {MIN_STEP_GAIN}×): \
                 read throughput must increase monotonically with the pool",
                a.read_threads, b.read_threads
            ));
        }
    }
    let speedup = arms.last().unwrap().ktps / arms.first().unwrap().ktps.max(1e-9);
    println!("  1 → 4 reader threads: {speedup:.2}× read throughput, all arms checker-clean");
    metrics.push(("reads_speedup_4v1".into(), speedup));
    metrics.push((
        "reads_violations_total".into(),
        arms.iter().map(|a| a.violations as f64).sum(),
    ));

    write_csv(
        "fig_reads.csv",
        "read_threads,ktps,kreads_s,mean_ms,p99_ms,violations",
        &rows,
    );
    write_bench_json("BENCH_reads.json", &bench_doc("fig_reads", metrics, points));

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!(
        "\n  (reads are served off the server loop by the pool; scaling comes from overlapping"
    );
    println!("   per-read service occupancy — the parallel non-blocking read claim, measured)");
}
