//! Minimal JSON tree, writer and parser.
//!
//! The bench harness emits machine-readable `BENCH_*.json` result files
//! and the CI regression gate reads them back (plus the committed
//! `bench/baseline.json`). The build environment has no registry access,
//! so this is a small hand-rolled implementation of exactly the JSON
//! subset those files use — which is full JSON minus exotic number forms.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Num(v as f64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::Num(f64::from(v))
    }
}
impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Self {
        Json::Arr(v)
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The object pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) if pairs.is_empty() => out.push_str("{}"),
            Json::Obj(pairs) => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    push_indent(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_str(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences included).
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid UTF-8".to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_reparses_a_metrics_document() {
        let doc = Json::obj(vec![
            ("schema", "paris-bench/v1".into()),
            ("quick", true.into()),
            (
                "metrics",
                Json::obj(vec![
                    ("fig1a_paris_peak_ktps", 16.25.into()),
                    ("net_messages", 1_234_567u64.into()),
                ]),
            ),
            (
                "points",
                Json::Arr(vec![Json::obj(vec![
                    ("mode", "PaRiS".into()),
                    ("ktps", 3.5.into()),
                ])]),
            ),
            ("nothing", Json::Null),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).expect("round-trip");
        assert_eq!(back, doc);
        assert_eq!(
            back.get("metrics")
                .and_then(|m| m.get("net_messages"))
                .and_then(Json::as_f64),
            Some(1_234_567.0)
        );
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(42.0).render(), "42\n");
        assert_eq!(Json::Num(2.5).render(), "2.5\n");
        assert_eq!(Json::Num(-7.0).render(), "-7\n");
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = Json::Str("a\"b\\c\nd\te\u{1}f→".to_string());
        let back = Json::parse(&s.render()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let back = Json::parse(" { \"a\" : [ 1 , 2.5 , { \"b\" : null } ] } ").unwrap();
        let arr = back.get("a").unwrap();
        match arr {
            Json::Arr(items) => {
                assert_eq!(items.len(), 3);
                assert_eq!(items[1].as_f64(), Some(2.5));
                assert_eq!(items[2].get("b"), Some(&Json::Null));
            }
            _ => panic!("expected array"),
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1}garbage",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn empty_containers_render_compactly() {
        assert_eq!(Json::Arr(vec![]).render(), "[]\n");
        assert_eq!(Json::Obj(vec![]).render(), "{}\n");
    }
}
