//! The Hybrid Logical Clock.

use crate::physical::PhysicalClock;
use paris_types::Timestamp;

/// A Hybrid Logical Clock (Kulkarni et al., OPODIS'14), as used by PaRiS to
/// generate every timestamp in the system.
///
/// The clock maintains the highest timestamp it has produced or observed.
/// Three operations mirror the paper's uses:
///
/// * [`Hlc::now`] — a local/send event: `HLC ← max(Clock, HLC + 1)`.
///   Produces a strictly increasing timestamp (used when proposing prepare
///   timestamps, Alg. 3 line 10, together with the `ht + 1` bound folded in
///   via [`Hlc::observe`]).
/// * [`Hlc::observe`] — a receive event: `HLC ← max(HLC, incoming, Clock)`
///   without producing a new timestamp (Alg. 3 line 16: commit handling).
/// * [`Hlc::peek`] — reads `max(Clock, HLC)` without advancing the logical
///   component; used for version-clock bounds (Alg. 4 line 7).
///
/// The HLC never blocks: an incoming timestamp from a server with a fast
/// physical clock simply pulls the logical component forward.
#[derive(Debug, Clone, Default)]
pub struct Hlc {
    latest: Timestamp,
}

impl Hlc {
    /// Creates an HLC at time zero.
    pub fn new() -> Self {
        Hlc {
            latest: Timestamp::ZERO,
        }
    }

    /// The highest timestamp produced or observed so far.
    #[inline]
    pub fn latest(&self) -> Timestamp {
        self.latest
    }

    /// Produces a new strictly increasing timestamp for a local event:
    /// `HLC ← max(Clock, HLC + 1)`.
    pub fn now<C: PhysicalClock>(&mut self, clock: &C) -> Timestamp {
        let phys = Timestamp::from_physical_micros(clock.now_micros());
        self.latest = phys.max(self.latest.tick());
        self.latest
    }

    /// Produces a new timestamp strictly greater than both the local state
    /// and `floor`: `HLC ← max(Clock, floor + 1, HLC + 1)` (Alg. 3 line 10,
    /// where `floor` is `ht`, the max timestamp seen by the committing
    /// client).
    pub fn now_after<C: PhysicalClock>(&mut self, clock: &C, floor: Timestamp) -> Timestamp {
        let phys = Timestamp::from_physical_micros(clock.now_micros());
        self.latest = phys.max(floor.tick()).max(self.latest.tick());
        self.latest
    }

    /// Folds an incoming timestamp into the clock without producing a new
    /// one: `HLC ← max(HLC, incoming, Clock)` (Alg. 3 line 16).
    pub fn observe<C: PhysicalClock>(&mut self, clock: &C, incoming: Timestamp) {
        let phys = Timestamp::from_physical_micros(clock.now_micros());
        self.latest = self.latest.max(incoming).max(phys);
    }

    /// Reads `max(Clock, HLC)` without advancing the clock (Alg. 4 line 7:
    /// `ub ← max(Clock, HLC)` when the prepared queue is empty).
    pub fn peek<C: PhysicalClock>(&self, clock: &C) -> Timestamp {
        Timestamp::from_physical_micros(clock.now_micros()).max(self.latest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::SimClock;
    use proptest::prelude::*;

    #[test]
    fn now_tracks_physical_clock_when_ahead() {
        let phys = SimClock::new();
        phys.advance_to(1_000);
        let mut hlc = Hlc::new();
        let t = hlc.now(&phys);
        assert_eq!(t.physical_micros(), 1_000);
        assert_eq!(t.logical(), 0);
    }

    #[test]
    fn now_is_strictly_monotonic_with_frozen_clock() {
        let phys = SimClock::new();
        phys.advance_to(5);
        let mut hlc = Hlc::new();
        let a = hlc.now(&phys);
        let b = hlc.now(&phys);
        let c = hlc.now(&phys);
        assert!(a < b && b < c);
        assert_eq!(b.physical_micros(), 5, "logical component absorbs ties");
        assert_eq!(c.logical(), 2);
    }

    #[test]
    fn observe_pulls_clock_forward_without_emitting() {
        let phys = SimClock::new();
        let mut hlc = Hlc::new();
        let remote = Timestamp::from_parts(9_999, 3);
        hlc.observe(&phys, remote);
        assert_eq!(hlc.latest(), remote);
        // Next local event must exceed the observed remote timestamp.
        let t = hlc.now(&phys);
        assert!(t > remote);
    }

    #[test]
    fn observe_never_moves_backwards() {
        let phys = SimClock::new();
        phys.advance_to(100);
        let mut hlc = Hlc::new();
        let t = hlc.now(&phys);
        hlc.observe(&phys, Timestamp::ZERO);
        assert_eq!(hlc.latest(), t);
    }

    #[test]
    fn now_after_exceeds_floor() {
        let phys = SimClock::new();
        let mut hlc = Hlc::new();
        let floor = Timestamp::from_parts(500, 7);
        let t = hlc.now_after(&phys, floor);
        assert!(t > floor);
        assert_eq!(t, floor.tick(), "floor dominates a zero clock");
    }

    #[test]
    fn now_after_uses_physical_clock_when_dominant() {
        let phys = SimClock::new();
        phys.advance_to(10_000);
        let mut hlc = Hlc::new();
        let t = hlc.now_after(&phys, Timestamp::from_physical_micros(2));
        assert_eq!(t.physical_micros(), 10_000);
        assert_eq!(t.logical(), 0);
    }

    #[test]
    fn peek_does_not_advance_state() {
        let phys = SimClock::new();
        phys.advance_to(42);
        let hlc = Hlc::new();
        assert_eq!(hlc.peek(&phys).physical_micros(), 42);
        assert_eq!(hlc.latest(), Timestamp::ZERO);
    }

    #[test]
    fn peek_returns_hlc_when_clock_lags() {
        let phys = SimClock::new();
        let mut hlc = Hlc::new();
        hlc.observe(&phys, Timestamp::from_parts(77, 1));
        assert_eq!(hlc.peek(&phys), Timestamp::from_parts(77, 1));
    }

    proptest! {
        /// Core HLC safety: any interleaving of local events and observations
        /// yields strictly increasing outputs of `now`, each ≥ every
        /// previously observed timestamp.
        #[test]
        fn prop_monotonic_under_arbitrary_interleavings(
            ops in proptest::collection::vec(
                prop_oneof![
                    // (advance physical clock by, None) = local event
                    (0u64..1_000).prop_map(|adv| (adv, None)),
                    // (advance, Some(remote physical, remote logical))
                    ((0u64..1_000), (0u64..1 << 20), any::<u16>())
                        .prop_map(|(adv, p, l)| (adv, Some((p, l)))),
                ],
                1..200,
            )
        ) {
            let phys = SimClock::new();
            let mut hlc = Hlc::new();
            let mut time = 0u64;
            let mut last_emitted: Option<Timestamp> = None;
            let mut max_observed = Timestamp::ZERO;
            for (adv, remote) in ops {
                time += adv;
                phys.advance_to(time);
                match remote {
                    None => {
                        let t = hlc.now(&phys);
                        if let Some(prev) = last_emitted {
                            prop_assert!(t > prev, "now() must be strictly increasing");
                        }
                        prop_assert!(t >= max_observed);
                        prop_assert!(t.physical_micros() >= time || t >= max_observed);
                        last_emitted = Some(t);
                    }
                    Some((p, l)) => {
                        let r = Timestamp::from_parts(p, l);
                        hlc.observe(&phys, r);
                        max_observed = max_observed.max(r);
                        prop_assert!(hlc.latest() >= r);
                    }
                }
            }
        }

        /// `now_after` always exceeds its floor and prior outputs.
        #[test]
        fn prop_now_after_exceeds_floor(
            floors in proptest::collection::vec((0u64..1 << 20, any::<u16>()), 1..50)
        ) {
            let phys = SimClock::new();
            let mut hlc = Hlc::new();
            let mut prev = Timestamp::ZERO;
            for (p, l) in floors {
                let floor = Timestamp::from_parts(p, l);
                let t = hlc.now_after(&phys, floor);
                prop_assert!(t > floor);
                prop_assert!(t > prev || prev == Timestamp::ZERO);
                prev = t;
            }
        }
    }
}
