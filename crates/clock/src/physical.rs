//! Physical clock sources.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonically non-decreasing source of physical time in microseconds.
///
/// The paper assumes every server "has access to a monotonically increasing
/// physical clock" (§IV-A) loosely synchronized with NTP; perfect synchrony
/// is *not* required for correctness (the HLC absorbs skew), only for
/// snapshot freshness.
pub trait PhysicalClock {
    /// Current physical time in microseconds since an arbitrary epoch.
    fn now_micros(&self) -> u64;
}

/// The process-wide real clock, measured from process start.
///
/// Used by the threaded runtime. Backed by [`Instant`], so it is
/// monotonic even if the wall clock steps.
#[derive(Debug, Clone)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// Creates a system clock whose epoch is the moment of creation.
    pub fn new() -> Self {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl PhysicalClock for SystemClock {
    fn now_micros(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

/// Microseconds between the UNIX epoch and this crate's wall epoch
/// (2024-01-01T00:00:00Z). [`WallClock`] measures from the later epoch so
/// its readings fit the 48-bit physical component of a packed timestamp
/// (which covers ≈ 8.9 years) with plenty of headroom.
const WALL_EPOCH_UNIX_MICROS: u64 = 1_704_067_200_000_000;

/// A host-wide wall clock: microseconds since a fixed recent epoch, read
/// from the OS real-time clock.
///
/// Unlike [`SystemClock`] (whose epoch is the moment of construction, so
/// two processes disagree by their start offset), every `WallClock` on one
/// host reads the same timebase — which is what lets separate server
/// *processes* of a socket deployment stamp mutually comparable
/// timestamps, exactly as NTP-synchronized machines do in the paper's
/// testbed. A monotonic guard absorbs small backward steps of the OS
/// clock.
#[derive(Debug, Default)]
pub struct WallClock {
    /// Highest reading handed out, enforcing monotonicity across steps.
    floor: AtomicU64,
}

impl WallClock {
    /// Creates a wall clock. All instances on one host share a timebase.
    pub fn new() -> Self {
        WallClock::default()
    }
}

impl PhysicalClock for WallClock {
    fn now_micros(&self) -> u64 {
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0)
            .saturating_sub(WALL_EPOCH_UNIX_MICROS);
        // fetch_max returns the previous floor: the reading we hand out is
        // the max of both, so time never runs backwards.
        self.floor.fetch_max(now, Ordering::Relaxed).max(now)
    }
}

/// A simulation-controlled clock, shared by everything in one simulation.
///
/// The discrete-event executor advances it; servers read it. Cloning shares
/// the underlying time cell.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    micros: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a simulated clock at time zero.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Advances the clock to `micros`.
    ///
    /// Calls with an earlier time are ignored — simulated time never runs
    /// backwards, even if events are (incorrectly) processed out of order.
    pub fn advance_to(&self, micros: u64) {
        self.micros.fetch_max(micros, Ordering::SeqCst);
    }
}

impl PhysicalClock for SimClock {
    fn now_micros(&self) -> u64 {
        self.micros.load(Ordering::SeqCst)
    }
}

/// A skewed view of an underlying clock: models imperfect NTP synchrony.
///
/// Each server in a deployment gets its own skew offset; the skew is
/// constant for the lifetime of the clock (drift is dominated by offset at
/// the paper's time scales). Negative skews are clamped so the result stays
/// monotonic and non-negative.
#[derive(Debug, Clone)]
pub struct SkewedClock<C> {
    inner: C,
    /// Offset added to the inner clock, in microseconds.
    offset: i64,
}

impl<C: PhysicalClock> SkewedClock<C> {
    /// Wraps `inner` with a constant skew `offset_micros` (may be negative).
    pub fn new(inner: C, offset_micros: i64) -> Self {
        SkewedClock {
            inner,
            offset: offset_micros,
        }
    }

    /// The configured skew offset in microseconds.
    pub fn offset_micros(&self) -> i64 {
        self.offset
    }

    /// Consumes the wrapper, returning the inner clock.
    pub fn into_inner(self) -> C {
        self.inner
    }
}

impl<C: PhysicalClock> PhysicalClock for SkewedClock<C> {
    fn now_micros(&self) -> u64 {
        let base = self.inner.now_micros();
        if self.offset >= 0 {
            base.saturating_add(self.offset as u64)
        } else {
            base.saturating_sub(self.offset.unsigned_abs())
        }
    }
}

/// A shared, steppable skew offset: the mutable half of a
/// [`SteppableClock`].
///
/// Cloning shares the cell, so a fault injector can hold handles to the
/// clocks of running servers and step them mid-run (the NTP-jump
/// scenario) without any access to the servers themselves.
#[derive(Debug, Clone, Default)]
pub struct SkewCell {
    offset: Arc<AtomicI64>,
}

impl SkewCell {
    /// Creates a cell holding `offset_micros` (may be negative).
    pub fn new(offset_micros: i64) -> Self {
        SkewCell {
            offset: Arc::new(AtomicI64::new(offset_micros)),
        }
    }

    /// The current skew offset in microseconds.
    pub fn offset_micros(&self) -> i64 {
        self.offset.load(Ordering::SeqCst)
    }

    /// Replaces the offset.
    pub fn set(&self, offset_micros: i64) {
        self.offset.store(offset_micros, Ordering::SeqCst);
    }

    /// Steps the offset by `delta_micros`, saturating at the `i64` range.
    pub fn step(&self, delta_micros: i64) {
        // No fetch_saturating_add exists; a CAS loop keeps the step atomic
        // against concurrent readers on the threaded backend.
        let mut cur = self.offset.load(Ordering::SeqCst);
        loop {
            let next = cur.saturating_add(delta_micros);
            match self
                .offset
                .compare_exchange(cur, next, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

/// A [`SkewedClock`] whose offset can change while the clock is in use:
/// models an NTP step or VM-migration clock jump mid-run.
///
/// Readings use the same saturating arithmetic as [`SkewedClock`], so a
/// `SteppableClock` whose cell is never stepped is reading-for-reading
/// identical to a `SkewedClock` with the same initial offset — which is
/// what keeps the simulator bit-reproducible when no fault plan is
/// installed. A step is *not* smoothed: the next reading jumps by the
/// delta (backwards jumps are what the HLC layer must absorb).
#[derive(Debug, Clone)]
pub struct SteppableClock<C> {
    inner: C,
    cell: SkewCell,
}

impl<C: PhysicalClock> SteppableClock<C> {
    /// Wraps `inner` with an initial skew; returns the clock and the
    /// shared [`SkewCell`] that steps it.
    pub fn new(inner: C, offset_micros: i64) -> (Self, SkewCell) {
        let cell = SkewCell::new(offset_micros);
        (
            SteppableClock {
                inner,
                cell: cell.clone(),
            },
            cell,
        )
    }

    /// The current skew offset in microseconds.
    pub fn offset_micros(&self) -> i64 {
        self.cell.offset_micros()
    }
}

impl<C: PhysicalClock> PhysicalClock for SteppableClock<C> {
    fn now_micros(&self) -> u64 {
        let base = self.inner.now_micros();
        let offset = self.cell.offset_micros();
        if offset >= 0 {
            base.saturating_add(offset as u64)
        } else {
            base.saturating_sub(offset.unsigned_abs())
        }
    }
}

impl<C: PhysicalClock + ?Sized> PhysicalClock for &C {
    fn now_micros(&self) -> u64 {
        (**self).now_micros()
    }
}

impl<C: PhysicalClock + ?Sized> PhysicalClock for Box<C> {
    fn now_micros(&self) -> u64 {
        (**self).now_micros()
    }
}

impl<C: PhysicalClock + ?Sized> PhysicalClock for Arc<C> {
    fn now_micros(&self) -> u64 {
        (**self).now_micros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let a = c.now_micros();
        let b = c.now_micros();
        assert!(b >= a);
    }

    #[test]
    fn sim_clock_starts_at_zero_and_advances() {
        let c = SimClock::new();
        assert_eq!(c.now_micros(), 0);
        c.advance_to(10);
        assert_eq!(c.now_micros(), 10);
    }

    #[test]
    fn sim_clock_ignores_backwards_advance() {
        let c = SimClock::new();
        c.advance_to(100);
        c.advance_to(50);
        assert_eq!(c.now_micros(), 100);
    }

    #[test]
    fn sim_clock_clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance_to(7);
        assert_eq!(b.now_micros(), 7);
    }

    #[test]
    fn skewed_clock_applies_positive_offset() {
        let base = SimClock::new();
        base.advance_to(1_000);
        let skewed = SkewedClock::new(base, 250);
        assert_eq!(skewed.now_micros(), 1_250);
        assert_eq!(skewed.offset_micros(), 250);
    }

    #[test]
    fn skewed_clock_applies_negative_offset_and_saturates() {
        let base = SimClock::new();
        base.advance_to(100);
        let skewed = SkewedClock::new(base.clone(), -250);
        assert_eq!(skewed.now_micros(), 0, "saturates instead of wrapping");
        base.advance_to(1_000);
        assert_eq!(skewed.now_micros(), 750);
    }

    #[test]
    fn wall_clock_is_monotonic_and_shares_a_timebase() {
        let a = WallClock::new();
        let b = WallClock::new();
        let ra = a.now_micros();
        let rb = b.now_micros();
        // Same host, same epoch: two independent instances read within a
        // second of each other (vs. Instant-based clocks, whose readings
        // differ by their construction offset on top of elapsed time).
        assert!(rb.abs_diff(ra) < 1_000_000, "ra={ra} rb={rb}");
        assert!(a.now_micros() >= ra);
        // Readings fit the 48-bit physical component of a timestamp.
        assert!(ra < (1 << 48));
        assert!(ra > 0, "wall epoch must lie in the past");
    }

    #[test]
    fn steppable_clock_matches_skewed_clock_until_stepped() {
        let base = SimClock::new();
        base.advance_to(1_000);
        let fixed = SkewedClock::new(base.clone(), -250);
        let (steppable, cell) = SteppableClock::new(base.clone(), -250);
        assert_eq!(steppable.now_micros(), fixed.now_micros());
        base.advance_to(5_000);
        assert_eq!(steppable.now_micros(), fixed.now_micros());
        cell.step(1_000);
        assert_eq!(steppable.now_micros(), 5_750);
        assert_eq!(cell.offset_micros(), 750);
    }

    #[test]
    fn skew_cell_is_shared_and_saturates() {
        let base = SimClock::new();
        base.advance_to(100);
        let (clock, cell) = SteppableClock::new(base, 0);
        let other = cell.clone();
        other.step(i64::MAX);
        other.step(i64::MAX);
        assert_eq!(cell.offset_micros(), i64::MAX, "saturating add");
        cell.set(-1_000);
        assert_eq!(clock.now_micros(), 0, "negative skew saturates at zero");
        assert_eq!(clock.offset_micros(), -1_000);
    }

    #[test]
    fn clock_trait_objects_and_refs_work() {
        let sim = SimClock::new();
        sim.advance_to(5);
        let by_ref: &dyn PhysicalClock = &sim;
        assert_eq!(by_ref.now_micros(), 5);
        let boxed: Box<dyn PhysicalClock> = Box::new(sim.clone());
        assert_eq!(boxed.now_micros(), 5);
        let arced: Arc<dyn PhysicalClock> = Arc::new(sim);
        assert_eq!(arced.now_micros(), 5);
    }
}
