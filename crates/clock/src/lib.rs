//! Physical clock abstractions and Hybrid Logical Clocks (HLC) for PaRiS.
//!
//! PaRiS generates all timestamps with HLCs (paper §III-B, "Generating
//! timestamps"): a logical clock whose value on a partition is the maximum
//! of the local physical clock and the highest timestamp seen plus one.
//! HLCs combine the best of both worlds — they never block waiting for a
//! physical clock to catch up with an incoming event, yet advance at
//! roughly wall-clock rate, which keeps the UST snapshot fresh.
//!
//! The physical source is abstracted behind [`PhysicalClock`] so that the
//! same HLC code runs against the real OS clock ([`SystemClock`]), a
//! simulation-controlled clock ([`SimClock`]), or an NTP-like skewed view
//! of either ([`SkewedClock`]).
//!
//! # Example
//!
//! ```
//! use paris_clock::{Hlc, SimClock, PhysicalClock};
//!
//! let phys = SimClock::new();
//! phys.advance_to(1_000); // simulated microseconds
//! let mut hlc = Hlc::new();
//!
//! let t1 = hlc.now(&phys);
//! let t2 = hlc.now(&phys);
//! assert!(t2 > t1, "HLC is strictly monotonic even with a frozen physical clock");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hlc;
mod physical;

pub use hlc::Hlc;
pub use physical::{
    PhysicalClock, SimClock, SkewCell, SkewedClock, SteppableClock, SystemClock, WallClock,
};
