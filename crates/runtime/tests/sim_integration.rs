//! Integration tests on the simulated cluster: whole-system runs under
//! load with the consistency checker as the oracle, all built through the
//! `Paris::builder()` facade.

use paris_runtime::{Cluster, ClusterBuilder, Paris, RunReport, SimCluster};
use paris_types::{DcId, Mode, Timestamp};

/// The small checked deployment every test starts from: 3 DCs × 6
/// partitions, R = 2, uniform 10 ms one-way WAN latency, checker on.
fn small(dcs: u16, partitions: u32, mode: Mode, seed: u64) -> ClusterBuilder {
    Paris::builder()
        .dcs(dcs)
        .partitions(partitions)
        .replication(2)
        .keys_per_partition(200)
        .uniform_latency_micros(10_000)
        .jitter(0.02)
        .clients_per_dc(4)
        .mode(mode)
        .seed(seed)
        .record_events(true)
        .record_history(true)
}

fn run_checked(mode: Mode, seed: u64) -> (SimCluster, RunReport) {
    let mut sim = small(3, 6, mode, seed).build_sim().unwrap();
    let report = sim.run_workload(500_000, 3_000_000).unwrap(); // 0.5 s warmup, 3 s window
    sim.settle(2_000_000);
    let report = RunReport {
        violations: sim.report().violations,
        ..report
    };
    (sim, report)
}

#[test]
fn paris_run_is_causally_consistent_and_converges() {
    let (mut sim, report) = run_checked(Mode::Paris, 1);
    assert!(
        report.stats.committed > 100,
        "made progress: {}",
        report.stats.committed
    );
    assert!(
        report.violations.is_empty(),
        "consistency violations: {:#?}",
        report.violations
    );
    let convergence = sim.check_convergence().unwrap();
    assert!(convergence.is_empty(), "divergence: {convergence:#?}");
    assert!(sim.recorded_transactions() > 100);
}

#[test]
fn bpr_run_is_causally_consistent_and_converges() {
    let (mut sim, report) = run_checked(Mode::Bpr, 2);
    assert!(report.stats.committed > 100);
    assert!(
        report.violations.is_empty(),
        "consistency violations: {:#?}",
        report.violations
    );
    let convergence = sim.check_convergence().unwrap();
    assert!(convergence.is_empty(), "divergence: {convergence:#?}");
}

#[test]
fn paris_reads_never_block_bpr_reads_do() {
    let (paris, paris_report) = run_checked(Mode::Paris, 3);
    let (_bpr, bpr_report) = run_checked(Mode::Bpr, 3);
    assert_eq!(
        paris.blocking_stats().blocked_reads,
        0,
        "PaRiS must never block a read"
    );
    assert!(
        bpr_report.blocking.blocked_reads > 0,
        "BPR under WAN latency must block some reads"
    );
    assert!(paris_report.blocking.blocked_reads == 0);
}

#[test]
fn paris_latency_beats_bpr() {
    let (_p, paris) = run_checked(Mode::Paris, 4);
    let (_b, bpr) = run_checked(Mode::Bpr, 4);
    // The headline result (Fig. 1): non-blocking reads give PaRiS lower
    // mean transaction latency than the blocking baseline.
    assert!(
        paris.stats.mean_latency_ms() < bpr.stats.mean_latency_ms(),
        "PaRiS {:.2} ms vs BPR {:.2} ms",
        paris.stats.mean_latency_ms(),
        bpr.stats.mean_latency_ms()
    );
}

#[test]
fn visibility_latency_paris_higher_than_bpr() {
    let (_p, paris) = run_checked(Mode::Paris, 5);
    let (_b, bpr) = run_checked(Mode::Bpr, 5);
    let pv = paris.visibility.expect("events recorded");
    let bv = bpr.visibility.expect("events recorded");
    assert!(pv.count() > 50 && bv.count() > 50);
    // Fig. 4: PaRiS trades freshness for non-blocking reads — its update
    // visibility latency is strictly higher.
    assert!(
        pv.percentile(50.0) > bv.percentile(50.0),
        "PaRiS p50 {} µs vs BPR p50 {} µs",
        pv.percentile(50.0),
        bv.percentile(50.0)
    );
}

#[test]
fn determinism_same_seed_same_outcome() {
    let (_s1, r1) = run_checked(Mode::Paris, 99);
    let (_s2, r2) = run_checked(Mode::Paris, 99);
    assert_eq!(r1.stats.committed, r2.stats.committed);
    assert_eq!(r1.net_messages, r2.net_messages);
    assert_eq!(
        r1.stats.latency.percentile(50.0),
        r2.stats.latency.percentile(50.0)
    );
}

#[test]
fn different_seeds_differ() {
    let (_s1, r1) = run_checked(Mode::Paris, 7);
    let (_s2, r2) = run_checked(Mode::Paris, 8);
    assert_ne!(
        (r1.stats.committed, r1.net_messages),
        (r2.stats.committed, r2.net_messages)
    );
}

#[test]
fn ust_advances_during_run_and_bounds_snapshots() {
    let mut sim = small(3, 6, Mode::Paris, 11).build_sim().unwrap();
    sim.run_workload(500_000, 2_000_000).unwrap();
    let ust = sim.min_ust();
    assert!(ust > Timestamp::ZERO, "UST must advance under load");
    // UST never exceeds any server's installed watermark (safety): every
    // version at ts ≤ ust must be applied at every replica — checked
    // indirectly by zero checker violations in other tests; here check
    // UST ≤ now (cannot run ahead of time) with slack for clock skew.
    assert!(ust.physical_micros() <= sim.now() + 1_000);
}

#[test]
fn dc_partition_freezes_ust_and_heals() {
    let mut sim = small(3, 6, Mode::Paris, 13).build_sim().unwrap();
    sim.run_workload(500_000, 1_000_000).unwrap();
    let ust_before = sim.min_ust();
    assert!(ust_before > Timestamp::ZERO);

    // Isolate DC2: the UST freezes system-wide (§III-C) because it is a
    // global minimum.
    sim.isolate_dc(DcId(2));
    sim.settle(3_000_000);
    let ust_frozen = sim.min_ust();
    // It may advance a little (in-flight gossip) but must stall well below
    // wall time.
    let lag_frozen = sim.now().saturating_sub(ust_frozen.physical_micros());
    assert!(
        lag_frozen > 2_000_000,
        "UST should freeze during the partition (lag {lag_frozen} µs)"
    );

    // Heal: the UST catches up.
    sim.heal_dc(DcId(2));
    sim.settle(3_000_000);
    let ust_after = sim.min_ust();
    let lag_after = sim.now().saturating_sub(ust_after.physical_micros());
    assert!(
        lag_after < 1_000_000,
        "UST must catch up after healing (lag {lag_after} µs)"
    );
    assert!(ust_after > ust_frozen);
}

#[test]
fn garbage_collection_reclaims_versions_under_load() {
    // Tiny keyspace → heavy overwrites; frequent GC.
    let mut sim = small(3, 6, Mode::Paris, 17)
        .keys_per_partition(10)
        .intervals(paris_types::Intervals {
            gc_micros: 200_000,
            ..paris_types::Intervals::default()
        })
        .build_sim()
        .unwrap();
    let report = sim.run_workload(500_000, 3_000_000).unwrap();
    sim.settle(1_000_000);
    let gc_removed: u64 = sim
        .topology()
        .all_servers()
        .iter()
        .map(|id| sim.server(*id).stats().gc_removed)
        .sum();
    assert!(gc_removed > 0, "GC must reclaim overwritten versions");
    assert!(
        report.violations.is_empty(),
        "GC must not break consistency: {:#?}",
        report.violations
    );
}

#[test]
fn remote_dc_reads_work_without_local_replica() {
    // 3 DCs, R=2: every DC misses a third of the partitions, so the 0.0
    // locality workload constantly reads remote partitions.
    let mut sim = small(3, 6, Mode::Paris, 19)
        .workload(paris_workload::WorkloadConfig {
            local_tx_ratio: 0.0,
            ..paris_workload::WorkloadConfig::read_heavy()
        })
        .build_sim()
        .unwrap();
    sim.run_workload(500_000, 2_000_000).unwrap();
    sim.settle(2_000_000);
    let report = sim.report();
    assert!(report.stats.committed > 50);
    assert!(report.violations.is_empty(), "{:#?}", report.violations);
}

#[test]
fn larger_deployment_five_dcs_smoke() {
    let mut sim = small(5, 10, Mode::Paris, 23)
        .clients_per_dc(2)
        .build_sim()
        .unwrap();
    sim.run_workload(500_000, 2_000_000).unwrap();
    sim.settle(2_000_000);
    let report = sim.report();
    assert!(report.stats.committed > 50);
    assert!(report.violations.is_empty(), "{:#?}", report.violations);
    assert!(sim.check_convergence().unwrap().is_empty());
}

#[test]
fn sim_read_lanes_scale_read_throughput_deterministically() {
    // The sim's multi-queue read service model (the deterministic mirror
    // of the threaded read pool): same seed, same offered load, heavy
    // modeled per-read occupancy — more read lanes must commit strictly
    // more transactions, and both arms stay checker-clean. Being
    // simulated time, the result is exact and machine-independent.
    let arm = |lanes: usize| {
        // Short WAN + heavy modeled read occupancy: the read lanes, not
        // the network round trips, bound the closed loop.
        let mut sim = small(2, 4, Mode::Paris, 31)
            .record_events(false)
            .uniform_latency_micros(1_000)
            .jitter(0.0)
            .clients_per_dc(8)
            .workload(paris_workload::WorkloadConfig::read_mostly())
            .tuning(
                paris_runtime::Tuning::default()
                    .read_threads(lanes)
                    .read_service_micros(2_000),
            )
            .build_sim()
            .unwrap();
        let report = sim.run_workload(300_000, 2_000_000).unwrap();
        assert!(
            report.violations.is_empty(),
            "{lanes} lanes: {:#?}",
            report.violations
        );
        report.stats.committed
    };
    let one = arm(1);
    let four = arm(4);
    assert!(one > 0, "single-lane arm made progress");
    assert!(
        four as f64 >= one as f64 * 1.25,
        "4 read lanes must out-commit 1 lane by a real margin: {one} vs {four}"
    );
}

#[test]
fn sim_start_latency_is_recorded() {
    // The start-phase histogram feeds the pooled-start bench metric; the
    // deterministic backend must populate it.
    let mut sim = small(2, 4, Mode::Paris, 37)
        .record_events(false)
        .build_sim()
        .unwrap();
    let report = sim.run_workload(300_000, 1_500_000).unwrap();
    assert!(report.stats.committed > 0);
    assert!(
        report.stats.start_latency.count() > 0,
        "start latencies were not recorded"
    );
    assert!(
        report.stats.start_latency.mean() <= report.stats.latency.mean(),
        "the start phase cannot exceed whole-transaction latency on average"
    );
}
