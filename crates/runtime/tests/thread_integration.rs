//! Integration tests on the real multi-threaded cluster: the same
//! protocol code under genuine concurrency, with the consistency checker
//! as the oracle.

use std::time::Duration;

use paris_runtime::{ThreadCluster, ThreadClusterConfig};
use paris_types::Mode;

#[test]
fn threaded_paris_run_is_consistent_and_converges() {
    let outcome = ThreadCluster::run(
        ThreadClusterConfig::small(3, 6, Mode::Paris),
        Duration::from_millis(1_500),
    );
    assert!(
        outcome.report.stats.committed > 20,
        "progress: {} txs",
        outcome.report.stats.committed
    );
    assert!(
        outcome.violations.is_empty(),
        "violations under real concurrency: {:#?}",
        outcome.violations
    );
    assert!(
        outcome.convergence.is_empty(),
        "replicas diverged: {:#?}",
        outcome.convergence
    );
    assert_eq!(outcome.report.blocking.blocked_reads, 0, "PaRiS never blocks");
    assert!(outcome.transactions > 20);
}

#[test]
fn threaded_bpr_run_is_consistent_and_converges() {
    let outcome = ThreadCluster::run(
        ThreadClusterConfig::small(3, 6, Mode::Bpr),
        Duration::from_millis(1_500),
    );
    assert!(outcome.report.stats.committed > 20);
    assert!(
        outcome.violations.is_empty(),
        "violations under real concurrency: {:#?}",
        outcome.violations
    );
    assert!(
        outcome.convergence.is_empty(),
        "replicas diverged: {:#?}",
        outcome.convergence
    );
}

#[test]
fn threaded_write_heavy_mix_is_consistent() {
    let mut config = ThreadClusterConfig::small(3, 6, Mode::Paris);
    config.workload = paris_workload::WorkloadConfig {
        keys_per_partition: 100,
        ..paris_workload::WorkloadConfig::write_heavy()
    };
    let outcome = ThreadCluster::run(config, Duration::from_millis(1_500));
    assert!(outcome.report.stats.committed > 20);
    assert!(outcome.violations.is_empty(), "{:#?}", outcome.violations);
    assert!(outcome.convergence.is_empty(), "{:#?}", outcome.convergence);
}

#[test]
fn threaded_five_dc_deployment_smoke() {
    let outcome = ThreadCluster::run(
        ThreadClusterConfig::small(5, 10, Mode::Paris),
        Duration::from_millis(1_200),
    );
    assert!(outcome.report.stats.committed > 10);
    assert!(outcome.violations.is_empty(), "{:#?}", outcome.violations);
    assert!(outcome.convergence.is_empty(), "{:#?}", outcome.convergence);
}
