//! Integration tests on the real multi-threaded cluster: the same
//! protocol code under genuine concurrency, with the consistency checker
//! as the oracle — built through the facade like every other backend.

use paris_runtime::{Cluster, ClusterBuilder, Paris, ThreadCluster, Tuning};
use paris_types::{Intervals, Mode};
use paris_workload::WorkloadConfig;

fn small(dcs: u16, partitions: u32, mode: Mode) -> ClusterBuilder {
    Paris::builder()
        .dcs(dcs)
        .partitions(partitions)
        .replication(2)
        .keys_per_partition(100)
        .clients_per_dc(2)
        .seed(7)
        .record_history(true)
        .mode(mode)
        .intervals(Intervals {
            replication_micros: 2_000,
            gst_micros: 2_000,
            ust_micros: 2_000,
            gc_micros: 500_000,
        })
    // WAN latencies compressed 100× (the builder's default latency_scale).
}

fn run(mut cluster: ThreadCluster, millis: u64) -> (paris_runtime::RunReport, usize) {
    let report = cluster.run_workload(0, millis * 1_000).unwrap();
    let convergence = cluster.check_convergence().unwrap();
    assert!(
        convergence.is_empty(),
        "replicas diverged: {convergence:#?}"
    );
    let recorded = report.stats.committed as usize;
    (report, recorded)
}

#[test]
fn threaded_paris_run_is_consistent_and_converges() {
    let cluster = small(3, 6, Mode::Paris).build_thread().unwrap();
    let (report, recorded) = run(cluster, 1_500);
    assert!(
        report.stats.committed > 20,
        "progress: {} txs",
        report.stats.committed
    );
    assert!(
        report.violations.is_empty(),
        "violations under real concurrency: {:#?}",
        report.violations
    );
    assert_eq!(report.blocking.blocked_reads, 0, "PaRiS never blocks");
    assert!(recorded > 20);
}

#[test]
fn threaded_bpr_run_is_consistent_and_converges() {
    let cluster = small(3, 6, Mode::Bpr).build_thread().unwrap();
    let (report, _) = run(cluster, 1_500);
    assert!(report.stats.committed > 20);
    assert!(
        report.violations.is_empty(),
        "violations under real concurrency: {:#?}",
        report.violations
    );
}

#[test]
fn threaded_write_heavy_mix_is_consistent() {
    let cluster = small(3, 6, Mode::Paris)
        .workload(WorkloadConfig::write_heavy())
        .build_thread()
        .unwrap();
    let (report, _) = run(cluster, 1_500);
    assert!(report.stats.committed > 20);
    assert!(report.violations.is_empty(), "{:#?}", report.violations);
}

#[test]
fn threaded_five_dc_deployment_smoke() {
    let cluster = small(5, 10, Mode::Paris).build_thread().unwrap();
    let (report, _) = run(cluster, 1_200);
    assert!(report.stats.committed > 10);
    assert!(report.violations.is_empty(), "{:#?}", report.violations);
}

#[test]
fn threaded_read_pool_run_is_consistent_and_converges() {
    // The same checker-verified workload, but with every PaRiS slice read
    // served by the read-thread pool instead of the server mailboxes.
    let cluster = small(3, 6, Mode::Paris)
        .tuning(Tuning::default().read_threads(2))
        .build_thread()
        .unwrap();
    let (report, _) = run(cluster, 1_500);
    assert!(
        report.stats.committed > 20,
        "progress: {} txs",
        report.stats.committed
    );
    assert!(
        report.violations.is_empty(),
        "violations with pool-served reads: {:#?}",
        report.violations
    );
    assert_eq!(report.blocking.blocked_reads, 0, "PaRiS never blocks");
}

#[test]
fn threaded_read_pool_serves_interactive_reads() {
    // An interactive causal write→read pair where the read is tapped into
    // the pool: the reply must still arrive and see the stable write.
    use paris_types::{Key, Value};
    let mut cluster = small(3, 6, Mode::Paris)
        .clients_per_dc(0)
        .tuning(Tuning::default().read_threads(3))
        .build_thread()
        .unwrap();
    let a = cluster.open_client(0).unwrap();
    let mut txn = cluster.begin(a).unwrap();
    txn.write(Key(5), Value::from("pooled"));
    txn.commit().unwrap();
    cluster.stabilize(5);
    let b = cluster.open_client(1).unwrap();
    let mut txn = cluster.begin(b).unwrap();
    assert_eq!(txn.read_one(Key(5)).unwrap(), Some(Value::from("pooled")));
    txn.commit().unwrap();
    // The pool actually served reads: the per-server view counters moved.
    let total_view_reads: u64 = cluster
        .topology()
        .all_servers()
        .into_iter()
        .filter_map(|id| cluster.read_view(id))
        .map(|v| v.stats().slice_reads())
        .sum();
    assert!(total_view_reads > 0, "no read went through the views");
}

#[test]
fn threaded_read_pool_serves_gst_reports() {
    // With batching off, stabilization child reports travel as bare
    // GstReport frames, which the router tap diverts into the read pool:
    // the UST must still advance (the paper's liveness: stabilization
    // keeps running), writes must become stable, and the per-view
    // gst_reports counter proves the fold ran off the server loop.
    use paris_types::{Key, Timestamp, Value};
    let mut cluster = small(3, 6, Mode::Paris)
        .clients_per_dc(0)
        .no_batching()
        .tuning(Tuning::default().read_threads(2))
        .build_thread()
        .unwrap();
    let a = cluster.open_client(0).unwrap();
    let mut txn = cluster.begin(a).unwrap();
    txn.write(Key(13), Value::from("gossiped"));
    txn.commit().unwrap();
    cluster.stabilize(5);
    assert!(
        cluster.min_ust() > Timestamp::ZERO,
        "UST must advance with pool-served reports"
    );
    let b = cluster.open_client(1).unwrap();
    let mut txn = cluster.begin(b).unwrap();
    assert_eq!(
        txn.read_one(Key(13)).unwrap(),
        Some(Value::from("gossiped"))
    );
    txn.commit().unwrap();
    let pooled_reports: u64 = cluster
        .topology()
        .all_servers()
        .into_iter()
        .filter_map(|id| cluster.read_view(id))
        .map(|v| v.stats().gst_reports())
        .sum();
    assert!(
        pooled_reports > 0,
        "no GstReport was folded through the views"
    );
}

#[test]
fn threaded_batched_gossip_stays_on_the_loop() {
    // With batching on (the default), gossip arrives folded inside
    // GossipDigest frames, which carry loop-owned components and are
    // never tapped: the pool's gst_reports counter must stay zero while
    // stabilization still works.
    use paris_types::{Key, Timestamp, Value};
    let mut cluster = small(3, 6, Mode::Paris)
        .clients_per_dc(0)
        .tuning(Tuning::default().read_threads(2))
        .build_thread()
        .unwrap();
    let a = cluster.open_client(0).unwrap();
    let mut txn = cluster.begin(a).unwrap();
    txn.write(Key(14), Value::from("digested"));
    txn.commit().unwrap();
    cluster.stabilize(5);
    assert!(cluster.min_ust() > Timestamp::ZERO);
    let pooled_reports: u64 = cluster
        .topology()
        .all_servers()
        .into_iter()
        .filter_map(|id| cluster.read_view(id))
        .map(|v| v.stats().gst_reports())
        .sum();
    assert_eq!(
        pooled_reports, 0,
        "digested gossip must not reach the read pool"
    );
}

#[test]
fn threaded_read_pool_serves_start_tx() {
    // Interactive `begin` issues a StartTxReq, which the router tap
    // diverts into the pool: snapshot assignment must run through the
    // views (counted by their start counter), and the transaction must
    // still work end to end — its context lives in the shared table the
    // loop reads.
    use paris_types::{Key, Value};
    let mut cluster = small(3, 6, Mode::Paris)
        .clients_per_dc(0)
        .tuning(Tuning::default().read_threads(2))
        .build_thread()
        .unwrap();
    let a = cluster.open_client(0).unwrap();
    let mut txn = cluster.begin(a).unwrap();
    txn.write(Key(8), Value::from("pooled-start"));
    txn.commit().unwrap();
    cluster.stabilize(5);
    let b = cluster.open_client(1).unwrap();
    let mut txn = cluster.begin(b).unwrap();
    assert_eq!(
        txn.read_one(Key(8)).unwrap(),
        Some(Value::from("pooled-start"))
    );
    txn.commit().unwrap();
    let pooled_starts: u64 = cluster
        .topology()
        .all_servers()
        .into_iter()
        .filter_map(|id| cluster.read_view(id))
        .map(|v| v.stats().start_txs())
        .sum();
    assert!(pooled_starts >= 2, "starts did not go through the views");
}

#[test]
fn unset_read_threads_derives_a_pool_under_paris_but_not_bpr() {
    // No explicit read_threads: the threaded backend derives a PaRiS pool
    // from the host's parallelism, and — crucially — BPR still builds
    // (the auto default must not trip the explicit-knob rejection).
    let paris = small(3, 6, Mode::Paris).build_thread().unwrap();
    drop(paris);
    let bpr = small(3, 6, Mode::Bpr).build_thread();
    assert!(bpr.is_ok(), "auto pool sizing must leave BPR loop-served");
}

#[test]
fn builder_rejects_read_threads_under_bpr() {
    let err = match small(3, 6, Mode::Bpr)
        .tuning(Tuning::default().read_threads(2))
        .build_thread()
    {
        Ok(_) => panic!("BPR + read_threads must be rejected"),
        Err(err) => err,
    };
    assert!(err.to_string().contains("read_threads"), "{err}");
}

#[test]
fn threaded_interactive_and_workload_coexist() {
    // Interactive transaction handles work on a deployment that also ran
    // a closed-loop workload — the two client populations are disjoint.
    let mut cluster = small(3, 6, Mode::Paris).build_thread().unwrap();
    cluster.run_workload(0, 300_000).unwrap();

    use paris_types::{Key, Value};
    let a = cluster.open_client(0).unwrap();
    let mut txn = cluster.begin(a).unwrap();
    txn.write(Key(3), Value::from("interactive"));
    txn.commit().unwrap();
    cluster.stabilize(5);
    let b = cluster.open_client(1).unwrap();
    let mut txn = cluster.begin(b).unwrap();
    assert_eq!(
        txn.read_one(Key(3)).unwrap(),
        Some(Value::from("interactive"))
    );
    txn.commit().unwrap();
}
