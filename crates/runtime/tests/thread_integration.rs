//! Integration tests on the real multi-threaded cluster: the same
//! protocol code under genuine concurrency, with the consistency checker
//! as the oracle — built through the facade like every other backend.

use paris_runtime::{Cluster, ClusterBuilder, Paris, ThreadCluster};
use paris_types::{Intervals, Mode};
use paris_workload::WorkloadConfig;

fn small(dcs: u16, partitions: u32, mode: Mode) -> ClusterBuilder {
    Paris::builder()
        .dcs(dcs)
        .partitions(partitions)
        .replication(2)
        .keys_per_partition(100)
        .clients_per_dc(2)
        .seed(7)
        .record_history(true)
        .mode(mode)
        .intervals(Intervals {
            replication_micros: 2_000,
            gst_micros: 2_000,
            ust_micros: 2_000,
            gc_micros: 500_000,
        })
    // WAN latencies compressed 100× (the builder's default latency_scale).
}

fn run(mut cluster: ThreadCluster, millis: u64) -> (paris_runtime::RunReport, usize) {
    let report = cluster.run_workload(0, millis * 1_000).unwrap();
    let convergence = cluster.check_convergence().unwrap();
    assert!(
        convergence.is_empty(),
        "replicas diverged: {convergence:#?}"
    );
    let recorded = report.stats.committed as usize;
    (report, recorded)
}

#[test]
fn threaded_paris_run_is_consistent_and_converges() {
    let cluster = small(3, 6, Mode::Paris).build_thread().unwrap();
    let (report, recorded) = run(cluster, 1_500);
    assert!(
        report.stats.committed > 20,
        "progress: {} txs",
        report.stats.committed
    );
    assert!(
        report.violations.is_empty(),
        "violations under real concurrency: {:#?}",
        report.violations
    );
    assert_eq!(report.blocking.blocked_reads, 0, "PaRiS never blocks");
    assert!(recorded > 20);
}

#[test]
fn threaded_bpr_run_is_consistent_and_converges() {
    let cluster = small(3, 6, Mode::Bpr).build_thread().unwrap();
    let (report, _) = run(cluster, 1_500);
    assert!(report.stats.committed > 20);
    assert!(
        report.violations.is_empty(),
        "violations under real concurrency: {:#?}",
        report.violations
    );
}

#[test]
fn threaded_write_heavy_mix_is_consistent() {
    let cluster = small(3, 6, Mode::Paris)
        .workload(WorkloadConfig::write_heavy())
        .build_thread()
        .unwrap();
    let (report, _) = run(cluster, 1_500);
    assert!(report.stats.committed > 20);
    assert!(report.violations.is_empty(), "{:#?}", report.violations);
}

#[test]
fn threaded_five_dc_deployment_smoke() {
    let cluster = small(5, 10, Mode::Paris).build_thread().unwrap();
    let (report, _) = run(cluster, 1_200);
    assert!(report.stats.committed > 10);
    assert!(report.violations.is_empty(), "{:#?}", report.violations);
}

#[test]
fn threaded_interactive_and_workload_coexist() {
    // Interactive transaction handles work on a deployment that also ran
    // a closed-loop workload — the two client populations are disjoint.
    let mut cluster = small(3, 6, Mode::Paris).build_thread().unwrap();
    cluster.run_workload(0, 300_000).unwrap();

    use paris_types::{Key, Value};
    let a = cluster.open_client(0).unwrap();
    let mut txn = cluster.begin(a).unwrap();
    txn.write(Key(3), Value::from("interactive"));
    txn.commit().unwrap();
    cluster.stabilize(5);
    let b = cluster.open_client(1).unwrap();
    let mut txn = cluster.begin(b).unwrap();
    assert_eq!(
        txn.read_one(Key(3)).unwrap(),
        Some(Value::from("interactive"))
    );
    txn.commit().unwrap();
}
