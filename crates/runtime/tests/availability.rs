//! Availability tests (paper §III-C): with failure detection on, a DC
//! keeps serving every operation as long as one replica per partition is
//! reachable; only total replica loss makes operations fail — and then
//! explicitly, with aborts, never by hanging or by violating TCC.

use paris_runtime::{SimCluster, SimConfig};
use paris_types::{DcId, Mode};

#[test]
fn reads_fail_over_to_surviving_replica() {
    // 3 DCs, 6 partitions, R = 2 (ring placement): from DC0's viewpoint,
    // partitions {1, 4} live at DCs 1 and 2 only. Cutting DC0 ↔ DC1 makes
    // DC1 unreachable; the coordinator must route those partitions' reads
    // to DC2 instead of failing.
    let mut config = SimConfig::small_test(3, 6, Mode::Paris, 71);
    config.workload.local_tx_ratio = 0.0; // constant remote traffic
    let mut sim = SimCluster::new(config);
    sim.set_failure_detection(true);
    sim.run_workload(500_000, 1_000_000);
    let before = sim.report().stats.committed;
    assert!(before > 0);

    sim.partition_link(DcId(0), DcId(1));
    sim.run_workload(0, 2_000_000);
    let report = sim.report();
    assert!(
        report.stats.committed > before,
        "transactions must keep completing via the surviving replicas"
    );
    assert_eq!(
        report.stats.aborted, 0,
        "R=2 with one cut link leaves a reachable replica for every partition"
    );
    assert!(report.violations.is_empty(), "{:#?}", report.violations);

    // After healing, everything converges.
    sim.heal_link(DcId(0), DcId(1));
    sim.settle(4_000_000);
    assert!(sim.check_convergence().is_empty());
}

#[test]
fn total_replica_loss_aborts_explicitly_instead_of_hanging() {
    // Isolate DC2 entirely with detection on: clients inside DC2 cannot
    // reach partitions with no replica in DC2 → those operations abort
    // (visibly), while purely local transactions keep committing.
    let mut config = SimConfig::small_test(3, 6, Mode::Paris, 73);
    config.workload.local_tx_ratio = 0.5; // mix of local and remote
    let mut sim = SimCluster::new(config);
    sim.set_failure_detection(true);
    sim.run_workload(500_000, 1_000_000);

    sim.isolate_dc(DcId(2));
    sim.run_workload(0, 2_000_000);
    let report = sim.report();
    assert!(
        report.stats.aborted > 0,
        "multi-DC operations from the isolated DC must abort explicitly"
    );
    assert!(
        report.stats.committed > 0,
        "local transactions keep committing during the partition"
    );
    assert!(report.violations.is_empty(), "{:#?}", report.violations);

    // Heal: aborts stop (each run_workload measures a fresh window),
    // convergence resumes.
    sim.heal_dc(DcId(2));
    sim.run_workload(0, 1_000_000);
    sim.settle(4_000_000);
    let report = sim.report();
    assert_eq!(report.stats.aborted, 0, "no new aborts after healing");
    assert!(report.stats.committed > 0);
    assert!(sim.check_convergence().is_empty());
}

#[test]
fn failure_detection_off_preserves_held_traffic_semantics() {
    // Without detection (default), the same cut merely delays operations:
    // nothing aborts, traffic is held and delivered on heal.
    let mut sim = SimCluster::new(SimConfig::small_test(3, 6, Mode::Paris, 79));
    sim.run_workload(500_000, 1_000_000);
    sim.partition_link(DcId(0), DcId(1));
    sim.run_workload(0, 1_000_000);
    assert_eq!(sim.report().stats.aborted, 0, "no detector → no aborts");
    sim.heal_link(DcId(0), DcId(1));
    sim.settle(4_000_000);
    let report = sim.report();
    assert!(report.violations.is_empty(), "{:#?}", report.violations);
    assert!(sim.check_convergence().is_empty());
}
