//! Availability tests (paper §III-C): with failure detection on, a DC
//! keeps serving every operation as long as one replica per partition is
//! reachable; only total replica loss makes operations fail — and then
//! explicitly, with aborts, never by hanging or by violating TCC.

use paris_runtime::{Cluster, ClusterBuilder, Paris};
use paris_types::{DcId, Mode};
use paris_workload::WorkloadConfig;

fn small(seed: u64, local_tx_ratio: f64) -> ClusterBuilder {
    Paris::builder()
        .dcs(3)
        .partitions(6)
        .replication(2)
        .keys_per_partition(200)
        .uniform_latency_micros(10_000)
        .jitter(0.02)
        .clients_per_dc(4)
        .mode(Mode::Paris)
        .seed(seed)
        .record_events(true)
        .record_history(true)
        .workload(WorkloadConfig {
            local_tx_ratio,
            ..WorkloadConfig::read_heavy()
        })
}

#[test]
fn reads_fail_over_to_surviving_replica() {
    // 3 DCs, 6 partitions, R = 2 (ring placement): from DC0's viewpoint,
    // partitions {1, 4} live at DCs 1 and 2 only. Cutting DC0 ↔ DC1 makes
    // DC1 unreachable; the coordinator must route those partitions' reads
    // to DC2 instead of failing.
    let mut sim = small(71, 0.0).build_sim().unwrap(); // constant remote traffic
    sim.set_failure_detection(true);
    let before = sim
        .run_workload(500_000, 1_000_000)
        .unwrap()
        .stats
        .committed;
    assert!(before > 0);

    sim.partition_link(DcId(0), DcId(1));
    let report = sim.run_workload(0, 2_000_000).unwrap();
    assert!(
        report.stats.committed > before,
        "transactions must keep completing via the surviving replicas"
    );
    assert_eq!(
        report.stats.aborted, 0,
        "R=2 with one cut link leaves a reachable replica for every partition"
    );
    assert!(report.violations.is_empty(), "{:#?}", report.violations);

    // After healing, everything converges.
    sim.heal_link(DcId(0), DcId(1));
    sim.settle(4_000_000);
    assert!(sim.check_convergence().unwrap().is_empty());
}

#[test]
fn total_replica_loss_aborts_explicitly_instead_of_hanging() {
    // Isolate DC2 entirely with detection on: clients inside DC2 cannot
    // reach partitions with no replica in DC2 → those operations abort
    // (visibly), while purely local transactions keep committing.
    let mut sim = small(73, 0.5).build_sim().unwrap(); // mix of local and remote
    sim.set_failure_detection(true);
    sim.run_workload(500_000, 1_000_000).unwrap();

    sim.isolate_dc(DcId(2));
    let report = sim.run_workload(0, 2_000_000).unwrap();
    assert!(
        report.stats.aborted > 0,
        "multi-DC operations from the isolated DC must abort explicitly"
    );
    assert!(
        report.stats.committed > 0,
        "local transactions keep committing during the partition"
    );
    assert!(report.violations.is_empty(), "{:#?}", report.violations);

    // Heal: aborts stop (each run_workload measures a fresh window),
    // convergence resumes.
    sim.heal_dc(DcId(2));
    let report = sim.run_workload(0, 1_000_000).unwrap();
    sim.settle(4_000_000);
    assert_eq!(report.stats.aborted, 0, "no new aborts after healing");
    assert!(report.stats.committed > 0);
    assert!(sim.check_convergence().unwrap().is_empty());
}

#[test]
fn failure_detection_off_preserves_held_traffic_semantics() {
    // Without detection (default), the same cut merely delays operations:
    // nothing aborts, traffic is held and delivered on heal.
    let mut sim = small(79, 0.95).build_sim().unwrap();
    sim.run_workload(500_000, 1_000_000).unwrap();
    sim.partition_link(DcId(0), DcId(1));
    let report = sim.run_workload(0, 1_000_000).unwrap();
    assert_eq!(report.stats.aborted, 0, "no detector → no aborts");
    sim.heal_link(DcId(0), DcId(1));
    sim.settle(4_000_000);
    let report = sim.report();
    assert!(report.violations.is_empty(), "{:#?}", report.violations);
    assert!(sim.check_convergence().unwrap().is_empty());
}
