//! Chaos-suite contract tests: fault plans are validated at build time,
//! rejected on backends without a controllable network, bit-reproducible
//! on the simulator, and survivable on the thread backend.

use paris_runtime::{Backend, Cluster, ClusterBuilder, Paris};
use paris_types::{DcId, Error, FaultPlan, Mode};
use proptest::prelude::*;

fn sim_builder(seed: u64) -> ClusterBuilder {
    Paris::builder()
        .dcs(3)
        .partitions(6)
        .replication(2)
        .keys_per_partition(200)
        .uniform_latency_micros(10_000)
        .jitter(0.02)
        .clients_per_dc(2)
        .mode(Mode::Paris)
        .seed(seed)
        .record_history(true)
}

#[test]
fn plan_targeting_unknown_dc_is_rejected_at_build_time() {
    let plan = FaultPlan::new().crash_dc(10_000, DcId(7));
    let err = sim_builder(1)
        .fault_plan(plan)
        .build_sim()
        .err()
        .expect("build must fail");
    assert!(
        err.to_string()
            .contains("fault plan targets a DC out of range"),
        "unexpected error: {err}"
    );
}

#[test]
fn self_link_and_bad_factor_plans_are_rejected_at_build_time() {
    let plan = FaultPlan::new().partition_link(10_000, DcId(1), DcId(1));
    let err = sim_builder(1)
        .fault_plan(plan)
        .build_sim()
        .err()
        .expect("build must fail");
    assert!(
        err.to_string()
            .contains("fault plan targets a link from a DC to itself"),
        "unexpected error: {err}"
    );

    let plan = FaultPlan::new().slow_link(10_000, DcId(0), DcId(1), 0.5);
    let err = sim_builder(1)
        .fault_plan(plan)
        .build_sim()
        .err()
        .expect("build must fail");
    assert!(
        err.to_string().contains("slow-link factor"),
        "unexpected error: {err}"
    );
}

#[test]
fn backends_without_a_controllable_network_reject_fault_plans() {
    let plan = FaultPlan::new().partition_link(10_000, DcId(0), DcId(1));
    let err = sim_builder(1)
        .fault_plan(plan.clone())
        .backend(Backend::Mini)
        .build()
        .err()
        .expect("mini build must fail");
    assert!(
        matches!(err, Error::Unsupported(_)),
        "mini must reject plans: {err}"
    );

    // The facade default: a backend that never overrode the hook.
    let mut mini = sim_builder(1).build_mini().unwrap();
    let err = mini.install_fault_plan(plan).unwrap_err();
    assert!(matches!(err, Error::Unsupported(_)));
}

#[test]
fn install_fault_plan_validates_against_the_running_shape() {
    let mut sim = sim_builder(1).build_sim().unwrap();
    let err = sim
        .install_fault_plan(FaultPlan::new().rejoin_dc(0, DcId(3)))
        .unwrap_err();
    assert!(
        err.to_string()
            .contains("fault plan targets a DC out of range"),
        "unexpected error: {err}"
    );
}

#[test]
fn kill_server_on_sim_and_mini_names_the_backend_after_the_index_check() {
    for backend in [Backend::Mini, Backend::Sim] {
        let mut cluster = sim_builder(1).backend(backend).build().unwrap();
        // Out-of-range index: the unified config error, on every backend.
        let err = cluster.kill_server(10_000).unwrap_err();
        assert!(
            err.to_string().contains("server index out of range"),
            "{backend:?}: {err}"
        );
        // Valid index: a clean Unsupported naming this backend.
        let err = cluster.kill_server(0).unwrap_err();
        match err {
            Error::Unsupported(what) => assert!(
                what.contains(cluster.backend_name()),
                "{backend:?} error must name the backend: {what}"
            ),
            other => panic!("{backend:?}: expected Unsupported, got {other}"),
        }
        let err = cluster.restart_server(0).unwrap_err();
        assert!(matches!(err, Error::Unsupported(_)), "{backend:?}: {err}");
    }
}

#[test]
fn thread_backend_survives_a_scripted_partition_and_converges() {
    // Real threads, wall-clock plan: cut the DC0–DC1 link 50 ms in, heal
    // at 200 ms, then verify nothing was lost and TCC held throughout.
    let plan = FaultPlan::new()
        .partition_link(50_000, DcId(0), DcId(1))
        .heal_link(200_000, DcId(0), DcId(1))
        .skew_clock(100_000, DcId(2), 2_000);
    let mut cluster = sim_builder(7)
        .latency_scale(0.05)
        .fault_plan(plan)
        .build_thread()
        .unwrap();
    let report = cluster.run_workload(100_000, 400_000).unwrap();
    assert!(report.stats.committed > 0, "faults must not wedge commits");
    assert!(
        report.violations.is_empty(),
        "TCC must hold through the flap: {:#?}",
        report.violations
    );
    // Give held traffic time to drain after the heal, then check that
    // every replica converged.
    cluster.stabilize(4);
    let convergence = cluster.check_convergence().unwrap();
    assert!(
        convergence.is_empty(),
        "replicas must converge after heal: {convergence:#?}"
    );
}

/// Maps a compact generated description to a (valid) plan over 3 DCs.
fn plan_from(events: &[(u32, u8)]) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for &(at, kind) in events {
        let at = u64::from(at) % 500_000;
        plan = match kind % 7 {
            0 => plan.partition_link(at, DcId(0), DcId(1)),
            1 => plan.heal_link(at, DcId(0), DcId(1)),
            2 => plan.crash_dc(at, DcId(2)),
            3 => plan.rejoin_dc(at, DcId(2)),
            4 => plan.slow_link(at, DcId(0), DcId(2), 4.0),
            5 => plan.restore_link(at, DcId(0), DcId(2)),
            _ => plan.skew_clock(at, DcId(1), 2_000),
        };
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// The tentpole determinism contract: the same seed and the same
    /// fault plan produce a bit-identical sim run — faults included.
    /// (RunReport carries histograms without PartialEq, so the comparison
    /// goes through the full Debug rendering.)
    #[test]
    fn prop_same_seed_and_plan_is_bit_identical(
        seed in 0u64..1_000,
        events in proptest::collection::vec((0u32..500_000, 0u8..14), 0..4),
    ) {
        let run = |seed: u64, events: &[(u32, u8)]| {
            let mut sim = sim_builder(seed)
                .fault_plan(plan_from(events))
                .build_sim()
                .expect("drill shape is valid");
            let report = sim.run_workload(100_000, 400_000).expect("sim workload");
            sim.settle(1_000_000);
            (format!("{report:?}"), sim.min_ust(), sim.now())
        };
        let a = run(seed, &events);
        let b = run(seed, &events);
        prop_assert_eq!(a, b, "same seed + same plan must be bit-identical");
    }
}
