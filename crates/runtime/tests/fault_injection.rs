//! Fault-injection tests on the simulated cluster (paper §III-C,
//! "Fault tolerance" and "Availability"), built through the facade; the
//! fault hooks themselves are `SimCluster` powers.

use paris_runtime::{Cluster, ClusterBuilder, Paris};
use paris_types::{DcId, Mode, Timestamp};

fn small(seed: u64) -> ClusterBuilder {
    Paris::builder()
        .dcs(3)
        .partitions(6)
        .replication(2)
        .keys_per_partition(200)
        .uniform_latency_micros(10_000)
        .jitter(0.02)
        .clients_per_dc(4)
        .mode(Mode::Paris)
        .seed(seed)
        .record_events(true)
        .record_history(true)
}

#[test]
fn single_link_partition_freezes_ust_when_replica_groups_span_it() {
    // Ring placement: partition n lives at DCs (n, n+1) mod M — DC0 and
    // DC1 share replica groups, so cutting that one link stalls their
    // replication and, transitively, the global UST minimum.
    let mut sim = small(41).build_sim().unwrap();
    sim.run_workload(500_000, 1_000_000).unwrap();
    let before = sim.min_ust();
    assert!(before > Timestamp::ZERO);

    // Cut only DC0 ↔ DC1 (not full isolation): the other links stay up.
    sim.partition_link(DcId(0), DcId(1));
    sim.settle(3_000_000);
    let frozen = sim.min_ust();
    let lag = sim.now().saturating_sub(frozen.physical_micros());
    assert!(
        lag > 2_000_000,
        "UST must stall while a replica-group link is cut (lag {lag} µs)"
    );

    sim.heal_link(DcId(0), DcId(1));
    sim.settle(3_000_000);
    let healed = sim.min_ust();
    let lag = sim.now().saturating_sub(healed.physical_micros());
    assert!(
        lag < 1_000_000,
        "UST must recover after heal (lag {lag} µs)"
    );
}

#[test]
fn no_committed_data_lost_across_partition_and_heal() {
    let mut sim = small(43).build_sim().unwrap();
    // Commit traffic, cut a DC mid-run, keep committing, heal, settle:
    // replication must deliver everything (TCP-like held links) and
    // replicas must converge with zero checker violations.
    sim.run_workload(300_000, 700_000).unwrap();
    sim.isolate_dc(DcId(1));
    sim.run_workload(0, 700_000).unwrap(); // clients keep going during the cut
    sim.heal_dc(DcId(1));
    let report = sim.run_workload(0, 700_000).unwrap();
    sim.settle(4_000_000);

    assert!(report.stats.committed > 0);
    let report = sim.report();
    assert!(
        report.violations.is_empty(),
        "partition+heal must not violate TCC: {:#?}",
        report.violations
    );
    let convergence = sim.check_convergence().unwrap();
    assert!(
        convergence.is_empty(),
        "all replicas must converge after heal: {convergence:#?}"
    );
}

#[test]
fn staleness_grows_during_partition_but_reads_stay_available() {
    // §III-C: during a partition "transactions see increasingly stale
    // snapshots" — but local operations never block.
    let mut sim = small(47).build_sim().unwrap();
    sim.run_workload(500_000, 1_000_000).unwrap();
    let committed_before = sim.report().stats.committed;
    assert!(committed_before > 0);

    sim.isolate_dc(DcId(2));
    // Clients in all DCs keep running against frozen snapshots.
    let report = sim.run_workload(0, 1_500_000).unwrap();
    assert!(
        report.stats.committed > 0,
        "transactions must keep committing during the partition"
    );
    assert_eq!(
        report.blocking.blocked_reads, 0,
        "PaRiS reads stay non-blocking even while partitioned"
    );
    assert!(
        report.violations.is_empty(),
        "stale but still causal: {:#?}",
        report.violations
    );
}
