//! Fault-injection tests on the simulated cluster (paper §III-C,
//! "Fault tolerance" and "Availability").

use paris_runtime::{SimCluster, SimConfig};
use paris_types::{DcId, Mode, Timestamp};

#[test]
fn single_link_partition_freezes_ust_when_replica_groups_span_it() {
    // Ring placement: partition n lives at DCs (n, n+1) mod M — DC0 and
    // DC1 share replica groups, so cutting that one link stalls their
    // replication and, transitively, the global UST minimum.
    let mut sim = SimCluster::new(SimConfig::small_test(3, 6, Mode::Paris, 41));
    sim.run_workload(500_000, 1_000_000);
    let before = sim.min_ust();
    assert!(before > Timestamp::ZERO);

    // Cut only DC0 ↔ DC1 (not full isolation): the other links stay up.
    sim.partition_link(DcId(0), DcId(1));
    sim.settle(3_000_000);
    let frozen = sim.min_ust();
    let lag = sim.now().saturating_sub(frozen.physical_micros());
    assert!(
        lag > 2_000_000,
        "UST must stall while a replica-group link is cut (lag {lag} µs)"
    );

    sim.heal_link(DcId(0), DcId(1));
    sim.settle(3_000_000);
    let healed = sim.min_ust();
    let lag = sim.now().saturating_sub(healed.physical_micros());
    assert!(lag < 1_000_000, "UST must recover after heal (lag {lag} µs)");
}

#[test]
fn no_committed_data_lost_across_partition_and_heal() {
    let mut sim = SimCluster::new(SimConfig::small_test(3, 6, Mode::Paris, 43));
    // Commit traffic, cut a DC mid-run, keep committing, heal, settle:
    // replication must deliver everything (TCP-like held links) and
    // replicas must converge with zero checker violations.
    sim.run_workload(300_000, 700_000);
    sim.isolate_dc(DcId(1));
    sim.run_workload(0, 700_000); // clients keep going during the cut
    sim.heal_dc(DcId(1));
    sim.run_workload(0, 700_000);
    sim.settle(4_000_000);

    let report = sim.report();
    assert!(report.stats.committed > 0);
    assert!(
        report.violations.is_empty(),
        "partition+heal must not violate TCC: {:#?}",
        report.violations
    );
    let convergence = sim.check_convergence();
    assert!(
        convergence.is_empty(),
        "all replicas must converge after heal: {convergence:#?}"
    );
}

#[test]
fn staleness_grows_during_partition_but_reads_stay_available() {
    // §III-C: during a partition "transactions see increasingly stale
    // snapshots" — but local operations never block.
    let mut sim = SimCluster::new(SimConfig::small_test(3, 6, Mode::Paris, 47));
    sim.run_workload(500_000, 1_000_000);
    let committed_before = sim.report().stats.committed;
    assert!(committed_before > 0);

    sim.isolate_dc(DcId(2));
    // Clients in all DCs keep running against frozen snapshots.
    sim.run_workload(0, 1_500_000);
    let report = sim.report();
    assert!(
        report.stats.committed > 0,
        "transactions must keep committing during the partition"
    );
    assert_eq!(
        report.blocking.blocked_reads, 0,
        "PaRiS reads stay non-blocking even while partitioned"
    );
    assert!(
        report.violations.is_empty(),
        "stale but still causal: {:#?}",
        report.violations
    );
}
