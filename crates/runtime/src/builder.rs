//! The fluent entry point: [`Paris::builder`] → [`ClusterBuilder`] → any
//! backend, all behind the one [`Cluster`] trait.
//!
//! ```
//! use paris_runtime::{Backend, Paris};
//! use paris_types::Mode;
//!
//! let mut cluster = Paris::builder()
//!     .dcs(3)
//!     .partitions(6)
//!     .replication(2)
//!     .mode(Mode::Paris)
//!     .backend(Backend::Mini)
//!     .build()?;
//! let report = cluster.run_workload(50_000, 200_000)?;
//! assert!(report.violations.is_empty());
//! # Ok::<(), paris_types::Error>(())
//! ```

use paris_net::sim::{RegionMatrix, ServiceModel};
use paris_net::threaded::ThreadedNetConfig;
use paris_types::{
    BatchConfig, ClusterConfig, ConfigError, Error, FaultPlan, FlushPolicy, Intervals, Mode,
    WireFormat,
};
use paris_workload::WorkloadConfig;

use crate::mini_cluster::MiniCluster;
use crate::sim_cluster::{SimCluster, SimConfig};
use crate::socket_cluster::{SocketCluster, SocketClusterConfig};
use crate::thread_cluster::{ThreadCluster, ThreadClusterConfig};
use crate::tuning::{derived_read_threads, Durability, Tuning};
use crate::Cluster;

/// The substrate a deployment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Synchronous in-process pump: zero latency, fully deterministic,
    /// cheapest. The default.
    #[default]
    Mini,
    /// Deterministic discrete-event simulation: WAN latency matrix, CPU
    /// service model, fault injection — the paper's figures run here.
    Sim,
    /// Real threads over an in-process transport: one thread per server,
    /// genuine concurrency and races.
    Thread,
    /// Real **processes** over loopback TCP: one OS process per server
    /// speaking length-prefixed protocol frames — the paper's
    /// one-machine-per-server deployment shape on a single host.
    /// Requires the `paris-server` binary next to the current executable
    /// (or `PARIS_SERVER_BIN`); WAN latency knobs are ignored (loopback
    /// is the network).
    Socket,
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backend::Mini => write!(f, "mini"),
            Backend::Sim => write!(f, "sim"),
            Backend::Thread => write!(f, "thread"),
            Backend::Socket => write!(f, "socket"),
        }
    }
}

/// Namespace for the facade's entry point.
pub struct Paris;

impl Paris {
    /// Starts building a deployment with the paper's default shape
    /// (5 DCs × 45 partitions, R = 2) on the [`Backend::Mini`] substrate.
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder::new()
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Latency {
    /// Measured AWS inter-region RTTs (the paper's testbed).
    Aws,
    /// Uniform one-way latency in microseconds.
    UniformMicros(u64),
}

/// The builder's flush-deadline selection, resolved against the protocol
/// intervals at build time so fluent call order cannot change the
/// outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
enum FlushChoice {
    /// Adaptive, bounds derived from the replication period (the
    /// default): deadlines in `[∆R/8, 6·∆R]`.
    Auto,
    /// Fixed deadline; `0` resolves to two replication ticks.
    FixedMicros(u64),
    /// Adaptive with explicit bounds.
    Adaptive { min: u64, max: u64 },
}

/// Fluent configuration of a PaRiS deployment on any backend.
///
/// Shape knobs mirror [`ClusterConfig`]; load and substrate knobs cover
/// what the runtimes need. `build` validates everything and returns the
/// backend behind a `Box<dyn Cluster>`; `build_mini`/`build_sim`/
/// `build_thread` return the concrete type when backend-specific powers
/// (fault injection, figure reports) are needed.
#[derive(Debug, Clone)]
pub struct ClusterBuilder {
    backend: Backend,
    // Shape.
    dcs: u16,
    partitions: u32,
    replication: u16,
    keys_per_partition: u64,
    value_size: usize,
    mode: Mode,
    intervals: Intervals,
    max_clock_skew_micros: u64,
    batch_frames: Option<usize>,
    flush: FlushChoice,
    // Load.
    clients_per_dc: u32,
    workload: WorkloadConfig,
    seed: u64,
    // Substrate.
    latency: Latency,
    jitter: f64,
    latency_scale: f64,
    service: ServiceModel,
    record_events: bool,
    record_history: bool,
    stab_branching: usize,
    tuning: Tuning,
    wire: WireFormat,
    durability: Option<Durability>,
    fault_plan: Option<FaultPlan>,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        ClusterBuilder::new()
    }
}

impl ClusterBuilder {
    /// A builder seeded with the paper's default deployment on the mini
    /// backend.
    pub fn new() -> Self {
        ClusterBuilder {
            backend: Backend::Mini,
            dcs: 5,
            partitions: 45,
            replication: 2,
            keys_per_partition: 1_000,
            value_size: 8,
            mode: Mode::Paris,
            intervals: Intervals::default(),
            max_clock_skew_micros: 500,
            batch_frames: None,
            flush: FlushChoice::Auto,
            clients_per_dc: 4,
            workload: WorkloadConfig::read_heavy(),
            seed: 42,
            latency: Latency::Aws,
            jitter: 0.05,
            latency_scale: 0.01,
            service: ServiceModel::default(),
            record_events: false,
            record_history: false,
            stab_branching: 0,
            tuning: Tuning::default(),
            wire: WireFormat::default(),
            durability: None,
            fault_plan: None,
        }
    }

    /// Selects the substrate [`build`](Self::build) constructs.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Number of data centers `M`.
    pub fn dcs(mut self, dcs: u16) -> Self {
        self.dcs = dcs;
        self
    }

    /// Number of partitions `N`.
    pub fn partitions(mut self, partitions: u32) -> Self {
        self.partitions = partitions;
        self
    }

    /// Replication factor `R` (paper default: 2).
    pub fn replication(mut self, r: u16) -> Self {
        self.replication = r;
        self
    }

    /// Keys per partition in the keyspace (also applied to the workload).
    pub fn keys_per_partition(mut self, keys: u64) -> Self {
        self.keys_per_partition = keys;
        self
    }

    /// Payload size of written values, in bytes (paper: 8).
    pub fn value_size(mut self, bytes: usize) -> Self {
        self.value_size = bytes;
        self
    }

    /// Protocol variant: PaRiS or the blocking BPR baseline.
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Background protocol periods (∆R/∆G/∆U/GC).
    pub fn intervals(mut self, intervals: Intervals) -> Self {
        self.intervals = intervals;
        self
    }

    /// Maximum injected physical-clock skew, in microseconds.
    pub fn max_clock_skew_micros(mut self, micros: u64) -> Self {
        self.max_clock_skew_micros = micros;
        self
    }

    /// Size trigger of the background-traffic batching layer: a link
    /// flushes once `frames` logical frames are queued on it (or its
    /// flush deadline elapses). Batching is **on by default** with
    /// [`BatchConfig::DEFAULT_MAX_BATCH`] frames and an adaptive flush
    /// deadline; `0` or `1` disables batching entirely (see
    /// [`no_batching`](Self::no_batching)). Honored by all three
    /// backends.
    pub fn batch_size(mut self, frames: usize) -> Self {
        self.batch_frames = Some(frames);
        self
    }

    /// Disables background-traffic batching: every replication and
    /// gossip frame ships as its own wire message, the paper's
    /// one-frame-per-tick behaviour. Equivalent to `batch_size(1)`.
    pub fn no_batching(mut self) -> Self {
        self.batch_frames = Some(1);
        self
    }

    /// Switches the flush deadline to a **fixed** interval: a link
    /// flushes once its oldest coalesced frame has waited `micros` —
    /// a hard bound on the extra staleness batching introduces,
    /// load-independent. `0` resolves at build time to two replication
    /// ticks' worth of accumulation, whatever order the builder methods
    /// were called in; validated against the GC period. The default is
    /// not fixed but adaptive (see
    /// [`adaptive_flush`](Self::adaptive_flush)).
    pub fn flush_interval_micros(mut self, micros: u64) -> Self {
        self.flush = FlushChoice::FixedMicros(micros);
        self
    }

    /// Uses a **load-responsive** flush deadline with explicit bounds
    /// (the default policy, with bounds derived from the replication
    /// period): each link tracks its background frame inter-arrival gap
    /// and flushes after about two gaps — a hot link flushes early
    /// (batching still wins, visibility barely taxed), a quiet link
    /// stretches its deadline toward `max_micros`. `max_micros` is the
    /// per-hop staleness ceiling the configuration promises; validation
    /// rejects `min_micros == 0`, inverted bounds and ceilings at/above
    /// the GC period.
    pub fn adaptive_flush(mut self, min_micros: u64, max_micros: u64) -> Self {
        self.flush = FlushChoice::Adaptive {
            min: min_micros,
            max: max_micros,
        };
        self
    }

    /// Closed-loop client sessions per DC for
    /// [`Cluster::run_workload`](crate::Cluster::run_workload).
    pub fn clients_per_dc(mut self, clients: u32) -> Self {
        self.clients_per_dc = clients;
        self
    }

    /// Workload shape (read/write mix, locality, zipf exponent). The
    /// keyspace size is taken from [`keys_per_partition`](Self::keys_per_partition).
    pub fn workload(mut self, workload: WorkloadConfig) -> Self {
        self.workload = workload;
        self
    }

    /// Master RNG seed: same seed ⇒ identical run on deterministic
    /// backends.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Uses the measured AWS inter-region latency matrix (default).
    pub fn aws_latencies(mut self) -> Self {
        self.latency = Latency::Aws;
        self
    }

    /// Uses a uniform one-way WAN latency instead of the AWS matrix.
    pub fn uniform_latency_micros(mut self, micros: u64) -> Self {
        self.latency = Latency::UniformMicros(micros);
        self
    }

    /// Network jitter fraction in `[0, 1)`.
    pub fn jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter;
        self
    }

    /// Multiplier the threaded backend applies to WAN latencies (default
    /// 0.01: a 70 ms RTT becomes 0.7 ms so tests run fast).
    pub fn latency_scale(mut self, scale: f64) -> Self {
        self.latency_scale = scale;
        self
    }

    /// Per-message CPU cost model of the simulated backend (the mini and
    /// thread backends have no CPU model and ignore it).
    pub fn service(mut self, service: ServiceModel) -> Self {
        self.service = service;
        self
    }

    /// Records server event logs (update-visibility latency, Fig. 4).
    /// Sim backend only: `build_mini`/`build_thread` reject it.
    pub fn record_events(mut self, on: bool) -> Self {
        self.record_events = on;
        self
    }

    /// Records client histories and runs the consistency checker after
    /// workloads.
    pub fn record_history(mut self, on: bool) -> Self {
        self.record_history = on;
        self
    }

    /// Stabilization-tree branching factor (0 = flat tree, the default).
    /// Sim backend only: `build_mini`/`build_thread` reject non-zero values.
    pub fn stab_branching(mut self, branching: usize) -> Self {
        self.stab_branching = branching;
        self
    }

    /// Installs a typed concurrency [`Tuning`]: read pool, write
    /// pipeline, store sharding, admission slots and modeled service
    /// occupancies, in one value. The last call wins wholesale (knobs
    /// are not merged across calls).
    pub fn tuning(mut self, tuning: Tuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// Turns on the durable storage engine: every server writes its
    /// committed versions to a write-ahead log and periodic stable-prefix
    /// checkpoints under `durability`'s base directory (one
    /// `dc{d}-p{p}` subdirectory per server), and a restarted server
    /// recovers its state from them. Off by default — the in-memory
    /// engine — and honored by all four backends; the socket backend
    /// additionally supports [`Cluster::restart_server`] when this is on.
    pub fn durability(mut self, durability: Durability) -> Self {
        self.durability = Some(durability);
        self
    }

    /// Wire encoding the deployment speaks: compact varint v2 (the
    /// default) or the fixed-width v1 frames of earlier releases.
    /// Socket peers negotiate down to the lower of the two sides'
    /// versions; in-process backends use it for byte accounting.
    pub fn wire_format(mut self, wire: WireFormat) -> Self {
        self.wire = wire;
        self
    }

    /// Installs a scripted [`FaultPlan`]: timed DC crashes, link
    /// partitions/slowdowns and clock-skew steps, applied automatically
    /// once the cluster is built. Validated against the deployment shape
    /// at build time; supported by the sim backend (virtual time,
    /// bit-reproducible per seed) and the thread backend (wall-clock
    /// time at the router). `build_mini`/`build_socket` reject it.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    fn cluster_config(&self) -> Result<ClusterConfig, Error> {
        if !(0.0..1.0).contains(&self.jitter) {
            return Err(ConfigError::new("jitter must be in [0, 1)").into());
        }
        if !self.latency_scale.is_finite() || self.latency_scale <= 0.0 {
            return Err(ConfigError::new("latency scale must be positive").into());
        }
        self.tuning.validate(self.mode)?;
        if let Some(plan) = &self.fault_plan {
            plan.validate(self.dcs)?;
        }
        // The untouched default derives from the configured intervals
        // (adaptive bounds capped below the GC period), so interval
        // choices can neither invalidate nor silently neuter a batching
        // policy the user never asked for; explicit choices are
        // validated strictly. Resolving here keeps the fluent call
        // order irrelevant.
        let derived = BatchConfig::default_adaptive_for(&self.intervals);
        let batch = BatchConfig {
            max_batch: match self.batch_frames {
                Some(frames) => frames,
                // Degenerate GC periods (≤ 1 µs) derive batching off.
                None if !derived.is_enabled() => derived.max_batch,
                None => BatchConfig::DEFAULT_MAX_BATCH,
            },
            flush: match self.flush {
                FlushChoice::Auto => derived.flush,
                FlushChoice::FixedMicros(0) => FlushPolicy::Fixed {
                    interval_micros: 2 * self.intervals.replication_micros,
                },
                FlushChoice::FixedMicros(m) => FlushPolicy::Fixed { interval_micros: m },
                FlushChoice::Adaptive { min, max } => FlushPolicy::Adaptive {
                    min_flush_micros: min,
                    max_flush_micros: max,
                },
            },
        };
        let cfg = ClusterConfig::builder()
            .dcs(self.dcs)
            .partitions(self.partitions)
            .replication_factor(self.replication)
            .keys_per_partition(self.keys_per_partition)
            .value_size(self.value_size)
            .intervals(self.intervals)
            .mode(self.mode)
            .max_clock_skew_micros(self.max_clock_skew_micros)
            .batch(batch)
            .wire(self.wire)
            .build()?;
        if cfg.servers_per_dc() == 0 {
            return Err(ConfigError::new(
                "shape leaves some DC without servers (partitions × R < DCs)",
            )
            .into());
        }
        Ok(cfg)
    }

    fn matrix(&self) -> RegionMatrix {
        match self.latency {
            Latency::Aws => RegionMatrix::aws_10(self.dcs),
            Latency::UniformMicros(one_way) => RegionMatrix::uniform(self.dcs, one_way),
        }
    }

    fn workload_config(&self) -> WorkloadConfig {
        WorkloadConfig {
            keys_per_partition: self.keys_per_partition,
            value_size: self.value_size,
            ..self.workload.clone()
        }
    }

    /// Builds the selected backend behind the [`Cluster`] trait.
    ///
    /// # Errors
    ///
    /// Returns a configuration error for invalid shapes or substrate
    /// parameters.
    pub fn build(self) -> Result<Box<dyn Cluster>, Error> {
        Ok(match self.backend {
            Backend::Mini => Box::new(self.build_mini()?),
            Backend::Sim => Box::new(self.build_sim()?),
            Backend::Thread => Box::new(self.build_thread()?),
            Backend::Socket => Box::new(self.build_socket()?),
        })
    }

    /// Builds the concrete [`MiniCluster`] backend.
    ///
    /// # Errors
    ///
    /// Returns a configuration error for invalid shapes.
    pub fn build_mini(self) -> Result<MiniCluster, Error> {
        if self.record_events {
            return Err(Error::Unsupported(
                "event recording (visibility latency) needs the sim backend",
            ));
        }
        if self.stab_branching != 0 {
            return Err(Error::Unsupported(
                "stabilization-tree branching needs the sim backend",
            ));
        }
        if self.fault_plan.is_some() {
            return Err(Error::Unsupported(
                "fault plans need a backend with a controllable network (sim or thread)",
            ));
        }
        let cfg = self.cluster_config()?;
        let workload = self.workload_config();
        let tuning = self.tuning.server_tuning();
        MiniCluster::from_parts(
            cfg,
            workload,
            self.clients_per_dc,
            self.seed,
            self.record_history,
            tuning,
            self.durability,
        )
    }

    /// Builds the concrete [`SimCluster`] backend (fault injection,
    /// figure-grade reports).
    ///
    /// # Errors
    ///
    /// Returns a configuration error for invalid shapes.
    pub fn build_sim(self) -> Result<SimCluster, Error> {
        let cluster = self.cluster_config()?;
        let workload = self.workload_config();
        let tuning = self.tuning.server_tuning();
        SimCluster::new(SimConfig {
            matrix: self.matrix(),
            cluster,
            jitter: self.jitter,
            service: self.service,
            seed: self.seed,
            clients_per_dc: self.clients_per_dc,
            workload,
            record_events: self.record_events,
            record_history: self.record_history,
            stab_branching: self.stab_branching,
            // Deterministic backend: pools are modeled, never derived —
            // an unset knob must not make sim results depend on the host.
            read_threads: self.tuning.read_threads.unwrap_or(0),
            read_service_micros: self.tuning.read_service_micros,
            write_threads: self.tuning.write_threads_or_zero(),
            write_service_micros: self.tuning.write_service_micros,
            tuning,
            durability: self.durability,
            fault_plan: self.fault_plan,
        })
    }

    /// Builds the concrete [`ThreadCluster`] backend.
    ///
    /// # Errors
    ///
    /// Returns a configuration error for invalid shapes.
    pub fn build_thread(self) -> Result<ThreadCluster, Error> {
        if self.record_events {
            return Err(Error::Unsupported(
                "event recording (visibility latency) needs the sim backend",
            ));
        }
        if self.stab_branching != 0 {
            return Err(Error::Unsupported(
                "stabilization-tree branching needs the sim backend",
            ));
        }
        let cluster = self.cluster_config()?;
        let workload = self.workload_config();
        let tuning = self.tuning.server_tuning();
        let net = ThreadedNetConfig {
            matrix: self.matrix(),
            scale: self.latency_scale,
            jitter: self.jitter,
            seed: self.seed,
            batch: cluster.batch,
            wire: cluster.wire,
        };
        // Real threads: an unset read pool defaults to the host's
        // parallelism under PaRiS (explicit knobs always win; BPR pools
        // are rejected above, so the auto default stays loop-served).
        // The write pool stays opt-in: parallel commits pay for mutex
        // re-entry, which only a write-heavy load amortizes.
        let read_threads = match self.tuning.read_threads {
            Some(n) => n,
            None if cluster.mode == Mode::Paris => derived_read_threads(),
            None => 0,
        };
        let fault_plan = self.fault_plan;
        let mut cluster = ThreadCluster::start(ThreadClusterConfig {
            cluster,
            net,
            clients_per_dc: self.clients_per_dc,
            workload,
            seed: self.seed,
            record_history: self.record_history,
            read_threads,
            read_service_micros: self.tuning.read_service_micros,
            write_threads: self.tuning.write_threads_or_zero(),
            write_service_micros: self.tuning.write_service_micros,
            tuning,
            durability: self.durability,
        })?;
        if let Some(plan) = fault_plan {
            cluster.install_fault_plan(plan)?;
        }
        Ok(cluster)
    }

    /// Builds the concrete [`SocketCluster`] backend: one child process
    /// per server over loopback TCP.
    ///
    /// # Errors
    ///
    /// Returns a configuration error for invalid shapes, and
    /// [`Error::Transport`]/[`Error::Unsupported`] when the child
    /// processes cannot be spawned (missing `paris-server` binary,
    /// bring-up timeout).
    pub fn build_socket(self) -> Result<SocketCluster, Error> {
        if self.record_events {
            return Err(Error::Unsupported(
                "event recording (visibility latency) needs the sim backend",
            ));
        }
        if self.stab_branching != 0 {
            return Err(Error::Unsupported(
                "stabilization-tree branching needs the sim backend",
            ));
        }
        if self.fault_plan.is_some() {
            return Err(Error::Unsupported(
                "fault plans need a backend with a controllable network (sim or thread); \
                 the socket backend injects faults via kill_server/restart_server",
            ));
        }
        let cluster = self.cluster_config()?;
        let workload = self.workload_config();
        let tuning = self.tuning.server_tuning();
        // Processes already parallelize the servers across cores; pools
        // inside every child would oversubscribe small hosts, so the
        // unset default is loop-served (an explicit knob still wins and
        // applies per child).
        let read_threads = self.tuning.read_threads.unwrap_or(0);
        SocketCluster::start(SocketClusterConfig {
            cluster,
            clients_per_dc: self.clients_per_dc,
            workload,
            seed: self.seed,
            record_history: self.record_history,
            read_threads,
            read_service_micros: self.tuning.read_service_micros,
            write_threads: self.tuning.write_threads_or_zero(),
            write_service_micros: self.tuning.write_service_micros,
            tuning,
            durability: self.durability,
            connect_timeout: std::time::Duration::from_secs(5),
            read_timeout: std::time::Duration::from_millis(100),
        })
    }
}
