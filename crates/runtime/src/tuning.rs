//! Typed concurrency tuning, shared by every backend.
//!
//! One [`Tuning`] value names every knob that shapes *how much
//! parallelism* a deployment gets — read pool, write pipeline, store
//! sharding, read-admission slots, modeled service occupancies — so a
//! configuration can be built once and handed to any backend:
//!
//! ```
//! use paris_runtime::{Backend, Paris, Tuning};
//!
//! let mut cluster = Paris::builder()
//!     .dcs(2)
//!     .partitions(4)
//!     .backend(Backend::Mini)
//!     .tuning(Tuning::default().read_threads(2).write_threads(2))
//!     .build()?;
//! # let _ = &mut cluster;
//! # Ok::<(), paris_types::Error>(())
//! ```
//!
//! Cross-field validation lives here too ([`Tuning::validate`]), so every
//! backend rejects the same nonsense configurations with the same words.

use std::path::PathBuf;

use paris_core::{DurableConfig, FsyncPolicy, ServerTuning};
use paris_types::{ConfigError, Error, Mode, ServerId};

/// The host's available parallelism, defaulting to 1 when unknown.
pub(crate) fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Default read-pool size for the threaded backend under PaRiS: half the
/// host's cores (the other half runs server loops and clients), at least
/// one pool thread, capped so small CI hosts are not oversubscribed.
pub(crate) fn derived_read_threads() -> usize {
    (host_parallelism() / 2).clamp(1, 4)
}

/// Default write-pool size for [`Tuning::auto`]: a quarter of the host's
/// cores — the write path shares the machine with server loops, clients
/// *and* the read pool — at least one worker, capped like the read pool.
pub(crate) fn derived_write_threads() -> usize {
    (host_parallelism() / 4).clamp(1, 4)
}

/// Default store-shard count: enough shards that concurrent readers and
/// the single writer rarely meet on one lock, floored at the historical
/// default of 16 and kept a power of two for cheap modulo.
pub(crate) fn derived_store_shards() -> usize {
    (2 * host_parallelism()).next_power_of_two().clamp(16, 128)
}

/// Concurrency tuning for a PaRiS deployment: every knob that sizes a
/// pool, a shard set or a modeled service occupancy, in one typed value.
///
/// `Tuning::default()` is fully conservative: nothing is pinned, each
/// backend applies its own documented derivation (the threaded backend
/// derives a read pool under PaRiS, everything else serves on the loop;
/// the write path is synchronous everywhere until
/// [`write_threads`](Self::write_threads) opts in). [`Tuning::auto`]
/// additionally sizes the write pool from the host.
///
/// All setters consume and return `self`, so a `Tuning` chains like the
/// builder it plugs into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Tuning {
    pub(crate) read_threads: Option<usize>,
    pub(crate) write_threads: Option<usize>,
    pub(crate) write_lanes: Option<usize>,
    pub(crate) store_shards: Option<usize>,
    pub(crate) read_slots: Option<usize>,
    pub(crate) read_service_micros: u64,
    pub(crate) write_service_micros: u64,
}

impl Tuning {
    /// Host-derived tuning: like `Tuning::default()` but the write pool
    /// is sized from the host's
    /// [`available_parallelism`](std::thread::available_parallelism)
    /// instead of staying synchronous. The read pool is left unset — the
    /// threaded backend already derives one under PaRiS, and the
    /// deterministic backends must not silently depend on the host.
    #[must_use]
    pub fn auto() -> Self {
        Tuning::default().write_threads(derived_write_threads())
    }

    /// Size of the read-thread pool: with `n > 0` (PaRiS only — BPR reads
    /// must block on the server loop), incoming `ReadSliceReq` slice
    /// reads, `StartTxReq` snapshot assignments *and* unbatched
    /// `GstReport` stabilization folds — all read-only against published
    /// state — are served by `n` pool threads through the server's
    /// published `ReadView` instead of the server mailbox, so they never
    /// queue behind commits, replication batches or gossip ticks — the
    /// paper's parallel non-blocking reads (§I, Alg. 2–4).
    ///
    /// `0` serves everything on the server loop. Left unset, the threaded
    /// backend derives a pool from the host's
    /// [`available_parallelism`](std::thread::available_parallelism)
    /// under PaRiS (an explicit value always wins); the mini and sim
    /// backends default to `0`. The sim backend honors an explicit `n` as
    /// `n` per-server read service queues (its deterministic counterpart
    /// of the pool — see
    /// [`read_service_micros`](Self::read_service_micros)), while mini
    /// always serves synchronously through the same `ReadView` path, so
    /// cross-backend agreement tests can share one configuration.
    #[must_use]
    pub fn read_threads(mut self, threads: usize) -> Self {
        self.read_threads = Some(threads);
        self
    }

    /// Size of the write-pipeline pool: with `n > 0` (PaRiS only),
    /// server-bound write-path traffic — `PrepareReq`, `CommitTx`,
    /// `Replicate`, `ReplicateBatch` and `Heartbeat` — is diverted to `n`
    /// pool workers. Each worker stages prepares (UST floor, write-set
    /// partitioning by store shard) and applies replication batches
    /// through the server's shared `CommitPipeline` *without* holding the
    /// server loop, re-entering it only for the loop-owned root state:
    /// HLC stamping, the prepared-transaction map and version-vector
    /// bumps. Traffic is routed to workers by **source** (one lane per
    /// worker, `src → lane` by stable hash), so the per-link FIFO the
    /// protocol relies on — `CommitTx` after its `PrepareReq`, a
    /// watermark after the applies it covers — is preserved per source.
    ///
    /// `0` (the default everywhere, including unset) keeps the write path
    /// synchronous on the server loop. The sim backend honors `n` as `n`
    /// deterministic per-server write lanes; the mini backend is always
    /// synchronous and ignores the knob.
    #[must_use]
    pub fn write_threads(mut self, threads: usize) -> Self {
        self.write_threads = Some(threads);
        self
    }

    /// Number of apply lanes inside every server's `CommitPipeline`
    /// (locks serializing same-shard applies). Left unset: one lane per
    /// store shard — maximal disjoint-shard concurrency. Explicit values
    /// are clamped by the pipeline to `1..=store_shards`. Fewer lanes
    /// trade concurrency for fewer mutexes; `fig_writes` measures the
    /// difference.
    #[must_use]
    pub fn write_lanes(mut self, lanes: usize) -> Self {
        self.write_lanes = Some(lanes);
        self
    }

    /// Number of chain shards in every server's `PartitionStore`. Left
    /// unset, derived from the host's
    /// [`available_parallelism`](std::thread::available_parallelism)
    /// (at least the historical default of 16); an explicit value always
    /// wins. More shards let more reader threads proceed without meeting
    /// a writer on a lock, and give the write pipeline more disjoint
    /// lanes. `0` is rejected by [`validate`](Self::validate).
    #[must_use]
    pub fn store_shards(mut self, shards: usize) -> Self {
        self.store_shards = Some(shards);
        self
    }

    /// Number of atomic read-admission slots in every server's
    /// `StableFrontier` in-flight registry (default 64). Each off-loop
    /// read claims a slot with one CAS; `0` disables the slots so every
    /// admission takes the mutexed fallback registry — the pre-slot
    /// behavior, kept configurable so `fig_reads` can measure exactly
    /// what the lock-free path buys.
    #[must_use]
    pub fn read_slots(mut self, slots: usize) -> Self {
        self.read_slots = Some(slots);
        self
    }

    /// Models per-slice-read service occupancy on the threaded backend,
    /// in wall-clock microseconds: each served read holds its serving
    /// thread (pool thread, or server loop when
    /// [`read_threads`](Self::read_threads) is 0) for this long, the
    /// threaded counterpart of the sim's `ServiceModel` read costs. This
    /// is what makes read-throughput scaling with
    /// [`read_threads`](Self::read_threads) measurable on small machines:
    /// occupancy overlaps across pool threads exactly like storage/CPU
    /// time does on the paper's multi-core servers. `0` (the default)
    /// serves at memory speed.
    #[must_use]
    pub fn read_service_micros(mut self, micros: u64) -> Self {
        self.read_service_micros = micros;
        self
    }

    /// Models per-write-message service occupancy, in microseconds:
    /// charged when staging a `PrepareReq` and when applying a
    /// `Replicate`/`ReplicateBatch` (never on `CommitTx` or `Heartbeat`,
    /// which only touch loop-owned metadata). On the threaded backend
    /// each charge holds the serving thread (pool worker, or the server
    /// loop when [`write_threads`](Self::write_threads) is 0) for this
    /// long in wall-clock time; on the sim backend it extends the
    /// modeled busy time of the chosen write lane. The write-path
    /// counterpart of [`read_service_micros`](Self::read_service_micros),
    /// and what makes `fig_writes` ladders measurable on small hosts.
    /// `0` (the default) stages and applies at memory speed.
    #[must_use]
    pub fn write_service_micros(mut self, micros: u64) -> Self {
        self.write_service_micros = micros;
        self
    }

    /// Cross-field validation, applied by every backend at build time.
    ///
    /// # Errors
    ///
    /// Rejects pools under BPR (blocked operations need the server loop
    /// to arbitrate resumption, for reads and writes alike) and a
    /// shardless store.
    pub fn validate(&self, mode: Mode) -> Result<(), Error> {
        if mode == Mode::Bpr && self.read_threads.is_some_and(|n| n > 0) {
            return Err(ConfigError::new(
                "read_threads requires PaRiS: BPR reads block until the snapshot installs, \
                 which only the server loop can arbitrate",
            )
            .into());
        }
        if mode == Mode::Bpr && self.write_threads.is_some_and(|n| n > 0) {
            return Err(ConfigError::new(
                "write_threads requires PaRiS: BPR resumes blocked reads from the apply \
                 path, which only the server loop can arbitrate",
            )
            .into());
        }
        if self.store_shards == Some(0) {
            return Err(ConfigError::new("store_shards must be at least 1").into());
        }
        Ok(())
    }

    /// The per-server storage/pipeline sizing this tuning resolves to:
    /// explicit knobs win, otherwise the shard count comes from the
    /// host's parallelism.
    pub(crate) fn server_tuning(&self) -> ServerTuning {
        ServerTuning {
            store_shards: Some(self.store_shards.unwrap_or_else(derived_store_shards)),
            read_slots: self.read_slots,
            write_lanes: self.write_lanes,
            // Durability is deployment state (a data directory), not a
            // Copy-able sizing knob: it rides [`crate::ClusterBuilder::
            // durability`], which stamps the per-server engine config in
            // before the server is built.
            durable: None,
        }
    }

    /// The write-pool size a non-deriving backend runs: explicit knob or
    /// synchronous.
    pub(crate) fn write_threads_or_zero(&self) -> usize {
        self.write_threads.unwrap_or(0)
    }
}

/// Durable-storage configuration for a whole deployment: every server
/// runs a [`paris_storage::DurableEngine`] (WAL + stable-prefix
/// checkpoints) rooted in its own subdirectory of `dir`, named
/// `dc{d}-p{p}`. Off by default — without a `Durability` every backend
/// keeps the purely in-memory engine and no byte of behavior changes.
///
/// ```
/// use paris_runtime::{Backend, Durability, FsyncPolicy, Paris};
///
/// let dir = std::env::temp_dir().join("paris-durability-doc");
/// let mut cluster = Paris::builder()
///     .dcs(2)
///     .partitions(2)
///     .backend(Backend::Mini)
///     .durability(Durability::new(&dir).fsync(FsyncPolicy::Never))
///     .build()?;
/// # let _ = &mut cluster;
/// # drop(cluster);
/// # let _ = std::fs::remove_dir_all(&dir);
/// # Ok::<(), paris_types::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Durability {
    pub(crate) dir: PathBuf,
    pub(crate) fsync: FsyncPolicy,
    pub(crate) checkpoint_interval_micros: u64,
}

impl Durability {
    /// Durability rooted at `dir` (created on demand), with fsync off and
    /// the default checkpoint cadence — the configuration the overhead
    /// benchmarks run.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Durability {
            dir: dir.into(),
            fsync: FsyncPolicy::Never,
            checkpoint_interval_micros: paris_storage::DEFAULT_CHECKPOINT_INTERVAL_MICROS,
        }
    }

    /// When the WAL is flushed to stable media: [`FsyncPolicy::Never`]
    /// (crash-safe against process death, the default) or
    /// [`FsyncPolicy::Always`] (also power-loss safe, much slower).
    #[must_use]
    pub fn fsync(mut self, fsync: FsyncPolicy) -> Self {
        self.fsync = fsync;
        self
    }

    /// Minimum spacing between stable-prefix checkpoints, in microseconds
    /// of the driving clock. `0` checkpoints on every GC tick.
    #[must_use]
    pub fn checkpoint_interval_micros(mut self, micros: u64) -> Self {
        self.checkpoint_interval_micros = micros;
        self
    }

    /// The per-server engine config: this deployment's knobs, rooted at
    /// `dir/dc{d}-p{p}` so collocated servers never share a log.
    pub(crate) fn server_config(&self, id: ServerId) -> DurableConfig {
        DurableConfig::new(self.dir.join(format!("dc{}-p{}", id.dc.0, id.partition.0)))
            .fsync(self.fsync)
            .checkpoint_interval_micros(self.checkpoint_interval_micros)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fully_unset() {
        let t = Tuning::default();
        assert_eq!(t.read_threads, None);
        assert_eq!(t.write_threads, None);
        assert_eq!(t.write_lanes, None);
        assert_eq!(t.store_shards, None);
        assert_eq!(t.read_slots, None);
        assert_eq!(t.read_service_micros, 0);
        assert_eq!(t.write_service_micros, 0);
    }

    #[test]
    fn auto_sizes_the_write_pool_from_the_host() {
        let t = Tuning::auto();
        assert_eq!(t.write_threads, Some(derived_write_threads()));
        assert!(t.write_threads.unwrap() >= 1);
        // Reads stay backend-derived, not pinned here.
        assert_eq!(t.read_threads, None);
    }

    #[test]
    fn setters_chain() {
        let t = Tuning::default()
            .read_threads(3)
            .write_threads(2)
            .write_lanes(8)
            .store_shards(32)
            .read_slots(16)
            .read_service_micros(250)
            .write_service_micros(100);
        assert_eq!(t.read_threads, Some(3));
        assert_eq!(t.write_threads, Some(2));
        assert_eq!(t.write_lanes, Some(8));
        assert_eq!(t.store_shards, Some(32));
        assert_eq!(t.read_slots, Some(16));
        assert_eq!(t.read_service_micros, 250);
        assert_eq!(t.write_service_micros, 100);
    }

    #[test]
    fn bpr_rejects_both_pools_but_not_zero() {
        assert!(Tuning::default().validate(Mode::Bpr).is_ok());
        assert!(Tuning::default()
            .read_threads(0)
            .write_threads(0)
            .validate(Mode::Bpr)
            .is_ok());
        assert!(Tuning::default()
            .read_threads(1)
            .validate(Mode::Bpr)
            .is_err());
        assert!(Tuning::default()
            .write_threads(1)
            .validate(Mode::Bpr)
            .is_err());
        assert!(Tuning::default()
            .read_threads(4)
            .write_threads(4)
            .validate(Mode::Paris)
            .is_ok());
    }

    #[test]
    fn shardless_stores_are_rejected_everywhere() {
        assert!(Tuning::default()
            .store_shards(0)
            .validate(Mode::Paris)
            .is_err());
        assert!(Tuning::default()
            .store_shards(0)
            .validate(Mode::Bpr)
            .is_err());
        assert!(Tuning::default()
            .store_shards(1)
            .validate(Mode::Paris)
            .is_ok());
    }

    #[test]
    fn server_tuning_passes_explicit_knobs_through() {
        let st = Tuning::default()
            .store_shards(8)
            .read_slots(4)
            .write_lanes(2)
            .server_tuning();
        assert_eq!(st.store_shards, Some(8));
        assert_eq!(st.read_slots, Some(4));
        assert_eq!(st.write_lanes, Some(2));
        // Unset shards derive from the host, never zero.
        let st = Tuning::default().server_tuning();
        assert!(st.store_shards.unwrap() >= 16);
        assert_eq!(st.write_lanes, None);
    }
}
