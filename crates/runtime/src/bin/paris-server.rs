//! Child server process of the socket backend.
//!
//! Spawned by [`paris_runtime::SocketCluster`] with a hex-encoded
//! [`paris_runtime::ChildSpec`] in the `PARIS_CHILD_SPEC` environment
//! variable; hosts exactly one partition server until the parent says
//! stop (or disappears). Not meant to be launched by hand.

fn main() {
    if let Err(e) = paris_runtime::socket_child_main() {
        eprintln!("paris-server: {e}");
        std::process::exit(1);
    }
}
