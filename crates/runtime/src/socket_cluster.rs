//! The multi-process socket backend.
//!
//! One OS **process** per partition server, real TCP frames between them
//! — the deployment shape the paper actually evaluates (one machine per
//! server), scaled down to loopback. The parent process hosts every
//! client session plus the control plane; each child process hosts one
//! [`Server`] state machine driven by the same loops as the threaded
//! backend ([`crate::driver`]) over a [`SocketNode`] transport.
//!
//! ## Bring-up
//!
//! 1. The parent binds its data-plane node and a control listener, then
//!    spawns one `paris-server` child per server with a [`ChildSpec`]
//!    (configuration + control port) in an environment variable.
//! 2. Each child binds its own data-plane node, dials the control port,
//!    handshakes (magic + protocol version, like every connection) and
//!    sends [`Ctrl::Hello`] with its data port.
//! 3. Once every child has said hello, the parent broadcasts
//!    [`Ctrl::Peers`] — the full address map — and installs its own
//!    routes. Data-plane links open lazily from here on.
//!
//! ## Failure and shutdown
//!
//! The parent polls child liveness during every blocking wait: a child
//! that dies mid-operation surfaces as [`Error::Transport`] within one
//! poll interval — interactive operations and `run_workload` never hang
//! on a killed server. Drop sends [`Ctrl::Stop`] to every child, waits
//! briefly for graceful exits and kills stragglers, so no run leaks
//! processes.
//!
//! Every process stamps time with [`WallClock`] — microseconds since a
//! fixed shared epoch read from the OS real-time clock — so timestamps
//! from different processes are mutually comparable exactly like the
//! NTP-synchronized machines of the paper's testbed. Configured skew
//! injection is not simulated here: the backend's point is *real*
//! process boundaries, and real same-host clocks already carry whatever
//! skew the OS provides.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use paris_clock::WallClock;
use paris_core::checker::HistoryChecker;
use paris_core::{
    ClientEvent, ClientRead, ClientSession, DurableConfig, FsyncPolicy, ReadStep, Server,
    ServerOptions, ServerTuning, Topology, Violation,
};
use paris_net::sim::RegionMatrix;
use paris_net::socket::framing::{
    deadline_in, read_ctrl_deadline, read_preamble, write_ctrl, write_preamble,
};
use paris_net::socket::{NodeIdentity, SocketConfig, SocketHandle, SocketNode};
use paris_proto::{Ctrl, Endpoint, Envelope, ServerSnapshot, SnapshotCounters};
use paris_types::{
    BatchConfig, ClientId, ClusterConfig, DcId, Error, FlushPolicy, Intervals, Key, Mode, ServerId,
    Timestamp, Value, VersionOrd, WireFormat,
};
use paris_workload::stats::RunStats;
use paris_workload::WorkloadConfig;

use crate::driver::{run_client, server_loop, ClientOutcome};
use crate::measure::{BlockingStats, ClusterStats, RunReport};
use crate::{replica_convergence, Cluster, INTERACTIVE_SEQ_BASE};

/// How long an interactive operation may wait for its reply.
const OP_TIMEOUT: Duration = Duration::from_secs(10);

/// How long the parent waits for every child to say hello.
const HELLO_TIMEOUT: Duration = Duration::from_secs(30);

/// How long a child may take to exit after [`Ctrl::Stop`] before it is
/// killed.
const STOP_GRACE: Duration = Duration::from_secs(3);

/// Environment variable carrying the hex-encoded [`ChildSpec`] to a
/// spawned `paris-server` process.
pub const CHILD_SPEC_ENV: &str = "PARIS_CHILD_SPEC";

/// Environment variable overriding where the parent looks for the
/// `paris-server` binary.
pub const SERVER_BIN_ENV: &str = "PARIS_SERVER_BIN";

/// Configuration of a socket deployment (assembled by the builder).
#[derive(Debug, Clone)]
pub(crate) struct SocketClusterConfig {
    pub(crate) cluster: ClusterConfig,
    pub(crate) clients_per_dc: u32,
    pub(crate) workload: WorkloadConfig,
    pub(crate) seed: u64,
    pub(crate) record_history: bool,
    /// Per-child read-pool size (see the threaded backend's knob).
    pub(crate) read_threads: usize,
    pub(crate) read_service_micros: u64,
    /// Per-child write-pool size (see the threaded backend's knob).
    pub(crate) write_threads: usize,
    pub(crate) write_service_micros: u64,
    pub(crate) tuning: ServerTuning,
    /// Durable-engine deployment: each child gets its own log directory
    /// derived from this (see [`crate::Durability::server_config`]).
    pub(crate) durability: Option<crate::Durability>,
    pub(crate) connect_timeout: Duration,
    pub(crate) read_timeout: Duration,
}

// ---------------------------------------------------------------------
// Child spec: everything a child process needs, hand-serialized into an
// environment variable (hex over a little-endian byte stream — no serde
// in the dependency tree, and the spec is a dozen integers).
// ---------------------------------------------------------------------

/// What a child server process is told at spawn time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChildSpec {
    /// Control-plane port on 127.0.0.1 to dial back.
    pub ctrl_port: u16,
    /// Which server this process hosts.
    pub server: ServerId,
    /// The deployment configuration (topology, mode, intervals, batching).
    pub cluster: ClusterConfig,
    /// Storage-concurrency sizing.
    pub tuning: ServerTuning,
    /// Read-pool size inside the child.
    pub read_threads: usize,
    /// Modeled per-slice-read service occupancy (µs).
    pub read_service_micros: u64,
    /// Write-pool size inside the child.
    pub write_threads: usize,
    /// Modeled per-write service occupancy (µs).
    pub write_service_micros: u64,
    /// Data-plane connect window (µs).
    pub connect_timeout_micros: u64,
    /// Inbound read timeout (µs).
    pub read_timeout_micros: u64,
}

struct SpecWriter(Vec<u8>);

impl SpecWriter {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(v) => {
                self.u8(1);
                self.u64(v);
            }
        }
    }
    fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.0.extend_from_slice(v);
    }
}

struct SpecReader<'a>(&'a [u8]);

impl SpecReader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], Error> {
        if self.0.len() < n {
            return Err(Error::Transport("truncated child spec"));
        }
        let (head, tail) = self.0.split_at(n);
        self.0 = tail;
        Ok(head)
    }
    fn u8(&mut self) -> Result<u8, Error> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, Error> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, Error> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, Error> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn opt_u64(&mut self) -> Result<Option<u64>, Error> {
        Ok(match self.u8()? {
            0 => None,
            _ => Some(self.u64()?),
        })
    }
    fn bytes(&mut self) -> Result<Vec<u8>, Error> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }
}

impl ChildSpec {
    /// Encodes the spec as lowercase hex for an environment variable.
    pub fn encode(&self) -> String {
        let mut w = SpecWriter(Vec::with_capacity(128));
        w.u16(self.ctrl_port);
        w.u16(self.server.dc.0);
        w.u32(self.server.partition.0);
        let c = &self.cluster;
        w.u16(c.dcs);
        w.u32(c.partitions);
        w.u16(c.replication_factor);
        w.u64(c.keys_per_partition);
        w.u64(c.value_size as u64);
        w.u64(c.intervals.replication_micros);
        w.u64(c.intervals.gst_micros);
        w.u64(c.intervals.ust_micros);
        w.u64(c.intervals.gc_micros);
        w.u8(match c.mode {
            Mode::Paris => 0,
            Mode::Bpr => 1,
        });
        w.u64(c.max_clock_skew_micros);
        w.u64(c.batch.max_batch as u64);
        match c.batch.flush {
            FlushPolicy::Fixed { interval_micros } => {
                w.u8(0);
                w.u64(interval_micros);
            }
            FlushPolicy::Adaptive {
                min_flush_micros,
                max_flush_micros,
            } => {
                w.u8(1);
                w.u64(min_flush_micros);
                w.u64(max_flush_micros);
            }
        }
        w.u8(c.wire.version() as u8);
        w.opt_u64(self.tuning.store_shards.map(|v| v as u64));
        w.opt_u64(self.tuning.read_slots.map(|v| v as u64));
        w.opt_u64(self.tuning.write_lanes.map(|v| v as u64));
        match &self.tuning.durable {
            None => w.u8(0),
            Some(d) => {
                w.u8(1);
                // The log directory travels as UTF-8; `Durability` dirs
                // come from strings, so lossy conversion is the identity.
                w.bytes(d.dir.to_string_lossy().as_bytes());
                w.u8(match d.fsync {
                    FsyncPolicy::Never => 0,
                    FsyncPolicy::Always => 1,
                });
                w.u64(d.checkpoint_interval_micros);
            }
        }
        w.u64(self.read_threads as u64);
        w.u64(self.read_service_micros);
        w.u64(self.write_threads as u64);
        w.u64(self.write_service_micros);
        w.u64(self.connect_timeout_micros);
        w.u64(self.read_timeout_micros);
        w.0.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Decodes a spec produced by [`ChildSpec::encode`].
    ///
    /// # Errors
    ///
    /// [`Error::Transport`] for malformed hex or truncated fields.
    pub fn decode(hex: &str) -> Result<ChildSpec, Error> {
        if !hex.len().is_multiple_of(2) {
            return Err(Error::Transport("odd-length child spec"));
        }
        let bytes: Vec<u8> = (0..hex.len() / 2)
            .map(|i| u8::from_str_radix(&hex[2 * i..2 * i + 2], 16))
            .collect::<Result<_, _>>()
            .map_err(|_| Error::Transport("non-hex child spec"))?;
        let mut r = SpecReader(&bytes);
        let ctrl_port = r.u16()?;
        let server = ServerId::new(DcId(r.u16()?), paris_types::PartitionId(r.u32()?));
        let dcs = r.u16()?;
        let partitions = r.u32()?;
        let replication_factor = r.u16()?;
        let keys_per_partition = r.u64()?;
        let value_size = r.u64()? as usize;
        let intervals = Intervals {
            replication_micros: r.u64()?,
            gst_micros: r.u64()?,
            ust_micros: r.u64()?,
            gc_micros: r.u64()?,
        };
        let mode = match r.u8()? {
            0 => Mode::Paris,
            1 => Mode::Bpr,
            _ => return Err(Error::Transport("unknown mode in child spec")),
        };
        let max_clock_skew_micros = r.u64()?;
        let max_batch = r.u64()? as usize;
        let flush = match r.u8()? {
            0 => FlushPolicy::Fixed {
                interval_micros: r.u64()?,
            },
            1 => FlushPolicy::Adaptive {
                min_flush_micros: r.u64()?,
                max_flush_micros: r.u64()?,
            },
            _ => return Err(Error::Transport("unknown flush policy in child spec")),
        };
        let wire = match WireFormat::from_version(r.u8()? as u16) {
            Some(wire) => wire,
            None => return Err(Error::Transport("unknown wire format in child spec")),
        };
        let cluster = ClusterConfig {
            dcs,
            partitions,
            replication_factor,
            keys_per_partition,
            value_size,
            intervals,
            mode,
            max_clock_skew_micros,
            batch: BatchConfig { max_batch, flush },
            wire,
        };
        let store_shards = r.opt_u64()?.map(|v| v as usize);
        let read_slots = r.opt_u64()?.map(|v| v as usize);
        let write_lanes = r.opt_u64()?.map(|v| v as usize);
        let durable = match r.u8()? {
            0 => None,
            1 => {
                let dir = String::from_utf8(r.bytes()?)
                    .map_err(|_| Error::Transport("non-UTF-8 durable dir in child spec"))?;
                let fsync = match r.u8()? {
                    0 => FsyncPolicy::Never,
                    1 => FsyncPolicy::Always,
                    _ => return Err(Error::Transport("unknown fsync policy in child spec")),
                };
                Some(
                    DurableConfig::new(dir)
                        .fsync(fsync)
                        .checkpoint_interval_micros(r.u64()?),
                )
            }
            _ => return Err(Error::Transport("unknown durable flag in child spec")),
        };
        let tuning = ServerTuning {
            store_shards,
            read_slots,
            write_lanes,
            durable,
        };
        Ok(ChildSpec {
            ctrl_port,
            server,
            cluster,
            tuning,
            read_threads: r.u64()? as usize,
            read_service_micros: r.u64()?,
            write_threads: r.u64()? as usize,
            write_service_micros: r.u64()?,
            connect_timeout_micros: r.u64()?,
            read_timeout_micros: r.u64()?,
        })
    }
}

// ---------------------------------------------------------------------
// Child process entry point
// ---------------------------------------------------------------------

/// Runs a child server process to completion: decode the spec from the
/// environment, bind the data plane, join the deployment over the
/// control plane, serve until [`Ctrl::Stop`] (or the parent disappears).
///
/// This is the whole body of the `paris-server` binary; it is a library
/// function so the binary stays a three-line `main`.
///
/// # Errors
///
/// [`Error::Transport`] when the spec is malformed or the parent cannot
/// be reached — the binary exits non-zero and the parent's hello
/// deadline reports the failed bring-up.
pub fn socket_child_main() -> Result<(), Error> {
    let spec = std::env::var(CHILD_SPEC_ENV)
        .map_err(|_| Error::Transport("PARIS_CHILD_SPEC is not set"))?;
    let spec = ChildSpec::decode(&spec)?;
    run_child(spec)
}

fn run_child(spec: ChildSpec) -> Result<(), Error> {
    let topo = Arc::new(Topology::new(spec.cluster.clone()));
    let id = spec.server;
    let socket_cfg = SocketConfig {
        batch: spec.cluster.batch,
        wire: spec.cluster.wire,
        connect_timeout: Duration::from_micros(spec.connect_timeout_micros),
        read_timeout: Duration::from_micros(spec.read_timeout_micros),
    };
    let mut node = SocketNode::bind(NodeIdentity::Server(id), socket_cfg)?;

    // The server state machine, stamped by the host-wide wall clock so
    // every process in the deployment shares a timebase. With a durable
    // tuning this is also the recovery point: a relaunched child replays
    // its checkpoint + WAL suffix here, *before* it says hello — joining
    // the deployment advertises readiness to serve.
    let server = Arc::new(Mutex::new(Server::try_with_tuning(
        ServerOptions {
            id,
            topology: Arc::clone(&topo),
            clock: Box::new(WallClock::new()),
            mode: spec.cluster.mode,
            record_events: false,
        },
        spec.tuning.clone(),
    )?));

    // Join the deployment: dial the control port, handshake, say hello,
    // learn the peer map.
    let ctrl_addr = SocketAddr::from(([127, 0, 0, 1], spec.ctrl_port));
    let mut ctrl = TcpStream::connect_timeout(&ctrl_addr, Duration::from_secs(5))
        .map_err(|_| Error::Transport("could not dial the control plane"))?;
    ctrl.set_read_timeout(Some(Duration::from_millis(100)))
        .map_err(|_| Error::Transport("could not configure the control socket"))?;
    write_preamble(&mut ctrl, spec.cluster.wire.version())?;
    read_preamble(&mut ctrl, deadline_in(HELLO_TIMEOUT))?;
    write_ctrl(
        &mut ctrl,
        &Ctrl::Hello {
            server: id,
            data_port: node.local_addr().port(),
        },
    )?;
    let peers = read_ctrl_deadline(&mut ctrl, deadline_in(HELLO_TIMEOUT))?;
    let Ctrl::Peers {
        client_port,
        servers,
    } = peers
    else {
        return Err(Error::Transport("expected a peer map from the parent"));
    };
    node.set_routes(
        Some(SocketAddr::from(([127, 0, 0, 1], client_port))),
        servers
            .into_iter()
            .map(|(s, port)| (s, SocketAddr::from(([127, 0, 0, 1], port)))),
    );
    let view = server
        .lock()
        .map_err(|_| Error::Transport("server poisoned"))?
        .read_view();
    let clock = Arc::new(WallClock::new());
    let stop = Arc::new(AtomicBool::new(false));

    // Demux the node inbox: read-path messages to the pool lanes (the
    // socket mirror of the threaded router's read tap), everything else
    // to the server mailbox.
    let read_threads = if spec.cluster.mode == Mode::Paris {
        spec.read_threads
    } else {
        0
    };
    let (mailbox_tx, mailbox_rx) = channel::<Envelope>();
    let mut lanes: Vec<Sender<Envelope>> = Vec::new();
    let mut pool_handles = Vec::new();
    for i in 0..read_threads {
        let (lane_tx, lane_rx) = channel::<Envelope>();
        lanes.push(lane_tx);
        let views = HashMap::from([(id, view.clone())]);
        let servers = HashMap::from([(id, Arc::clone(&server))]);
        let send = node.handle();
        let clock = Arc::clone(&clock);
        let stop = Arc::clone(&stop);
        let service = spec.read_service_micros;
        pool_handles.push(
            std::thread::Builder::new()
                .name(format!("read-pool-{i}"))
                .spawn(move || {
                    crate::driver::read_pool_loop(
                        lane_rx,
                        views,
                        servers,
                        move |e| send.send_lossy(e),
                        clock,
                        stop,
                        service,
                    )
                })
                .map_err(|_| Error::Transport("could not spawn read pool thread"))?,
        );
    }
    // The write-pipeline pool (the socket mirror of the threaded
    // router's write tap): source-keyed lanes, each drained by one
    // worker running the off-loop pipeline halves.
    let write_threads = if spec.cluster.mode == Mode::Paris {
        spec.write_threads
    } else {
        0
    };
    let mut write_lanes: Vec<Sender<Envelope>> = Vec::new();
    for i in 0..write_threads {
        let (lane_tx, lane_rx) = channel::<Envelope>();
        write_lanes.push(lane_tx);
        let pipeline = server
            .lock()
            .map_err(|_| Error::Transport("server poisoned"))?
            .commit_pipeline();
        let pipelines = HashMap::from([(id, pipeline)]);
        let servers = HashMap::from([(id, Arc::clone(&server))]);
        let send = node.handle();
        let clock = Arc::clone(&clock);
        let stop = Arc::clone(&stop);
        let service = spec.write_service_micros;
        pool_handles.push(
            std::thread::Builder::new()
                .name(format!("write-pool-{i}"))
                .spawn(move || {
                    crate::driver::write_pool_loop(
                        lane_rx,
                        pipelines,
                        servers,
                        move |e| send.send_lossy(e),
                        clock,
                        stop,
                        service,
                    )
                })
                .map_err(|_| Error::Transport("could not spawn write pool thread"))?,
        );
    }
    let inbox = node
        .take_inbox()
        .ok_or(Error::Transport("node inbox already taken"))?;
    let demux_stop = Arc::clone(&stop);
    let demux = std::thread::Builder::new()
        .name("demux".into())
        .spawn(move || {
            let mut rr = 0usize;
            loop {
                match inbox.recv_timeout(Duration::from_millis(100)) {
                    Ok(env) => {
                        let read_tapped = !lanes.is_empty()
                            && matches!(
                                env.msg,
                                paris_proto::Msg::ReadSliceReq { .. }
                                    | paris_proto::Msg::StartTxReq { .. }
                                    | paris_proto::Msg::GstReport { .. }
                                    | paris_proto::Msg::GossipDigest { .. }
                            );
                        let write_tapped =
                            !write_lanes.is_empty() && crate::driver::is_write_path(&env);
                        let delivered = if read_tapped {
                            rr = (rr + 1) % lanes.len();
                            lanes[rr].send(env).is_ok()
                        } else if write_tapped {
                            // Source-keyed, never round-robin: one link's
                            // write traffic must drain through one lane.
                            let lane = crate::driver::write_lane_of(env.src, write_lanes.len());
                            write_lanes[lane].send(env).is_ok()
                        } else {
                            mailbox_tx.send(env).is_ok()
                        };
                        if !delivered {
                            return;
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        if demux_stop.load(Ordering::Relaxed) {
                            return;
                        }
                    }
                    Err(RecvTimeoutError::Disconnected) => return,
                }
            }
        })
        .map_err(|_| Error::Transport("could not spawn demux thread"))?;

    let loop_server = Arc::clone(&server);
    let loop_send = node.handle();
    let loop_topo = Arc::clone(&topo);
    let loop_clock = Arc::clone(&clock);
    let loop_stop = Arc::clone(&stop);
    let intervals = spec.cluster.intervals;
    // With a read pool, the loop never sees ReadSliceReqs, so it must not
    // also charge the modeled read service time; same for the write pool.
    let loop_read_service = if read_threads > 0 {
        0
    } else {
        spec.read_service_micros
    };
    let loop_write_service = if write_threads > 0 {
        0
    } else {
        spec.write_service_micros
    };
    let server_handle = std::thread::Builder::new()
        .name(format!("server-{id}"))
        .spawn(move || {
            server_loop(
                loop_server,
                mailbox_rx,
                move |e| loop_send.send_lossy(e),
                loop_topo,
                loop_clock,
                loop_stop,
                intervals,
                id,
                loop_read_service,
                loop_write_service,
            )
        })
        .map_err(|_| Error::Transport("could not spawn server loop"))?;

    // Control loop on the main thread: stats requests and shutdown. A
    // vanished parent (EOF or error) is a shutdown too — children never
    // outlive their parent.
    let counters = node.counters();
    loop {
        match read_ctrl_deadline(&mut ctrl, deadline_in(Duration::from_secs(3600))) {
            Ok(Ctrl::StatsReq) => {
                let snap = {
                    // A poisoned server means a loop thread panicked;
                    // treat it as fatal and let the parent see EOF.
                    let Ok(server) = server.lock() else { break };
                    let stats = server.stats();
                    let pipeline = server.commit_pipeline();
                    let pipeline = pipeline.stats();
                    let mut chains = Vec::new();
                    server.store().for_each_chain(&mut |key, chain| {
                        chains.push((key, chain.iter().map(|v| v.order()).collect()));
                    });
                    ServerSnapshot {
                        server: Some(id),
                        ust: server.ust(),
                        blocked_reads: stats.blocked_reads,
                        blocked_micros_total: stats.blocked_micros_total,
                        blocked_micros_max: stats.blocked_micros_max,
                        net_messages: counters.messages_out.load(Ordering::Relaxed),
                        net_bytes: counters.bytes_out.load(Ordering::Relaxed),
                        counters: SnapshotCounters {
                            msgs_handled: stats.msgs_handled,
                            txs_coordinated: stats.txs_coordinated,
                            slice_reads: stats.slice_reads,
                            keys_read: stats.keys_read,
                            prepares: stats.prepares,
                            applied_local: stats.applied_local,
                            applied_remote: stats.applied_remote,
                            replicate_batches: stats.replicate_batches,
                            heartbeats: stats.heartbeats,
                            coalesced_frames: stats.coalesced_frames,
                            pooled_gossip_digests: stats.pooled_gossip_digests,
                            gc_removed: stats.gc_removed,
                            staged_prepares: pipeline.staged_prepares(),
                            lane_batches: pipeline.lane_batches(),
                            lane_applies: pipeline.lane_applies(),
                        },
                        chains,
                    }
                };
                if write_ctrl(&mut ctrl, &Ctrl::StatsResp(Box::new(snap))).is_err() {
                    break;
                }
            }
            Ok(Ctrl::Peers {
                client_port,
                servers,
            }) => {
                // A peer process restarted on fresh ports: install the
                // updated map so future dials reach the new addresses
                // (stale links fail on their own and are redialed).
                node.set_routes(
                    Some(SocketAddr::from(([127, 0, 0, 1], client_port))),
                    servers
                        .into_iter()
                        .map(|(s, port)| (s, SocketAddr::from(([127, 0, 0, 1], port)))),
                );
            }
            Ok(Ctrl::Stop) | Err(_) => break,
            // Unexpected frames are ignored: the control protocol may
            // grow and old children should not die on new requests.
            Ok(_) => {}
        }
    }

    stop.store(true, Ordering::Relaxed);
    let _ = server_handle.join();
    for h in pool_handles {
        let _ = h.join();
    }
    let _ = demux.join();
    node.shutdown();
    Ok(())
}

// ---------------------------------------------------------------------
// Parent: the SocketCluster backend
// ---------------------------------------------------------------------

/// Locates the `paris-server` child binary: the [`SERVER_BIN_ENV`]
/// override, else a sibling of the current executable (walking up past
/// `deps/` and `examples/` so tests and examples find it too).
fn server_binary() -> Result<PathBuf, Error> {
    if let Ok(p) = std::env::var(SERVER_BIN_ENV) {
        return Ok(PathBuf::from(p));
    }
    let name = format!("paris-server{}", std::env::consts::EXE_SUFFIX);
    let exe = std::env::current_exe()
        .map_err(|_| Error::Transport("could not locate the current executable"))?;
    let mut dir = exe.parent();
    for _ in 0..3 {
        let Some(d) = dir else { break };
        let candidate = d.join(&name);
        if candidate.is_file() {
            return Ok(candidate);
        }
        dir = d.parent();
    }
    Err(Error::Unsupported(
        "paris-server binary not found next to the current executable; \
         build it with `cargo build -p paris-runtime --bin paris-server` \
         or point PARIS_SERVER_BIN at it",
    ))
}

struct ChildProc {
    id: ServerId,
    proc: Mutex<Child>,
    ctrl: Mutex<TcpStream>,
}

struct InteractiveClient {
    session: ClientSession,
    inbox: Receiver<Envelope>,
}

type ClientRegistry = Arc<Mutex<HashMap<ClientId, Sender<Envelope>>>>;

/// The multi-process socket backend. See the module docs.
pub struct SocketCluster {
    config: SocketClusterConfig,
    topo: Arc<Topology>,
    node: SocketNode,
    handle: SocketHandle,
    clock: Arc<WallClock>,
    children: Vec<ChildProc>,
    registry: ClientRegistry,
    demux_stop: Arc<AtomicBool>,
    demux_handle: Option<JoinHandle<()>>,
    interactive: HashMap<ClientId, InteractiveClient>,
    next_interactive: HashMap<DcId, u32>,
    // Retained for `restart_server`: a relaunched child dials back on the
    // same control port and slots into the updated peer map.
    binary: PathBuf,
    ctrl_listener: TcpListener,
    ctrl_port: u16,
    peer_map: Vec<(ServerId, u16)>,
}

/// Kills and reaps every child in `children` (bring-up failure path).
fn kill_all(children: &mut Vec<Child>) {
    for child in children.iter_mut() {
        let _ = child.kill();
    }
    for child in children.iter_mut() {
        let _ = child.wait();
    }
    children.clear();
}

impl SocketCluster {
    /// Spawns the child server processes, completes the control-plane
    /// bring-up and returns the live deployment.
    pub(crate) fn start(config: SocketClusterConfig) -> Result<SocketCluster, Error> {
        let binary = server_binary()?;
        let topo = Arc::new(Topology::new(config.cluster.clone()));
        let mut node = SocketNode::bind(
            NodeIdentity::ClientHost,
            SocketConfig {
                batch: config.cluster.batch,
                wire: config.cluster.wire,
                connect_timeout: config.connect_timeout,
                read_timeout: config.read_timeout,
            },
        )?;
        let ctrl_listener = TcpListener::bind("127.0.0.1:0")
            .map_err(|_| Error::Transport("could not bind the control listener"))?;
        let ctrl_port = ctrl_listener
            .local_addr()
            .map_err(|_| Error::Transport("could not read the control address"))?
            .port();
        ctrl_listener
            .set_nonblocking(true)
            .map_err(|_| Error::Transport("could not configure the control listener"))?;

        // Spawn one child per server.
        let all_servers: Vec<ServerId> = topo.all_servers();
        let mut procs: Vec<Child> = Vec::with_capacity(all_servers.len());
        for &id in &all_servers {
            let mut tuning = config.tuning.clone();
            tuning.durable = config.durability.as_ref().map(|d| d.server_config(id));
            let spec = ChildSpec {
                ctrl_port,
                server: id,
                cluster: config.cluster.clone(),
                tuning,
                read_threads: config.read_threads,
                read_service_micros: config.read_service_micros,
                write_threads: config.write_threads,
                write_service_micros: config.write_service_micros,
                connect_timeout_micros: config.connect_timeout.as_micros() as u64,
                read_timeout_micros: config.read_timeout.as_micros() as u64,
            };
            match Command::new(&binary)
                .env(CHILD_SPEC_ENV, spec.encode())
                .stdin(Stdio::null())
                .stdout(Stdio::null())
                .spawn()
            {
                Ok(child) => procs.push(child),
                Err(_) => {
                    kill_all(&mut procs);
                    return Err(Error::Transport("could not spawn a server process"));
                }
            }
        }

        // Collect every child's hello within the deadline.
        let deadline = deadline_in(HELLO_TIMEOUT);
        let mut hellos: HashMap<ServerId, (TcpStream, u16)> = HashMap::new();
        while hellos.len() < all_servers.len() {
            if Instant::now() >= deadline {
                kill_all(&mut procs);
                return Err(Error::Transport(
                    "timed out waiting for server processes to join",
                ));
            }
            match ctrl_listener.accept() {
                Ok((mut stream, _)) => {
                    let joined = (|| -> Result<(), Error> {
                        stream
                            .set_read_timeout(Some(Duration::from_millis(100)))
                            .map_err(|_| Error::Transport("control socket"))?;
                        read_preamble(&mut stream, deadline)?;
                        write_preamble(&mut stream, config.cluster.wire.version())?;
                        match read_ctrl_deadline(&mut stream, deadline)? {
                            Ctrl::Hello { server, data_port } => {
                                hellos.insert(server, (stream, data_port));
                                Ok(())
                            }
                            _ => Err(Error::Transport("expected a hello")),
                        }
                    })();
                    if joined.is_err() {
                        // A confused dialer (port scanner, stale child):
                        // ignore it, the deadline still guards bring-up.
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }

        // Broadcast the peer map and install the parent's own routes.
        let peer_map: Vec<(ServerId, u16)> = hellos.iter().map(|(&s, &(_, p))| (s, p)).collect();
        let client_port = node.local_addr().port();
        let mut children = Vec::with_capacity(all_servers.len());
        for (i, &id) in all_servers.iter().enumerate() {
            let Some((mut stream, _)) = hellos.remove(&id) else {
                kill_all(&mut procs);
                return Err(Error::Transport("a server process joined twice"));
            };
            if write_ctrl(
                &mut stream,
                &Ctrl::Peers {
                    client_port,
                    servers: peer_map.clone(),
                },
            )
            .is_err()
            {
                kill_all(&mut procs);
                return Err(Error::Transport("a server process left during bring-up"));
            }
            // procs was pushed in all_servers order, so index i is child i.
            let _ = i;
            children.push(ChildProc {
                id,
                proc: Mutex::new(procs.remove(0)),
                ctrl: Mutex::new(stream),
            });
        }
        node.set_routes(
            None,
            peer_map
                .iter()
                .map(|&(s, port)| (s, SocketAddr::from(([127, 0, 0, 1], port)))),
        );

        // Demux envelopes arriving at the client host to their sessions.
        let registry: ClientRegistry = Arc::new(Mutex::new(HashMap::new()));
        let inbox = node
            .take_inbox()
            .ok_or(Error::Transport("node inbox already taken"))?;
        let demux_stop = Arc::new(AtomicBool::new(false));
        let demux_handle = {
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&demux_stop);
            std::thread::Builder::new()
                .name("client-demux".into())
                .spawn(move || loop {
                    match inbox.recv_timeout(Duration::from_millis(100)) {
                        Ok(env) => {
                            if let Endpoint::Client(cid) = env.dst {
                                // A poisoned registry means the parent is
                                // tearing down mid-panic; just exit.
                                let Ok(guard) = registry.lock() else { return };
                                if let Some(tx) = guard.get(&cid) {
                                    let _ = tx.send(env);
                                }
                            }
                        }
                        Err(RecvTimeoutError::Timeout) => {
                            if stop.load(Ordering::Relaxed) {
                                return;
                            }
                        }
                        Err(RecvTimeoutError::Disconnected) => return,
                    }
                })
                .map_err(|_| Error::Transport("could not spawn the client demux"))?
        };

        let handle = node.handle();
        Ok(SocketCluster {
            config,
            topo,
            node,
            handle,
            clock: Arc::new(WallClock::new()),
            children,
            registry,
            demux_stop,
            demux_handle: Some(demux_handle),
            interactive: HashMap::new(),
            next_interactive: HashMap::new(),
            binary,
            ctrl_listener,
            ctrl_port,
            peer_map,
        })
    }

    /// The topology, for inspecting placement.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The OS process id of the child hosting `id` — robustness tests
    /// kill it to exercise failure handling.
    pub fn server_pid(&self, id: ServerId) -> Option<u32> {
        self.children
            .iter()
            .find(|c| c.id == id)
            .and_then(|c| c.proc.lock().ok().map(|p| p.id()))
    }

    /// The OS process ids of every child server.
    pub fn server_pids(&self) -> Vec<u32> {
        self.children
            .iter()
            .filter_map(|c| c.proc.lock().ok().map(|p| p.id()))
            .collect()
    }

    /// The first child that has exited, if any (reaps it as a side
    /// effect).
    fn dead_child(&self) -> Option<ServerId> {
        self.children.iter().find_map(|c| {
            let mut proc = c.proc.lock().ok()?;
            proc.try_wait().ok().flatten().map(|_| c.id)
        })
    }

    fn session(&mut self, client: ClientId) -> Result<&mut InteractiveClient, Error> {
        self.interactive
            .get_mut(&client)
            .ok_or(Error::UnknownTransaction)
    }

    /// Sends `env` and waits for the event that completes the operation,
    /// surfacing a dead server process as a transport error instead of
    /// hanging out the full timeout.
    fn round_trip(&mut self, client: ClientId, env: Envelope) -> Result<ClientEvent, Error> {
        self.handle.send(env)?;
        let deadline = Instant::now() + OP_TIMEOUT;
        loop {
            let ic = self
                .interactive
                .get_mut(&client)
                .ok_or(Error::UnknownTransaction)?;
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(Error::Transport("interactive operation timed out"));
            }
            match ic.inbox.recv_timeout(left.min(Duration::from_millis(100))) {
                Ok(env) => {
                    if let Some(ev) = ic.session.handle(&env) {
                        return Ok(ev);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if self.dead_child().is_some() {
                        return Err(Error::Transport("server process exited"));
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(Error::Transport("client demux shut down"));
                }
            }
        }
    }

    /// Pulls a stats snapshot from every child over the control plane.
    fn snapshot_all(&self) -> Result<Vec<ServerSnapshot>, Error> {
        let mut snaps = Vec::with_capacity(self.children.len());
        for child in &self.children {
            let mut ctrl = child
                .ctrl
                .lock()
                .map_err(|_| Error::Transport("control channel poisoned"))?;
            write_ctrl(&mut *ctrl, &Ctrl::StatsReq)?;
            match read_ctrl_deadline(&mut *ctrl, deadline_in(OP_TIMEOUT))? {
                Ctrl::StatsResp(snap) => snaps.push(*snap),
                _ => return Err(Error::Transport("expected a stats response")),
            }
        }
        Ok(snaps)
    }

    /// The spawn spec for the child hosting `id` — identical for the
    /// initial bring-up and for every relaunch, so a restarted server
    /// finds its own durable directory again.
    fn child_spec(&self, id: ServerId) -> ChildSpec {
        let mut tuning = self.config.tuning.clone();
        tuning.durable = self.config.durability.as_ref().map(|d| d.server_config(id));
        ChildSpec {
            ctrl_port: self.ctrl_port,
            server: id,
            cluster: self.config.cluster.clone(),
            tuning,
            read_threads: self.config.read_threads,
            read_service_micros: self.config.read_service_micros,
            write_threads: self.config.write_threads,
            write_service_micros: self.config.write_service_micros,
            connect_timeout_micros: self.config.connect_timeout.as_micros() as u64,
            read_timeout_micros: self.config.read_timeout.as_micros() as u64,
        }
    }

    /// Accepts control-plane dialers on the retained listener until the
    /// child hosting `id` says hello; returns its control stream and data
    /// port. Stray dialers are ignored — the deadline guards the wait.
    fn await_rejoin(&self, id: ServerId, deadline: Instant) -> Result<(TcpStream, u16), Error> {
        loop {
            if Instant::now() >= deadline {
                return Err(Error::Transport(
                    "timed out waiting for the restarted server to rejoin",
                ));
            }
            match self.ctrl_listener.accept() {
                Ok((mut stream, _)) => {
                    let hello = (|| -> Result<(ServerId, u16), Error> {
                        stream
                            .set_read_timeout(Some(Duration::from_millis(100)))
                            .map_err(|_| Error::Transport("control socket"))?;
                        read_preamble(&mut stream, deadline)?;
                        write_preamble(&mut stream, self.config.cluster.wire.version())?;
                        match read_ctrl_deadline(&mut stream, deadline)? {
                            Ctrl::Hello { server, data_port } => Ok((server, data_port)),
                            _ => Err(Error::Transport("expected a hello")),
                        }
                    })();
                    if let Ok((server, data_port)) = hello {
                        if server == id {
                            return Ok((stream, data_port));
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    }

    /// One stabilization round in wall-clock microseconds. Loopback has
    /// no WAN leg, so the round is the protocol periods plus batching
    /// slack plus a generous scheduling allowance for 2·servers
    /// processes on one host.
    fn round_micros(&self) -> u64 {
        crate::gossip_round_micros(
            &self.config.cluster.intervals,
            &RegionMatrix::uniform(self.config.cluster.dcs, 0),
            self.config.cluster.dcs,
            1.0,
            &self.config.cluster.batch,
            10_000,
        )
    }
}

impl Cluster for SocketCluster {
    fn backend_name(&self) -> &'static str {
        "socket"
    }

    fn mode(&self) -> Mode {
        self.config.cluster.mode
    }

    fn open_client(&mut self, dc: u16) -> Result<ClientId, Error> {
        if dc >= self.config.cluster.dcs {
            return Err(paris_types::ConfigError::new("client DC out of range").into());
        }
        let dc = DcId(dc);
        let offset = self.next_interactive.entry(dc).or_insert(0);
        let id = ClientId::new(dc, INTERACTIVE_SEQ_BASE + *offset);
        *offset += 1;
        let (tx, inbox) = channel();
        self.registry
            .lock()
            .map_err(|_| Error::Transport("client registry poisoned"))?
            .insert(id, tx);
        let coordinator = self.topo.coordinator_for(dc, id.seq);
        let session = ClientSession::new(id, coordinator, self.config.cluster.mode);
        self.interactive
            .insert(id, InteractiveClient { session, inbox });
        Ok(id)
    }

    fn txn_begin(&mut self, client: ClientId) -> Result<Timestamp, Error> {
        let env = self.session(client)?.session.begin()?;
        match self.round_trip(client, env)? {
            ClientEvent::Started { snapshot, .. } => Ok(snapshot),
            ClientEvent::Aborted { .. } => Err(Error::PartitionUnreachable),
            _ => Err(Error::UnknownTransaction),
        }
    }

    fn txn_read(&mut self, client: ClientId, keys: &[Key]) -> Result<Vec<ClientRead>, Error> {
        let step = self.session(client)?.session.read(keys)?;
        match step {
            ReadStep::Done(reads) => Ok(reads),
            ReadStep::Send(env) => match self.round_trip(client, env)? {
                ClientEvent::ReadDone { reads, .. } => Ok(reads),
                ClientEvent::Aborted { .. } => Err(Error::PartitionUnreachable),
                _ => Err(Error::UnknownTransaction),
            },
        }
    }

    fn txn_write(&mut self, client: ClientId, entries: &[(Key, Value)]) -> Result<(), Error> {
        self.session(client)?.session.write(entries)
    }

    fn txn_commit(&mut self, client: ClientId) -> Result<Timestamp, Error> {
        let env = self.session(client)?.session.commit()?;
        match self.round_trip(client, env)? {
            ClientEvent::Committed { ct, .. } => Ok(ct),
            ClientEvent::Aborted { .. } => Err(Error::PartitionUnreachable),
            _ => Err(Error::UnknownTransaction),
        }
    }

    fn reset_client(&mut self, client: ClientId) -> Result<(), Error> {
        // No inbox drain, for the same reason as the threaded backend:
        // the session's own discard logic owns reply hygiene.
        self.session(client)?.session.reset();
        Ok(())
    }

    fn stabilize(&mut self, rounds: usize) {
        std::thread::sleep(Duration::from_micros(self.round_micros() * rounds as u64));
    }

    fn min_ust(&self) -> Timestamp {
        self.snapshot_all()
            .map(|snaps| snaps.iter().map(|s| s.ust).min().unwrap_or(Timestamp::ZERO))
            .unwrap_or(Timestamp::ZERO)
    }

    fn run_workload(&mut self, warmup_micros: u64, window_micros: u64) -> Result<RunReport, Error> {
        let stop_clients = Arc::new(AtomicBool::new(false));
        let measure_after = Instant::now() + Duration::from_micros(warmup_micros);
        let mut handles: Vec<JoinHandle<ClientOutcome>> = Vec::new();
        for dc in 0..self.config.cluster.dcs {
            let dc = DcId(dc);
            let local_partitions = self.topo.partitions_in_dc(dc);
            for seq in 0..self.config.clients_per_dc {
                let id = ClientId::new(dc, seq);
                let (tx, inbox) = channel();
                self.registry
                    .lock()
                    .map_err(|_| Error::Transport("client registry poisoned"))?
                    .insert(id, tx);
                let send = self.handle.clone();
                let coordinator = self.topo.coordinator_for(dc, seq);
                let mode = self.config.cluster.mode;
                let stop = Arc::clone(&stop_clients);
                let clock = Arc::clone(&self.clock);
                let workload = self.config.workload.clone();
                let n_partitions = self.config.cluster.partitions;
                let local = local_partitions.clone();
                let seed = self.config.seed ^ (u64::from(dc.0) << 32) ^ u64::from(seq);
                handles.push(
                    std::thread::Builder::new()
                        .name(format!("client-{id}"))
                        .spawn(move || {
                            run_client(
                                id,
                                coordinator,
                                mode,
                                workload,
                                n_partitions,
                                local,
                                seed,
                                inbox,
                                move |e| send.send_lossy(e),
                                stop,
                                clock,
                                measure_after,
                            )
                        })
                        .map_err(|_| Error::Transport("could not spawn a client thread"))?,
                );
            }
        }

        // Sleep out the run in slices, watching child liveness: a killed
        // server stops the run promptly instead of wedging every client.
        let run_until = Instant::now() + Duration::from_micros(warmup_micros + window_micros);
        let mut died = None;
        while Instant::now() < run_until {
            if let Some(id) = self.dead_child() {
                died = Some(id);
                break;
            }
            std::thread::sleep(
                Duration::from_millis(100).min(run_until.saturating_duration_since(Instant::now())),
            );
        }
        stop_clients.store(true, Ordering::Relaxed);
        let mut outcomes = Vec::new();
        for h in handles {
            match h.join() {
                Ok(outcome) => outcomes.push(outcome),
                Err(_) => return Err(Error::Transport("a client thread panicked")),
            }
        }
        if let Some(id) = died {
            let _ = id;
            return Err(Error::Transport(
                "a server process died during the workload",
            ));
        }
        // Let replication/stabilization settle before snapshotting.
        std::thread::sleep(Duration::from_millis(300));

        let mut stats = RunStats::new(window_micros);
        let mut checker = self.config.record_history.then(HistoryChecker::new);
        for outcome in outcomes {
            stats.committed += outcome.committed;
            stats.aborted += outcome.aborted;
            stats.latency.merge(&outcome.latency);
            stats.start_latency.merge(&outcome.start_latency);
            if let Some(checker) = checker.as_mut() {
                for (cid, rec) in outcome.records {
                    checker.record_tx(cid, rec);
                }
            }
        }

        let snapshots = self.snapshot_all()?;
        let violations = match checker.as_mut() {
            Some(checker) => {
                for snap in &snapshots {
                    for (key, orders) in &snap.chains {
                        checker.record_versions(*key, orders.iter().copied());
                    }
                }
                checker.check()
            }
            None => Vec::new(),
        };

        let mut blocking = BlockingStats::default();
        let counters = self.node.counters();
        let mut net_messages = counters.messages_out.load(Ordering::Relaxed);
        let mut net_bytes = counters.bytes_out.load(Ordering::Relaxed);
        for snap in &snapshots {
            blocking.blocked_reads += snap.blocked_reads;
            blocking.total_micros += snap.blocked_micros_total;
            blocking.max_micros = blocking.max_micros.max(snap.blocked_micros_max);
            net_messages += snap.net_messages;
            net_bytes += snap.net_bytes;
        }

        Ok(RunReport {
            mode: self.config.cluster.mode,
            stats,
            blocking,
            visibility: None,
            violations,
            net_messages,
            net_bytes,
        })
    }

    fn stats(&mut self) -> Result<ClusterStats, Error> {
        let snapshots = self.snapshot_all()?;
        let mut out = ClusterStats::default();
        let mut min_ust = None;
        for snap in &snapshots {
            out.fold_snapshot(snap);
            min_ust = Some(min_ust.map_or(snap.ust, |u: Timestamp| u.min(snap.ust)));
        }
        // The parent's own node carries the client traffic.
        let counters = self.node.counters();
        out.net_messages += counters.messages_out.load(Ordering::Relaxed);
        out.net_bytes += counters.bytes_out.load(Ordering::Relaxed);
        out.min_ust = min_ust.unwrap_or(Timestamp::ZERO);
        Ok(out)
    }

    fn kill_server(&mut self, index: usize) -> Result<(), Error> {
        let child = self.children.get(index).ok_or_else(|| {
            Error::from(paris_types::ConfigError::new("server index out of range"))
        })?;
        let mut proc = child
            .proc
            .lock()
            .map_err(|_| Error::Transport("child handle poisoned"))?;
        // SIGKILL on unix: no shutdown handshake, no final fsync — the
        // durable log's torn tail is exactly what recovery must survive.
        let _ = proc.kill();
        proc.wait()
            .map_err(|_| Error::Transport("could not reap the killed server"))?;
        Ok(())
    }

    fn restart_server(&mut self, index: usize) -> Result<(), Error> {
        let id = self
            .children
            .get(index)
            .ok_or_else(|| Error::from(paris_types::ConfigError::new("server index out of range")))?
            .id;
        {
            // Idempotent after kill_server: make sure the old process is
            // gone before its replacement binds anything.
            let mut proc = self.children[index]
                .proc
                .lock()
                .map_err(|_| Error::Transport("child handle poisoned"))?;
            let _ = proc.kill();
            let _ = proc.wait();
        }

        let spec = self.child_spec(id);
        let child = Command::new(&self.binary)
            .env(CHILD_SPEC_ENV, spec.encode())
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .spawn()
            .map_err(|_| Error::Transport("could not spawn a replacement server process"))?;

        // The replacement recovers (checkpoint + WAL replay) before it
        // says hello, so rejoining means ready-to-serve.
        let (stream, data_port) = match self.await_rejoin(id, deadline_in(HELLO_TIMEOUT)) {
            Ok(joined) => joined,
            Err(e) => {
                let mut child = child;
                let _ = child.kill();
                let _ = child.wait();
                return Err(e);
            }
        };

        // Slot the replacement in, then publish its new data port to
        // every child (including the new one, which is blocked waiting
        // for exactly this peer map) and to the parent's own routes.
        if let Some(entry) = self.peer_map.iter_mut().find(|(s, _)| *s == id) {
            entry.1 = data_port;
        }
        self.children[index] = ChildProc {
            id,
            proc: Mutex::new(child),
            ctrl: Mutex::new(stream),
        };
        let client_port = self.node.local_addr().port();
        for child in &self.children {
            let mut ctrl = child
                .ctrl
                .lock()
                .map_err(|_| Error::Transport("control channel poisoned"))?;
            write_ctrl(
                &mut *ctrl,
                &Ctrl::Peers {
                    client_port,
                    servers: self.peer_map.clone(),
                },
            )
            .map_err(|_| Error::Transport("a server process left during restart"))?;
        }
        self.node.set_routes(
            None,
            self.peer_map
                .iter()
                .map(|&(s, port)| (s, SocketAddr::from(([127, 0, 0, 1], port)))),
        );
        Ok(())
    }

    fn begin(&mut self, client: ClientId) -> Result<crate::Txn<'_>, Error> {
        crate::Txn::begin_on(self, client)
    }

    fn check_convergence(&mut self) -> Result<Vec<Violation>, Error> {
        let snapshots = self.snapshot_all()?;
        let mut by_server: HashMap<ServerId, HashMap<Key, Option<VersionOrd>>> = HashMap::new();
        for snap in snapshots {
            let Some(id) = snap.server else { continue };
            let latest = snap
                .chains
                .into_iter()
                .map(|(key, orders)| (key, orders.first().copied()))
                .collect();
            by_server.insert(id, latest);
        }
        let topo = Arc::clone(&self.topo);
        Ok(replica_convergence(&topo, |id| {
            by_server.get(&id).cloned().unwrap_or_default()
        }))
    }
}

impl Drop for SocketCluster {
    fn drop(&mut self) {
        // Ask every child to stop, give them a grace window, then kill.
        for child in &self.children {
            if let Ok(mut ctrl) = child.ctrl.lock() {
                let _ = write_ctrl(&mut *ctrl, &Ctrl::Stop);
            }
        }
        let deadline = Instant::now() + STOP_GRACE;
        for child in &self.children {
            let Ok(mut proc) = child.proc.lock() else {
                continue;
            };
            loop {
                match proc.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    _ => {
                        let _ = proc.kill();
                        let _ = proc.wait();
                        break;
                    }
                }
            }
        }
        self.demux_stop.store(true, Ordering::Relaxed);
        self.node.shutdown();
        if let Some(h) = self.demux_handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paris_types::PartitionId;

    #[test]
    fn child_spec_roundtrips_through_hex() {
        let spec = ChildSpec {
            ctrl_port: 45_123,
            server: ServerId::new(DcId(1), PartitionId(3)),
            cluster: ClusterConfig::builder()
                .dcs(2)
                .partitions(4)
                .replication_factor(2)
                .keys_per_partition(50)
                .build()
                .unwrap(),
            tuning: ServerTuning {
                store_shards: Some(16),
                read_slots: None,
                write_lanes: Some(4),
                durable: None,
            },
            read_threads: 2,
            read_service_micros: 7,
            write_threads: 3,
            write_service_micros: 11,
            connect_timeout_micros: 5_000_000,
            read_timeout_micros: 100_000,
        };
        let hex = spec.encode();
        assert_eq!(ChildSpec::decode(&hex).unwrap(), spec);

        // Both flush policies and both modes survive the trip.
        let mut spec2 = spec.clone();
        spec2.cluster.mode = Mode::Bpr;
        spec2.cluster.batch = BatchConfig::fixed(8, 1_000);
        spec2.tuning.read_slots = Some(0);
        spec2.tuning.write_lanes = None;
        spec2.write_threads = 0;
        assert_eq!(ChildSpec::decode(&spec2.encode()).unwrap(), spec2);

        // A durable tuning (the crash-recovery deployment shape) survives
        // too, directory path and knobs intact.
        let mut spec3 = spec.clone();
        spec3.tuning.durable = Some(
            DurableConfig::new("/tmp/paris-test/dc1-p3")
                .fsync(FsyncPolicy::Always)
                .checkpoint_interval_micros(250_000),
        );
        assert_eq!(ChildSpec::decode(&spec3.encode()).unwrap(), spec3);
    }

    #[test]
    fn child_spec_rejects_garbage() {
        assert!(ChildSpec::decode("zz").is_err());
        assert!(ChildSpec::decode("abc").is_err());
        assert!(ChildSpec::decode("0102").is_err());
        let valid = ChildSpec {
            ctrl_port: 1,
            server: ServerId::new(DcId(0), PartitionId(0)),
            cluster: ClusterConfig::default(),
            tuning: ServerTuning::default(),
            read_threads: 0,
            read_service_micros: 0,
            write_threads: 0,
            write_service_micros: 0,
            connect_timeout_micros: 1,
            read_timeout_micros: 1,
        }
        .encode();
        // Truncations never panic.
        for cut in (0..valid.len()).step_by(2) {
            let _ = ChildSpec::decode(&valid[..cut]);
        }
    }
}
