//! Cluster runtimes: drive the PaRiS state machines over a substrate.
//!
//! * [`SimCluster`] — the deterministic discrete-event runtime that stands
//!   in for the paper's AWS deployment: WAN latency matrix, per-server CPU
//!   service queues, closed-loop clients, fault injection. Every figure of
//!   the paper is regenerated on it.
//! * [`ThreadCluster`] — a real multi-threaded in-process deployment over
//!   crossbeam channels: one thread per server, used by integration tests
//!   to exercise the protocol under genuine concurrency.
//!
//! Both runtimes execute the same `paris-core` state machines and produce
//! a [`RunReport`] with throughput, latency percentiles, blocking
//! statistics, update-visibility latency and (optionally) the consistency
//! checker's verdict.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod measure;
mod sim_cluster;
mod thread_cluster;

pub use measure::{visibility_histogram, BlockingStats, RunReport};
pub use sim_cluster::{SimCluster, SimConfig};
pub use thread_cluster::{ThreadCluster, ThreadClusterConfig};
