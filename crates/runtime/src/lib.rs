//! Cluster runtimes behind one facade: drive the PaRiS state machines
//! over any substrate through the [`Cluster`] trait.
//!
//! * [`MiniCluster`] — a synchronous in-process pump: zero latency, fully
//!   deterministic, the cheapest way to *use* PaRiS as a library.
//! * [`SimCluster`] — the deterministic discrete-event runtime that stands
//!   in for the paper's AWS deployment: WAN latency matrix, per-server CPU
//!   service queues, closed-loop clients, fault injection. Every figure of
//!   the paper is regenerated on it.
//! * [`ThreadCluster`] — a real multi-threaded in-process deployment: one
//!   thread per server, used by integration tests to exercise the protocol
//!   under genuine concurrency.
//! * [`SocketCluster`] — a real multi-**process** deployment: one OS
//!   process per server speaking protocol frames over loopback TCP — the
//!   paper's one-machine-per-server shape, scaled down to one host.
//!
//! All four execute the same `paris-core` state machines. Build any of
//! them with [`Paris::builder`]; interact through [`Cluster`] and the RAII
//! [`Txn`] handle; measure with [`Cluster::run_workload`], which produces
//! a [`RunReport`] with throughput, latency percentiles, blocking
//! statistics and (when enabled) the consistency checker's verdict.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

use paris_core::checker::HistoryChecker;
use paris_core::{Topology, Violation};
use paris_net::sim::RegionMatrix;
use paris_types::{DcId, Intervals, Key, PartitionId, ServerId, VersionOrd};

mod builder;
pub mod chaos;
mod driver;
mod facade;
mod measure;
mod mini_cluster;
mod sim_cluster;
mod socket_cluster;
mod thread_cluster;
mod tuning;

pub use builder::{Backend, ClusterBuilder, Paris};
pub use chaos::{chaos_scenario, ChaosOutcome, ChaosScenario, CHAOS_SCENARIOS};
pub use facade::{Cluster, Txn};
pub use measure::{visibility_histogram, BlockingStats, ClusterStats, RunReport};
pub use mini_cluster::MiniCluster;
pub use sim_cluster::SimCluster;
pub use socket_cluster::{
    socket_child_main, ChildSpec, SocketCluster, CHILD_SPEC_ENV, SERVER_BIN_ENV,
};
pub use thread_cluster::ThreadCluster;
pub use tuning::{Durability, Tuning};

pub use paris_core::{DurableStats, FsyncPolicy, RecoveryInfo};

/// Interactive client sessions get sequence numbers far above the
/// workload clients' `0..clients_per_dc` range so the two populations
/// never collide on ids or inboxes.
pub(crate) const INTERACTIVE_SEQ_BASE: u32 = 1 << 20;

/// One stabilization round, in microseconds: long enough for every
/// periodic protocol to fire at least once and for its messages to cross
/// the (optionally scaled) WAN, plus `slack` for processing. With
/// batching enabled, every hop of the round (replicate, tree report, root
/// exchange, UST broadcast) may additionally sit one flush interval in a
/// coalescing queue.
pub(crate) fn gossip_round_micros(
    intervals: &Intervals,
    matrix: &RegionMatrix,
    dcs: u16,
    latency_scale: f64,
    batch: &paris_types::BatchConfig,
    slack: u64,
) -> u64 {
    let mut max_one_way = 0;
    for a in 0..dcs {
        for b in 0..dcs {
            max_one_way = max_one_way.max(matrix.one_way(DcId(a), DcId(b)));
        }
    }
    let wan = (max_one_way as f64 * latency_scale) as u64;
    let flush = if batch.is_enabled() {
        // The ceiling: adaptive links may flush earlier, never later.
        4 * batch.max_flush_micros()
    } else {
        0
    };
    intervals.replication_micros
        + 2 * intervals.gst_micros
        + intervals.ust_micros
        + 2 * wan
        + flush
        + slack
}

/// Snapshot of each key's freshest version order in one store — the
/// per-server input every backend feeds to [`replica_convergence`].
pub(crate) fn latest_orders(store: &dyn paris_storage::Engine) -> HashMap<Key, Option<VersionOrd>> {
    let mut latest = HashMap::new();
    store.for_each_chain(&mut |k, chain| {
        latest.insert(k, chain.latest_order());
    });
    latest
}

/// Feeds every retained version of one store into the checker's ground
/// truth — shared by every backend's report path.
pub(crate) fn record_store_versions(
    checker: &mut HistoryChecker,
    store: &dyn paris_storage::Engine,
) {
    store.for_each_chain(&mut |key, chain| {
        checker.record_versions(key, chain.iter().map(|v| v.order()));
    });
}

/// Shared replica-agreement oracle: for every partition, compares the
/// latest version of every key across all replicas.
pub(crate) fn replica_convergence<F>(topo: &Topology, mut latest_of: F) -> Vec<Violation>
where
    F: FnMut(ServerId) -> HashMap<Key, Option<VersionOrd>>,
{
    let mut violations = Vec::new();
    for p in 0..topo.partitions() {
        let p = PartitionId(p);
        let maps: Vec<HashMap<Key, Option<VersionOrd>>> = topo
            .replicas(p)
            .into_iter()
            .map(|dc| latest_of(ServerId::new(dc, p)))
            .collect();
        violations.extend(HistoryChecker::check_convergence(&maps));
    }
    violations
}
