//! The deterministic discrete-event cluster runtime.
//!
//! Substitutes for the paper's AWS deployment: every server is a state
//! machine behind a single-queue CPU (service-time model), the network is
//! the AWS RTT matrix with per-link FIFO, clients are closed-loop sessions
//! collocated with their coordinator (paper §V-A), and the whole run is
//! reproducible from a seed.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use paris_clock::{SimClock, SkewCell, SteppableClock};
use paris_core::checker::{HistoryChecker, RecordedTx};
use paris_core::ClientRead;
use paris_core::{
    ClientEvent, ClientSession, ReadStep, Server, ServerOptions, ServerTuning, Topology, Violation,
};
use paris_net::batch::{Coalescer, Offer};
use paris_net::sim::{EventQueue, RegionMatrix, ServiceModel, SimNetwork};
use paris_proto::{Endpoint, Envelope};
use paris_types::{
    ClientId, ClusterConfig, DcId, Error, FaultKind, FaultPlan, Key, Mode, ServerId, Timestamp,
    TxId, Value,
};
use paris_workload::stats::RunStats;
use paris_workload::{TxSpec, WorkloadConfig, WorkloadGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::measure::{visibility_histogram, BlockingStats, ClusterStats, RunReport};
use crate::{replica_convergence, Cluster, INTERACTIVE_SEQ_BASE};

/// Configuration of a simulated deployment (assembled by the builder).
#[derive(Debug, Clone)]
pub(crate) struct SimConfig {
    /// Cluster shape (DCs, partitions, replication factor, intervals…).
    pub(crate) cluster: ClusterConfig,
    /// Inter-DC latency matrix.
    pub(crate) matrix: RegionMatrix,
    /// Network jitter fraction.
    pub(crate) jitter: f64,
    /// Per-message CPU costs.
    pub(crate) service: ServiceModel,
    /// Master RNG seed: same seed ⇒ identical run.
    pub(crate) seed: u64,
    /// Closed-loop client sessions per DC (the paper's "threads ×
    /// processes"; each session runs transactions back to back).
    pub(crate) clients_per_dc: u32,
    /// Workload shape.
    pub(crate) workload: WorkloadConfig,
    /// Record server event logs (visibility latency, Fig. 4).
    pub(crate) record_events: bool,
    /// Record client histories and run the consistency checker.
    pub(crate) record_history: bool,
    /// Stabilization-tree branching factor (`0` = flat tree rooted at the
    /// lowest partition per DC, the default; the tree-shape ablation sets
    /// small fanouts).
    pub(crate) stab_branching: usize,
    /// Per-server read service queues: with `n > 0` (PaRiS only),
    /// `ReadSliceReq`/`StartTxReq` occupy one of `n` independent read
    /// lanes instead of the server's single CPU queue — the deterministic
    /// mirror of the threaded backend's read-thread pool, so pool scaling
    /// is observable (and gated) on this backend too. `0` (default)
    /// keeps the single-queue model.
    pub(crate) read_threads: usize,
    /// Additional modeled occupancy per slice read (µs of simulated
    /// time), matching the threaded backend's `read_service_micros`
    /// semantics: charged to the serving read lane, or to the single
    /// server queue when `read_threads` is 0.
    pub(crate) read_service_micros: u64,
    /// Per-server write service lanes: with `n > 0` (PaRiS only), tapped
    /// write-path messages (`PrepareReq`/`CommitTx`/`Replicate`/
    /// `ReplicateBatch`/`Heartbeat`) occupy one of `n` independent write
    /// lanes — chosen by the **source** endpoint's stable hash, exactly
    /// like the threaded write pool's source-keyed lanes — instead of the
    /// server's single CPU queue. Deterministic: state-machine effects
    /// still apply in delivery order; only modeled occupancy overlaps.
    /// `0` (default) keeps the single-queue model and is bit-identical
    /// to the pre-pipeline simulator.
    pub(crate) write_threads: usize,
    /// Additional modeled occupancy per staged prepare or replication
    /// apply (µs of simulated time), matching the threaded backend's
    /// `write_service_micros`: charged to the serving write lane, or to
    /// the single server queue when `write_threads` is 0. Never charged
    /// on `CommitTx`/`Heartbeat` (loop-owned metadata moves).
    pub(crate) write_service_micros: u64,
    /// Storage-concurrency sizing for every server (does not affect
    /// simulated time; kept consistent with the other backends so
    /// explicit knobs behave identically everywhere).
    pub(crate) tuning: ServerTuning,
    /// Durable storage engine (WAL + checkpoints) for every server; off
    /// (`None`, purely in-memory) by default. Does not affect simulated
    /// time — gated metrics stay bit-identical — but real files are
    /// written, so a restarted deployment over the same directory
    /// recovers the committed prefix.
    pub(crate) durability: Option<crate::Durability>,
    /// Scripted fault schedule, validated by the builder; events fire at
    /// their virtual times from simulation start. `None` (the default)
    /// adds no events and no RNG draws, keeping fault-free runs
    /// bit-identical to a simulator without the chaos subsystem.
    pub(crate) fault_plan: Option<FaultPlan>,
}

#[derive(Debug, Clone, Copy)]
enum TickKind {
    Replicate,
    Gst,
    Ust,
    Gc,
}

#[derive(Debug)]
enum SimEvent {
    Deliver(Envelope),
    Tick(ServerId, TickKind),
    ClientKick(ClientId),
    /// Deadline-triggered flush of the batching coalescer.
    NetFlush,
    /// A scripted fault from the installed [`FaultPlan`] fires.
    Fault(FaultKind),
}

struct ServerSlot {
    server: Server,
    busy_until: u64,
    /// Busy-until times of the server's read lanes (empty when the
    /// multi-queue read service model is off). Read-path messages occupy
    /// a lane, everything else the single CPU queue above.
    read_lanes: Vec<u64>,
    /// Round-robin cursor over `read_lanes` — mirrors the threaded
    /// router's read-tap lane assignment.
    next_lane: usize,
    /// Busy-until times of the server's write lanes (empty when the
    /// write-pipeline service model is off). Write-path messages occupy
    /// the lane their **source** hashes to — mirroring the threaded
    /// write tap — so one link's traffic always queues on one lane.
    write_lanes: Vec<u64>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    Starting,
    Reading,
    Committing,
}

struct ClientSlot {
    session: ClientSession,
    generator: WorkloadGenerator,
    rng: StdRng,
    phase: Phase,
    spec: Option<TxSpec>,
    tx_begin: u64,
    // History recording for the checker.
    cur_tx: Option<TxId>,
    cur_snapshot: Timestamp,
    cur_reads: Vec<paris_core::RecordedRead>,
}

/// The simulated cluster. See the module docs.
pub struct SimCluster {
    config: SimConfig,
    topo: Arc<Topology>,
    clock: SimClock,
    net: SimNetwork,
    /// Per-link batching of background traffic (pass-through when
    /// batching is disabled).
    coalescer: Coalescer,
    /// Time of the earliest scheduled [`SimEvent::NetFlush`], so queueing
    /// more frames does not pile up redundant flush events.
    flush_scheduled: Option<u64>,
    rng: StdRng,
    queue: EventQueue<SimEvent>,
    servers: HashMap<ServerId, ServerSlot>,
    clients: HashMap<ClientId, ClientSlot>,
    now: u64,
    /// Clients stop beginning new transactions at this time.
    client_stop: u64,
    /// Measurement window for throughput/latency.
    window_start: u64,
    window_end: u64,
    stats: RunStats,
    checker: Option<HistoryChecker>,
    failure_detection: bool,
    /// Per-DC skew cells of the servers' steppable clocks, for the
    /// clock-skew-step fault (one cell per server, grouped by DC).
    skew_cells: HashMap<DcId, Vec<SkewCell>>,
    interactive: HashMap<ClientId, ClientSession>,
    interactive_events: VecDeque<(ClientId, ClientEvent)>,
    next_interactive: HashMap<DcId, u32>,
}

impl SimCluster {
    /// Builds the deployment: all servers with skewed clocks, all client
    /// sessions, background ticks scheduled with random phase offsets.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Storage`] when durability is requested and a
    /// server's data directory cannot be opened or recovered.
    pub(crate) fn new(config: SimConfig) -> Result<Self, Error> {
        let topo = Arc::new(Topology::with_branching(
            config.cluster.clone(),
            config.stab_branching,
        ));
        let clock = SimClock::new();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let net = SimNetwork::with_wire(config.matrix.clone(), config.jitter, config.cluster.wire);
        let mut queue = EventQueue::new();

        let mut servers = HashMap::new();
        let mut skew_cells: HashMap<DcId, Vec<SkewCell>> = HashMap::new();
        let skew = config.cluster.max_clock_skew_micros as i64;
        for id in topo.all_servers() {
            let offset = if skew > 0 {
                rng.gen_range(-skew..=skew)
            } else {
                0
            };
            let mut tuning = config.tuning.clone();
            tuning.durable = config.durability.as_ref().map(|d| d.server_config(id));
            // Steppable skew: reading-identical to a fixed SkewedClock
            // until a fault plan steps the cell, so fault-free runs stay
            // bit-reproducible across the chaos subsystem's introduction.
            let (server_clock, cell) = SteppableClock::new(clock.clone(), offset);
            skew_cells.entry(id.dc).or_default().push(cell);
            let server = Server::try_with_tuning(
                ServerOptions {
                    id,
                    topology: Arc::clone(&topo),
                    clock: Box::new(server_clock),
                    mode: config.cluster.mode,
                    record_events: config.record_events,
                },
                tuning,
            )?;
            servers.insert(
                id,
                ServerSlot {
                    server,
                    busy_until: 0,
                    read_lanes: vec![0; config.read_threads],
                    next_lane: 0,
                    write_lanes: vec![0; config.write_threads],
                },
            );
            // Stagger the periodic protocols per server.
            let iv = &config.cluster.intervals;
            queue.push(
                rng.gen_range(0..iv.replication_micros),
                SimEvent::Tick(id, TickKind::Replicate),
            );
            queue.push(
                rng.gen_range(0..iv.gst_micros),
                SimEvent::Tick(id, TickKind::Gst),
            );
            if topo.tree_parent(id).is_none() {
                queue.push(
                    rng.gen_range(0..iv.ust_micros),
                    SimEvent::Tick(id, TickKind::Ust),
                );
            }
            queue.push(
                rng.gen_range(0..iv.gc_micros),
                SimEvent::Tick(id, TickKind::Gc),
            );
        }

        let mut clients = HashMap::new();
        for dc in 0..config.cluster.dcs {
            let dc = DcId(dc);
            let local_partitions = topo.partitions_in_dc(dc);
            for seq in 0..config.clients_per_dc {
                let id = ClientId::new(dc, seq);
                let coordinator = topo.coordinator_for(dc, seq);
                let session = ClientSession::new(id, coordinator, config.cluster.mode);
                let generator = WorkloadGenerator::new(
                    config.workload.clone(),
                    config.cluster.partitions,
                    local_partitions.clone(),
                );
                let client_rng =
                    StdRng::seed_from_u64(config.seed ^ (u64::from(dc.0) << 32) ^ u64::from(seq));
                clients.insert(
                    id,
                    ClientSlot {
                        session,
                        generator,
                        rng: client_rng,
                        phase: Phase::Idle,
                        spec: None,
                        tx_begin: 0,
                        cur_tx: None,
                        cur_snapshot: Timestamp::ZERO,
                        cur_reads: Vec::new(),
                    },
                );
            }
        }

        let checker = config.record_history.then(HistoryChecker::new);
        let coalescer = Coalescer::new(config.cluster.batch, config.cluster.wire);
        // Schedule the fault plan last: with no plan this is a no-op, so
        // fault-free runs push exactly the same events in exactly the same
        // order as before the chaos subsystem existed.
        if let Some(plan) = config.fault_plan.as_ref() {
            for event in plan.sorted_events() {
                queue.push(event.at_micros, SimEvent::Fault(event.kind));
            }
        }
        Ok(SimCluster {
            config,
            topo,
            clock,
            net,
            coalescer,
            flush_scheduled: None,
            rng,
            queue,
            servers,
            clients,
            now: 0,
            client_stop: 0,
            window_start: 0,
            window_end: 0,
            stats: RunStats::new(0),
            checker,
            failure_detection: false,
            skew_cells,
            interactive: HashMap::new(),
            interactive_events: VecDeque::new(),
            next_interactive: HashMap::new(),
        })
    }

    /// Current simulated time (microseconds).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The topology in use.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The minimum UST across all servers.
    pub fn min_ust(&self) -> Timestamp {
        self.servers
            .values()
            .map(|s| s.server.ust())
            .min()
            .unwrap_or(Timestamp::ZERO)
    }

    /// A server, for inspection.
    ///
    /// # Panics
    ///
    /// Panics if the server does not exist in the deployment.
    pub fn server(&self, id: ServerId) -> &Server {
        &self.servers[&id].server
    }

    /// Enables or disables the failure detector: when enabled, fault
    /// injection (isolate/partition) immediately informs every server of
    /// the lost links, so coordinators route around unreachable replicas
    /// (§III-C availability) instead of waiting on held traffic. Disabled
    /// by default, modelling the window before detection.
    pub fn set_failure_detection(&mut self, enabled: bool) {
        self.failure_detection = enabled;
    }

    fn notify_link(&mut self, a: DcId, b: DcId, reachable: bool) {
        if !self.failure_detection {
            return;
        }
        for slot in self.servers.values_mut() {
            if slot.server.id().dc == a {
                slot.server.set_dc_reachability(b, reachable);
            } else if slot.server.id().dc == b {
                slot.server.set_dc_reachability(a, reachable);
            }
        }
    }

    /// Partitions the given DC away from every other DC (§III-C fault
    /// scenario). Traffic is held, not lost, until [`Self::heal_dc`].
    pub fn isolate_dc(&mut self, dc: DcId) {
        self.net.isolate(dc);
        for other in 0..self.config.cluster.dcs {
            let other = DcId(other);
            if other != dc {
                self.notify_link(dc, other, false);
            }
        }
    }

    /// Heals all partitions involving `dc`, re-injecting held traffic.
    pub fn heal_dc(&mut self, dc: DcId) {
        let held = self.net.heal_all(dc);
        self.reinject(held);
        for other in 0..self.config.cluster.dcs {
            let other = DcId(other);
            if other != dc {
                self.notify_link(dc, other, true);
            }
        }
    }

    /// Cuts the single link between two DCs (both directions). Traffic is
    /// held, not lost, until [`Self::heal_link`].
    pub fn partition_link(&mut self, a: DcId, b: DcId) {
        self.net.partition(a, b);
        self.notify_link(a, b, false);
    }

    /// Heals one link, re-injecting held traffic.
    pub fn heal_link(&mut self, a: DcId, b: DcId) {
        let held = self.net.heal(a, b);
        self.reinject(held);
        self.notify_link(a, b, true);
    }

    /// Applies one scripted fault (the execution half of a [`FaultPlan`]).
    fn apply_fault(&mut self, kind: FaultKind) {
        match kind {
            // The simulator has no processes to kill: a DC "crash" is its
            // disappearance from the network (§III-C), with state intact —
            // the rejoin-behind-UST scenario.
            FaultKind::CrashDc(dc) => self.isolate_dc(dc),
            FaultKind::RejoinDc(dc) => self.heal_dc(dc),
            FaultKind::PartitionLink(a, b) => self.partition_link(a, b),
            FaultKind::HealLink(a, b) => self.heal_link(a, b),
            FaultKind::SlowLink { a, b, factor } => self.net.set_link_scale(a, b, factor),
            FaultKind::RestoreLink(a, b) => self.net.set_link_scale(a, b, 1.0),
            FaultKind::SkewClock { dc, delta_micros } => {
                for cell in self.skew_cells.get(&dc).into_iter().flatten() {
                    cell.step(delta_micros);
                }
            }
            // Non-exhaustive upstream: unknown future fault kinds are
            // no-ops rather than panics mid-simulation.
            _ => {}
        }
    }

    fn reinject(&mut self, held: Vec<Envelope>) {
        for env in held {
            if let Some(at) = self.net.send(self.now, env.clone(), &mut self.rng) {
                self.queue.push(at, SimEvent::Deliver(env));
            }
        }
    }

    /// Runs the workload: clients start (staggered), the measurement
    /// window is `[warmup, warmup + window]`, then clients stop and
    /// in-flight transactions drain.
    fn drive_workload(&mut self, warmup_micros: u64, window_micros: u64) {
        self.window_start = self.now + warmup_micros;
        self.window_end = self.window_start + window_micros;
        self.client_stop = self.window_end;
        self.stats = RunStats::new(window_micros);
        let mut ids: Vec<ClientId> = self.clients.keys().copied().collect();
        ids.sort_unstable(); // HashMap order must not leak into the schedule
        for id in ids {
            let offset = self.rng.gen_range(0..1_000u64);
            self.queue.push(self.now + offset, SimEvent::ClientKick(id));
        }
        // Drain budget: a multi-DC transaction needs a few WAN round trips.
        let drain = 2_000_000;
        self.run_until(self.window_end + drain);
    }

    /// Runs background protocols only (no new client transactions) for
    /// `micros` — lets replication and stabilization quiesce.
    pub fn settle(&mut self, micros: u64) {
        self.client_stop = self.now; // no new transactions
        let horizon = self.now + micros;
        self.run_until(horizon);
    }

    fn run_until(&mut self, horizon: u64) {
        while self.queue.peek_time().is_some_and(|t| t <= horizon) {
            self.step();
        }
        self.now = self.now.max(horizon);
        self.clock.advance_to(self.now);
    }

    /// Executes the next scheduled event; returns `false` if none remain.
    fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        self.now = self.now.max(ev.time);
        self.clock.advance_to(self.now);
        match ev.event {
            SimEvent::Deliver(env) => self.deliver(env),
            SimEvent::Tick(id, kind) => self.tick(id, kind),
            SimEvent::ClientKick(id) => self.kick_client(id),
            SimEvent::NetFlush => self.net_flush(),
            SimEvent::Fault(kind) => self.apply_fault(kind),
        }
        true
    }

    /// Advances the simulation until `client`'s next event arrives.
    fn await_interactive(&mut self, client: ClientId) -> Result<ClientEvent, Error> {
        let deadline = self.now + 120_000_000; // 120 simulated seconds
        loop {
            if let Some(pos) = self
                .interactive_events
                .iter()
                .position(|(c, _)| *c == client)
            {
                return Ok(self.interactive_events.remove(pos).expect("present").1);
            }
            if self.now > deadline {
                return Err(Error::Transport("simulated operation timed out"));
            }
            if !self.step() {
                return Err(Error::Transport("simulation ran out of events"));
            }
        }
    }

    /// One stabilization round in simulated microseconds.
    fn stabilize_round_micros(&self) -> u64 {
        crate::gossip_round_micros(
            &self.config.cluster.intervals,
            &self.config.matrix,
            self.config.cluster.dcs,
            1.0,
            &self.config.cluster.batch,
            5_000,
        )
    }

    /// Hands an envelope to the network (past the coalescer), scheduling
    /// its delivery.
    fn transmit(&mut self, at: u64, env: Envelope) {
        if let Some(deliver_at) = self.net.send(at, env.clone(), &mut self.rng) {
            self.queue.push(deliver_at, SimEvent::Deliver(env));
        }
    }

    fn send_all(&mut self, at: u64, envs: Vec<Envelope>) {
        for env in envs {
            match self.coalescer.offer(env, at) {
                Offer::Pass(env) => self.transmit(at, env),
                Offer::Flush(flushed) => {
                    for env in flushed {
                        self.transmit(at, env);
                    }
                }
                Offer::Queued { next_due } => self.schedule_flush(next_due),
            }
        }
    }

    /// Ensures a [`SimEvent::NetFlush`] is scheduled no later than `due`.
    /// Superseded flush events are left in the queue; they fire as cheap
    /// no-ops (nothing due) rather than being cancelled.
    fn schedule_flush(&mut self, due: u64) {
        if self.flush_scheduled.is_none_or(|at| at > due) {
            self.queue.push(due, SimEvent::NetFlush);
            self.flush_scheduled = Some(due);
        }
    }

    /// Flushes every link whose deadline has passed and re-arms the timer
    /// for whatever is still queued.
    fn net_flush(&mut self) {
        self.flush_scheduled = None;
        let flushed = self.coalescer.poll(self.now);
        for env in flushed {
            self.transmit(self.now, env);
        }
        if let Some(due) = self.coalescer.next_due() {
            let at = due.max(self.now + 1);
            self.schedule_flush(at);
        }
    }

    fn deliver(&mut self, env: Envelope) {
        match env.dst {
            Endpoint::Server(sid) => {
                let Some(slot) = self.servers.get_mut(&sid) else {
                    debug_assert!(false, "message to unknown server {sid}");
                    return;
                };
                let is_read_path = matches!(
                    env.msg,
                    paris_proto::Msg::ReadSliceReq { .. } | paris_proto::Msg::StartTxReq { .. }
                );
                let extra_read_cost = if matches!(env.msg, paris_proto::Msg::ReadSliceReq { .. }) {
                    self.config.read_service_micros
                } else {
                    0
                };
                if is_read_path && !slot.read_lanes.is_empty() {
                    // Multi-queue read service model (PaRiS only): the
                    // read-path message occupies one of the server's read
                    // lanes — the deterministic counterpart of a pool
                    // thread — so its occupancy overlaps with the single
                    // CPU queue and with the other lanes, exactly like
                    // the threaded pool's occupancy does.
                    let lane = slot.next_lane % slot.read_lanes.len();
                    slot.next_lane = slot.next_lane.wrapping_add(1);
                    let start = self.now.max(slot.read_lanes[lane]);
                    let finish = start + self.config.service.cost(&env.msg) + extra_read_cost;
                    slot.read_lanes[lane] = finish;
                    let out = slot.server.handle(&env, finish);
                    self.send_all(finish, out);
                    return;
                }
                let extra_write_cost = if matches!(
                    env.msg,
                    paris_proto::Msg::PrepareReq { .. }
                        | paris_proto::Msg::Replicate { .. }
                        | paris_proto::Msg::ReplicateBatch { .. }
                ) {
                    self.config.write_service_micros
                } else {
                    0
                };
                if !slot.write_lanes.is_empty() && crate::driver::is_write_path(&env) {
                    // Multi-lane write service model (PaRiS only): the
                    // write-path message occupies the lane its source
                    // hashes to — the deterministic counterpart of the
                    // threaded write pool — so occupancy from disjoint
                    // sources overlaps while one link's stays serial.
                    // Effects still apply in delivery order: determinism
                    // and per-src FIFO are untouched, only time moves.
                    let lane = crate::driver::write_lane_of(env.src, slot.write_lanes.len());
                    let start = self.now.max(slot.write_lanes[lane]);
                    let finish = start + self.config.service.cost(&env.msg) + extra_write_cost;
                    slot.write_lanes[lane] = finish;
                    let out = slot.server.handle(&env, finish);
                    self.send_all(finish, out);
                    return;
                }
                let start = self.now.max(slot.busy_until);
                let cost = self.config.service.cost(&env.msg) + extra_read_cost + extra_write_cost;
                let blocked_before = slot.server.blocked_reads_now() as u64;
                let blocks_before = slot.server.stats().blocked_reads;
                let finish = start + cost;
                slot.busy_until = finish;
                let out = slot.server.handle(&env, finish);
                // BPR pays to park a read and to wake it back up — the
                // "synchronization overhead to block and unblock reads" the
                // paper charges BPR's throughput loss to (§V-B).
                let newly_blocked = slot.server.stats().blocked_reads - blocks_before;
                let drained = (blocked_before + newly_blocked)
                    .saturating_sub(slot.server.blocked_reads_now() as u64);
                slot.busy_until += self.config.service.block_overhead * (newly_blocked + drained);
                self.send_all(finish, out);
            }
            Endpoint::Client(cid) => {
                if let Some(session) = self.interactive.get_mut(&cid) {
                    if let Some(ev) = session.handle(&env) {
                        self.interactive_events.push_back((cid, ev));
                    }
                    return;
                }
                let Some(event) = self
                    .clients
                    .get_mut(&cid)
                    .and_then(|slot| slot.session.handle(&env))
                else {
                    return;
                };
                self.client_event(cid, event);
            }
        }
    }

    fn tick(&mut self, id: ServerId, kind: TickKind) {
        let iv = &self.config.cluster.intervals;
        let (interval, cost) = match kind {
            TickKind::Replicate => (iv.replication_micros, self.config.service.gossip),
            TickKind::Gst => (iv.gst_micros, self.config.service.gossip),
            TickKind::Ust => (iv.ust_micros, self.config.service.gossip),
            TickKind::Gc => (iv.gc_micros, self.config.service.gossip),
        };
        let slot = self.servers.get_mut(&id).expect("tick for unknown server");
        let start = self.now.max(slot.busy_until);
        let finish = start + cost;
        slot.busy_until = finish;
        let blocked_before = slot.server.blocked_reads_now() as u64;
        let out = match kind {
            TickKind::Replicate => slot.server.on_replicate_tick(finish),
            TickKind::Gst => slot.server.on_gst_tick(finish),
            TickKind::Ust => slot.server.on_ust_tick(finish),
            TickKind::Gc => {
                slot.server.on_gc_tick(finish);
                Vec::new()
            }
        };
        let drained = blocked_before.saturating_sub(slot.server.blocked_reads_now() as u64);
        slot.busy_until += self.config.service.block_overhead * drained;
        self.send_all(finish, out);
        self.queue
            .push(self.now + interval, SimEvent::Tick(id, kind));
    }

    // ------------------------------------------------------ client driving

    fn kick_client(&mut self, cid: ClientId) {
        if self.now >= self.client_stop {
            return;
        }
        let slot = self.clients.get_mut(&cid).expect("unknown client");
        if slot.phase != Phase::Idle {
            // Still mid-transaction (e.g. waiting on traffic held behind a
            // network partition); it re-enters the loop on completion.
            return;
        }
        slot.phase = Phase::Starting;
        slot.tx_begin = self.now;
        let env = slot.session.begin().expect("session is idle");
        self.send_all(self.now, vec![env]);
    }

    fn client_event(&mut self, cid: ClientId, event: ClientEvent) {
        match event {
            ClientEvent::Started { tx, snapshot } => {
                let slot = self.clients.get_mut(&cid).expect("unknown client");
                debug_assert_eq!(slot.phase, Phase::Starting);
                if self.now >= self.window_start && self.now <= self.window_end {
                    self.stats
                        .start_latency
                        .record(self.now.saturating_sub(slot.tx_begin));
                }
                slot.cur_tx = Some(tx);
                slot.cur_snapshot = snapshot;
                slot.cur_reads.clear();
                let spec = slot.generator.next_tx(&mut slot.rng);
                let read_keys = spec.read_keys.clone();
                slot.spec = Some(spec);
                if read_keys.is_empty() {
                    self.client_commit(cid);
                    return;
                }
                slot.phase = Phase::Reading;
                match slot.session.read(&read_keys).expect("tx is open") {
                    ReadStep::Done(reads) => {
                        if self.checker.is_some() {
                            slot.cur_reads
                                .extend(reads.iter().map(HistoryChecker::recorded_read));
                        }
                        self.client_commit(cid);
                    }
                    ReadStep::Send(env) => self.send_all(self.now, vec![env]),
                }
            }
            ClientEvent::ReadDone { reads, .. } => {
                {
                    let slot = self.clients.get_mut(&cid).expect("unknown client");
                    debug_assert_eq!(slot.phase, Phase::Reading);
                    if self.checker.is_some() {
                        slot.cur_reads
                            .extend(reads.iter().map(HistoryChecker::recorded_read));
                    }
                }
                self.client_commit(cid);
            }
            ClientEvent::Committed { ct, .. } => {
                let slot = self.clients.get_mut(&cid).expect("unknown client");
                debug_assert_eq!(slot.phase, Phase::Committing);
                slot.phase = Phase::Idle;
                let latency = self.now.saturating_sub(slot.tx_begin);
                if self.now >= self.window_start && self.now <= self.window_end {
                    self.stats.committed += 1;
                    self.stats.latency.record(latency);
                }
                if let Some(checker) = self.checker.as_mut() {
                    let spec = slot.spec.take().expect("spec present");
                    checker.record_tx(
                        cid,
                        RecordedTx {
                            tx: slot.cur_tx.take().expect("tx recorded"),
                            snapshot: slot.cur_snapshot,
                            reads: std::mem::take(&mut slot.cur_reads),
                            writes: spec.writes.iter().map(|(k, _)| *k).collect(),
                            ct: Some(ct),
                        },
                    );
                } else {
                    slot.spec = None;
                }
                // Closed loop: next transaction immediately.
                self.queue.push(self.now + 1, SimEvent::ClientKick(cid));
            }
            ClientEvent::Aborted { .. } => {
                // No reachable replica for some partition (§III-C): the
                // transaction is gone; record and retry after a beat.
                let slot = self.clients.get_mut(&cid).expect("unknown client");
                slot.phase = Phase::Idle;
                slot.spec = None;
                slot.cur_tx = None;
                slot.cur_reads.clear();
                if self.now >= self.window_start && self.now <= self.window_end {
                    self.stats.aborted += 1;
                }
                self.queue
                    .push(self.now + 10_000, SimEvent::ClientKick(cid));
            }
        }
    }

    fn client_commit(&mut self, cid: ClientId) {
        let slot = self.clients.get_mut(&cid).expect("unknown client");
        let writes = slot.spec.as_ref().expect("spec present").writes.clone();
        if !writes.is_empty() {
            slot.session.write(&writes).expect("tx is open");
        }
        slot.phase = Phase::Committing;
        let env = slot.session.commit().expect("tx is open");
        self.send_all(self.now, vec![env]);
    }

    // -------------------------------------------------------- reporting

    /// Aggregated BPR blocking statistics across all servers.
    pub fn blocking_stats(&self) -> BlockingStats {
        let mut out = BlockingStats::default();
        for slot in self.servers.values() {
            out.accumulate(&slot.server.stats());
        }
        out
    }

    /// Builds the run report: throughput/latency stats, blocking,
    /// visibility (if events recorded) and checker verdict (if history
    /// recorded).
    pub fn report(&mut self) -> RunReport {
        let visibility = self.config.record_events.then(|| {
            visibility_histogram(
                self.config.cluster.mode,
                self.servers.values().filter_map(|s| s.server.events()),
            )
        });
        let violations = match self.checker.as_mut() {
            Some(checker) => {
                // Feed ground truth from every store.
                for slot in self.servers.values() {
                    crate::record_store_versions(checker, slot.server.store());
                }
                checker.check()
            }
            None => Vec::new(),
        };
        RunReport {
            mode: self.config.cluster.mode,
            stats: self.stats.clone(),
            blocking: self.blocking_stats(),
            visibility,
            violations,
            net_messages: self.net.messages_sent(),
            net_bytes: self.net.bytes_sent(),
        }
    }

    /// Wire bytes carried by background traffic (replication, heartbeats,
    /// stabilization gossip) so far, sized in the configured encoding.
    pub fn net_background_bytes(&self) -> u64 {
        self.net.background_bytes_sent()
    }

    /// Number of transactions the checker has recorded.
    pub fn recorded_transactions(&self) -> usize {
        self.checker
            .as_ref()
            .map_or(0, HistoryChecker::transactions)
    }
}

impl Cluster for SimCluster {
    fn backend_name(&self) -> &'static str {
        "sim"
    }

    fn mode(&self) -> Mode {
        self.config.cluster.mode
    }

    fn open_client(&mut self, dc: u16) -> Result<ClientId, Error> {
        if dc >= self.config.cluster.dcs {
            return Err(paris_types::ConfigError::new("client DC out of range").into());
        }
        let dc = DcId(dc);
        let offset = self.next_interactive.entry(dc).or_insert(0);
        let id = ClientId::new(dc, INTERACTIVE_SEQ_BASE + *offset);
        *offset += 1;
        let coordinator = self.topo.coordinator_for(dc, id.seq);
        self.interactive.insert(
            id,
            ClientSession::new(id, coordinator, self.config.cluster.mode),
        );
        Ok(id)
    }

    fn txn_begin(&mut self, client: ClientId) -> Result<Timestamp, Error> {
        let env = self
            .interactive
            .get_mut(&client)
            .ok_or(Error::UnknownTransaction)?
            .begin()?;
        let at = self.now;
        self.send_all(at, vec![env]);
        match self.await_interactive(client)? {
            ClientEvent::Started { snapshot, .. } => Ok(snapshot),
            ClientEvent::Aborted { .. } => Err(Error::PartitionUnreachable),
            _ => Err(Error::UnknownTransaction),
        }
    }

    fn txn_read(&mut self, client: ClientId, keys: &[Key]) -> Result<Vec<ClientRead>, Error> {
        let step = self
            .interactive
            .get_mut(&client)
            .ok_or(Error::UnknownTransaction)?
            .read(keys)?;
        match step {
            ReadStep::Done(reads) => Ok(reads),
            ReadStep::Send(env) => {
                let at = self.now;
                self.send_all(at, vec![env]);
                match self.await_interactive(client)? {
                    ClientEvent::ReadDone { reads, .. } => Ok(reads),
                    ClientEvent::Aborted { .. } => Err(Error::PartitionUnreachable),
                    _ => Err(Error::UnknownTransaction),
                }
            }
        }
    }

    fn txn_write(&mut self, client: ClientId, entries: &[(Key, Value)]) -> Result<(), Error> {
        self.interactive
            .get_mut(&client)
            .ok_or(Error::UnknownTransaction)?
            .write(entries)
    }

    fn txn_commit(&mut self, client: ClientId) -> Result<Timestamp, Error> {
        let env = self
            .interactive
            .get_mut(&client)
            .ok_or(Error::UnknownTransaction)?
            .commit()?;
        let at = self.now;
        self.send_all(at, vec![env]);
        match self.await_interactive(client)? {
            ClientEvent::Committed { ct, .. } => Ok(ct),
            ClientEvent::Aborted { .. } => Err(Error::PartitionUnreachable),
            _ => Err(Error::UnknownTransaction),
        }
    }

    fn reset_client(&mut self, client: ClientId) -> Result<(), Error> {
        self.interactive
            .get_mut(&client)
            .ok_or(Error::UnknownTransaction)?
            .reset();
        self.interactive_events.retain(|(cid, _)| *cid != client);
        Ok(())
    }

    fn stabilize(&mut self, rounds: usize) {
        self.settle(self.stabilize_round_micros() * rounds as u64);
    }

    fn min_ust(&self) -> Timestamp {
        SimCluster::min_ust(self)
    }

    fn run_workload(&mut self, warmup_micros: u64, window_micros: u64) -> Result<RunReport, Error> {
        self.drive_workload(warmup_micros, window_micros);
        Ok(self.report())
    }

    fn stats(&mut self) -> Result<ClusterStats, Error> {
        let mut out = ClusterStats::default();
        for slot in self.servers.values() {
            out.fold_server(&slot.server.stats());
            out.fold_pipeline(slot.server.commit_pipeline().stats());
        }
        out.net_messages = self.net.messages_sent();
        out.net_bytes = self.net.bytes_sent();
        out.min_ust = SimCluster::min_ust(self);
        Ok(out)
    }

    fn kill_server(&mut self, index: usize) -> Result<(), Error> {
        if index >= self.servers.len() {
            return Err(paris_types::ConfigError::new("server index out of range").into());
        }
        Err(Error::Unsupported(
            "kill_server is not available on the sim backend (no server processes); crash a whole DC with a FaultPlan instead",
        ))
    }

    fn restart_server(&mut self, index: usize) -> Result<(), Error> {
        if index >= self.servers.len() {
            return Err(paris_types::ConfigError::new("server index out of range").into());
        }
        Err(Error::Unsupported(
            "restart_server is not available on the sim backend (no server processes); rejoin a crashed DC with a FaultPlan instead",
        ))
    }

    fn install_fault_plan(&mut self, plan: FaultPlan) -> Result<(), Error> {
        plan.validate(self.config.cluster.dcs)?;
        for event in plan.sorted_events() {
            self.queue
                .push(self.now + event.at_micros, SimEvent::Fault(event.kind));
        }
        Ok(())
    }

    fn begin(&mut self, client: ClientId) -> Result<crate::Txn<'_>, Error> {
        crate::Txn::begin_on(self, client)
    }

    fn check_convergence(&mut self) -> Result<Vec<Violation>, Error> {
        let topo = Arc::clone(&self.topo);
        Ok(replica_convergence(&topo, |id| {
            crate::latest_orders(self.servers[&id].server.store())
        }))
    }
}
