//! Concurrent protocol drivers shared by the live backends.
//!
//! The threaded backend (one OS thread per server, in-process channels)
//! and the socket backend (one OS *process* per server, TCP frames) run
//! the same loops: a server loop pumping a mailbox and the periodic
//! ticks, an optional read-pool loop serving the tapped read path
//! through [`ReadView`]s, and a closed-loop workload client. This module
//! is those loops, generic over how an envelope leaves the node (a
//! `send` closure) and which [`PhysicalClock`] stamps time — the only
//! two things that differ between the substrates.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use paris_clock::PhysicalClock;
use paris_core::checker::{HistoryChecker, RecordedTx};
use paris_core::{
    ClientEvent, ClientSession, CommitPipeline, ReadStep, ReadView, Server, Topology,
};
use paris_proto::Envelope;
use paris_types::{ClientId, Mode, ServerId};
use paris_workload::stats::Histogram;
use paris_workload::{WorkloadConfig, WorkloadGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One read-pool thread: drains its lane of tapped `ReadSliceReq`s,
/// `StartTxReq`s and unbatched `GstReport`s and serves each through the
/// destination server's [`ReadView`] — Alg. 3 slice reads, Alg. 2
/// snapshot assignment and Alg. 4 child-report folds, all executed
/// entirely off the server loop. A read whose snapshot
/// fell below `S_old` (possible only for reads that raced a GC advance)
/// is punted to the authoritative server state machine. `service_micros`
/// models per-read storage/CPU occupancy (see
/// [`crate::ClusterBuilder::read_service_micros`]); starts are pure
/// admission work and are not charged it — the sim models their (small)
/// fixed cost separately.
pub(crate) fn read_pool_loop(
    lane: Receiver<Envelope>,
    views: HashMap<ServerId, ReadView>,
    servers: HashMap<ServerId, Arc<Mutex<Server>>>,
    send: impl Fn(Envelope),
    clock: impl PhysicalClock,
    stop: Arc<AtomicBool>,
    service_micros: u64,
) {
    let punt = |env: &Envelope, sid: ServerId| {
        let out = {
            let mut server = servers[&sid].lock().expect("server poisoned");
            server.handle(env, clock.now_micros())
        };
        for e in out {
            send(e);
        }
    };
    loop {
        match lane.recv_timeout(Duration::from_millis(100)) {
            Ok(env) => {
                let paris_proto::Endpoint::Server(sid) = env.dst else {
                    debug_assert!(false, "read tap delivered a client-bound envelope");
                    continue;
                };
                match env.msg {
                    paris_proto::Msg::ReadSliceReq {
                        tx,
                        snapshot,
                        ref keys,
                        reply_to,
                    } => {
                        if service_micros > 0 {
                            std::thread::sleep(Duration::from_micros(service_micros));
                        }
                        match views[&sid].serve_slice(tx, snapshot, keys, reply_to) {
                            Ok(resp) => send(resp),
                            Err(_) => punt(&env, sid),
                        }
                    }
                    paris_proto::Msg::StartTxReq { client_ust } => {
                        let paris_proto::Endpoint::Client(client) = env.src else {
                            debug_assert!(false, "StartTxReq from a server");
                            continue;
                        };
                        match views[&sid].serve_start_tx(client, client_ust, clock.now_micros()) {
                            Some(resp) => send(resp),
                            // BPR view (cannot happen: pools are PaRiS-
                            // only): the loop owns the HLC.
                            None => punt(&env, sid),
                        }
                    }
                    paris_proto::Msg::GstReport {
                        partition,
                        ref mins,
                        oldest_active,
                    } => {
                        // A tree child's stabilization aggregate: folded
                        // into the shared report table off the loop (no
                        // reply traffic). The parent's next ∆G tick reads
                        // the fold.
                        views[&sid].serve_gst_report(partition, mins, oldest_active);
                    }
                    paris_proto::Msg::GossipDigest {
                        ref reports,
                        ref roots,
                        ust,
                        frames,
                    } => {
                        // A whole coalesced gossip digest: every component
                        // folds into shared tables (child reports, DC
                        // roots) or the lock-free frontier, so the digest
                        // never queues behind commits on the server loop.
                        views[&sid].serve_gossip_digest(reports, roots, ust, frames);
                    }
                    // The tap only diverts read-path messages; anything
                    // else is handed to the owning server untouched.
                    _ => punt(&env, sid),
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// True when `env` is a write-path message the write pool may carry:
/// prepares, commit decisions, replication frames and heartbeats bound
/// for a server. Shared by the in-process router tap and the socket
/// child's demux so the two backends divert exactly the same set.
pub(crate) fn is_write_path(env: &Envelope) -> bool {
    matches!(
        env.msg,
        paris_proto::Msg::PrepareReq { .. }
            | paris_proto::Msg::CommitTx { .. }
            | paris_proto::Msg::Replicate { .. }
            | paris_proto::Msg::ReplicateBatch { .. }
            | paris_proto::Msg::Heartbeat { .. }
    ) && matches!(env.dst, paris_proto::Endpoint::Server(_))
}

/// The write lane a tapped envelope belongs on: keyed by the **source**
/// endpoint ([`paris_proto::Endpoint::route_key`]), never round-robin.
/// Per-src FIFO is load-bearing twice over — a `CommitTx` must trail its
/// `PrepareReq` (same coordinator), and a `Heartbeat`'s watermark must
/// trail the `Replicate` frames it covers (same peer) — so every message
/// of one source must drain through one lane.
pub(crate) fn write_lane_of(src: paris_proto::Endpoint, lanes: usize) -> usize {
    (src.route_key() as usize) % lanes
}

/// One write-pool thread: drains its (source-keyed) lane of tapped
/// write-path messages and runs the off-loop half of each through the
/// destination server's [`CommitPipeline`] — prepare staging (Alg. 3
/// lines 9–11) and replication apply (Alg. 4 lines 24–28) execute here,
/// concurrently across lanes, while the loop-owned half (HLC stamping,
/// queue moves, version-vector bumps) briefly takes the server mutex.
/// `service_micros` models per-message write occupancy on prepares and
/// replication frames (see
/// [`crate::Tuning::write_service_micros`]); commit decisions and
/// heartbeats are queue moves and are not charged it.
pub(crate) fn write_pool_loop(
    lane: Receiver<Envelope>,
    pipelines: HashMap<ServerId, Arc<CommitPipeline>>,
    servers: HashMap<ServerId, Arc<Mutex<Server>>>,
    send: impl Fn(Envelope),
    clock: impl PhysicalClock,
    stop: Arc<AtomicBool>,
    service_micros: u64,
) {
    let occupancy = || {
        if service_micros > 0 {
            std::thread::sleep(Duration::from_micros(service_micros));
        }
    };
    loop {
        match lane.recv_timeout(Duration::from_millis(100)) {
            Ok(env) => {
                let paris_proto::Endpoint::Server(sid) = env.dst else {
                    debug_assert!(false, "write tap delivered a client-bound envelope");
                    continue;
                };
                match env.msg {
                    paris_proto::Msg::PrepareReq {
                        tx,
                        snapshot,
                        ht,
                        ref writes,
                        reply_to,
                        src_dc,
                    } => {
                        occupancy();
                        // Stage off-lock (UST bump, write-set copy, shard
                        // partitioning), then admit under the server mutex
                        // (HLC stamp, Prepared insert).
                        let staged = pipelines[&sid].stage_prepare(snapshot, writes);
                        let out = {
                            let mut server = servers[&sid].lock().expect("server poisoned");
                            server.admit_prepared(tx, staged, ht, reply_to, src_dc)
                        };
                        for e in out {
                            send(e);
                        }
                    }
                    paris_proto::Msg::Replicate {
                        partition,
                        ref txs,
                        watermark,
                    } => {
                        occupancy();
                        // Apply off-lock through the shard lanes, then
                        // complete (stats, events, watermark bump) under
                        // the mutex — strictly after the writes landed.
                        pipelines[&sid].apply_replicated(txs);
                        let out = {
                            let mut server = servers[&sid].lock().expect("server poisoned");
                            server.note_remote_applied(
                                env.src.dc(),
                                partition,
                                txs,
                                watermark,
                                0,
                                clock.now_micros(),
                            )
                        };
                        for e in out {
                            send(e);
                        }
                    }
                    paris_proto::Msg::ReplicateBatch {
                        partition,
                        ref txs,
                        watermark,
                        frames,
                    } => {
                        occupancy();
                        pipelines[&sid].apply_replicated(txs);
                        let out = {
                            let mut server = servers[&sid].lock().expect("server poisoned");
                            server.note_remote_applied(
                                env.src.dc(),
                                partition,
                                txs,
                                watermark,
                                frames,
                                clock.now_micros(),
                            )
                        };
                        for e in out {
                            send(e);
                        }
                    }
                    // CommitTx, Heartbeat, and anything a dying lane
                    // re-routed here: cheap loop-owned state moves, run
                    // under the mutex via the ordinary handler.
                    _ => {
                        let out = {
                            let mut server = servers[&sid].lock().expect("server poisoned");
                            server.handle(&env, clock.now_micros())
                        };
                        for e in out {
                            send(e);
                        }
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// One server's protocol loop: pumps the mailbox into the state machine
/// and fires the periodic background protocols (Alg. 4's replicate, GST,
/// UST-at-root and GC ticks) on their wall-clock deadlines.
#[allow(clippy::too_many_arguments)]
pub(crate) fn server_loop(
    server: Arc<Mutex<Server>>,
    inbox: Receiver<Envelope>,
    send: impl Fn(Envelope),
    topo: Arc<Topology>,
    clock: impl PhysicalClock,
    stop: Arc<AtomicBool>,
    intervals: paris_types::Intervals,
    id: ServerId,
    read_service_micros: u64,
    write_service_micros: u64,
) {
    let is_root = topo.tree_parent(id).is_none();
    let mut next_rep = clock.now_micros() + intervals.replication_micros;
    let mut next_gst = clock.now_micros() + intervals.gst_micros;
    let mut next_ust = clock.now_micros() + intervals.ust_micros;
    let mut next_gc = clock.now_micros() + intervals.gc_micros;
    loop {
        let now = clock.now_micros();
        let mut deadline = next_rep.min(next_gst).min(next_gc);
        if is_root {
            deadline = deadline.min(next_ust);
        }
        let timeout = Duration::from_micros(deadline.saturating_sub(now).min(5_000));
        match inbox.recv_timeout(timeout) {
            Ok(env) => {
                // Loop-served reads pay the same modeled service occupancy
                // as pool-served ones, so read_threads comparisons stay
                // apples-to-apples.
                if read_service_micros > 0
                    && matches!(env.msg, paris_proto::Msg::ReadSliceReq { .. })
                {
                    std::thread::sleep(Duration::from_micros(read_service_micros));
                }
                // Likewise for loop-served writes: prepares and
                // replication applies pay the same modeled occupancy the
                // write pool would, so write_threads ladders measure
                // parallelism, not a vanishing service time.
                if write_service_micros > 0
                    && matches!(
                        env.msg,
                        paris_proto::Msg::PrepareReq { .. }
                            | paris_proto::Msg::Replicate { .. }
                            | paris_proto::Msg::ReplicateBatch { .. }
                    )
                {
                    std::thread::sleep(Duration::from_micros(write_service_micros));
                }
                let out = {
                    let mut server = server.lock().expect("server poisoned");
                    server.handle(&env, clock.now_micros())
                };
                for e in out {
                    send(e);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        let now = clock.now_micros();
        if now >= next_rep || now >= next_gst || (is_root && now >= next_ust) || now >= next_gc {
            let mut out = Vec::new();
            {
                let mut server = server.lock().expect("server poisoned");
                if now >= next_rep {
                    out.extend(server.on_replicate_tick(now));
                    next_rep = now + intervals.replication_micros;
                }
                if now >= next_gst {
                    out.extend(server.on_gst_tick(now));
                    next_gst = now + intervals.gst_micros;
                }
                if is_root && now >= next_ust {
                    out.extend(server.on_ust_tick(now));
                    next_ust = now + intervals.ust_micros;
                }
                if now >= next_gc {
                    server.on_gc_tick(now);
                    next_gc = now + intervals.gc_micros;
                }
            }
            for e in out {
                send(e);
            }
        }
        if stop.load(Ordering::Relaxed) {
            break;
        }
    }
}

/// What one closed-loop workload client brings home.
pub(crate) struct ClientOutcome {
    pub(crate) records: Vec<(ClientId, RecordedTx)>,
    pub(crate) committed: u64,
    pub(crate) aborted: u64,
    pub(crate) latency: Histogram,
    pub(crate) start_latency: Histogram,
}

/// One closed-loop workload client: begin → read → write → commit,
/// retrying on aborts, until `stop` is raised. Statistics count only
/// operations completing after `measure_after` (warmup is untimed);
/// the checker records everything.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_client(
    id: ClientId,
    coordinator: ServerId,
    mode: Mode,
    workload: WorkloadConfig,
    n_partitions: u32,
    local_partitions: Vec<paris_types::PartitionId>,
    seed: u64,
    inbox: Receiver<Envelope>,
    send: impl Fn(Envelope),
    stop: Arc<AtomicBool>,
    clock: impl PhysicalClock,
    measure_after: Instant,
) -> ClientOutcome {
    let mut session = ClientSession::new(id, coordinator, mode);
    let mut generator = WorkloadGenerator::new(workload, n_partitions, local_partitions);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut records = Vec::new();
    let mut latency = Histogram::new();
    let mut start_latency = Histogram::new();
    let mut committed = 0u64;
    let mut aborted = 0u64;

    // Waits for the next client event, bailing out on stop.
    let wait_event = |session: &mut ClientSession| -> Option<ClientEvent> {
        loop {
            match inbox.recv_timeout(Duration::from_millis(100)) {
                Ok(env) => {
                    if let Some(ev) = session.handle(&env) {
                        return Some(ev);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if stop.load(Ordering::Relaxed) {
                        return None;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return None,
            }
        }
    };

    while !stop.load(Ordering::Relaxed) {
        let begin = clock.now_micros();
        send(session.begin().expect("idle session"));
        let Some(ClientEvent::Started { tx, snapshot }) = wait_event(&mut session) else {
            break;
        };
        // Admission latency of the start phase alone — the pooled
        // StartTxReq path is measured by this.
        if Instant::now() >= measure_after {
            start_latency.record(clock.now_micros().saturating_sub(begin));
        }
        let spec = generator.next_tx(&mut rng);
        let mut reads = Vec::new();
        if !spec.read_keys.is_empty() {
            match session.read(&spec.read_keys).expect("open tx") {
                ReadStep::Done(local) => {
                    reads.extend(local.iter().map(HistoryChecker::recorded_read))
                }
                ReadStep::Send(env) => {
                    send(env);
                    match wait_event(&mut session) {
                        Some(ClientEvent::ReadDone { reads: got, .. }) => {
                            reads.extend(got.iter().map(HistoryChecker::recorded_read));
                        }
                        Some(ClientEvent::Aborted { .. }) => {
                            if Instant::now() >= measure_after {
                                aborted += 1;
                            }
                            continue; // retry
                        }
                        _ => break,
                    }
                }
            }
        }
        if !spec.writes.is_empty() {
            session.write(&spec.writes).expect("open tx");
        }
        send(session.commit().expect("open tx"));
        let ct = match wait_event(&mut session) {
            Some(ClientEvent::Committed { ct, .. }) => ct,
            Some(ClientEvent::Aborted { .. }) => {
                if Instant::now() >= measure_after {
                    aborted += 1;
                }
                continue; // retry
            }
            _ => break,
        };
        // Stats count only the measurement window (warmup is untimed, as
        // on the deterministic backends); the checker records everything.
        if Instant::now() >= measure_after {
            committed += 1;
            latency.record(clock.now_micros().saturating_sub(begin));
        }
        records.push((
            id,
            RecordedTx {
                tx,
                snapshot,
                reads,
                writes: spec.writes.iter().map(|(k, _)| *k).collect(),
                ct: Some(ct),
            },
        ));
    }
    ClientOutcome {
        records,
        committed,
        aborted,
        latency,
        start_latency,
    }
}
