//! The chaos drill library: named, scripted fault schedules with the
//! consistency checker as the judge.
//!
//! Each [`ChaosScenario`] pairs a [`FaultPlan`] shape (timed DC crashes,
//! link partitions, slowdowns, flaps, clock-skew steps — §III-C's fault
//! discussion turned into schedules) with the verdicts that must hold
//! after the dust settles:
//!
//! * zero consistency-checker violations (TCC holds through the faults),
//! * zero replica-convergence violations (no committed write lost —
//!   links *hold* traffic, TCP-style, and deliver on heal),
//! * the UST is monotone through the heal and recovers to within a
//!   healthy lag of virtual now,
//! * clients kept committing (faults never block the read path).
//!
//! Scenarios run on the deterministic sim backend, so a given scenario is
//! bit-reproducible and cheap enough to gate in CI (`fig_chaos` emits
//! `BENCH_chaos.json` with `chaos_violations_total`, gated at zero).

use paris_types::{DcId, Error, FaultPlan, Mode, Timestamp};

use crate::{Cluster, ClusterBuilder, Paris};

/// A named fault schedule plus the shape knobs it runs under.
///
/// `build` receives the workload's `(warmup_micros, window_micros)` and
/// returns the plan with every event placed at an **absolute** virtual
/// time (the sim schedules plan events from t = 0 at build).
#[derive(Clone, Copy)]
pub struct ChaosScenario {
    /// Stable machine name (used by `fig_chaos --scenario <name>` and as
    /// the per-scenario metric key).
    pub name: &'static str,
    /// One-line description of the drill.
    pub summary: &'static str,
    /// RNG seed for the deployment (distinct per scenario so drills do
    /// not share interleavings).
    pub seed: u64,
    build: fn(warmup: u64, window: u64) -> FaultPlan,
}

impl std::fmt::Debug for ChaosScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosScenario")
            .field("name", &self.name)
            .field("summary", &self.summary)
            .field("seed", &self.seed)
            .finish_non_exhaustive()
    }
}

/// The verdicts of one drill. `violations_total() == 0` is the gate.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// Scenario name this outcome belongs to.
    pub name: &'static str,
    /// Transactions committed across the whole run (must be > 0: faults
    /// never wedge the cluster).
    pub committed: u64,
    /// Transactions aborted across the whole run (informational).
    pub aborted: u64,
    /// Consistency-checker violations (TCC) — must be zero.
    pub checker_violations: usize,
    /// Replica-convergence violations (lost committed writes) — must be
    /// zero.
    pub convergence_violations: usize,
    /// The global UST never moved backwards between the workload end and
    /// the post-heal settle.
    pub ust_monotone: bool,
    /// The UST caught back up after every link healed: its lag behind
    /// virtual now ended below the recovery bound.
    pub ust_recovered: bool,
    /// UST lag behind virtual now after the final settle, µs
    /// (informational; the bound behind `ust_recovered`).
    pub ust_lag_micros: u64,
}

impl ChaosOutcome {
    /// Everything the scenario gates, folded to one number: checker +
    /// convergence violations, plus one each for a non-monotone or
    /// non-recovered UST, plus one if nothing committed.
    pub fn violations_total(&self) -> u64 {
        self.checker_violations as u64
            + self.convergence_violations as u64
            + u64::from(!self.ust_monotone)
            + u64::from(!self.ust_recovered)
            + u64::from(self.committed == 0)
    }

    /// `true` when the drill passed every verdict.
    pub fn passed(&self) -> bool {
        self.violations_total() == 0
    }
}

/// UST lag behind virtual now that counts as "recovered" after the final
/// settle. Healthy steady-state lag on the drill shape is a few hundred
/// ms of virtual time (10 ms links, default intervals); partitions push
/// it into the multi-second range until healed.
const RECOVERY_LAG_MICROS: u64 = 2_000_000;

/// Injected clock-step size: well beyond the deployment's configured
/// 500 µs skew bound, so the HLC's logical component must absorb it.
const SKEW_STEP_MICROS: i64 = 5_000;

fn at(warmup: u64, window: u64, fraction_percent: u64) -> u64 {
    warmup + window * fraction_percent / 100
}

fn partition_during_commit(warmup: u64, window: u64) -> FaultPlan {
    // Ring placement: partitions straddle DC0–DC1, so this link carries
    // prepares, commits and replication while it is down.
    FaultPlan::new()
        .partition_link(at(warmup, window, 25), DcId(0), DcId(1))
        .heal_link(at(warmup, window, 60), DcId(0), DcId(1))
}

fn crash_then_rejoin_behind_ust(warmup: u64, window: u64) -> FaultPlan {
    // A whole DC disappears (§III-C "crash" = network disappearance,
    // state intact) and rejoins far behind the UST; held replication
    // traffic must bring it back without losing a commit.
    FaultPlan::new()
        .crash_dc(at(warmup, window, 20), DcId(1))
        .rejoin_dc(at(warmup, window, 65), DcId(1))
}

fn skew_step_beyond_bound(warmup: u64, window: u64) -> FaultPlan {
    // Step one DC's physical clocks 10× past the configured skew bound,
    // then back: HLC timestamps must stay monotone (logical component)
    // and the checker must stay silent.
    FaultPlan::new()
        .skew_clock(at(warmup, window, 30), DcId(1), SKEW_STEP_MICROS)
        .skew_clock(at(warmup, window, 70), DcId(1), -SKEW_STEP_MICROS)
}

fn slow_gossip_link(warmup: u64, window: u64) -> FaultPlan {
    // An 8× slower link between two replica-sharing DCs: stabilization
    // limps but never stalls, and visibility recovers on restore.
    FaultPlan::new()
        .slow_link(at(warmup, window, 20), DcId(0), DcId(1), 8.0)
        .restore_link(at(warmup, window, 70), DcId(0), DcId(1))
}

fn flapping_link(warmup: u64, window: u64) -> FaultPlan {
    // The DC0–DC2 link flaps three times (down 10% of the window each
    // time), ending healed: every held burst must drain in FIFO order.
    let mut plan = FaultPlan::new();
    for flap in 0..3u64 {
        let down = 15 + flap * 20;
        plan = plan
            .partition_link(at(warmup, window, down), DcId(0), DcId(2))
            .heal_link(at(warmup, window, down + 10), DcId(0), DcId(2));
    }
    plan
}

fn rolling_outages(warmup: u64, window: u64) -> FaultPlan {
    // Every DC takes a turn offline (crash + rejoin, no overlap): the
    // rolling-maintenance shape. The cluster must ride through all three.
    let mut plan = FaultPlan::new();
    for dc in 0..3u16 {
        let start = 10 + u64::from(dc) * 25;
        plan = plan
            .crash_dc(at(warmup, window, start), DcId(dc))
            .rejoin_dc(at(warmup, window, start + 15), DcId(dc));
    }
    plan
}

/// The drill library, in the order `fig_chaos` runs them.
pub const CHAOS_SCENARIOS: &[ChaosScenario] = &[
    ChaosScenario {
        name: "partition_during_commit",
        summary: "cut a replica-group link mid-commit-traffic, heal, converge",
        seed: 0xC4A0_5001,
        build: partition_during_commit,
    },
    ChaosScenario {
        name: "crash_then_rejoin_behind_ust",
        summary: "crash a whole DC, rejoin it far behind the UST",
        seed: 0xC4A0_5002,
        build: crash_then_rejoin_behind_ust,
    },
    ChaosScenario {
        name: "skew_step_beyond_bound",
        summary: "step one DC's clocks 10x past the skew bound and back",
        seed: 0xC4A0_5003,
        build: skew_step_beyond_bound,
    },
    ChaosScenario {
        name: "slow_gossip_link",
        summary: "slow a stabilization link 8x, then restore it",
        seed: 0xC4A0_5004,
        build: slow_gossip_link,
    },
    ChaosScenario {
        name: "flapping_link",
        summary: "flap one link down/up three times, ending healed",
        seed: 0xC4A0_5005,
        build: flapping_link,
    },
    ChaosScenario {
        name: "rolling_outages",
        summary: "crash and rejoin every DC in turn, no overlap",
        seed: 0xC4A0_5006,
        build: rolling_outages,
    },
];

/// Looks a scenario up by its stable name.
pub fn chaos_scenario(name: &str) -> Option<&'static ChaosScenario> {
    CHAOS_SCENARIOS.iter().find(|s| s.name == name)
}

/// The deployment every drill runs on: 3 DCs in a ring (every pair of
/// adjacent DCs shares replica groups, so any single link matters),
/// uniform 10 ms links, history recording on for the checker.
fn drill_builder(seed: u64) -> ClusterBuilder {
    Paris::builder()
        .dcs(3)
        .partitions(6)
        .replication(2)
        .keys_per_partition(200)
        .uniform_latency_micros(10_000)
        .jitter(0.02)
        .clients_per_dc(4)
        .mode(Mode::Paris)
        .seed(seed)
        .record_history(true)
}

impl ChaosScenario {
    /// The scenario's plan for a given workload placement (absolute
    /// virtual-time events).
    pub fn plan(&self, warmup_micros: u64, window_micros: u64) -> FaultPlan {
        (self.build)(warmup_micros, window_micros)
    }

    /// Runs the drill on a fresh sim deployment and returns its
    /// verdicts. `quick` shrinks the virtual window (CI); the full
    /// window is the nightly soak. Deterministic: same scenario, same
    /// mode ⇒ bit-identical outcome.
    ///
    /// # Errors
    ///
    /// Returns a configuration error when the drill shape is invalid —
    /// not when verdicts fail (those land in the outcome).
    pub fn run(&self, quick: bool) -> Result<ChaosOutcome, Error> {
        let (warmup, window) = if quick {
            (200_000, 1_500_000)
        } else {
            (500_000, 4_000_000)
        };
        let plan = self.plan(warmup, window);
        let mut sim = drill_builder(self.seed).fault_plan(plan).build_sim()?;
        sim.run_workload(warmup, window)?;
        let ust_mid = sim.min_ust();

        // Every plan ends healed within the window; give stabilization
        // room to drain held traffic and re-establish the UST.
        sim.settle(5_000_000);
        let ust_after = sim.min_ust();
        let ust_lag_micros = sim.now().saturating_sub(ust_after.physical_micros());

        let report = sim.report();
        let convergence = sim.check_convergence()?;
        Ok(ChaosOutcome {
            name: self.name,
            committed: report.stats.committed,
            aborted: report.stats.aborted,
            checker_violations: report.violations.len(),
            convergence_violations: convergence.len(),
            ust_monotone: ust_after >= ust_mid && ust_after > Timestamp::ZERO,
            ust_recovered: ust_lag_micros < RECOVERY_LAG_MICROS,
            ust_lag_micros,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_names_are_unique_and_lookup_works() {
        let mut names: Vec<_> = CHAOS_SCENARIOS.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CHAOS_SCENARIOS.len());
        assert!(chaos_scenario("flapping_link").is_some());
        assert!(chaos_scenario("no_such_drill").is_none());
    }

    #[test]
    fn every_plan_validates_against_the_drill_shape_and_ends_in_window() {
        for s in CHAOS_SCENARIOS {
            let plan = s.plan(200_000, 1_500_000);
            assert!(!plan.is_empty(), "{} has no events", s.name);
            plan.validate(3)
                .unwrap_or_else(|e| panic!("{} plan invalid for the drill shape: {e}", s.name));
            assert!(
                plan.horizon_micros() <= 200_000 + 1_500_000,
                "{} schedules events past the workload window",
                s.name
            );
        }
    }

    #[test]
    fn quick_partition_drill_passes_all_verdicts() {
        let outcome = chaos_scenario("partition_during_commit")
            .unwrap()
            .run(true)
            .unwrap();
        assert!(
            outcome.passed(),
            "partition drill must pass: {outcome:?} (total {})",
            outcome.violations_total()
        );
    }
}
