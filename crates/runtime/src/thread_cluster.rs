//! A real multi-threaded in-process cluster.
//!
//! One OS thread per server, one per client session, crossbeam channels
//! with WAN-shaped (scaled) latencies between them. This runtime exists to
//! subject the exact same protocol state machines to genuine concurrency —
//! real interleavings, real races in message arrival — and to validate
//! that the consistency checker still finds nothing.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::RecvTimeoutError;
use paris_clock::{PhysicalClock, SystemClock};
use paris_core::checker::{HistoryChecker, RecordedTx};
use paris_core::{
    ClientEvent, ClientSession, ReadStep, Server, ServerOptions, Topology, Violation,
};
use paris_net::threaded::{Router, ThreadedNetConfig};
use paris_types::{ClientId, ClusterConfig, DcId, Mode, ServerId};
use paris_workload::stats::RunStats;
use paris_workload::{WorkloadConfig, WorkloadGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::measure::{BlockingStats, RunReport};

/// Configuration of a threaded run.
#[derive(Debug, Clone)]
pub struct ThreadClusterConfig {
    /// Cluster shape.
    pub cluster: ClusterConfig,
    /// Transport configuration (latency matrix + compression scale).
    pub net: ThreadedNetConfig,
    /// Closed-loop client sessions per DC.
    pub clients_per_dc: u32,
    /// Workload shape.
    pub workload: WorkloadConfig,
    /// RNG seed for the workload.
    pub seed: u64,
}

impl ThreadClusterConfig {
    /// A small fast-test deployment: `dcs`×`partitions`, R = 2, AWS
    /// latencies compressed 100×.
    pub fn small(dcs: u16, partitions: u32, mode: Mode) -> Self {
        ThreadClusterConfig {
            cluster: ClusterConfig::builder()
                .dcs(dcs)
                .partitions(partitions)
                .replication_factor(2)
                .keys_per_partition(100)
                .mode(mode)
                .intervals(paris_types::Intervals {
                    replication_micros: 2_000,
                    gst_micros: 2_000,
                    ust_micros: 2_000,
                    gc_micros: 500_000,
                })
                .build()
                .expect("valid test config"),
            net: ThreadedNetConfig::fast(dcs),
            clients_per_dc: 2,
            workload: WorkloadConfig {
                keys_per_partition: 100,
                ..WorkloadConfig::read_heavy()
            },
            seed: 7,
        }
    }
}

/// Outcome of a threaded run.
pub struct ThreadRunOutcome {
    /// Throughput/latency/blocking report (no visibility histogram — the
    /// threaded runtime is for correctness, not curves).
    pub report: RunReport,
    /// Consistency checker verdict over all sessions and stores.
    pub violations: Vec<Violation>,
    /// Replica-convergence verdict.
    pub convergence: Vec<Violation>,
    /// Transactions recorded by the checker.
    pub transactions: usize,
}

struct ClientOutcome {
    records: Vec<(ClientId, RecordedTx)>,
    committed: u64,
    latency: paris_workload::stats::Histogram,
}

/// The threaded cluster runner.
pub struct ThreadCluster;

impl ThreadCluster {
    /// Runs the workload for `duration`, then drains, settles the
    /// background protocols, and checks consistency plus convergence.
    pub fn run(config: ThreadClusterConfig, duration: Duration) -> ThreadRunOutcome {
        let topo = Arc::new(Topology::new(config.cluster.clone()));
        let router = Router::start(config.net.clone());
        let clock = Arc::new(SystemClock::new());
        let stop_clients = Arc::new(AtomicBool::new(false));
        let stop_servers = Arc::new(AtomicBool::new(false));

        // ---------------------------------------------------- servers
        let mut server_handles: Vec<JoinHandle<Server>> = Vec::new();
        for id in topo.all_servers() {
            let inbox = router.register(id);
            let net = router.handle();
            let topo = Arc::clone(&topo);
            let clock = Arc::clone(&clock);
            let stop = Arc::clone(&stop_servers);
            let intervals = config.cluster.intervals;
            let mode = config.cluster.mode;
            server_handles.push(
                std::thread::Builder::new()
                    .name(format!("server-{id}"))
                    .spawn(move || {
                        let mut server = Server::new(ServerOptions {
                            id,
                            topology: Arc::clone(&topo),
                            clock: Box::new(Arc::clone(&clock)),
                            mode,
                            record_events: false,
                        });
                        let is_root = topo.tree_parent(id).is_none();
                        let mut next_rep = clock.now_micros() + intervals.replication_micros;
                        let mut next_gst = clock.now_micros() + intervals.gst_micros;
                        let mut next_ust = clock.now_micros() + intervals.ust_micros;
                        let mut next_gc = clock.now_micros() + intervals.gc_micros;
                        loop {
                            let now = clock.now_micros();
                            let mut deadline = next_rep.min(next_gst).min(next_gc);
                            if is_root {
                                deadline = deadline.min(next_ust);
                            }
                            let timeout =
                                Duration::from_micros(deadline.saturating_sub(now).min(5_000));
                            match inbox.recv_timeout(timeout) {
                                Ok(env) => {
                                    let out = server.handle(&env, clock.now_micros());
                                    for e in out {
                                        net.send(e);
                                    }
                                }
                                Err(RecvTimeoutError::Timeout) => {}
                                Err(RecvTimeoutError::Disconnected) => break,
                            }
                            let now = clock.now_micros();
                            if now >= next_rep {
                                for e in server.on_replicate_tick(now) {
                                    net.send(e);
                                }
                                next_rep = now + intervals.replication_micros;
                            }
                            if now >= next_gst {
                                for e in server.on_gst_tick(now) {
                                    net.send(e);
                                }
                                next_gst = now + intervals.gst_micros;
                            }
                            if is_root && now >= next_ust {
                                for e in server.on_ust_tick(now) {
                                    net.send(e);
                                }
                                next_ust = now + intervals.ust_micros;
                            }
                            if now >= next_gc {
                                server.on_gc_tick();
                                next_gc = now + intervals.gc_micros;
                            }
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                        }
                        server
                    })
                    .expect("spawn server thread"),
            );
        }

        // ---------------------------------------------------- clients
        let mut client_handles: Vec<JoinHandle<ClientOutcome>> = Vec::new();
        for dc in 0..config.cluster.dcs {
            let dc = DcId(dc);
            let local_partitions = topo.partitions_in_dc(dc);
            for seq in 0..config.clients_per_dc {
                let id = ClientId::new(dc, seq);
                let inbox = router.register(id);
                let net = router.handle();
                let coordinator = topo.coordinator_for(dc, seq);
                let mode = config.cluster.mode;
                let stop = Arc::clone(&stop_clients);
                let clock = Arc::clone(&clock);
                let workload = config.workload.clone();
                let n_partitions = config.cluster.partitions;
                let local = local_partitions.clone();
                let seed = config.seed ^ (u64::from(dc.0) << 32) ^ u64::from(seq);
                client_handles.push(
                    std::thread::Builder::new()
                        .name(format!("client-{id}"))
                        .spawn(move || {
                            run_client(
                                id,
                                coordinator,
                                mode,
                                workload,
                                n_partitions,
                                local,
                                seed,
                                inbox,
                                net,
                                stop,
                                clock,
                            )
                        })
                        .expect("spawn client thread"),
                );
            }
        }

        // ------------------------------------------------ orchestration
        std::thread::sleep(duration);
        stop_clients.store(true, Ordering::Relaxed);
        let mut outcomes = Vec::new();
        for h in client_handles {
            outcomes.push(h.join().expect("client thread panicked"));
        }
        // Let replication/stabilization settle before stopping servers.
        std::thread::sleep(Duration::from_millis(300));
        stop_servers.store(true, Ordering::Relaxed);
        let mut servers: Vec<Server> = Vec::new();
        for h in server_handles {
            servers.push(h.join().expect("server thread panicked"));
        }
        drop(router);

        // --------------------------------------------------- checking
        let mut checker = HistoryChecker::new();
        let mut stats = RunStats::new(duration.as_micros() as u64);
        for outcome in outcomes {
            stats.committed += outcome.committed;
            stats.latency.merge(&outcome.latency);
            for (cid, rec) in outcome.records {
                checker.record_tx(cid, rec);
            }
        }
        for server in &servers {
            for (key, chain) in server.store().iter() {
                checker.record_versions(*key, chain.iter().map(|v| v.order()));
            }
        }
        let violations = checker.check();

        // Convergence across replicas.
        let by_id: HashMap<ServerId, &Server> = servers.iter().map(|s| (s.id(), s)).collect();
        let mut convergence = Vec::new();
        for p in 0..config.cluster.partitions {
            let p = paris_types::PartitionId(p);
            let maps: Vec<HashMap<paris_types::Key, Option<paris_types::VersionOrd>>> = topo
                .replicas(p)
                .into_iter()
                .map(|dc| {
                    by_id[&ServerId::new(dc, p)]
                        .store()
                        .iter()
                        .map(|(k, chain)| (*k, chain.latest_order()))
                        .collect()
                })
                .collect();
            convergence.extend(HistoryChecker::check_convergence(&maps));
        }

        let mut blocking = BlockingStats::default();
        for server in &servers {
            let s = server.stats();
            blocking.blocked_reads += s.blocked_reads;
            blocking.total_micros += s.blocked_micros_total;
            blocking.max_micros = blocking.max_micros.max(s.blocked_micros_max);
        }

        let transactions = checker.transactions();
        ThreadRunOutcome {
            report: RunReport {
                mode: config.cluster.mode,
                stats,
                blocking,
                visibility: None,
                violations: Vec::new(),
                net_messages: 0,
                net_bytes: 0,
            },
            violations,
            convergence,
            transactions,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_client(
    id: ClientId,
    coordinator: ServerId,
    mode: Mode,
    workload: WorkloadConfig,
    n_partitions: u32,
    local_partitions: Vec<paris_types::PartitionId>,
    seed: u64,
    inbox: crossbeam::channel::Receiver<paris_proto::Envelope>,
    net: paris_net::threaded::NetHandle,
    stop: Arc<AtomicBool>,
    clock: Arc<SystemClock>,
) -> ClientOutcome {
    let mut session = ClientSession::new(id, coordinator, mode);
    let mut generator = WorkloadGenerator::new(workload, n_partitions, local_partitions);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut records = Vec::new();
    let mut latency = paris_workload::stats::Histogram::new();
    let mut committed = 0u64;

    // Waits for the next client event, bailing out on stop.
    let wait_event = |session: &mut ClientSession| -> Option<ClientEvent> {
        loop {
            match inbox.recv_timeout(Duration::from_millis(100)) {
                Ok(env) => {
                    if let Some(ev) = session.handle(&env) {
                        return Some(ev);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if stop.load(Ordering::Relaxed) {
                        return None;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return None,
            }
        }
    };

    while !stop.load(Ordering::Relaxed) {
        let begin = clock.now_micros();
        net.send(session.begin().expect("idle session"));
        let Some(ClientEvent::Started { tx, snapshot }) = wait_event(&mut session) else {
            break;
        };
        let spec = generator.next_tx(&mut rng);
        let mut reads = Vec::new();
        if !spec.read_keys.is_empty() {
            match session.read(&spec.read_keys).expect("open tx") {
                ReadStep::Done(local) => {
                    reads.extend(local.iter().map(HistoryChecker::recorded_read))
                }
                ReadStep::Send(env) => {
                    net.send(env);
                    match wait_event(&mut session) {
                        Some(ClientEvent::ReadDone { reads: got, .. }) => {
                            reads.extend(got.iter().map(HistoryChecker::recorded_read));
                        }
                        Some(ClientEvent::Aborted { .. }) => continue, // retry
                        _ => break,
                    }
                }
            }
        }
        if !spec.writes.is_empty() {
            session.write(&spec.writes).expect("open tx");
        }
        net.send(session.commit().expect("open tx"));
        let ct = match wait_event(&mut session) {
            Some(ClientEvent::Committed { ct, .. }) => ct,
            Some(ClientEvent::Aborted { .. }) => continue, // retry
            _ => break,
        };
        committed += 1;
        latency.record(clock.now_micros().saturating_sub(begin));
        records.push((
            id,
            RecordedTx {
                tx,
                snapshot,
                reads,
                writes: spec.writes.iter().map(|(k, _)| *k).collect(),
                ct: Some(ct),
            },
        ));
    }
    ClientOutcome {
        records,
        committed,
        latency,
    }
}
