//! The real multi-threaded in-process backend.
//!
//! One OS thread per server, real channels with WAN-shaped (scaled)
//! latencies between them. This backend exists to subject the exact same
//! protocol state machines to genuine concurrency — real interleavings,
//! real races in message arrival — and to validate that the consistency
//! checker still finds nothing.
//!
//! Unlike the original one-shot runner, a [`ThreadCluster`] is a live
//! deployment: servers keep running between operations, so it serves both
//! interactive transactions (via [`Cluster::begin`](crate::Cluster::begin))
//! and closed-loop workloads
//! ([`Cluster::run_workload`](crate::Cluster::run_workload)). Build one
//! with [`crate::Paris::builder`] and
//! [`Backend::Thread`](crate::Backend::Thread).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use paris_clock::{SkewCell, SteppableClock, SystemClock};
use paris_core::checker::HistoryChecker;
use paris_core::{
    ClientEvent, ClientRead, ClientSession, ReadStep, ReadView, Server, ServerOptions,
    ServerTuning, Topology, Violation,
};
use paris_net::threaded::{NetHandle, Router, ThreadedNetConfig};
use paris_proto::Envelope;
use paris_types::{
    ClientId, ClusterConfig, DcId, Error, FaultKind, FaultPlan, Key, Mode, ServerId, Timestamp,
    Value,
};
use paris_workload::stats::RunStats;
use paris_workload::WorkloadConfig;

use crate::driver::{run_client, server_loop, ClientOutcome};
use crate::measure::{BlockingStats, ClusterStats, RunReport};
use crate::{replica_convergence, Cluster, INTERACTIVE_SEQ_BASE};

/// How long an interactive operation may wait for its reply before it is
/// reported as a transport failure. Generous: even BPR blocked reads
/// resolve within a few background-protocol periods.
const OP_TIMEOUT: Duration = Duration::from_secs(10);

/// Configuration of a threaded deployment (assembled by the builder).
#[derive(Debug, Clone)]
pub(crate) struct ThreadClusterConfig {
    pub(crate) cluster: ClusterConfig,
    pub(crate) net: ThreadedNetConfig,
    pub(crate) clients_per_dc: u32,
    pub(crate) workload: WorkloadConfig,
    pub(crate) seed: u64,
    pub(crate) record_history: bool,
    /// Read-pool size: `> 0` (PaRiS only) diverts `ReadSliceReq`s,
    /// `StartTxReq`s and unbatched `GstReport`s to a pool serving
    /// through [`ReadView`]s, off the server loop.
    pub(crate) read_threads: usize,
    /// Modeled per-slice-read service occupancy (µs wall clock).
    pub(crate) read_service_micros: u64,
    /// Write-pool size: `> 0` (PaRiS only) diverts the write path
    /// (`PrepareReq`/`CommitTx`/`Replicate`/`ReplicateBatch`/`Heartbeat`)
    /// to source-keyed pool lanes running the [`paris_core::CommitPipeline`]
    /// halves off the server loop.
    pub(crate) write_threads: usize,
    /// Modeled per-write service occupancy (µs wall clock), charged on
    /// prepares and replication applies wherever they are served.
    pub(crate) write_service_micros: u64,
    /// Storage-concurrency sizing for every server (shard count, read
    /// slots, write lanes), resolved by the builder.
    pub(crate) tuning: ServerTuning,
    /// Durable storage engine (WAL + checkpoints) for every server; off
    /// (`None`, purely in-memory) by default.
    pub(crate) durability: Option<crate::Durability>,
}

struct InteractiveClient {
    session: ClientSession,
    inbox: Receiver<Envelope>,
}

/// The threaded cluster backend. See the module docs.
pub struct ThreadCluster {
    config: ThreadClusterConfig,
    topo: Arc<Topology>,
    router: Router,
    net: NetHandle,
    clock: Arc<SystemClock>,
    stop_servers: Arc<AtomicBool>,
    server_handles: Vec<JoinHandle<()>>,
    read_pool: Vec<JoinHandle<()>>,
    write_pool: Vec<JoinHandle<()>>,
    servers: HashMap<ServerId, Arc<Mutex<Server>>>,
    views: HashMap<ServerId, ReadView>,
    interactive: HashMap<ClientId, InteractiveClient>,
    next_interactive: HashMap<DcId, u32>,
    /// One shared skew cell per server, grouped by DC, so a scripted
    /// `SkewClock` event can step every HLC clock in that DC at once.
    skew_cells: HashMap<DcId, Vec<SkewCell>>,
    chaos_stop: Arc<AtomicBool>,
    chaos_handles: Vec<JoinHandle<()>>,
}

impl ThreadCluster {
    /// Spawns the server threads and returns the live deployment.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Storage`] when durability is requested and a
    /// server's data directory cannot be opened or recovered.
    pub(crate) fn start(config: ThreadClusterConfig) -> Result<Self, Error> {
        let topo = Arc::new(Topology::new(config.cluster.clone()));
        let router = Router::start(config.net.clone());
        let net = router.handle();
        let clock = Arc::new(SystemClock::new());
        let stop_servers = Arc::new(AtomicBool::new(false));

        // With a read pool, the server loop never sees ReadSliceReqs, so
        // it must not also charge the modeled read service time. Same for
        // the write pool and write-path frames.
        let loop_read_service = if config.read_threads > 0 {
            0
        } else {
            config.read_service_micros
        };
        let loop_write_service = if config.write_threads > 0 {
            0
        } else {
            config.write_service_micros
        };
        let mut servers = HashMap::new();
        let mut views = HashMap::new();
        let mut server_handles = Vec::new();
        let mut skew_cells: HashMap<DcId, Vec<SkewCell>> = HashMap::new();
        for id in topo.all_servers() {
            let mut tuning = config.tuning.clone();
            tuning.durable = config.durability.as_ref().map(|d| d.server_config(id));
            // Each server's HLC reads wall time through a steppable shim so
            // a scripted SkewClock fault can shift one DC's clocks at runtime.
            let (server_clock, cell) = SteppableClock::new(Arc::clone(&clock), 0);
            skew_cells.entry(id.dc).or_default().push(cell);
            let server = Arc::new(Mutex::new(Server::try_with_tuning(
                ServerOptions {
                    id,
                    topology: Arc::clone(&topo),
                    clock: Box::new(server_clock),
                    mode: config.cluster.mode,
                    record_events: false,
                },
                tuning,
            )?));
            views.insert(id, server.lock().expect("fresh server").read_view());
            servers.insert(id, Arc::clone(&server));
            let inbox = router.register(id);
            let net = router.handle();
            let topo = Arc::clone(&topo);
            let clock = Arc::clone(&clock);
            let stop = Arc::clone(&stop_servers);
            let intervals = config.cluster.intervals;
            server_handles.push(
                std::thread::Builder::new()
                    .name(format!("server-{id}"))
                    .spawn(move || {
                        server_loop(
                            server,
                            inbox,
                            move |e| net.send(e),
                            topo,
                            clock,
                            stop,
                            intervals,
                            id,
                            loop_read_service,
                            loop_write_service,
                        )
                    })
                    .expect("spawn server thread"),
            );
        }

        // The read-thread pool: lanes fed round-robin by the router's
        // read tap, each lane drained by one pool thread serving Alg. 3
        // slice reads and Alg. 2 snapshot assignments through the shared
        // views — never touching the server mutexes. Only meaningful
        // under PaRiS (the builder rejects BPR + read_threads).
        let mut read_pool = Vec::new();
        if config.read_threads > 0 && config.cluster.mode == Mode::Paris {
            let mut lanes = Vec::with_capacity(config.read_threads);
            for i in 0..config.read_threads {
                let (lane_tx, lane_rx) = std::sync::mpsc::channel::<Envelope>();
                lanes.push(lane_tx);
                let views = views.clone();
                let servers = servers.clone();
                let net = router.handle();
                let clock = Arc::clone(&clock);
                let stop = Arc::clone(&stop_servers);
                let service = config.read_service_micros;
                read_pool.push(
                    std::thread::Builder::new()
                        .name(format!("read-pool-{i}"))
                        .spawn(move || {
                            crate::driver::read_pool_loop(
                                lane_rx,
                                views,
                                servers,
                                move |e| net.send(e),
                                clock,
                                stop,
                                service,
                            )
                        })
                        .expect("spawn read pool thread"),
                );
            }
            router.set_read_tap(lanes);
        }

        // The write-pipeline pool: lanes fed by the router's write tap,
        // keyed by *source* endpoint so each link's FIFO survives the
        // fan-out (CommitTx after its PrepareReq, watermark after its
        // applies). Each worker runs the off-loop pipeline halves —
        // prepare staging, replication apply — and re-enters the server
        // mutex only for root state. PaRiS only (the builder rejects
        // BPR + write_threads).
        let mut write_pool = Vec::new();
        if config.write_threads > 0 && config.cluster.mode == Mode::Paris {
            let pipelines: HashMap<ServerId, _> = servers
                .iter()
                .map(|(id, s)| (*id, s.lock().expect("fresh server").commit_pipeline()))
                .collect();
            let mut lanes = Vec::with_capacity(config.write_threads);
            for i in 0..config.write_threads {
                let (lane_tx, lane_rx) = std::sync::mpsc::channel::<Envelope>();
                lanes.push(lane_tx);
                let pipelines = pipelines.clone();
                let servers = servers.clone();
                let net = router.handle();
                let clock = Arc::clone(&clock);
                let stop = Arc::clone(&stop_servers);
                let service = config.write_service_micros;
                write_pool.push(
                    std::thread::Builder::new()
                        .name(format!("write-pool-{i}"))
                        .spawn(move || {
                            crate::driver::write_pool_loop(
                                lane_rx,
                                pipelines,
                                servers,
                                move |e| net.send(e),
                                clock,
                                stop,
                                service,
                            )
                        })
                        .expect("spawn write pool thread"),
                );
            }
            router.set_write_tap(lanes);
        }

        Ok(ThreadCluster {
            config,
            topo,
            router,
            net,
            clock,
            stop_servers,
            server_handles,
            read_pool,
            write_pool,
            servers,
            views,
            interactive: HashMap::new(),
            next_interactive: HashMap::new(),
            skew_cells,
            chaos_stop: Arc::new(AtomicBool::new(false)),
            chaos_handles: Vec::new(),
        })
    }

    /// The published [`ReadView`] of one server (tests and direct
    /// embedding): serves Alg. 3 snapshot reads without entering the
    /// server loop.
    pub fn read_view(&self, id: ServerId) -> Option<ReadView> {
        self.views.get(&id).cloned()
    }

    /// The topology, for inspecting placement.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    fn session(&mut self, client: ClientId) -> Result<&mut InteractiveClient, Error> {
        self.interactive
            .get_mut(&client)
            .ok_or(Error::UnknownTransaction)
    }

    /// Sends `env` and waits for the event that completes the operation.
    fn round_trip(&mut self, client: ClientId, env: Envelope) -> Result<ClientEvent, Error> {
        self.net.send(env);
        let ic = self.session(client)?;
        let deadline = Instant::now() + OP_TIMEOUT;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(Error::Transport("interactive operation timed out"));
            }
            match ic.inbox.recv_timeout(left.min(Duration::from_millis(100))) {
                Ok(env) => {
                    if let Some(ev) = ic.session.handle(&env) {
                        return Ok(ev);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(Error::Transport("network router shut down"));
                }
            }
        }
    }

    fn blocking_stats(&self) -> BlockingStats {
        let mut out = BlockingStats::default();
        for server in self.servers.values() {
            out.accumulate(&server.lock().expect("server poisoned").stats());
        }
        out
    }

    /// One stabilization round in wall-clock microseconds.
    fn round_micros(&self) -> u64 {
        crate::gossip_round_micros(
            &self.config.cluster.intervals,
            &self.config.net.matrix,
            self.config.cluster.dcs,
            self.config.net.scale,
            &self.config.cluster.batch,
            2_000,
        )
    }
}

impl Cluster for ThreadCluster {
    fn backend_name(&self) -> &'static str {
        "thread"
    }

    fn mode(&self) -> Mode {
        self.config.cluster.mode
    }

    fn kill_server(&mut self, index: usize) -> Result<(), Error> {
        if index >= self.servers.len() {
            return Err(paris_types::ConfigError::new("server index out of range").into());
        }
        Err(Error::Unsupported(
            "kill_server is not available on the thread backend (no server processes); \
             crash a whole DC with a FaultPlan instead",
        ))
    }

    fn restart_server(&mut self, index: usize) -> Result<(), Error> {
        if index >= self.servers.len() {
            return Err(paris_types::ConfigError::new("server index out of range").into());
        }
        Err(Error::Unsupported(
            "restart_server is not available on the thread backend (no server processes); \
             rejoin a crashed DC with a FaultPlan instead",
        ))
    }

    fn install_fault_plan(&mut self, plan: FaultPlan) -> Result<(), Error> {
        plan.validate(self.config.cluster.dcs)?;
        if plan.is_empty() {
            return Ok(());
        }
        let control = self.router.link_control();
        let cells = self.skew_cells.clone();
        let dcs = self.config.cluster.dcs;
        let stop = Arc::clone(&self.chaos_stop);
        let events = plan.sorted_events();
        let started = Instant::now();
        let handle = std::thread::Builder::new()
            .name("chaos-plan".into())
            .spawn(move || {
                for event in events {
                    // Sleep toward the event's wall-clock due time in short
                    // slices so a dropped cluster never blocks on us.
                    let due = started + Duration::from_micros(event.at_micros);
                    loop {
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                        let left = due.saturating_duration_since(Instant::now());
                        if left.is_zero() {
                            break;
                        }
                        std::thread::sleep(left.min(Duration::from_millis(20)));
                    }
                    match event.kind {
                        FaultKind::CrashDc(dc) => control.isolate_dc(dc, dcs),
                        FaultKind::RejoinDc(dc) => control.rejoin_dc(dc, dcs),
                        FaultKind::PartitionLink(a, b) => control.partition_link(a, b),
                        FaultKind::HealLink(a, b) => control.heal_link(a, b),
                        FaultKind::SlowLink { a, b, factor } => {
                            control.set_link_scale(a, b, factor)
                        }
                        FaultKind::RestoreLink(a, b) => control.set_link_scale(a, b, 1.0),
                        FaultKind::SkewClock { dc, delta_micros } => {
                            for cell in cells.get(&dc).into_iter().flatten() {
                                cell.step(delta_micros);
                            }
                        }
                        _ => {}
                    }
                }
            })
            .expect("spawn chaos thread");
        self.chaos_handles.push(handle);
        Ok(())
    }

    fn open_client(&mut self, dc: u16) -> Result<ClientId, Error> {
        if dc >= self.config.cluster.dcs {
            return Err(paris_types::ConfigError::new("client DC out of range").into());
        }
        let dc = DcId(dc);
        let offset = self.next_interactive.entry(dc).or_insert(0);
        let id = ClientId::new(dc, INTERACTIVE_SEQ_BASE + *offset);
        *offset += 1;
        let inbox = self.router.register(id);
        let coordinator = self.topo.coordinator_for(dc, id.seq);
        let session = ClientSession::new(id, coordinator, self.config.cluster.mode);
        self.interactive
            .insert(id, InteractiveClient { session, inbox });
        Ok(id)
    }

    fn txn_begin(&mut self, client: ClientId) -> Result<Timestamp, Error> {
        let env = self.session(client)?.session.begin()?;
        match self.round_trip(client, env)? {
            ClientEvent::Started { snapshot, .. } => Ok(snapshot),
            ClientEvent::Aborted { .. } => Err(Error::PartitionUnreachable),
            _ => Err(Error::UnknownTransaction),
        }
    }

    fn txn_read(&mut self, client: ClientId, keys: &[Key]) -> Result<Vec<ClientRead>, Error> {
        let step = self.session(client)?.session.read(keys)?;
        match step {
            ReadStep::Done(reads) => Ok(reads),
            ReadStep::Send(env) => match self.round_trip(client, env)? {
                ClientEvent::ReadDone { reads, .. } => Ok(reads),
                ClientEvent::Aborted { .. } => Err(Error::PartitionUnreachable),
                _ => Err(Error::UnknownTransaction),
            },
        }
    }

    fn txn_write(&mut self, client: ClientId, entries: &[(Key, Value)]) -> Result<(), Error> {
        self.session(client)?.session.write(entries)
    }

    fn txn_commit(&mut self, client: ClientId) -> Result<Timestamp, Error> {
        let env = self.session(client)?.session.commit()?;
        match self.round_trip(client, env)? {
            ClientEvent::Committed { ct, .. } => Ok(ct),
            ClientEvent::Aborted { .. } => Err(Error::PartitionUnreachable),
            _ => Err(Error::UnknownTransaction),
        }
    }

    fn reset_client(&mut self, client: ClientId) -> Result<(), Error> {
        // Deliberately no inbox drain: the session itself discards every
        // reply owed to the abandoned operation (tx-id checks for
        // reads/commits, a FIFO discard count for starts). Draining here
        // would race with in-flight replies and desynchronize that count.
        self.session(client)?.session.reset();
        Ok(())
    }

    fn stabilize(&mut self, rounds: usize) {
        std::thread::sleep(Duration::from_micros(self.round_micros() * rounds as u64));
    }

    fn min_ust(&self) -> Timestamp {
        self.servers
            .values()
            .map(|s| s.lock().expect("server poisoned").ust())
            .min()
            .unwrap_or(Timestamp::ZERO)
    }

    fn run_workload(&mut self, warmup_micros: u64, window_micros: u64) -> Result<RunReport, Error> {
        let stop_clients = Arc::new(AtomicBool::new(false));
        let measure_after = Instant::now() + Duration::from_micros(warmup_micros);
        let mut handles: Vec<JoinHandle<ClientOutcome>> = Vec::new();
        for dc in 0..self.config.cluster.dcs {
            let dc = DcId(dc);
            let local_partitions = self.topo.partitions_in_dc(dc);
            for seq in 0..self.config.clients_per_dc {
                let id = ClientId::new(dc, seq);
                let inbox = self.router.register(id);
                let net = self.router.handle();
                let coordinator = self.topo.coordinator_for(dc, seq);
                let mode = self.config.cluster.mode;
                let stop = Arc::clone(&stop_clients);
                let clock = Arc::clone(&self.clock);
                let workload = self.config.workload.clone();
                let n_partitions = self.config.cluster.partitions;
                let local = local_partitions.clone();
                let seed = self.config.seed ^ (u64::from(dc.0) << 32) ^ u64::from(seq);
                handles.push(
                    std::thread::Builder::new()
                        .name(format!("client-{id}"))
                        .spawn(move || {
                            run_client(
                                id,
                                coordinator,
                                mode,
                                workload,
                                n_partitions,
                                local,
                                seed,
                                inbox,
                                move |e| net.send(e),
                                stop,
                                clock,
                                measure_after,
                            )
                        })
                        .expect("spawn client thread"),
                );
            }
        }

        std::thread::sleep(Duration::from_micros(warmup_micros + window_micros));
        stop_clients.store(true, Ordering::Relaxed);
        let mut outcomes = Vec::new();
        for h in handles {
            outcomes.push(h.join().expect("client thread panicked"));
        }
        // Let replication/stabilization settle before taking the
        // consistent store snapshot.
        std::thread::sleep(Duration::from_millis(300));

        let mut stats = RunStats::new(window_micros);
        let mut checker = self.config.record_history.then(HistoryChecker::new);
        for outcome in outcomes {
            stats.committed += outcome.committed;
            stats.aborted += outcome.aborted;
            stats.latency.merge(&outcome.latency);
            stats.start_latency.merge(&outcome.start_latency);
            if let Some(checker) = checker.as_mut() {
                for (cid, rec) in outcome.records {
                    checker.record_tx(cid, rec);
                }
            }
        }
        // Freeze every server at once (each thread only locks its own
        // server, so grabbing all guards cannot deadlock) for a consistent
        // ground-truth snapshot.
        let violations = match checker.as_mut() {
            Some(checker) => {
                let guards: Vec<_> = {
                    let mut ids: Vec<&ServerId> = self.servers.keys().collect();
                    ids.sort_unstable();
                    ids.into_iter()
                        .map(|id| self.servers[id].lock().expect("server poisoned"))
                        .collect()
                };
                for server in &guards {
                    crate::record_store_versions(checker, server.store());
                }
                checker.check()
            }
            None => Vec::new(),
        };

        let net = self.router.net_stats();
        Ok(RunReport {
            mode: self.config.cluster.mode,
            stats,
            blocking: self.blocking_stats(),
            visibility: None,
            violations,
            net_messages: net.messages,
            net_bytes: net.bytes,
        })
    }

    fn stats(&mut self) -> Result<ClusterStats, Error> {
        let mut out = ClusterStats::default();
        let mut min_ust = None;
        for server in self.servers.values() {
            let server = server.lock().expect("server poisoned");
            out.fold_server(&server.stats());
            out.fold_pipeline(server.commit_pipeline().stats());
            min_ust = Some(min_ust.map_or(server.ust(), |u: Timestamp| u.min(server.ust())));
        }
        out.min_ust = min_ust.unwrap_or(Timestamp::ZERO);
        Ok(out)
    }

    fn begin(&mut self, client: ClientId) -> Result<crate::Txn<'_>, Error> {
        crate::Txn::begin_on(self, client)
    }

    fn check_convergence(&mut self) -> Result<Vec<Violation>, Error> {
        let topo = Arc::clone(&self.topo);
        Ok(replica_convergence(&topo, |id| {
            crate::latest_orders(self.servers[&id].lock().expect("server poisoned").store())
        }))
    }
}

impl Drop for ThreadCluster {
    fn drop(&mut self) {
        self.chaos_stop.store(true, Ordering::Relaxed);
        for h in self.chaos_handles.drain(..) {
            let _ = h.join();
        }
        self.stop_servers.store(true, Ordering::Relaxed);
        for h in self.server_handles.drain(..) {
            let _ = h.join();
        }
        for h in self.read_pool.drain(..) {
            let _ = h.join();
        }
        for h in self.write_pool.drain(..) {
            let _ = h.join();
        }
    }
}
