//! The miniature synchronous in-process backend.
//!
//! [`MiniCluster`] wires the real PaRiS server and client state machines
//! together with a zero-latency FIFO message pump — no simulator, no
//! threads. It is the cheapest [`Cluster`](crate::Cluster) backend:
//! examples, unit tests and interactive exploration all fit in a few
//! lines, and every operation completes synchronously. The background
//! protocols (replication, UST stabilization) advance when
//! [`Cluster::stabilize`](crate::Cluster::stabilize) is called.
//!
//! Build one with [`crate::Paris::builder`] and
//! [`Backend::Mini`](crate::Backend::Mini); for performance work use the
//! [`crate::SimCluster`] backend (WAN latency, CPU model), for
//! concurrency testing the [`crate::ThreadCluster`] backend.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use paris_clock::SimClock;
use paris_core::checker::{HistoryChecker, RecordedTx};
use paris_core::{
    ClientEvent, ClientRead, ClientSession, ReadStep, Server, ServerOptions, ServerTuning,
    Topology, Violation,
};
use paris_net::batch::{Coalescer, Offer};
use paris_proto::{Endpoint, Envelope};
use paris_types::{ClientId, ClusterConfig, DcId, Error, Key, Mode, ServerId, Timestamp, Value};
use paris_workload::stats::RunStats;
use paris_workload::{WorkloadConfig, WorkloadGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::measure::{BlockingStats, ClusterStats, RunReport};
use crate::{replica_convergence, Cluster};

/// A synchronous in-process PaRiS cluster. See the module docs.
pub struct MiniCluster {
    topo: Arc<Topology>,
    clock: SimClock,
    servers: HashMap<ServerId, Server>,
    clients: HashMap<ClientId, ClientSession>,
    queue: VecDeque<Envelope>,
    /// Coalesces background traffic from the periodic ticks; flushed
    /// before every pump (the mini backend's synchronous quantum), so
    /// batching never delays a stabilization round.
    coalescer: Coalescer,
    events: VecDeque<(ClientId, ClientEvent)>,
    next_client: HashMap<DcId, u32>,
    mode: Mode,
    now: u64,
    workload: WorkloadConfig,
    clients_per_dc: u32,
    seed: u64,
    record_history: bool,
}

impl MiniCluster {
    /// Builds the deployment; called by [`crate::ClusterBuilder`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Storage`] when durability is requested and a
    /// server's data directory cannot be opened or recovered.
    pub(crate) fn from_parts(
        cfg: ClusterConfig,
        workload: WorkloadConfig,
        clients_per_dc: u32,
        seed: u64,
        record_history: bool,
        tuning: ServerTuning,
        durability: Option<crate::Durability>,
    ) -> Result<Self, Error> {
        let mode = cfg.mode;
        let batch = cfg.batch;
        let wire = cfg.wire;
        let topo = Arc::new(Topology::new(cfg));
        let clock = SimClock::new();
        clock.advance_to(1_000);
        let mut servers = HashMap::new();
        for id in topo.all_servers() {
            let mut tuning = tuning.clone();
            tuning.durable = durability.as_ref().map(|d| d.server_config(id));
            servers.insert(
                id,
                Server::try_with_tuning(
                    ServerOptions {
                        id,
                        topology: Arc::clone(&topo),
                        clock: Box::new(clock.clone()),
                        mode,
                        record_events: false,
                    },
                    tuning,
                )?,
            );
        }
        Ok(MiniCluster {
            topo,
            clock,
            servers,
            clients: HashMap::new(),
            queue: VecDeque::new(),
            coalescer: Coalescer::new(batch, wire),
            events: VecDeque::new(),
            next_client: HashMap::new(),
            mode,
            now: 1_000,
            workload,
            clients_per_dc,
            seed,
            record_history,
        })
    }

    /// The topology, for inspecting placement.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Direct read-only access to a server (stores, stats).
    pub fn server(&self, id: ServerId) -> Option<&Server> {
        self.servers.get(&id)
    }

    fn pump(&mut self) {
        while let Some(env) = self.queue.pop_front() {
            match env.dst {
                Endpoint::Server(sid) => {
                    if let Some(server) = self.servers.get_mut(&sid) {
                        let out = server.handle(&env, self.now);
                        self.queue.extend(out);
                    }
                }
                Endpoint::Client(cid) => {
                    if let Some(session) = self.clients.get_mut(&cid) {
                        if let Some(ev) = session.handle(&env) {
                            self.events.push_back((cid, ev));
                        }
                    }
                }
            }
        }
    }

    /// Routes tick output through the coalescer: background frames merge
    /// per link, anything else (or with batching off) goes straight to the
    /// queue.
    fn enqueue_background(&mut self, envs: Vec<Envelope>) {
        for env in envs {
            match self.coalescer.offer(env, self.now) {
                Offer::Pass(env) => self.queue.push_back(env),
                Offer::Flush(flushed) => self.queue.extend(flushed),
                Offer::Queued { .. } => {}
            }
        }
    }

    /// Flushes every coalesced frame onto the queue; the mini backend is
    /// synchronous, so each pump is a flush boundary.
    fn flush_coalesced(&mut self) {
        let flushed = self.coalescer.flush_all();
        self.queue.extend(flushed);
    }

    fn stabilize_rounds(&mut self, rounds: usize) {
        let ids: Vec<ServerId> = {
            let mut v: Vec<ServerId> = self.servers.keys().copied().collect();
            v.sort_unstable();
            v
        };
        for _ in 0..rounds {
            self.now += 1_000;
            self.clock.advance_to(self.now);
            for id in &ids {
                let out = self
                    .servers
                    .get_mut(id)
                    .expect("known")
                    .on_replicate_tick(self.now);
                self.enqueue_background(out);
            }
            self.flush_coalesced();
            self.pump();
            // Two aggregation passes so child reports reach the roots.
            for _ in 0..2 {
                for id in &ids {
                    let out = self
                        .servers
                        .get_mut(id)
                        .expect("known")
                        .on_gst_tick(self.now);
                    self.enqueue_background(out);
                }
                self.flush_coalesced();
                self.pump();
            }
            for id in &ids {
                let out = self
                    .servers
                    .get_mut(id)
                    .expect("known")
                    .on_ust_tick(self.now);
                self.enqueue_background(out);
            }
            self.flush_coalesced();
            self.pump();
        }
    }

    fn expect_event(&mut self, cid: ClientId) -> Result<ClientEvent, Error> {
        // The pump is synchronous: the response is already queued.
        match self.events.pop_front() {
            Some((id, ev)) if id == cid => Ok(ev),
            _ => Err(Error::UnknownTransaction),
        }
    }

    fn blocking_stats(&self) -> BlockingStats {
        let mut out = BlockingStats::default();
        for server in self.servers.values() {
            out.accumulate(&server.stats());
        }
        out
    }
}

impl Cluster for MiniCluster {
    fn backend_name(&self) -> &'static str {
        "mini"
    }

    fn mode(&self) -> Mode {
        self.mode
    }

    fn open_client(&mut self, dc: u16) -> Result<ClientId, Error> {
        if dc >= self.topo.dcs() {
            return Err(paris_types::ConfigError::new("client DC out of range").into());
        }
        let dc = DcId(dc);
        let seq = self.next_client.entry(dc).or_insert(0);
        let id = ClientId::new(dc, *seq);
        *seq += 1;
        let coordinator = self.topo.coordinator_for(dc, id.seq);
        self.clients
            .insert(id, ClientSession::new(id, coordinator, self.mode));
        Ok(id)
    }

    fn txn_begin(&mut self, client: ClientId) -> Result<Timestamp, Error> {
        self.now += 10;
        self.clock.advance_to(self.now);
        let env = self
            .clients
            .get_mut(&client)
            .ok_or(Error::UnknownTransaction)?
            .begin()?;
        self.queue.push_back(env);
        self.pump();
        match self.expect_event(client)? {
            ClientEvent::Started { snapshot, .. } => Ok(snapshot),
            _ => Err(Error::UnknownTransaction),
        }
    }

    fn txn_read(&mut self, client: ClientId, keys: &[Key]) -> Result<Vec<ClientRead>, Error> {
        let step = self
            .clients
            .get_mut(&client)
            .ok_or(Error::UnknownTransaction)?
            .read(keys)?;
        match step {
            ReadStep::Done(reads) => Ok(reads),
            ReadStep::Send(env) => {
                self.queue.push_back(env);
                self.pump();
                // Under BPR a fresh-snapshot read blocks server-side until
                // the snapshot is installed; advance background rounds
                // until it completes (PaRiS never takes this path).
                let mut rounds = 0;
                while self.events.is_empty() && rounds < 64 {
                    self.stabilize_rounds(1);
                    rounds += 1;
                }
                match self.expect_event(client)? {
                    ClientEvent::ReadDone { reads, .. } => Ok(reads),
                    _ => Err(Error::UnknownTransaction),
                }
            }
        }
    }

    fn txn_write(&mut self, client: ClientId, entries: &[(Key, Value)]) -> Result<(), Error> {
        self.clients
            .get_mut(&client)
            .ok_or(Error::UnknownTransaction)?
            .write(entries)
    }

    fn txn_commit(&mut self, client: ClientId) -> Result<Timestamp, Error> {
        self.now += 10;
        self.clock.advance_to(self.now);
        let env = self
            .clients
            .get_mut(&client)
            .ok_or(Error::UnknownTransaction)?
            .commit()?;
        self.queue.push_back(env);
        self.pump();
        match self.expect_event(client)? {
            ClientEvent::Committed { ct, .. } => Ok(ct),
            _ => Err(Error::UnknownTransaction),
        }
    }

    fn reset_client(&mut self, client: ClientId) -> Result<(), Error> {
        self.clients
            .get_mut(&client)
            .ok_or(Error::UnknownTransaction)?
            .reset();
        self.events.retain(|(cid, _)| *cid != client);
        Ok(())
    }

    fn stabilize(&mut self, rounds: usize) {
        self.stabilize_rounds(rounds);
    }

    fn min_ust(&self) -> Timestamp {
        self.servers
            .values()
            .map(Server::ust)
            .min()
            .unwrap_or(Timestamp::ZERO)
    }

    fn run_workload(&mut self, warmup_micros: u64, window_micros: u64) -> Result<RunReport, Error> {
        let window_start = self.now + warmup_micros;
        let end = window_start + window_micros;
        let mut stats = RunStats::new(window_micros);
        let mut checker = self.record_history.then(HistoryChecker::new);

        let mut workers = Vec::new();
        for dc in 0..self.topo.dcs() {
            let local = self.topo.partitions_in_dc(DcId(dc));
            for _ in 0..self.clients_per_dc {
                let id = self.open_client(dc)?;
                let generator = WorkloadGenerator::new(
                    self.workload.clone(),
                    self.topo.partitions(),
                    local.clone(),
                );
                let rng =
                    StdRng::seed_from_u64(self.seed ^ (u64::from(dc) << 32) ^ u64::from(id.seq));
                workers.push((id, generator, rng));
            }
        }

        // Closed loop, round-robin over clients, with a stabilization
        // round between laps so the UST keeps pace with the writers.
        while self.now < end {
            for (id, generator, rng) in &mut workers {
                let begun_at = self.now;
                let snapshot = self.txn_begin(*id)?;
                if self.now >= window_start && self.now <= end {
                    stats
                        .start_latency
                        .record(self.now.saturating_sub(begun_at));
                }
                let tx = self
                    .clients
                    .get(id)
                    .and_then(ClientSession::open_tx)
                    .ok_or(Error::UnknownTransaction)?;
                let spec = generator.next_tx(rng);
                let mut reads = Vec::new();
                if !spec.read_keys.is_empty() {
                    let got = self.txn_read(*id, &spec.read_keys)?;
                    if checker.is_some() {
                        reads.extend(got.iter().map(HistoryChecker::recorded_read));
                    }
                }
                if !spec.writes.is_empty() {
                    self.txn_write(*id, &spec.writes)?;
                }
                let ct = self.txn_commit(*id)?;
                if self.now >= window_start && self.now <= end {
                    stats.committed += 1;
                    stats.latency.record(self.now.saturating_sub(begun_at));
                }
                if let Some(checker) = checker.as_mut() {
                    checker.record_tx(
                        *id,
                        RecordedTx {
                            tx,
                            snapshot,
                            reads,
                            writes: spec.writes.iter().map(|(k, _)| *k).collect(),
                            ct: Some(ct),
                        },
                    );
                }
            }
            self.stabilize_rounds(1);
        }

        let violations = match checker.as_mut() {
            Some(checker) => {
                for server in self.servers.values() {
                    crate::record_store_versions(checker, server.store());
                }
                checker.check()
            }
            None => Vec::new(),
        };
        Ok(RunReport {
            mode: self.mode,
            stats,
            blocking: self.blocking_stats(),
            visibility: None,
            violations,
            net_messages: 0,
            net_bytes: 0,
        })
    }

    fn stats(&mut self) -> Result<ClusterStats, Error> {
        let mut out = ClusterStats::default();
        for server in self.servers.values() {
            out.fold_server(&server.stats());
            out.fold_pipeline(server.commit_pipeline().stats());
        }
        out.min_ust = self.min_ust();
        Ok(out)
    }

    fn kill_server(&mut self, index: usize) -> Result<(), Error> {
        if index >= self.servers.len() {
            return Err(paris_types::ConfigError::new("server index out of range").into());
        }
        Err(Error::Unsupported(
            "kill_server is not available on the mini backend (no server processes); use the socket backend",
        ))
    }

    fn restart_server(&mut self, index: usize) -> Result<(), Error> {
        if index >= self.servers.len() {
            return Err(paris_types::ConfigError::new("server index out of range").into());
        }
        Err(Error::Unsupported(
            "restart_server is not available on the mini backend (no server processes); use the socket backend",
        ))
    }

    fn begin(&mut self, client: ClientId) -> Result<crate::Txn<'_>, Error> {
        crate::Txn::begin_on(self, client)
    }

    fn check_convergence(&mut self) -> Result<Vec<Violation>, Error> {
        let topo = Arc::clone(&self.topo);
        Ok(replica_convergence(&topo, |id| {
            crate::latest_orders(self.servers[&id].store())
        }))
    }
}
