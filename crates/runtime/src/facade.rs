//! The unified cluster facade: one [`Cluster`] trait over every backend,
//! with RAII [`Txn`] transaction handles.
//!
//! Every runtime — the synchronous in-process [`crate::MiniCluster`], the
//! discrete-event [`crate::SimCluster`], the multi-threaded
//! [`crate::ThreadCluster`] — exposes the same surface:
//!
//! * [`Cluster::open_client`] to place a client session in a DC,
//! * [`Cluster::begin`] to open a transaction and get a [`Txn`] handle
//!   (`read`/`write`/`commit`, abort-on-drop),
//! * [`Cluster::stabilize`] to let the background protocols (replication,
//!   GST/UST gossip) advance,
//! * [`Cluster::run_workload`] to drive a closed-loop YCSB-style load and
//!   get a [`RunReport`],
//! * [`Cluster::check_convergence`] for the replica-agreement oracle.
//!
//! Backends are built with [`crate::Paris::builder`]; code written against
//! this trait runs unchanged on all of them.
//!
//! ```
//! use paris_runtime::{Backend, Cluster, Paris};
//! use paris_types::{Key, Value};
//!
//! let mut cluster = Paris::builder()
//!     .dcs(3)
//!     .partitions(6)
//!     .replication(2)
//!     .backend(Backend::Mini)
//!     .build()?;
//! let alice = cluster.open_client(0)?;
//!
//! let mut txn = cluster.begin(alice)?;
//! txn.write(Key(1), Value::from("hello"));
//! txn.commit()?;
//!
//! cluster.stabilize(5);
//! let bob = cluster.open_client(1)?;
//! let mut txn = cluster.begin(bob)?;
//! assert_eq!(txn.read_one(Key(1))?, Some(Value::from("hello")));
//! txn.commit()?;
//! # Ok::<(), paris_types::Error>(())
//! ```

use paris_core::{ClientRead, ReadSource, Violation};
use paris_types::{ClientId, Error, FaultPlan, Key, Mode, Timestamp, Value};

use crate::measure::{ClusterStats, RunReport};

/// A PaRiS deployment, independent of the substrate executing it.
///
/// The `txn_*` methods are the raw, client-id-keyed operations each
/// backend implements; application code should prefer [`Cluster::begin`]
/// and the [`Txn`] handle, which layer transactional buffering and
/// abort-on-drop on top of them.
pub trait Cluster {
    /// A short name of the backend ("mini", "sim", "thread").
    fn backend_name(&self) -> &'static str;

    /// The protocol variant this deployment runs.
    fn mode(&self) -> Mode;

    /// Opens a client session collocated with a coordinator in DC `dc`.
    ///
    /// # Errors
    ///
    /// Returns a configuration error if `dc` is out of range.
    fn open_client(&mut self, dc: u16) -> Result<ClientId, Error>;

    /// Raw operation: starts a transaction for `client`, returning its
    /// snapshot timestamp.
    ///
    /// # Errors
    ///
    /// Propagates session errors (unknown client, transaction already
    /// open) and transport failures.
    fn txn_begin(&mut self, client: ClientId) -> Result<Timestamp, Error>;

    /// Raw operation: reads `keys` within the open transaction.
    ///
    /// # Errors
    ///
    /// Propagates session errors and transport failures.
    fn txn_read(&mut self, client: ClientId, keys: &[Key]) -> Result<Vec<ClientRead>, Error>;

    /// Raw operation: buffers `entries` in the open transaction's write
    /// set.
    ///
    /// # Errors
    ///
    /// Propagates session errors.
    fn txn_write(&mut self, client: ClientId, entries: &[(Key, Value)]) -> Result<(), Error>;

    /// Raw operation: commits the open transaction, returning its commit
    /// timestamp ([`Timestamp::ZERO`] for read-only transactions).
    ///
    /// # Errors
    ///
    /// Propagates session errors and transport failures.
    fn txn_commit(&mut self, client: ClientId) -> Result<Timestamp, Error>;

    /// Abandons `client`'s open transaction and any in-flight operation,
    /// returning the session to idle so the next [`Cluster::begin`]
    /// succeeds — the recovery path after a transport-timed-out operation
    /// (e.g. [`Txn::commit`] returning [`Error::Transport`]) wedged the
    /// session.
    ///
    /// Durable session state (`ust_c`, `hwt_c`, the write cache) is
    /// preserved, so causal ordering of completed transactions holds. If
    /// the abandoned commit actually landed server-side and only its
    /// reply was lost, read-your-own-writes is forfeited for exactly that
    /// transaction until the UST covers it. Late replies for the
    /// abandoned transaction are discarded; the orphaned coordinator
    /// context is reclaimed by the server's background stale-context
    /// cleanup.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownTransaction`] if `client` is not an
    /// interactive session of this cluster.
    fn reset_client(&mut self, client: ClientId) -> Result<(), Error>;

    /// Advances the background protocols (replication, GST/UST gossip)
    /// for `rounds` full rounds; after 3–5 rounds all previously committed
    /// writes are in every DC's stable snapshot.
    fn stabilize(&mut self, rounds: usize);

    /// The minimum Universal Stable Time across all servers.
    fn min_ust(&self) -> Timestamp;

    /// Runs the configured closed-loop workload: `warmup_micros` of
    /// untimed warmup, then a measured window of `window_micros`
    /// (simulated time on deterministic backends, wall-clock time on the
    /// threaded backend).
    ///
    /// # Errors
    ///
    /// Returns transport failures; the report itself carries consistency
    /// violations when history recording is enabled.
    fn run_workload(&mut self, warmup_micros: u64, window_micros: u64) -> Result<RunReport, Error>;

    /// A cluster-wide [`ClusterStats`] counters snapshot, aggregated over
    /// every server: protocol message counts, 2PC roles, replication
    /// applies, commit-pipeline lane activity, BPR blocking and network
    /// accounting. Counters are cumulative since the cluster was built —
    /// diff two snapshots to meter an interval.
    ///
    /// # Errors
    ///
    /// Returns transport failures on backends that must reach server
    /// processes (the socket backend pulls snapshots over its control
    /// plane); the in-process backends are infallible.
    fn stats(&mut self) -> Result<ClusterStats, Error>;

    /// Checks that all replicas of every partition agree on the latest
    /// version of every key. Meaningful after [`Cluster::stabilize`] (or a
    /// settled workload); returns the disagreements found.
    ///
    /// # Errors
    ///
    /// Returns transport failures on backends that must reach servers.
    fn check_convergence(&mut self) -> Result<Vec<Violation>, Error>;

    /// Forcibly kills the server at `index` (in
    /// [`paris_core::Topology::all_servers`] order) without any shutdown
    /// handshake — the fault-injection half of a crash-recovery drill.
    ///
    /// Only the socket backend hosts servers in killable processes; the
    /// in-process backends report [`Error::Unsupported`].
    ///
    /// # Errors
    ///
    /// [`Error::Unsupported`] on backends without server processes,
    /// [`Error::Transport`] if the process cannot be killed.
    fn kill_server(&mut self, index: usize) -> Result<(), Error> {
        let _ = index;
        Err(Error::Unsupported(
            "kill_server requires a backend with server processes (socket)",
        ))
    }

    /// Relaunches the server at `index` after [`Cluster::kill_server`].
    /// With durability configured the replacement process recovers its
    /// pre-crash state from the newest checkpoint plus WAL replay before
    /// serving a single request; without durability it comes back empty
    /// and relies on replication to repopulate.
    ///
    /// # Errors
    ///
    /// [`Error::Unsupported`] on backends without server processes,
    /// [`Error::Transport`] if the replacement cannot be spawned or fails
    /// to rejoin the deployment.
    fn restart_server(&mut self, index: usize) -> Result<(), Error> {
        let _ = index;
        Err(Error::Unsupported(
            "restart_server requires a backend with server processes (socket)",
        ))
    }

    /// Installs a scripted [`FaultPlan`]: each event fires at its
    /// plan-relative time — virtual time on the deterministic simulator
    /// (same seed + same plan ⇒ bit-identical run), wall-clock time on
    /// the threaded backend (a chaos thread drives the router's link
    /// controls). Prefer `ClusterBuilder::fault_plan`, which validates
    /// and installs the plan at build time; this method is the facade
    /// path for plans constructed after the cluster is up.
    ///
    /// The mini backend has no network to break, and the socket backend
    /// injects real process faults through [`Cluster::kill_server`] /
    /// [`Cluster::restart_server`] instead; both report
    /// [`Error::Unsupported`].
    ///
    /// # Errors
    ///
    /// A configuration error when the plan targets a DC or link outside
    /// the deployment, [`Error::Unsupported`] on backends without
    /// scripted fault injection.
    fn install_fault_plan(&mut self, plan: FaultPlan) -> Result<(), Error> {
        let _ = plan;
        Err(Error::Unsupported(
            "fault plans need a backend with a controllable network (sim or thread)",
        ))
    }

    /// Starts a transaction and returns its RAII [`Txn`] handle.
    ///
    /// Dropping the handle without [`Txn::commit`] aborts the
    /// transaction: buffered writes are discarded and the coordinator's
    /// context is released.
    ///
    /// Implementations delegate to [`Txn::begin_on`]; the method lives on
    /// the trait (rather than as a provided default) so it is callable on
    /// `dyn Cluster` trait objects too.
    ///
    /// # Errors
    ///
    /// Propagates [`Cluster::txn_begin`] errors.
    fn begin(&mut self, client: ClientId) -> Result<Txn<'_>, Error>;
}

/// An open transaction on a [`Cluster`].
///
/// Writes are buffered in the handle and only shipped on [`Txn::commit`];
/// dropping the handle (or calling [`Txn::abort`]) closes the transaction
/// without publishing any buffered write — none of them takes effect,
/// matching the coordinator-side abort semantics of §III-C.
///
/// Reads observe the handle's own buffered writes first (the `WS_c` tier
/// of Algorithm 1 line 11), then fall through to the session's read set,
/// write cache and the servers.
pub struct Txn<'a> {
    cluster: &'a mut (dyn Cluster + 'a),
    client: ClientId,
    snapshot: Timestamp,
    writes: Vec<(Key, Value)>,
    finished: bool,
}

impl<'a> Txn<'a> {
    /// Starts a transaction on `cluster` — the canonical implementation of
    /// [`Cluster::begin`], public so external backend implementations can
    /// delegate to it too.
    ///
    /// # Errors
    ///
    /// Propagates [`Cluster::txn_begin`] errors.
    pub fn begin_on(cluster: &'a mut (dyn Cluster + 'a), client: ClientId) -> Result<Self, Error> {
        let snapshot = cluster.txn_begin(client)?;
        Ok(Txn {
            cluster,
            client,
            snapshot,
            writes: Vec::new(),
            finished: false,
        })
    }

    /// The client this transaction belongs to.
    pub fn client(&self) -> ClientId {
        self.client
    }

    /// The stable snapshot this transaction reads from.
    pub fn snapshot(&self) -> Timestamp {
        self.snapshot
    }

    /// Reads a set of keys, serving keys written earlier in this
    /// transaction from the local write buffer.
    ///
    /// # Errors
    ///
    /// Propagates session and transport errors.
    pub fn read(&mut self, keys: &[Key]) -> Result<Vec<ClientRead>, Error> {
        let mut out: Vec<ClientRead> = Vec::with_capacity(keys.len());
        let mut remote: Vec<Key> = Vec::new();
        for &key in keys {
            // Last write per key wins, as in the session write set.
            match self.writes.iter().rev().find(|(k, _)| *k == key) {
                Some((_, value)) => out.push(ClientRead {
                    key,
                    value: Some(value.clone()),
                    version: None,
                    source: ReadSource::WriteSet,
                }),
                None => remote.push(key),
            }
        }
        if !remote.is_empty() {
            out.extend(self.cluster.txn_read(self.client, &remote)?);
        }
        Ok(out)
    }

    /// Reads one key's value.
    ///
    /// # Errors
    ///
    /// Propagates session and transport errors.
    pub fn read_one(&mut self, key: Key) -> Result<Option<Value>, Error> {
        Ok(self
            .read(&[key])?
            .into_iter()
            .find(|r| r.key == key)
            .and_then(|r| r.value))
    }

    /// Buffers a write; it is shipped on [`Txn::commit`] and discarded on
    /// abort.
    pub fn write(&mut self, key: Key, value: Value) {
        self.writes.push((key, value));
    }

    /// Commits: ships the buffered writes and waits for the commit
    /// timestamp ([`Timestamp::ZERO`] for read-only transactions).
    ///
    /// # Errors
    ///
    /// Propagates session and transport errors. On error the handle still
    /// attempts the abort-on-drop closure; a transport-level failure
    /// mid-commit can leave the session with the operation in flight —
    /// call [`Cluster::reset_client`] to recover the session instead of
    /// abandoning it.
    pub fn commit(mut self) -> Result<Timestamp, Error> {
        let writes = std::mem::take(&mut self.writes);
        if !writes.is_empty() {
            // On failure, Drop still runs and closes the transaction
            // without the writes.
            self.cluster.txn_write(self.client, &writes)?;
        }
        let ct = self.cluster.txn_commit(self.client)?;
        self.finished = true;
        Ok(ct)
    }

    /// Explicitly aborts: buffered writes are discarded and the
    /// coordinator context is released. Equivalent to dropping the handle,
    /// but reports closure failures instead of swallowing them.
    ///
    /// # Errors
    ///
    /// Propagates transport failures encountered while closing the
    /// server-side context.
    pub fn abort(mut self) -> Result<(), Error> {
        self.finished = true;
        self.writes.clear();
        // A commit with an empty write set publishes nothing and frees
        // the coordinator's transaction context (and its hold on the GC
        // horizon) — the sans-I/O core stays untouched.
        self.cluster.txn_commit(self.client).map(drop)
    }
}

impl Drop for Txn<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.writes.clear();
            // Best effort: a failed abort (e.g. transport teardown) only
            // leaks the server-side context, which GC bounds anyway.
            let _ = self.cluster.txn_commit(self.client);
        }
    }
}
