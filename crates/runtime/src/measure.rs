//! Measurement extraction: run reports, blocking statistics and update
//! visibility latency (paper §V-E).

use paris_core::{EventLog, Violation};
use paris_types::Timestamp;
use paris_types::{Mode, TxId};
use paris_workload::stats::{Histogram, RunStats};
use std::collections::HashMap;

/// Aggregated BPR read-blocking statistics (paper §V-B reports the mean
/// blocking time of the read phase: 29 ms read-heavy / 41 ms write-heavy
/// at peak throughput).
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockingStats {
    /// Reads that blocked.
    pub blocked_reads: u64,
    /// Total microseconds spent blocked.
    pub total_micros: u64,
    /// Longest single block.
    pub max_micros: u64,
}

impl BlockingStats {
    /// Folds one server's counters into the aggregate.
    pub(crate) fn accumulate(&mut self, stats: &paris_core::ServerStats) {
        self.blocked_reads += stats.blocked_reads;
        self.total_micros += stats.blocked_micros_total;
        self.max_micros = self.max_micros.max(stats.blocked_micros_max);
    }

    /// Mean blocking time in milliseconds (0 when nothing blocked).
    pub fn mean_ms(&self) -> f64 {
        if self.blocked_reads == 0 {
            return 0.0;
        }
        self.total_micros as f64 / self.blocked_reads as f64 / 1_000.0
    }
}

/// A cluster-wide counters snapshot, aggregated over every server of a
/// deployment — the unified statistics surface of
/// [`Cluster::stats`](crate::Cluster::stats).
///
/// Every backend reports through this one struct: the in-process backends
/// fold [`paris_core::ServerStats`] and the commit-pipeline counters
/// directly; the socket backend carries the same numbers over its control
/// plane (`SnapshotCounters`). Counters are cumulative since the cluster
/// was built, so diff two snapshots to meter an interval.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClusterStats {
    /// Servers folded into this snapshot.
    pub servers: u64,
    /// Messages handled, any kind.
    pub msgs_handled: u64,
    /// Update transactions committed (coordinator side).
    pub txs_coordinated: u64,
    /// Slice reads served.
    pub slice_reads: u64,
    /// Keys returned by slice reads.
    pub keys_read: u64,
    /// Prepares handled (2PC cohort side).
    pub prepares: u64,
    /// Transactions applied locally (as 2PC participant).
    pub applied_local: u64,
    /// Transactions applied from remote replication.
    pub applied_remote: u64,
    /// Replication batches sent.
    pub replicate_batches: u64,
    /// Heartbeats sent.
    pub heartbeats: u64,
    /// Logical frames folded inside coalesced messages.
    pub coalesced_frames: u64,
    /// Whole coalesced gossip digests served off the server loops by the
    /// read pools (zero when digests are loop-served).
    pub pooled_gossip_digests: u64,
    /// Versions removed by GC.
    pub gc_removed: u64,
    /// Prepares staged through the commit pipelines (on- or off-loop).
    pub staged_prepares: u64,
    /// Replication frames applied through the pipelines' shard lanes.
    pub lane_batches: u64,
    /// Versions inserted through the pipelines' shard lanes.
    pub lane_applies: u64,
    /// Aggregated BPR read-blocking statistics (zero under PaRiS).
    pub blocking: BlockingStats,
    /// Total messages the network carried (0 on in-memory transports).
    pub net_messages: u64,
    /// Total wire bytes the network carried (0 on in-memory transports).
    pub net_bytes: u64,
    /// The minimum universal stable time across all servers.
    pub min_ust: Timestamp,
}

impl ClusterStats {
    /// Folds one server's protocol counters into the aggregate.
    pub(crate) fn fold_server(&mut self, stats: &paris_core::ServerStats) {
        self.servers += 1;
        self.msgs_handled += stats.msgs_handled;
        self.txs_coordinated += stats.txs_coordinated;
        self.slice_reads += stats.slice_reads;
        self.keys_read += stats.keys_read;
        self.prepares += stats.prepares;
        self.applied_local += stats.applied_local;
        self.applied_remote += stats.applied_remote;
        self.replicate_batches += stats.replicate_batches;
        self.heartbeats += stats.heartbeats;
        self.coalesced_frames += stats.coalesced_frames;
        self.pooled_gossip_digests += stats.pooled_gossip_digests;
        self.gc_removed += stats.gc_removed;
        self.blocking.accumulate(stats);
    }

    /// Folds one server's commit-pipeline counters into the aggregate.
    pub(crate) fn fold_pipeline(&mut self, stats: &paris_core::PipelineStats) {
        self.staged_prepares += stats.staged_prepares();
        self.lane_batches += stats.lane_batches();
        self.lane_applies += stats.lane_applies();
    }

    /// Folds one socket-child snapshot counter block into the aggregate.
    pub(crate) fn fold_snapshot(&mut self, snap: &paris_proto::ServerSnapshot) {
        self.servers += 1;
        let c = &snap.counters;
        self.msgs_handled += c.msgs_handled;
        self.txs_coordinated += c.txs_coordinated;
        self.slice_reads += c.slice_reads;
        self.keys_read += c.keys_read;
        self.prepares += c.prepares;
        self.applied_local += c.applied_local;
        self.applied_remote += c.applied_remote;
        self.replicate_batches += c.replicate_batches;
        self.heartbeats += c.heartbeats;
        self.coalesced_frames += c.coalesced_frames;
        self.pooled_gossip_digests += c.pooled_gossip_digests;
        self.gc_removed += c.gc_removed;
        self.staged_prepares += c.staged_prepares;
        self.lane_batches += c.lane_batches;
        self.lane_applies += c.lane_applies;
        self.blocking.blocked_reads += snap.blocked_reads;
        self.blocking.total_micros += snap.blocked_micros_total;
        self.blocking.max_micros = self.blocking.max_micros.max(snap.blocked_micros_max);
        self.net_messages += snap.net_messages;
        self.net_bytes += snap.net_bytes;
    }

    /// Fraction of remote applies that went through the per-shard commit
    /// pipeline lanes (1.0 when every apply used the parallel write path;
    /// 0 when nothing was applied).
    pub fn lane_apply_share(&self) -> f64 {
        if self.applied_remote == 0 {
            return 0.0;
        }
        self.lane_applies as f64 / self.applied_remote as f64
    }

    /// One-line summary, e.g. for progress output.
    pub fn summary(&self) -> String {
        format!(
            "{} servers: {} msgs, {} coordinated, {} prepares ({} staged), \
             {} applied remote ({} via lanes), ust {}",
            self.servers,
            self.msgs_handled,
            self.txs_coordinated,
            self.prepares,
            self.staged_prepares,
            self.applied_remote,
            self.lane_applies,
            self.min_ust,
        )
    }
}

/// The outcome of a cluster run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Protocol variant measured.
    pub mode: Mode,
    /// Transaction throughput/latency inside the measurement window.
    pub stats: RunStats,
    /// BPR blocking statistics (zero under PaRiS).
    pub blocking: BlockingStats,
    /// Update-visibility latency histogram (µs), when event recording was
    /// enabled (Fig. 4).
    pub visibility: Option<Histogram>,
    /// Consistency violations, when history recording was enabled.
    pub violations: Vec<Violation>,
    /// Total messages the network carried.
    pub net_messages: u64,
    /// Total wire bytes the network carried.
    pub net_bytes: u64,
}

impl RunReport {
    /// Throughput in KTx/s — the unit of the paper's figures.
    pub fn ktps(&self) -> f64 {
        self.stats.throughput_tps() / 1_000.0
    }

    /// One-line summary, e.g. for progress output.
    pub fn summary(&self) -> String {
        format!(
            "{}: {:.1} KTx/s, mean {:.2} ms, p99 {:.2} ms ({} tx)",
            self.mode,
            self.ktps(),
            self.stats.mean_latency_ms(),
            self.stats.percentile_ms(99.0),
            self.stats.committed
        )
    }
}

/// Derives the update-visibility latency histogram (Fig. 4) from server
/// event logs.
///
/// The visibility latency of update `X` in DC `i` is the wall-clock delta
/// between `X` becoming visible in DC `i` and `X`'s commit in its origin
/// DC (§V-E). An update is visible on a PaRiS server once it is applied
/// *and* the server's UST covers its commit timestamp (transactions read
/// from the UST snapshot); on a BPR server, applying suffices (fresh
/// snapshots expose it immediately).
pub fn visibility_histogram<'a>(
    mode: Mode,
    logs: impl IntoIterator<Item = &'a EventLog>,
) -> Histogram {
    let logs: Vec<&EventLog> = logs.into_iter().collect();
    // Commit wall time per transaction (from the coordinators' logs).
    let mut commit_at: HashMap<TxId, u64> = HashMap::new();
    for log in &logs {
        for (tx, _ct, now) in &log.commits {
            commit_at.entry(*tx).or_insert(*now);
        }
    }
    let mut hist = Histogram::new();
    for log in &logs {
        for (tx, ct, applied_at) in &log.applies {
            let Some(&committed_at) = commit_at.get(tx) else {
                continue;
            };
            let visible_at = match mode {
                Mode::Bpr => *applied_at,
                Mode::Paris => {
                    // First UST advance covering ct (logs are sorted by
                    // time, and UST is monotonic, so also by ust).
                    let idx = log.ust_advances.partition_point(|(ust, _)| *ust < *ct);
                    match log.ust_advances.get(idx) {
                        Some((_, now)) => (*applied_at).max(*now),
                        None => continue, // never became visible in the run
                    }
                }
            };
            hist.record(visible_at.saturating_sub(committed_at));
        }
    }
    hist
}

/// Internal helper for tests: build an event log.
#[cfg(test)]
fn log(
    commits: Vec<(TxId, Timestamp, u64)>,
    applies: Vec<(TxId, Timestamp, u64)>,
    ust_advances: Vec<(Timestamp, u64)>,
) -> EventLog {
    EventLog {
        commits,
        applies,
        ust_advances,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paris_types::{DcId, PartitionId, ServerId};

    fn tx(seq: u64) -> TxId {
        TxId::new(ServerId::new(DcId(0), PartitionId(0)), seq)
    }

    fn ts(t: u64) -> Timestamp {
        Timestamp::from_physical_micros(t)
    }

    #[test]
    fn blocking_stats_mean() {
        let b = BlockingStats {
            blocked_reads: 4,
            total_micros: 8_000,
            max_micros: 5_000,
        };
        assert!((b.mean_ms() - 2.0).abs() < 1e-9);
        assert_eq!(BlockingStats::default().mean_ms(), 0.0);
    }

    #[test]
    fn bpr_visibility_is_apply_minus_commit() {
        let coordinator = log(vec![(tx(1), ts(100), 1_000)], vec![], vec![]);
        let replica = log(vec![], vec![(tx(1), ts(100), 41_000)], vec![]);
        let h = visibility_histogram(Mode::Bpr, [&coordinator, &replica]);
        assert_eq!(h.count(), 1);
        assert!(h.max() >= 39_000 && h.max() <= 41_000);
    }

    #[test]
    fn paris_visibility_waits_for_ust() {
        let coordinator = log(vec![(tx(1), ts(100), 1_000)], vec![], vec![]);
        // Applied at 41 ms but UST covers ct=100 only at 200 ms.
        let replica = log(
            vec![],
            vec![(tx(1), ts(100), 41_000)],
            vec![(ts(50), 100_000), (ts(150), 200_000)],
        );
        let h = visibility_histogram(Mode::Paris, [&coordinator, &replica]);
        assert_eq!(h.count(), 1);
        let v = h.max();
        assert!((190_000..=200_000).contains(&v), "got {v}");
    }

    #[test]
    fn paris_visibility_skips_never_visible_updates() {
        let coordinator = log(vec![(tx(1), ts(100), 1_000)], vec![], vec![]);
        let replica = log(
            vec![],
            vec![(tx(1), ts(100), 41_000)],
            vec![(ts(50), 100_000)], // UST never reaches 100
        );
        let h = visibility_histogram(Mode::Paris, [&coordinator, &replica]);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn unknown_commits_are_ignored() {
        let replica = log(vec![], vec![(tx(9), ts(5), 10)], vec![]);
        let h = visibility_histogram(Mode::Bpr, [&replica]);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn cluster_stats_folds_servers_and_snapshots_identically() {
        let server_stats = paris_core::ServerStats {
            msgs_handled: 10,
            txs_coordinated: 2,
            slice_reads: 3,
            keys_read: 9,
            prepares: 4,
            applied_local: 4,
            applied_remote: 5,
            replicate_batches: 6,
            heartbeats: 7,
            coalesced_frames: 8,
            pooled_gossip_digests: 12,
            blocked_reads: 1,
            blocked_micros_total: 500,
            blocked_micros_max: 500,
            gc_removed: 11,
        };
        let snap = paris_proto::ServerSnapshot {
            ust: Timestamp::from_physical_micros(50),
            blocked_reads: 1,
            blocked_micros_total: 500,
            blocked_micros_max: 500,
            counters: paris_proto::SnapshotCounters {
                msgs_handled: 10,
                txs_coordinated: 2,
                slice_reads: 3,
                keys_read: 9,
                prepares: 4,
                applied_local: 4,
                applied_remote: 5,
                replicate_batches: 6,
                heartbeats: 7,
                coalesced_frames: 8,
                pooled_gossip_digests: 12,
                gc_removed: 11,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut direct = ClusterStats::default();
        direct.fold_server(&server_stats);
        let mut wired = ClusterStats::default();
        wired.fold_snapshot(&snap);
        assert_eq!(direct.servers, 1);
        assert_eq!(direct.msgs_handled, wired.msgs_handled);
        assert_eq!(direct.applied_remote, wired.applied_remote);
        assert_eq!(direct.gc_removed, wired.gc_removed);
        assert_eq!(
            direct.blocking.blocked_reads, wired.blocking.blocked_reads,
            "blocking folds the same on both paths"
        );
    }

    #[test]
    fn cluster_stats_lane_apply_share() {
        let mut s = ClusterStats::default();
        assert_eq!(s.lane_apply_share(), 0.0, "no applies, no share");
        s.applied_remote = 8;
        s.lane_applies = 8;
        assert!((s.lane_apply_share() - 1.0).abs() < 1e-9);
        s.lane_applies = 2;
        assert!((s.lane_apply_share() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn cluster_stats_summary_mentions_pipeline_counters() {
        let s = ClusterStats {
            servers: 18,
            msgs_handled: 1_000,
            staged_prepares: 42,
            lane_applies: 17,
            ..Default::default()
        };
        let line = s.summary();
        assert!(line.contains("18 servers"), "{line}");
        assert!(
            line.contains("42 staged") || line.contains("(42 staged)"),
            "{line}"
        );
        assert!(line.contains("17 via lanes"), "{line}");
    }

    #[test]
    fn run_report_summary_mentions_mode_and_throughput() {
        let mut stats = RunStats::new(1_000_000);
        stats.committed = 5_000;
        stats.latency.record(2_000);
        let report = RunReport {
            mode: Mode::Paris,
            stats,
            blocking: BlockingStats::default(),
            visibility: None,
            violations: vec![],
            net_messages: 0,
            net_bytes: 0,
        };
        assert!((report.ktps() - 5.0).abs() < 1e-9);
        let s = report.summary();
        assert!(s.contains("PaRiS") && s.contains("5.0 KTx/s"));
    }
}
