//! Offline stand-in for the parts of the `rand` 0.8 API this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range`
//! over integer/float ranges, `Rng::gen`, `Rng::gen_bool`, and
//! `seq::SliceRandom::choose`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fully
//! deterministic for a given seed, statistically strong enough for the
//! workload/latency sampling done here. It is *not* the same stream as the
//! real `rand` crate, so absolute simulation numbers differ from runs made
//! with the upstream dependency, but every property the tests assert is
//! distribution-level.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of randomness plus the derived sampling helpers.
///
/// Collapses the upstream `RngCore`/`Rng` split into one trait; everything
/// is a provided method over [`Rng::next_u64`], so `R: Rng + ?Sized`
/// bounds work exactly like upstream.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, RG>(&mut self, range: RG) -> T
    where
        RG: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Samples a value of `T` from its standard distribution (uniform over
    /// the domain for integers, uniform in `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_from(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding interface matching `rand::SeedableRng`'s `seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types sampleable from their "standard" distribution ([`Rng::gen`]).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + off) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_from(rng) * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Slice sampling helpers.
pub mod seq {
    use super::Rng;

    /// Subset of `rand::seq::SliceRandom`: uniform element choice.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Returns `amount` distinct elements chosen uniformly (all of
        /// them, in random order, when `amount >= len`).
        fn choose_multiple<R: Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let idx = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[idx])
            }
        }

        fn choose_multiple<R: Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            // Partial Fisher–Yates over an index table.
            let amount = amount.min(self.len());
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = i + (rng.next_u64() % (idx.len() - i) as u64) as usize;
                idx.swap(i, j);
            }
            idx.truncate(amount);
            idx.into_iter()
                .map(|i| &self[i])
                .collect::<Vec<&T>>()
                .into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_the_domain_roughly_uniformly() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut acc = 0.0;
        for _ in 0..10_000 {
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
            acc += f;
        }
        let mean = acc / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn choose_picks_only_existing_elements() {
        let mut rng = StdRng::seed_from_u64(11);
        let items = [1, 2, 3];
        for _ in 0..100 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
        let empty: Vec<i32> = Vec::new();
        assert!(empty.choose(&mut rng).is_none());
    }
}
