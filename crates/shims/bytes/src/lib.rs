//! Offline stand-in for the parts of the `bytes` API the wire codec uses:
//! [`BytesMut`] as an append-only encode buffer, [`Bytes`] as a consuming
//! decode cursor, and the [`Buf`]/[`BufMut`] method traits over them.
//! Little-endian accessors only — that is all the PaRiS codec emits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Read side: a cursor over immutable bytes.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Consumes `dst.len()` bytes into `dst`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Consumes one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Consumes a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Consumes a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Consumes a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

/// Write side: an append-only byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// A growable encode buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Immutable bytes with a consuming read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Copies a slice into an owned `Bytes`.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes {
            data: src.to_vec(),
            pos: 0,
        }
    }

    /// Unconsumed length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether everything has been consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The unconsumed bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    /// The unconsumed bytes as an owned vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.remaining(),
            "buffer underflow: want {}, have {}",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(7);
        w.put_u16_le(0xBEEF);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(0x0123_4567_89AB_CDEF);
        w.put_slice(b"xyz");
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 1 + 2 + 4 + 8 + 3);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut r = Bytes::copy_from_slice(&[1]);
        let _ = r.get_u16_le();
    }
}
