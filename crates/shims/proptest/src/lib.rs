//! Offline stand-in for the parts of the `proptest` API this workspace
//! uses. Property tests written against the upstream macro surface —
//! `proptest!`, `prop_assert!`, `prop_oneof!`, range and tuple strategies,
//! `prop_map`/`prop_flat_map`, `any::<T>()`, `collection::vec` — run
//! unchanged, driven by a deterministic per-test RNG instead of upstream's
//! shrinking test runner.
//!
//! Differences from upstream, by design: cases never shrink (the failing
//! input is printed instead), and case counts default to upstream
//! `ProptestConfig::default`'s 64.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// `proptest::collection`: strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive-exclusive or inclusive length specification for
    /// [`vec()`](fn@vec).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: a vector of `size` elements of
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.lo, self.size.hi_inclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `proptest::option`: strategies for `Option`.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `None` half the time, `Some(inner)` otherwise.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `proptest::option::of`: an optional value of `inner`'s type.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() & 1 == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// The things `use proptest::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Per-block configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
        /// Accepted for upstream compatibility; shrinking never runs here.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }
}

/// Asserts inside a property; identical to `assert!` here (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Weighted or unweighted union of strategies over one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::box_strategy($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::box_strategy($strat))),+
        ])
    };
}

/// Defines property tests: each function runs its body over `cases`
/// sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::prelude::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cases = { $cfg }.cases;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..__cases {
                let _ = __case;
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in 1u16..=3, f in 0.0f64..1.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((1..=3).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_and_tuple_strategies(v in crate::collection::vec((0u8..4, 5usize..9), 1..30)) {
            prop_assert!(!v.is_empty() && v.len() < 30);
            for (a, b) in v {
                prop_assert!(a < 4 && (5..9).contains(&b));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]

        /// Docs on a property function must parse too.
        #[test]
        fn config_and_oneof_and_maps(
            choice in prop_oneof![
                2 => (0u32..10).prop_map(|v| v as u64),
                1 => Just(99u64),
            ],
            pair in (1u16..=4).prop_flat_map(|n| (Just(n), 0u32..u32::from(n))),
        ) {
            prop_assert!(choice < 10 || choice == 99);
            prop_assert!(pair.1 < u32::from(pair.0));
        }
    }

    #[test]
    fn any_covers_domain_reasonably() {
        let mut rng = crate::test_runner::TestRng::for_test("any");
        let strat = crate::strategy::any::<u16>();
        let mut seen_high = false;
        for _ in 0..200 {
            if strat.sample(&mut rng) > u16::MAX / 2 {
                seen_high = true;
            }
        }
        assert!(seen_high);
    }
}
