//! Strategies: composable random-value generators.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples from the strategy `f` builds from
    /// it (dependent generation).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

/// Boxes a strategy for heterogeneous storage (see [`OneOf`]).
pub fn box_strategy<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted union of same-typed strategies (see `prop_oneof!`).
pub struct OneOf<V> {
    arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
    total: u64,
}

impl<V> OneOf<V> {
    /// Builds the union; weights must sum to a positive value.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs positive total weight");
        OneOf { arms, total }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.next_u64() % self.total;
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}

/// Strategy for the full domain of `T` (see [`any`]).
#[derive(Debug, Clone)]
pub struct Any<T> {
    _marker: PhantomData<T>,
}

/// `any::<T>()`: uniform over `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical full-domain generator.
pub trait Arbitrary {
    /// Draws one value from the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + off) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
);
