//! The deterministic RNG driving property sampling.

/// xoshiro256++ seeded from the test's name: every property test gets its
/// own reproducible stream, independent of execution order.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// A stream keyed by the (test) name.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name, then SplitMix64 expansion.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut state = h;
        TestRng {
            s: [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn usize_in(&mut self, lo: usize, hi_inclusive: usize) -> usize {
        debug_assert!(lo <= hi_inclusive);
        let span = (hi_inclusive - lo) as u64 + 1;
        lo + (self.next_u64() % span) as usize
    }
}
