//! Property test: the slot-based in-flight registry is observably
//! equivalent to the reference `BTreeMap` registry it replaced.
//!
//! A model registry (ordered map of snapshot → refcount, plus a scalar
//! `S_old`) and a real [`StableFrontier`] — built with deliberately few
//! slots so sequences routinely overflow into the mutex fallback — are
//! driven through the same arbitrary sequence of begin/end/advance
//! operations. After every step the two must agree on admission verdicts
//! (stale rejection), the oldest in-flight snapshot, and the GC horizon.

use std::collections::BTreeMap;
use std::sync::Arc;

use paris_storage::{ReadGuard, StableFrontier};
use paris_types::Timestamp;
use proptest::prelude::*;

fn ts(t: u64) -> Timestamp {
    Timestamp::from_physical_micros(t)
}

/// The reference semantics: exactly the pre-slot mutexed registry.
#[derive(Default)]
struct ModelRegistry {
    inflight: BTreeMap<u64, usize>,
    s_old: u64,
}

impl ModelRegistry {
    /// Register-then-check: returns whether the read was admitted.
    fn begin(&mut self, snapshot: Timestamp) -> bool {
        if snapshot.as_u64() < self.s_old {
            return false;
        }
        *self.inflight.entry(snapshot.as_u64()).or_insert(0) += 1;
        true
    }

    fn end(&mut self, snapshot: Timestamp) {
        match self.inflight.get_mut(&snapshot.as_u64()) {
            Some(n) if *n > 1 => *n -= 1,
            Some(_) => {
                self.inflight.remove(&snapshot.as_u64());
            }
            None => panic!("model: unbalanced end"),
        }
    }

    fn oldest(&self) -> Option<Timestamp> {
        self.inflight.keys().next().map(|&r| Timestamp::from_u64(r))
    }

    fn gc_horizon(&self) -> Timestamp {
        let s_old = Timestamp::from_u64(self.s_old);
        match self.oldest() {
            Some(o) => s_old.min(o),
            None => s_old,
        }
    }
}

/// One scripted operation over both registries.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Attempt a read at this (physical-micros) snapshot.
    Begin(u64),
    /// Drop an open guard, selected by this index modulo the open count.
    End(usize),
    /// Advance `S_old` to this value (monotonic via max, as in the
    /// stabilization protocol).
    AdvanceSOld(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (1u64..200).prop_map(Op::Begin),
        3 => (0usize..16).prop_map(Op::End),
        1 => (1u64..150).prop_map(Op::AdvanceSOld),
    ]
}

proptest! {
    /// Both registries, driven in lockstep over arbitrary begin/end
    /// sequences (with few enough slots that overflow happens), agree on
    /// every admission verdict, the oldest in-flight snapshot, and the
    /// GC horizon after every step.
    #[test]
    fn slot_and_btreemap_registries_agree(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        // 3 slots: deep sequences spill into the overflow map, so both
        // the CAS and the fallback path are compared against the model.
        let frontier = Arc::new(StableFrontier::with_slots(3));
        let mut model = ModelRegistry::default();
        let mut open: Vec<(Timestamp, ReadGuard)> = Vec::new();

        for op in ops {
            match op {
                Op::Begin(raw) => {
                    let snapshot = ts(raw);
                    let admitted = frontier.begin_read(snapshot);
                    let model_admitted = model.begin(snapshot);
                    prop_assert_eq!(
                        admitted.is_ok(),
                        model_admitted,
                        "admission verdicts diverged at snapshot {}",
                        snapshot
                    );
                    if let Ok(guard) = admitted {
                        open.push((snapshot, guard));
                    }
                }
                Op::End(idx) => {
                    if open.is_empty() {
                        continue;
                    }
                    let (snapshot, guard) = open.remove(idx % open.len());
                    drop(guard);
                    model.end(snapshot);
                }
                Op::AdvanceSOld(raw) => {
                    frontier.advance_s_old(ts(raw));
                    model.s_old = model.s_old.max(ts(raw).as_u64());
                }
            }
            prop_assert_eq!(frontier.oldest_inflight(), model.oldest());
            prop_assert_eq!(frontier.gc_horizon(), model.gc_horizon());
        }

        // Drain every guard: the registries must end empty and agree.
        for (snapshot, guard) in open.drain(..) {
            drop(guard);
            model.end(snapshot);
        }
        prop_assert!(frontier.oldest_inflight().is_none());
        prop_assert!(model.oldest().is_none());
        prop_assert_eq!(frontier.gc_horizon(), frontier.s_old());
    }
}
