//! Multi-threaded stress tests for the sharded snapshot-read path: N
//! reader threads race the single writer (and GC) through the shared
//! store + frontier, asserting every observed version respects the
//! snapshot rule and that reads make progress while writes are applied.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use paris_storage::{PartitionStore, StableFrontier};
use paris_types::{DcId, Key, PartitionId, ServerId, Timestamp, TxId, Value};

const KEYS: u64 = 32;
const WRITES: u64 = 20_000;
const READERS: usize = 4;

fn tx(seq: u64) -> TxId {
    TxId::new(ServerId::new(DcId(0), PartitionId(0)), seq)
}

fn ts(t: u64) -> Timestamp {
    Timestamp::from_physical_micros(t)
}

/// The protocol invariant the writer maintains: a version with `ut = t`
/// is applied *before* the UST advances to `t`, so every read at
/// `snapshot = ust` is guaranteed to find the freshest version `≤ snapshot`
/// already present.
#[test]
fn readers_race_writer_and_respect_the_snapshot_rule() {
    let store = Arc::new(PartitionStore::new());
    let frontier = Arc::new(StableFrontier::new());
    let done = Arc::new(AtomicBool::new(false));
    let reads_served = Arc::new(AtomicU64::new(0));

    let writer = {
        let store = Arc::clone(&store);
        let frontier = Arc::clone(&frontier);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            for t in 1..=WRITES {
                let key = Key(t % KEYS);
                store.apply(key, Value::filled(8, t), ts(t), tx(t), DcId(0));
                // Install first, publish second — the stabilization
                // protocol's ordering.
                frontier.max_ust(ts(t));
            }
            done.store(true, Ordering::SeqCst);
        })
    };

    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let store = Arc::clone(&store);
            let frontier = Arc::clone(&frontier);
            let done = Arc::clone(&done);
            let reads_served = Arc::clone(&reads_served);
            std::thread::spawn(move || {
                // Per-key freshest order seen so far: snapshots are
                // monotonic (UST never regresses), so observed versions
                // must be monotonic per key too.
                let mut last_seen = vec![None; KEYS as usize];
                let mut served = 0u64;
                let mut k = r as u64; // stagger readers over keys
                while !done.load(Ordering::SeqCst) {
                    let snapshot = frontier.ust();
                    let _guard = frontier
                        .begin_read(snapshot)
                        .expect("no GC in this test: never stale");
                    let key = Key(k % KEYS);
                    k += 1;
                    if let Some(v) = store.read_at(key, snapshot) {
                        assert!(
                            v.ut <= snapshot,
                            "version {:?} above snapshot {snapshot:?}",
                            v.ut
                        );
                        let slot = &mut last_seen[key.as_u64() as usize];
                        if let Some(prev) = *slot {
                            assert!(
                                v.order() >= prev,
                                "non-monotonic read at {key}: {prev:?} then {:?}",
                                v.order()
                            );
                        }
                        *slot = Some(v.order());
                        served += 1;
                    }
                    // The freshest write ≤ snapshot of the key written at
                    // `snapshot` itself must be visible (installed-before-
                    // published).
                    let hot = Key(snapshot.physical_micros() % KEYS);
                    if snapshot.physical_micros() >= 1 {
                        assert!(
                            store.read_at(hot, snapshot).is_some(),
                            "published version missing at its own snapshot"
                        );
                    }
                }
                reads_served.fetch_add(served, Ordering::Relaxed);
            })
        })
        .collect();

    writer.join().expect("writer panicked");
    for r in readers {
        r.join().expect("reader panicked");
    }
    assert!(
        reads_served.load(Ordering::Relaxed) > 0,
        "readers made progress while the writer ran"
    );
    // Everything is visible at the final frontier.
    let final_ust = frontier.ust();
    for k in 0..KEYS {
        let v = store.read_at(Key(k), final_ust).expect("key written");
        assert_eq!(v.ut.physical_micros() % KEYS, k, "freshest write of {k}");
    }
    assert_eq!(store.stats().applied, WRITES);
    assert_eq!(store.stats().versions as u64, WRITES, "no GC ran");
}

/// GC races the readers: the horizon honors in-flight read guards, so a
/// guarded read at snapshot `S ≥ gc_horizon` always finds the version it
/// is entitled to — even while GC trims the same chains.
#[test]
fn gc_racing_readers_never_loses_a_guarded_read() {
    let store = Arc::new(PartitionStore::new());
    let frontier = Arc::new(StableFrontier::new());
    let done = Arc::new(AtomicBool::new(false));

    let writer = {
        let store = Arc::clone(&store);
        let frontier = Arc::clone(&frontier);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            for t in 1..=WRITES {
                store.apply(Key(t % KEYS), Value::filled(8, t), ts(t), tx(t), DcId(0));
                frontier.max_ust(ts(t));
                // S_old trails the UST, as the stabilization protocol
                // guarantees (S_old ≤ UST always).
                if t > 64 {
                    frontier.advance_s_old(ts(t - 64));
                }
            }
            done.store(true, Ordering::SeqCst);
        })
    };

    let gc = {
        let store = Arc::clone(&store);
        let frontier = Arc::clone(&frontier);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut removed = 0usize;
            while !done.load(Ordering::SeqCst) {
                removed += store.gc(frontier.gc_horizon());
                std::thread::yield_now();
            }
            removed
        })
    };

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let store = Arc::clone(&store);
            let frontier = Arc::clone(&frontier);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut k = 0u64;
                while !done.load(Ordering::SeqCst) {
                    let snapshot = frontier.ust();
                    // Register first; a rejection means GC already passed
                    // this snapshot — retry with a fresher one.
                    let Ok(_guard) = frontier.begin_read(snapshot) else {
                        continue;
                    };
                    let key = Key(k % KEYS);
                    k += 1;
                    // Every key is (re)written every KEYS ticks; once the
                    // snapshot is past the first full lap, a guarded read
                    // must find a version despite concurrent GC.
                    if snapshot.physical_micros() > KEYS {
                        let v = store
                            .read_at(key, snapshot)
                            .expect("guarded read lost to GC");
                        assert!(v.ut <= snapshot);
                    }
                }
            })
        })
        .collect();

    writer.join().expect("writer panicked");
    let removed = gc.join().expect("gc panicked");
    for r in readers {
        r.join().expect("reader panicked");
    }
    assert!(removed > 0, "GC actually trimmed chains during the race");
    let stats = store.stats();
    assert_eq!(stats.versions as u64, WRITES - stats.gc_removed);
}

/// The slot registry under deliberate slot exhaustion: more concurrent
/// readers than atomic slots, racing the writer and GC through claim /
/// release. Every reader, slot-admitted or overflow-admitted, holds a
/// guard and asserts the GC horizon never exceeds its registered
/// snapshot — the invariant `gc_horizon ≤ oldest registered read`
/// regardless of which registry path admitted the read.
#[test]
fn slot_overflow_readers_still_pin_the_horizon() {
    const SLOTS: usize = 2; // far fewer than the reader count below
    const OVERFLOW_READERS: usize = 6;
    let store = Arc::new(PartitionStore::new());
    let frontier = Arc::new(StableFrontier::with_slots(SLOTS));
    let done = Arc::new(AtomicBool::new(false));

    let writer = {
        let store = Arc::clone(&store);
        let frontier = Arc::clone(&frontier);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            // Occupy every slot for the first half of the run (far-future
            // snapshots never pin the horizon below `S_old`), so every
            // racing reader is *guaranteed* through the overflow fallback;
            // the second half releases the slots and races the CAS path.
            let far = ts(WRITES * 10);
            let mut slot_pins: Vec<_> = (0..SLOTS)
                .map(|_| frontier.begin_read(far).expect("far above S_old"))
                .collect();
            for t in 1..=WRITES {
                store.apply(Key(t % KEYS), Value::filled(8, t), ts(t), tx(t), DcId(0));
                frontier.max_ust(ts(t));
                if t > 64 {
                    frontier.advance_s_old(ts(t - 64));
                }
                if t == WRITES / 2 {
                    slot_pins.clear();
                }
            }
            done.store(true, Ordering::SeqCst);
        })
    };

    let gc = {
        let store = Arc::clone(&store);
        let frontier = Arc::clone(&frontier);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            while !done.load(Ordering::SeqCst) {
                store.gc(frontier.gc_horizon());
                std::thread::yield_now();
            }
        })
    };

    let readers: Vec<_> = (0..OVERFLOW_READERS)
        .map(|_| {
            let store = Arc::clone(&store);
            let frontier = Arc::clone(&frontier);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut k = 0u64;
                while !done.load(Ordering::SeqCst) {
                    let snapshot = frontier.ust();
                    let Ok(guard) = frontier.begin_read(snapshot) else {
                        continue; // raced a horizon advance: retry fresher
                    };
                    // The registered read bounds the horizon, whether it
                    // claimed a slot or fell back to the overflow map.
                    let horizon = frontier.gc_horizon();
                    assert!(
                        horizon <= guard.snapshot(),
                        "gc_horizon {horizon:?} above a registered read at {snapshot:?}"
                    );
                    let key = Key(k % KEYS);
                    k += 1;
                    if snapshot.physical_micros() > KEYS {
                        let v = store
                            .read_at(key, snapshot)
                            .expect("guarded read lost to GC");
                        assert!(v.ut <= snapshot);
                    }
                }
            })
        })
        .collect();

    writer.join().expect("writer panicked");
    gc.join().expect("gc panicked");
    for r in readers {
        r.join().expect("reader panicked");
    }
    assert!(
        frontier.overflow_registrations() > 0,
        "{OVERFLOW_READERS} readers over {SLOTS} slots never exercised the fallback"
    );
    assert!(
        frontier.oldest_inflight().is_none(),
        "all guards released both registries"
    );
}
