//! The append-only write-ahead log of committed versions.
//!
//! One [`DurableEngine`](crate::DurableEngine) owns a directory of
//! numbered segment files (`wal-<seq>.log`). Every committed version is
//! appended to the active segment as one self-checking record:
//!
//! ```text
//! record  := len(varint) ++ body ++ crc32(body, 4 bytes LE)
//! body    := key value_len value_bytes ut_phys ut_log tx_dc tx_part tx_seq src
//! segment := magic(4) format(2) record*
//! ```
//!
//! All integer fields ride the same LEB128 varints as the `wire2` frame
//! codec ([`paris_proto::varint`]), so the zero-heavy logical clocks and
//! small ids of background traffic cost one byte each. The trailing CRC
//! makes replay **torn-tail-safe**: a crash mid-append leaves a record
//! whose length, body or CRC cannot check out, replay stops at the last
//! good record and the tail is truncated away. Declared lengths are
//! validated against the bytes actually present before any allocation,
//! so a garbage segment can never cause an oversized allocation — the
//! same discipline as the wire decoders.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use paris_proto::varint;
use paris_proto::wire::DecodeError;
use paris_types::{DcId, Key, PartitionId, Timestamp, TxId, Value, Version};

use crate::durable::DurableError;

/// First four bytes of every WAL segment file.
pub const WAL_MAGIC: [u8; 4] = *b"PWAL";

/// WAL record format version.
pub const WAL_FORMAT: u16 = 1;

/// Segment header: magic + little-endian format word.
pub const SEGMENT_HEADER_LEN: usize = WAL_MAGIC.len() + 2;

/// Upper bound on one record's body length. Values in this reproduction
/// are at most a few KiB; anything claiming more than this is garbage
/// and is rejected before allocating.
pub const MAX_RECORD_LEN: usize = 1 << 20;

// ---------------------------------------------------------------- crc32

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`), the checksum
/// used by gzip/zlib. Table-driven; the table is built at compile time
/// so no runtime init or external crate is needed.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes` (IEEE, as used by gzip).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

// --------------------------------------------------------------- records

fn put_ts(buf: &mut BytesMut, ts: Timestamp) {
    varint::put(buf, ts.physical_micros());
    varint::put(buf, u64::from(ts.logical()));
}

fn get_ts(buf: &mut Bytes) -> Result<Timestamp, DecodeError> {
    let physical = varint::get(buf)?;
    if physical >= 1 << 48 {
        return Err(DecodeError::BadLength);
    }
    let logical = varint::get_u16(buf)?;
    Ok(Timestamp::from_parts(physical, logical))
}

/// Encodes one version as a WAL record body (no framing).
fn encode_body(v: &Version) -> BytesMut {
    let mut buf = BytesMut::with_capacity(24 + v.value.len());
    varint::put(&mut buf, v.key.0);
    varint::put(&mut buf, v.value.len() as u64);
    buf.put_slice(v.value.as_bytes());
    put_ts(&mut buf, v.ut);
    varint::put(&mut buf, u64::from(v.tx.dc.0));
    varint::put(&mut buf, u64::from(v.tx.partition.0));
    varint::put(&mut buf, v.tx.seq);
    varint::put(&mut buf, u64::from(v.src.0));
    buf
}

fn decode_body(mut buf: Bytes) -> Result<Version, DecodeError> {
    let key = Key(varint::get(&mut buf)?);
    let vlen = usize::try_from(varint::get(&mut buf)?).map_err(|_| DecodeError::BadLength)?;
    if buf.remaining() < vlen {
        return Err(DecodeError::BadLength);
    }
    let mut value = vec![0u8; vlen];
    buf.copy_to_slice(&mut value);
    let ut = get_ts(&mut buf)?;
    let dc = DcId(varint::get_u16(&mut buf)?);
    let partition = PartitionId(varint::get_u32(&mut buf)?);
    let seq = varint::get(&mut buf)?;
    let src = DcId(varint::get_u16(&mut buf)?);
    if buf.remaining() != 0 {
        return Err(DecodeError::BadLength);
    }
    Ok(Version {
        key,
        value: Value(value),
        ut,
        tx: TxId { dc, partition, seq },
        src,
    })
}

/// Encodes one version as a framed WAL record: length, body, CRC.
pub fn encode_record(v: &Version) -> Bytes {
    let body = encode_body(v).freeze();
    let mut buf = BytesMut::with_capacity(varint::len(body.len() as u64) + body.len() + 4);
    varint::put(&mut buf, body.len() as u64);
    buf.put_slice(&body);
    buf.put_u32_le(crc32(&body));
    buf.freeze()
}

/// One decode step over a segment's record stream.
enum Step {
    /// A record checked out; the version and the bytes consumed.
    Record(Box<Version>, usize),
    /// The stream ends cleanly here (no bytes left).
    Eof,
    /// The bytes from this offset on do not form a whole good record.
    Torn,
}

/// Decodes the record starting at `bytes`, without panicking on any
/// input and without allocating more than `bytes.len()`.
fn decode_step(bytes: &[u8]) -> Step {
    if bytes.is_empty() {
        return Step::Eof;
    }
    let mut buf = Bytes::copy_from_slice(&bytes[..bytes.len().min(varint::MAX_VARINT_LEN)]);
    let before = buf.remaining();
    let Ok(len) = varint::get(&mut buf) else {
        return Step::Torn;
    };
    let len_bytes = before - buf.remaining();
    let Ok(len) = usize::try_from(len) else {
        return Step::Torn;
    };
    if len > MAX_RECORD_LEN || bytes.len() < len_bytes + len + 4 {
        return Step::Torn;
    }
    let body = &bytes[len_bytes..len_bytes + len];
    let crc = u32::from_le_bytes(
        bytes[len_bytes + len..len_bytes + len + 4]
            .try_into()
            .expect("4-byte slice"),
    );
    if crc32(body) != crc {
        return Step::Torn;
    }
    match decode_body(Bytes::copy_from_slice(body)) {
        Ok(v) => Step::Record(Box::new(v), len_bytes + len + 4),
        Err(_) => Step::Torn,
    }
}

/// Outcome of replaying one segment's bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentReplay {
    /// Every whole, checksummed record, in log order.
    pub versions: Vec<Version>,
    /// Byte offset just past the last good record (torn-tail truncation
    /// point). Equal to the input length when the segment is clean.
    pub good_len: usize,
}

/// Replays a segment's full byte content (header included).
///
/// # Errors
///
/// [`DurableError::Corrupt`] if the header is missing or from a
/// different format — a garbage *segment* is rejected outright, while a
/// garbage *tail* after good records is reported via
/// [`SegmentReplay::good_len`] so the caller can truncate it.
pub fn replay_segment(bytes: &[u8]) -> Result<SegmentReplay, DurableError> {
    if bytes.len() < SEGMENT_HEADER_LEN || bytes[..4] != WAL_MAGIC {
        return Err(DurableError::corrupt("WAL segment missing magic"));
    }
    let format = u16::from_le_bytes([bytes[4], bytes[5]]);
    if format != WAL_FORMAT {
        return Err(DurableError::corrupt("WAL segment format unknown"));
    }
    let mut versions = Vec::new();
    let mut offset = SEGMENT_HEADER_LEN;
    while let Step::Record(v, used) = decode_step(&bytes[offset..]) {
        versions.push(*v);
        offset += used;
    }
    Ok(SegmentReplay {
        versions,
        good_len: offset,
    })
}

// -------------------------------------------------------------- segments

/// Path of WAL segment `seq` under `dir`.
pub fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:020}.log"))
}

/// Parses a segment sequence number out of a file name, if it is one.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    rest.parse().ok()
}

/// The active (appendable) WAL segment.
///
/// Records are written straight to the file — they land in the OS page
/// cache per append, never in a process-local buffer — so a SIGKILL'd
/// server loses at most what the fsync policy allows (nothing the OS
/// accepted), not an application buffer full of acknowledged commits.
#[derive(Debug)]
pub struct SegmentWriter {
    file: File,
    path: PathBuf,
    seq: u64,
    /// Largest update timestamp appended to this segment.
    max_ut: Timestamp,
    bytes: u64,
}

impl SegmentWriter {
    /// Creates segment `seq` under `dir` and writes its header.
    pub fn create(dir: &Path, seq: u64) -> Result<SegmentWriter, DurableError> {
        let path = segment_path(dir, seq);
        let mut file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)?;
        file.write_all(&WAL_MAGIC)?;
        file.write_all(&WAL_FORMAT.to_le_bytes())?;
        Ok(SegmentWriter {
            file,
            path,
            seq,
            max_ut: Timestamp::ZERO,
            bytes: SEGMENT_HEADER_LEN as u64,
        })
    }

    /// Appends one version record (one `write` to the OS). Returns the
    /// framed record size.
    pub fn append(&mut self, v: &Version) -> Result<u64, DurableError> {
        let record = encode_record(v);
        self.file.write_all(&record)?;
        self.max_ut = self.max_ut.max(v.ut);
        self.bytes += record.len() as u64;
        Ok(record.len() as u64)
    }

    /// Fsyncs the segment file (power-loss durability).
    pub fn sync(&mut self) -> Result<(), DurableError> {
        self.file.sync_data()?;
        Ok(())
    }

    /// This segment's sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Largest update timestamp appended so far.
    pub fn max_ut(&self) -> Timestamp {
        self.max_ut
    }

    /// Bytes written to this segment (header included).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Closes the segment and reports it as a closed segment record for
    /// the pruning bookkeeping.
    pub fn close(self) -> ClosedSegment {
        ClosedSegment {
            path: self.path,
            seq: self.seq,
            max_ut: self.max_ut,
        }
    }
}

/// A sealed WAL segment awaiting truncation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClosedSegment {
    /// Segment file path.
    pub path: PathBuf,
    /// Segment sequence number.
    pub seq: u64,
    /// Largest update timestamp any record in the segment carries; the
    /// segment may be deleted once a checkpoint covers this stamp.
    pub max_ut: Timestamp,
}

#[cfg(test)]
mod tests {
    use super::*;
    use paris_types::ServerId;
    use proptest::prelude::*;

    fn version(key: u64, val: &[u8], ut: u64, seq: u64, src: u16) -> Version {
        Version::new(
            Key(key),
            Value(val.to_vec()),
            Timestamp::from_physical_micros(ut),
            TxId::new(ServerId::new(DcId(src), PartitionId(0)), seq),
            DcId(src),
        )
    }

    fn segment_bytes(versions: &[Version]) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WAL_MAGIC);
        bytes.extend_from_slice(&WAL_FORMAT.to_le_bytes());
        for v in versions {
            bytes.extend_from_slice(&encode_record(v));
        }
        bytes
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check values for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn record_roundtrips() {
        let v = version(7, b"hello", 1234, 9, 2);
        let bytes = segment_bytes(std::slice::from_ref(&v));
        let replay = replay_segment(&bytes).unwrap();
        assert_eq!(replay.versions, vec![v]);
        assert_eq!(replay.good_len, bytes.len());
    }

    #[test]
    fn missing_magic_or_format_is_rejected() {
        assert!(replay_segment(b"").is_err());
        assert!(replay_segment(b"PWA").is_err());
        assert!(replay_segment(b"JUNKxxxx").is_err());
        let mut wrong_format = segment_bytes(&[]);
        wrong_format[4] = 0xEE;
        assert!(replay_segment(&wrong_format).is_err());
    }

    #[test]
    fn torn_tail_keeps_whole_prefix() {
        let a = version(1, b"aa", 10, 1, 0);
        let b = version(2, b"bb", 20, 2, 1);
        let full = segment_bytes(&[a.clone(), b]);
        let first_len = segment_bytes(std::slice::from_ref(&a)).len();
        // Cut one byte into the second record: only the first survives,
        // and the truncation point is exactly the end of it.
        let replay = replay_segment(&full[..first_len + 1]).unwrap();
        assert_eq!(replay.versions, vec![a]);
        assert_eq!(replay.good_len, first_len);
    }

    #[test]
    fn corrupt_crc_stops_replay() {
        let a = version(1, b"aa", 10, 1, 0);
        let b = version(2, b"bb", 20, 2, 1);
        let mut bytes = segment_bytes(&[a.clone(), b]);
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        let replay = replay_segment(&bytes).unwrap();
        assert_eq!(replay.versions, vec![a]);
    }

    #[test]
    fn oversized_length_claim_is_torn_not_allocated() {
        let mut bytes = segment_bytes(&[]);
        // A varint claiming u64::MAX bytes of body.
        bytes.extend_from_slice(&[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01]);
        let replay = replay_segment(&bytes).unwrap();
        assert!(replay.versions.is_empty());
        assert_eq!(replay.good_len, SEGMENT_HEADER_LEN);
    }

    #[test]
    fn segment_name_roundtrip() {
        let dir = Path::new("/tmp/x");
        let p = segment_path(dir, 42);
        let name = p.file_name().unwrap().to_str().unwrap();
        assert_eq!(parse_segment_name(name), Some(42));
        assert_eq!(parse_segment_name("wal-.log"), None);
        assert_eq!(parse_segment_name("ckpt-1.seg"), None);
    }

    fn arb_version() -> impl Strategy<Value = Version> {
        (
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), 0..64),
            0u64..(1 << 48),
            any::<u16>(),
            any::<u64>(),
            any::<u16>(),
            any::<u32>(),
        )
            .prop_map(|(key, val, phys, logical, seq, dc, part)| {
                Version::new(
                    Key(key),
                    Value(val),
                    Timestamp::from_parts(phys, logical),
                    TxId::new(ServerId::new(DcId(dc), PartitionId(part)), seq),
                    DcId(dc),
                )
            })
    }

    proptest! {
        #[test]
        fn prop_records_roundtrip(versions in proptest::collection::vec(arb_version(), 0..8)) {
            let bytes = segment_bytes(&versions);
            let replay = replay_segment(&bytes).unwrap();
            prop_assert_eq!(replay.versions, versions);
            prop_assert_eq!(replay.good_len, bytes.len());
        }

        #[test]
        fn prop_truncation_at_every_byte_is_safe(
            versions in proptest::collection::vec(arb_version(), 1..5),
            cut_frac in 0.0f64..1.0,
        ) {
            let bytes = segment_bytes(&versions);
            let body = bytes.len() - SEGMENT_HEADER_LEN;
            let cut = SEGMENT_HEADER_LEN + ((body as f64) * cut_frac) as usize;
            let replay = replay_segment(&bytes[..cut]).unwrap();
            // The replayed versions are exactly a prefix of the input,
            // and the truncation point never exceeds the cut.
            prop_assert!(replay.versions.len() <= versions.len());
            prop_assert_eq!(
                &replay.versions[..],
                &versions[..replay.versions.len()]
            );
            prop_assert!(replay.good_len <= cut);
        }

        #[test]
        fn prop_garbage_never_panics(garbage in proptest::collection::vec(any::<u8>(), 0..256)) {
            // Raw garbage: either rejected (bad header) or replayed as
            // a (possibly empty) prefix — never a panic.
            let _ = replay_segment(&garbage);
            // Garbage after a valid header: always an Ok replay that
            // stops at the first bad record.
            let mut framed = Vec::with_capacity(garbage.len() + SEGMENT_HEADER_LEN);
            framed.extend_from_slice(&WAL_MAGIC);
            framed.extend_from_slice(&WAL_FORMAT.to_le_bytes());
            framed.extend_from_slice(&garbage);
            let replay = replay_segment(&framed).unwrap();
            prop_assert!(replay.good_len <= framed.len());
        }
    }
}
