//! The per-partition multi-version store, sharded for parallel reads.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use paris_types::{DcId, Key, Timestamp, TxId, Value, Version};

use crate::chain::VersionChain;
use crate::engine::Engine;

/// Default number of chain shards per store.
/// Default chain-shard count of a [`MemEngine`].
pub const DEFAULT_SHARDS: usize = 16;

/// Counters describing a [`MemEngine`]'s contents and activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of distinct keys with at least one version.
    pub keys: usize,
    /// Total retained versions across all chains.
    pub versions: usize,
    /// Versions applied since creation (including GC'd ones).
    pub applied: u64,
    /// Versions removed by garbage collection since creation.
    pub gc_removed: u64,
}

/// The in-memory multi-version store — the default [`Engine`].
///
/// This is the `update(k, v, ut, id_T)` target of Alg. 4 lines 1–4: each
/// apply "insert[s the] new item d in the version chain of key k".
/// [`DurableEngine`](crate::DurableEngine) wraps one of these with a
/// write-ahead log and checkpoints; the protocol layers only see the
/// [`Engine`] trait.
///
/// The key space is hashed over N *chain shards*, each behind its own
/// `RwLock`, so any number of reader threads can execute Alg. 3 snapshot
/// reads (`read_at`) while the single-writer server state machine applies
/// updates and runs GC — the storage half of the paper's *parallel
/// non-blocking read* property. Writers (`apply`, `gc`) take one shard
/// write lock at a time; readers take shard read locks, so a read only
/// ever waits for the microseconds a writer spends inside one chain.
/// Aggregate counters are carried in atomics, so [`MemEngine::stats`]
/// is O(1) and lock-free (it used to walk every chain).
#[derive(Debug)]
pub struct MemEngine {
    shards: Box<[RwLock<HashMap<Key, VersionChain>>]>,
    keys: AtomicU64,
    versions: AtomicU64,
    applied: AtomicU64,
    gc_removed: AtomicU64,
}

impl Default for MemEngine {
    fn default() -> Self {
        MemEngine::new()
    }
}

impl MemEngine {
    /// Creates an empty store with the default shard count.
    pub fn new() -> Self {
        MemEngine::with_shards(DEFAULT_SHARDS)
    }

    /// Creates an empty store with `shards` chain shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_shards(shards: usize) -> Self {
        assert!(shards > 0, "store needs at least one shard");
        MemEngine {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            keys: AtomicU64::new(0),
            versions: AtomicU64::new(0),
            applied: AtomicU64::new(0),
            gc_removed: AtomicU64::new(0),
        }
    }

    /// Number of chain shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Index of the shard holding `key`'s chain (Fibonacci multiplicative
    /// hash so the dense key layouts used by the workloads spread evenly).
    /// Public so the commit pipeline can partition write sets by shard and
    /// route disjoint shard sets onto different apply lanes.
    pub fn shard_index(&self, key: Key) -> usize {
        let h = key.as_u64().wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        (h as usize) % self.shards.len()
    }

    /// The shard holding `key`'s chain.
    fn shard_of(&self, key: Key) -> &RwLock<HashMap<Key, VersionChain>> {
        &self.shards[self.shard_index(key)]
    }

    /// Applies one update: creates version `⟨k, v, ut, tx, src⟩` and inserts
    /// it into `k`'s chain (Alg. 4, `update`).
    ///
    /// Idempotent under replication re-delivery; returns `true` if the
    /// version was new.
    pub fn apply(&self, key: Key, value: Value, ut: Timestamp, tx: TxId, src: DcId) -> bool {
        let mut shard = self.shard_of(key).write().expect("shard poisoned");
        let chain = match shard.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                self.keys.fetch_add(1, Ordering::Relaxed);
                e.insert(VersionChain::new())
            }
        };
        let inserted = chain.insert(Version::new(key, value, ut, tx, src));
        if inserted {
            self.applied.fetch_add(1, Ordering::Relaxed);
            self.versions.fetch_add(1, Ordering::Relaxed);
        }
        inserted
    }

    /// Snapshot read: the freshest version of `key` with `ut ≤ ts`
    /// (Alg. 3 lines 5–6). `None` if the key has no visible version.
    ///
    /// Takes only the key's shard read lock, so reads from any number of
    /// threads proceed in parallel with each other and with writes to
    /// other shards.
    pub fn read_at(&self, key: Key, ts: Timestamp) -> Option<Version> {
        let shard = self.shard_of(key).read().expect("shard poisoned");
        shard.get(&key).and_then(|c| c.read_at(ts)).cloned()
    }

    /// The freshest version of `key` regardless of snapshot.
    pub fn latest(&self, key: Key) -> Option<Version> {
        let shard = self.shard_of(key).read().expect("shard poisoned");
        shard.get(&key).and_then(VersionChain::latest).cloned()
    }

    /// A clone of `key`'s chain, if any version was ever applied
    /// (diagnostics and tests; the hot paths never clone chains).
    pub fn chain(&self, key: Key) -> Option<VersionChain> {
        let shard = self.shard_of(key).read().expect("shard poisoned");
        shard.get(&key).cloned()
    }

    /// Runs garbage collection on every chain with the oldest-active
    /// snapshot horizon `s_old` (§IV-B). Returns versions removed.
    ///
    /// Locks one shard at a time, so concurrent snapshot reads at or above
    /// the horizon are never blocked for more than one shard sweep.
    pub fn gc(&self, s_old: Timestamp) -> usize {
        let mut removed = 0;
        for shard in self.shards.iter() {
            let mut shard = shard.write().expect("shard poisoned");
            for chain in shard.values_mut() {
                removed += chain.gc(s_old);
            }
        }
        self.gc_removed.fetch_add(removed as u64, Ordering::Relaxed);
        self.versions.fetch_sub(removed as u64, Ordering::Relaxed);
        removed
    }

    /// Visits every (key, chain) pair — used by the consistency checker
    /// and convergence tests. Holds one shard read lock at a time; the
    /// visit order is unspecified.
    pub fn for_each_chain(&self, mut f: impl FnMut(Key, &VersionChain)) {
        for shard in self.shards.iter() {
            let shard = shard.read().expect("shard poisoned");
            for (key, chain) in shard.iter() {
                f(*key, chain);
            }
        }
    }

    /// Current statistics snapshot (lock-free; counters are maintained on
    /// apply/GC instead of recomputed per call).
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            keys: self.keys.load(Ordering::Relaxed) as usize,
            versions: self.versions.load(Ordering::Relaxed) as usize,
            applied: self.applied.load(Ordering::Relaxed),
            gc_removed: self.gc_removed.load(Ordering::Relaxed),
        }
    }
}

impl Engine for MemEngine {
    fn apply(&self, key: Key, value: Value, ut: Timestamp, tx: TxId, src: DcId) -> bool {
        MemEngine::apply(self, key, value, ut, tx, src)
    }

    fn read_at(&self, key: Key, ts: Timestamp) -> Option<Version> {
        MemEngine::read_at(self, key, ts)
    }

    fn latest(&self, key: Key) -> Option<Version> {
        MemEngine::latest(self, key)
    }

    fn chain(&self, key: Key) -> Option<VersionChain> {
        MemEngine::chain(self, key)
    }

    fn gc(&self, s_old: Timestamp) -> usize {
        MemEngine::gc(self, s_old)
    }

    fn for_each_chain(&self, f: &mut dyn FnMut(Key, &VersionChain)) {
        MemEngine::for_each_chain(self, f);
    }

    fn stats(&self) -> StoreStats {
        MemEngine::stats(self)
    }

    fn shard_count(&self) -> usize {
        MemEngine::shard_count(self)
    }

    fn shard_index(&self, key: Key) -> usize {
        MemEngine::shard_index(self, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paris_types::{PartitionId, ServerId};

    fn tx(seq: u64) -> TxId {
        TxId::new(ServerId::new(DcId(0), PartitionId(0)), seq)
    }

    fn ts(t: u64) -> Timestamp {
        Timestamp::from_physical_micros(t)
    }

    #[test]
    fn apply_then_read_roundtrip() {
        let s = MemEngine::new();
        assert!(s.apply(Key(1), Value::from("x"), ts(10), tx(1), DcId(0)));
        let v = s.read_at(Key(1), ts(10)).unwrap();
        assert_eq!(v.value.as_bytes(), b"x");
        assert!(s.read_at(Key(1), ts(9)).is_none());
        assert!(s.read_at(Key(2), ts(99)).is_none());
    }

    #[test]
    fn apply_is_idempotent_and_counts_once() {
        let s = MemEngine::new();
        assert!(s.apply(Key(1), Value::from("x"), ts(10), tx(1), DcId(0)));
        assert!(!s.apply(Key(1), Value::from("x"), ts(10), tx(1), DcId(0)));
        assert_eq!(s.stats().applied, 1);
        assert_eq!(s.stats().versions, 1);
        assert_eq!(s.stats().keys, 1);
    }

    #[test]
    fn distinct_keys_have_independent_chains() {
        let s = MemEngine::new();
        s.apply(Key(1), Value::from("a"), ts(10), tx(1), DcId(0));
        s.apply(Key(2), Value::from("b"), ts(20), tx(2), DcId(0));
        assert_eq!(s.stats().keys, 2);
        assert_eq!(s.read_at(Key(1), ts(15)).unwrap().value.as_bytes(), b"a");
        assert!(s.read_at(Key(2), ts(15)).is_none());
    }

    #[test]
    fn gc_across_keys_counts_removed() {
        let s = MemEngine::new();
        for t in [10u64, 20, 30] {
            s.apply(Key(1), Value::filled(4, t), ts(t), tx(t), DcId(0));
            s.apply(Key(2), Value::filled(4, t), ts(t), tx(t), DcId(0));
        }
        let removed = s.gc(ts(100));
        assert_eq!(removed, 4, "two stale versions per key");
        assert_eq!(s.stats().versions, 2);
        assert_eq!(s.stats().gc_removed, 4);
        // Latest still readable.
        assert_eq!(s.latest(Key(1)).unwrap().ut, ts(30));
    }

    #[test]
    fn for_each_chain_visits_all_chains() {
        let s = MemEngine::new();
        s.apply(Key(1), Value::from("a"), ts(1), tx(1), DcId(0));
        s.apply(Key(9), Value::from("b"), ts(2), tx(2), DcId(0));
        let keys: Vec<u64> = {
            let mut v: Vec<u64> = Vec::new();
            s.for_each_chain(|k, _| v.push(k.as_u64()));
            v.sort_unstable();
            v
        };
        assert_eq!(keys, vec![1, 9]);
    }

    #[test]
    fn chain_accessor_exposes_versions() {
        let s = MemEngine::new();
        s.apply(Key(1), Value::from("a"), ts(1), tx(1), DcId(0));
        s.apply(Key(1), Value::from("b"), ts(2), tx(2), DcId(0));
        assert_eq!(s.chain(Key(1)).unwrap().len(), 2);
        assert!(s.chain(Key(2)).is_none());
    }

    #[test]
    fn single_shard_store_still_works() {
        let s = MemEngine::with_shards(1);
        for k in 0..64u64 {
            s.apply(Key(k), Value::from("v"), ts(k + 1), tx(k), DcId(0));
        }
        assert_eq!(s.stats().keys, 64);
        assert_eq!(s.shard_count(), 1);
        assert!(s.read_at(Key(63), ts(64)).is_some());
    }

    #[test]
    fn dense_keys_spread_over_shards() {
        let s = MemEngine::new();
        for k in 0..256u64 {
            s.apply(Key(k), Value::from("v"), ts(k + 1), tx(k), DcId(0));
        }
        // Every shard should hold a fair share of a dense key range (the
        // workload key layout is `partition + rank · N`, i.e. dense-ish).
        let mut per_shard = vec![0usize; s.shard_count()];
        for (i, shard) in s.shards.iter().enumerate() {
            per_shard[i] = shard.read().unwrap().len();
        }
        assert!(
            per_shard.iter().all(|&n| n > 0),
            "empty shard: {per_shard:?}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = MemEngine::with_shards(0);
    }
}
