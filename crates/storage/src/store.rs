//! The per-partition multi-version store.

use std::collections::HashMap;

use paris_types::{DcId, Key, Timestamp, TxId, Value, Version};

use crate::chain::VersionChain;

/// Counters describing a [`PartitionStore`]'s contents and activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of distinct keys with at least one version.
    pub keys: usize,
    /// Total retained versions across all chains.
    pub versions: usize,
    /// Versions applied since creation (including GC'd ones).
    pub applied: u64,
    /// Versions removed by garbage collection since creation.
    pub gc_removed: u64,
}

/// The multi-version store owned by one partition server.
///
/// This is the `update(k, v, ut, id_T)` target of Alg. 4 lines 1–4: each
/// apply "insert[s the] new item d in the version chain of key k".
/// The store is deliberately synchronous and single-writer — the owning
/// server state machine serializes access — so no interior locking is
/// needed on either substrate.
#[derive(Debug, Clone, Default)]
pub struct PartitionStore {
    chains: HashMap<Key, VersionChain>,
    applied: u64,
    gc_removed: u64,
}

impl PartitionStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        PartitionStore::default()
    }

    /// Applies one update: creates version `⟨k, v, ut, tx, src⟩` and inserts
    /// it into `k`'s chain (Alg. 4, `update`).
    ///
    /// Idempotent under replication re-delivery; returns `true` if the
    /// version was new.
    pub fn apply(&mut self, key: Key, value: Value, ut: Timestamp, tx: TxId, src: DcId) -> bool {
        let inserted = self
            .chains
            .entry(key)
            .or_default()
            .insert(Version::new(key, value, ut, tx, src));
        if inserted {
            self.applied += 1;
        }
        inserted
    }

    /// Snapshot read: the freshest version of `key` with `ut ≤ ts`
    /// (Alg. 3 lines 5–6). `None` if the key has no visible version.
    pub fn read_at(&self, key: Key, ts: Timestamp) -> Option<&Version> {
        self.chains.get(&key).and_then(|c| c.read_at(ts))
    }

    /// The freshest version of `key` regardless of snapshot.
    pub fn latest(&self, key: Key) -> Option<&Version> {
        self.chains.get(&key).and_then(VersionChain::latest)
    }

    /// The chain of `key`, if any version was ever applied.
    pub fn chain(&self, key: Key) -> Option<&VersionChain> {
        self.chains.get(&key)
    }

    /// Runs garbage collection on every chain with the oldest-active
    /// snapshot horizon `s_old` (§IV-B). Returns versions removed.
    pub fn gc(&mut self, s_old: Timestamp) -> usize {
        let mut removed = 0;
        for chain in self.chains.values_mut() {
            removed += chain.gc(s_old);
        }
        self.gc_removed += removed as u64;
        removed
    }

    /// Iterates over all (key, chain) pairs — used by the consistency
    /// checker and convergence tests.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &VersionChain)> {
        self.chains.iter()
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            keys: self.chains.len(),
            versions: self.chains.values().map(VersionChain::len).sum(),
            applied: self.applied,
            gc_removed: self.gc_removed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paris_types::{PartitionId, ServerId};

    fn tx(seq: u64) -> TxId {
        TxId::new(ServerId::new(DcId(0), PartitionId(0)), seq)
    }

    fn ts(t: u64) -> Timestamp {
        Timestamp::from_physical_micros(t)
    }

    #[test]
    fn apply_then_read_roundtrip() {
        let mut s = PartitionStore::new();
        assert!(s.apply(Key(1), Value::from("x"), ts(10), tx(1), DcId(0)));
        let v = s.read_at(Key(1), ts(10)).unwrap();
        assert_eq!(v.value.as_bytes(), b"x");
        assert!(s.read_at(Key(1), ts(9)).is_none());
        assert!(s.read_at(Key(2), ts(99)).is_none());
    }

    #[test]
    fn apply_is_idempotent_and_counts_once() {
        let mut s = PartitionStore::new();
        assert!(s.apply(Key(1), Value::from("x"), ts(10), tx(1), DcId(0)));
        assert!(!s.apply(Key(1), Value::from("x"), ts(10), tx(1), DcId(0)));
        assert_eq!(s.stats().applied, 1);
        assert_eq!(s.stats().versions, 1);
    }

    #[test]
    fn distinct_keys_have_independent_chains() {
        let mut s = PartitionStore::new();
        s.apply(Key(1), Value::from("a"), ts(10), tx(1), DcId(0));
        s.apply(Key(2), Value::from("b"), ts(20), tx(2), DcId(0));
        assert_eq!(s.stats().keys, 2);
        assert_eq!(s.read_at(Key(1), ts(15)).unwrap().value.as_bytes(), b"a");
        assert!(s.read_at(Key(2), ts(15)).is_none());
    }

    #[test]
    fn gc_across_keys_counts_removed() {
        let mut s = PartitionStore::new();
        for t in [10u64, 20, 30] {
            s.apply(Key(1), Value::filled(4, t), ts(t), tx(t), DcId(0));
            s.apply(Key(2), Value::filled(4, t), ts(t), tx(t), DcId(0));
        }
        let removed = s.gc(ts(100));
        assert_eq!(removed, 4, "two stale versions per key");
        assert_eq!(s.stats().versions, 2);
        assert_eq!(s.stats().gc_removed, 4);
        // Latest still readable.
        assert_eq!(s.latest(Key(1)).unwrap().ut, ts(30));
    }

    #[test]
    fn iter_visits_all_chains() {
        let mut s = PartitionStore::new();
        s.apply(Key(1), Value::from("a"), ts(1), tx(1), DcId(0));
        s.apply(Key(9), Value::from("b"), ts(2), tx(2), DcId(0));
        let keys: Vec<u64> = {
            let mut v: Vec<u64> = s.iter().map(|(k, _)| k.as_u64()).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(keys, vec![1, 9]);
    }

    #[test]
    fn chain_accessor_exposes_versions() {
        let mut s = PartitionStore::new();
        s.apply(Key(1), Value::from("a"), ts(1), tx(1), DcId(0));
        s.apply(Key(1), Value::from("b"), ts(2), tx(2), DcId(0));
        assert_eq!(s.chain(Key(1)).unwrap().len(), 2);
        assert!(s.chain(Key(2)).is_none());
    }
}
