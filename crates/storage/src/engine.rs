//! The storage-engine boundary.
//!
//! Every server owns its partition's store through the [`Engine`] trait:
//! the protocol layers (commit pipeline, read view, replication) only
//! ever see `Arc<dyn Engine>`, so the in-memory store
//! ([`MemEngine`](crate::MemEngine)) and the durable WAL + checkpoint
//! engine ([`DurableEngine`](crate::DurableEngine)) are interchangeable
//! at construction time. The trait is deliberately the exact surface the
//! protocol uses — nothing leaks through it that would pin a caller to
//! one implementation.

use paris_types::{DcId, Key, Timestamp, TxId, Value, Version};

use crate::chain::VersionChain;
use crate::store::StoreStats;

/// Counters describing a durable engine's log and checkpoint activity.
///
/// All zero for purely in-memory engines (which report `None` from
/// [`Engine::durable_stats`]). Byte counts are physical file bytes, so
/// the fault-recovery bench can report WAL overhead per committed
/// transaction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurableStats {
    /// Bytes appended to the write-ahead log since open.
    pub wal_bytes: u64,
    /// Records appended to the write-ahead log since open.
    pub wal_records: u64,
    /// Explicit `fsync` calls issued (0 under `FsyncPolicy::Never`).
    pub wal_syncs: u64,
    /// Checkpoint segment files written since open.
    pub checkpoints: u64,
    /// Bytes written into checkpoint segment files since open.
    pub checkpoint_bytes: u64,
    /// Closed WAL segments deleted after their records froze into a
    /// checkpoint.
    pub segments_pruned: u64,
}

/// The storage engine owned by one partition server.
///
/// This is the `update(k, v, ut, id_T)` / snapshot-read target of
/// Alg. 3–4: idempotent version-chain inserts, snapshot reads at a
/// timestamp, and GC below the stable horizon. Implementations must be
/// safe to share across the server loop, the commit pipeline lanes and
/// the read pool (all methods take `&self`).
pub trait Engine: Send + Sync + std::fmt::Debug {
    /// Applies one committed update: inserts version
    /// `⟨k, v, ut, tx, src⟩` into `k`'s chain (Alg. 4, `update`).
    /// Idempotent under replication re-delivery; returns `true` if the
    /// version was new.
    fn apply(&self, key: Key, value: Value, ut: Timestamp, tx: TxId, src: DcId) -> bool;

    /// Snapshot read: the freshest version of `key` with `ut ≤ ts`
    /// (Alg. 3 lines 5–6).
    fn read_at(&self, key: Key, ts: Timestamp) -> Option<Version>;

    /// The freshest version of `key` regardless of snapshot.
    fn latest(&self, key: Key) -> Option<Version>;

    /// A clone of `key`'s chain, if any version was ever applied
    /// (diagnostics, convergence checks; hot paths never clone chains).
    fn chain(&self, key: Key) -> Option<VersionChain>;

    /// Garbage-collects every chain below the oldest-active snapshot
    /// horizon `s_old` (§IV-B). Returns versions removed. Durable
    /// engines also truncate WAL segments whose records are all frozen
    /// into a checkpoint at or below the horizon.
    fn gc(&self, s_old: Timestamp) -> usize;

    /// Visits every (key, chain) pair in unspecified order.
    fn for_each_chain(&self, f: &mut dyn FnMut(Key, &VersionChain));

    /// Current contents/activity counters.
    fn stats(&self) -> StoreStats;

    /// Number of chain shards (the commit pipeline sizes its lanes off
    /// this).
    fn shard_count(&self) -> usize;

    /// Index of the shard holding `key`'s chain (the commit pipeline
    /// partitions write sets by shard to route them onto lanes).
    fn shard_index(&self, key: Key) -> usize;

    /// Offers the engine a chance to freeze the `≤ ust` stable prefix
    /// into a checkpoint. `now_micros` is the server's monotone clock so
    /// checkpoint cadence follows each backend's notion of time (the
    /// deterministic sim passes virtual time). Returns `true` if a
    /// checkpoint was written. No-op for in-memory engines.
    fn maybe_checkpoint(&self, _ust: Timestamp, _now_micros: u64) -> bool {
        false
    }

    /// Durability counters, `None` for engines with no persistent state.
    fn durable_stats(&self) -> Option<DurableStats> {
        None
    }
}
