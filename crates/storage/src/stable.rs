//! The shared stable-time frontier: published UST / `S_old` plus the
//! in-flight snapshot-read registry.
//!
//! The paper's non-blocking read property rests on two published
//! timestamps: the **UST** (every version `≤ UST` is installed at every
//! replica, so a snapshot read at or below it never blocks) and **`S_old`**
//! (the garbage-collection horizon — the oldest snapshot any transaction
//! may still read, §IV-B). With reads served by arbitrary threads *off*
//! the single-writer server loop, both must be shared safely:
//!
//! * the frontier carries them in atomics (`Timestamp` packs into a `u64`,
//!   so `fetch_max` gives the monotonic advance of Alg. 3 line 2 and
//!   Alg. 4 line 38 without locks);
//! * every off-loop read registers its snapshot for its duration, and the
//!   GC horizon is `min(S_old, oldest in-flight read)` — GC can never
//!   reclaim a version an in-flight read may still return;
//! * a read whose snapshot is already **below** `S_old` is rejected
//!   ([`StaleSnapshot`]) before touching any chain: its versions may have
//!   been reclaimed, so only the authoritative single-writer loop (which
//!   serializes with its own GC) may serve it.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use paris_types::Timestamp;

/// Shared, concurrently-readable stable-time state of one partition
/// server. See the module docs.
#[derive(Debug, Default)]
pub struct StableFrontier {
    /// Packed [`Timestamp`]: the server's universal stable time.
    ust: AtomicU64,
    /// Packed [`Timestamp`]: the GC horizon `S_old`.
    s_old: AtomicU64,
    /// Snapshot → number of in-flight off-loop reads at that snapshot.
    inflight: Mutex<BTreeMap<u64, usize>>,
}

/// Error returned when a snapshot read is requested below the published
/// GC horizon: versions it should observe may already be reclaimed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaleSnapshot {
    /// The rejected snapshot.
    pub snapshot: Timestamp,
    /// The `S_old` horizon it fell below.
    pub s_old: Timestamp,
}

impl std::fmt::Display for StaleSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "snapshot {} is below the GC horizon {}",
            self.snapshot, self.s_old
        )
    }
}

impl std::error::Error for StaleSnapshot {}

impl StableFrontier {
    /// A frontier at time zero.
    pub fn new() -> Self {
        StableFrontier::default()
    }

    /// The published universal stable time.
    pub fn ust(&self) -> Timestamp {
        Timestamp::from_u64(self.ust.load(Ordering::SeqCst))
    }

    /// The published GC horizon `S_old`.
    pub fn s_old(&self) -> Timestamp {
        Timestamp::from_u64(self.s_old.load(Ordering::SeqCst))
    }

    /// Monotonically advances the UST to at least `ts` and returns the
    /// post-advance value (`ust ← max(ust, ts)`, Alg. 2 line 2 /
    /// Alg. 3 lines 2 & 11).
    pub fn max_ust(&self, ts: Timestamp) -> Timestamp {
        let prev = self.ust.fetch_max(ts.as_u64(), Ordering::SeqCst);
        Timestamp::from_u64(prev.max(ts.as_u64()))
    }

    /// Advances the UST to `ts` if that moves it forward; returns whether
    /// it did (Alg. 4 line 38 monotonicity — callers log the advance).
    pub fn advance_ust(&self, ts: Timestamp) -> bool {
        self.ust.fetch_max(ts.as_u64(), Ordering::SeqCst) < ts.as_u64()
    }

    /// Monotonically advances `S_old` to at least `ts`.
    pub fn advance_s_old(&self, ts: Timestamp) {
        self.s_old.fetch_max(ts.as_u64(), Ordering::SeqCst);
    }

    /// Registers an off-loop snapshot read, pinning the GC horizon at or
    /// below `snapshot` until the returned guard drops.
    ///
    /// # Errors
    ///
    /// Returns [`StaleSnapshot`] if `snapshot` is already below `S_old` —
    /// versions the read should observe may be reclaimed, so it must be
    /// punted to the single-writer loop. The registration happens *before*
    /// the horizon check, so a concurrent GC either sees the registration
    /// (and spares the versions) or advanced first (and the check fails):
    /// there is no window in which the read proceeds over reclaimed data.
    pub fn begin_read(self: &Arc<Self>, snapshot: Timestamp) -> Result<ReadGuard, StaleSnapshot> {
        {
            let mut inflight = self.inflight.lock().expect("inflight poisoned");
            *inflight.entry(snapshot.as_u64()).or_insert(0) += 1;
        }
        let s_old = self.s_old();
        if snapshot < s_old {
            self.end_read(snapshot);
            return Err(StaleSnapshot { snapshot, s_old });
        }
        Ok(ReadGuard {
            frontier: Arc::clone(self),
            snapshot,
        })
    }

    fn end_read(&self, snapshot: Timestamp) {
        let mut inflight = self.inflight.lock().expect("inflight poisoned");
        match inflight.get_mut(&snapshot.as_u64()) {
            Some(n) if *n > 1 => *n -= 1,
            Some(_) => {
                inflight.remove(&snapshot.as_u64());
            }
            None => debug_assert!(false, "unbalanced end_read"),
        }
    }

    /// The oldest snapshot of any in-flight off-loop read, if any.
    pub fn oldest_inflight(&self) -> Option<Timestamp> {
        self.inflight
            .lock()
            .expect("inflight poisoned")
            .keys()
            .next()
            .map(|&raw| Timestamp::from_u64(raw))
    }

    /// The horizon garbage collection may trim to right now:
    /// `min(S_old, oldest in-flight read)`.
    pub fn gc_horizon(&self) -> Timestamp {
        let s_old = self.s_old();
        match self.oldest_inflight() {
            Some(oldest) => s_old.min(oldest),
            None => s_old,
        }
    }
}

/// RAII registration of one in-flight snapshot read (see
/// [`StableFrontier::begin_read`]).
#[derive(Debug)]
pub struct ReadGuard {
    frontier: Arc<StableFrontier>,
    snapshot: Timestamp,
}

impl ReadGuard {
    /// The snapshot this guard pins.
    pub fn snapshot(&self) -> Timestamp {
        self.snapshot
    }
}

impl Drop for ReadGuard {
    fn drop(&mut self) {
        self.frontier.end_read(self.snapshot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(t: u64) -> Timestamp {
        Timestamp::from_physical_micros(t)
    }

    #[test]
    fn starts_at_zero() {
        let f = StableFrontier::new();
        assert_eq!(f.ust(), Timestamp::ZERO);
        assert_eq!(f.s_old(), Timestamp::ZERO);
        assert_eq!(f.gc_horizon(), Timestamp::ZERO);
        assert!(f.oldest_inflight().is_none());
    }

    #[test]
    fn max_ust_is_monotonic() {
        let f = StableFrontier::new();
        assert_eq!(f.max_ust(ts(10)), ts(10));
        assert_eq!(f.max_ust(ts(5)), ts(10), "never regresses");
        assert_eq!(f.ust(), ts(10));
    }

    #[test]
    fn advance_ust_reports_movement() {
        let f = StableFrontier::new();
        assert!(f.advance_ust(ts(10)));
        assert!(!f.advance_ust(ts(10)), "equal value is not an advance");
        assert!(!f.advance_ust(ts(3)));
        assert!(f.advance_ust(ts(11)));
    }

    #[test]
    fn inflight_reads_pin_the_gc_horizon() {
        let f = Arc::new(StableFrontier::new());
        f.advance_s_old(ts(100));
        let g1 = f.begin_read(ts(120)).unwrap();
        let g2 = f.begin_read(ts(150)).unwrap();
        assert_eq!(f.gc_horizon(), ts(100), "S_old is already the minimum");
        f.advance_s_old(ts(140));
        assert_eq!(f.gc_horizon(), ts(120), "pinned by the oldest read");
        drop(g1);
        assert_eq!(f.gc_horizon(), ts(140));
        drop(g2);
        assert_eq!(f.gc_horizon(), ts(140));
        assert!(f.oldest_inflight().is_none());
    }

    #[test]
    fn duplicate_snapshots_are_refcounted() {
        let f = Arc::new(StableFrontier::new());
        let a = f.begin_read(ts(7)).unwrap();
        let b = f.begin_read(ts(7)).unwrap();
        assert_eq!(a.snapshot(), ts(7));
        drop(a);
        assert_eq!(f.oldest_inflight(), Some(ts(7)), "second read still pins");
        drop(b);
        assert!(f.oldest_inflight().is_none());
    }

    #[test]
    fn reads_below_s_old_are_rejected() {
        let f = Arc::new(StableFrontier::new());
        f.advance_s_old(ts(50));
        let err = f.begin_read(ts(49)).unwrap_err();
        assert_eq!(err.snapshot, ts(49));
        assert_eq!(err.s_old, ts(50));
        assert!(err.to_string().contains("GC horizon"));
        assert!(f.oldest_inflight().is_none(), "rejection deregisters");
        // At the horizon is safe: GC keeps the freshest version ≤ S_old.
        assert!(f.begin_read(ts(50)).is_ok());
    }
}
