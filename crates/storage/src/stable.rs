//! The shared stable-time frontier: published UST / `S_old` plus the
//! in-flight snapshot-read registry.
//!
//! The paper's non-blocking read property rests on two published
//! timestamps: the **UST** (every version `≤ UST` is installed at every
//! replica, so a snapshot read at or below it never blocks) and **`S_old`**
//! (the garbage-collection horizon — the oldest snapshot any transaction
//! may still read, §IV-B). With reads served by arbitrary threads *off*
//! the single-writer server loop, both must be shared safely:
//!
//! * the frontier carries them in atomics (`Timestamp` packs into a `u64`,
//!   so `fetch_max` gives the monotonic advance of Alg. 3 line 2 and
//!   Alg. 4 line 38 without locks);
//! * every off-loop read registers its snapshot for its duration, and the
//!   GC horizon is `min(S_old, oldest in-flight read)` — GC can never
//!   reclaim a version an in-flight read may still return;
//! * a read whose snapshot is already **below** `S_old` is rejected
//!   ([`StaleSnapshot`]) before touching any chain: its versions may have
//!   been reclaimed, so only the authoritative single-writer loop (which
//!   serializes with its own GC) may serve it.
//!
//! # The slot registry
//!
//! Read admission is **lock-free on the hot path**: the registry is a
//! fixed array of atomic *snapshot slots*. [`StableFrontier::begin_read`]
//! claims a free slot with one compare-and-swap of the packed timestamp
//! (starting from a rotating cursor so concurrent readers rarely collide
//! on the same slot), and the guard's drop releases it with one store.
//! `gc_horizon()` only ever needs the **minimum** in-flight snapshot, so a
//! plain scan over the slot array replaces the old ordered map, and no
//! read ever takes a mutex to be admitted.
//!
//! When every slot is busy (more concurrent off-loop reads than slots) —
//! or for the one packed value that collides with the free sentinel —
//! registration falls back to the original mutexed `BTreeMap`, so
//! correctness never depends on the pool size; the fallback is counted in
//! [`StableFrontier::overflow_registrations`] for observability.
//!
//! # Why register-then-check still has no TOCTOU window
//!
//! `begin_read` publishes the registration (slot CAS or map insert)
//! *before* loading `S_old`, and `gc_horizon()` loads `S_old` *before*
//! scanning the slots; every one of those operations is `SeqCst`. In the
//! single total order this forces, either the GC scan observes the
//! registration (and the horizon stays at or below the read's snapshot),
//! or the registration came later — in which case the reader's subsequent
//! `S_old` load observes the advanced horizon and the check fails. There
//! is no interleaving in which a read proceeds over reclaimed data, which
//! is exactly the argument the mutexed registry made via critical
//! sections.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use paris_types::Timestamp;

/// Default number of atomic snapshot slots: comfortably above any
/// realistic read-pool size, so the mutex fallback is cold.
pub const DEFAULT_READ_SLOTS: usize = 64;

/// Sentinel marking a free slot. `u64::MAX` is `Timestamp::MAX`, which no
/// realistic snapshot ever packs to; a read at exactly that value still
/// registers correctly through the overflow map.
const SLOT_FREE: u64 = u64::MAX;

/// Shared, concurrently-readable stable-time state of one partition
/// server. See the module docs.
#[derive(Debug)]
pub struct StableFrontier {
    /// Packed [`Timestamp`]: the server's universal stable time.
    ust: AtomicU64,
    /// Packed [`Timestamp`]: the GC horizon `S_old`.
    s_old: AtomicU64,
    /// The lock-free registry: packed snapshots of in-flight off-loop
    /// reads, [`SLOT_FREE`] when vacant.
    slots: Box<[AtomicU64]>,
    /// Rotating claim cursor, so concurrent readers start their slot scan
    /// at different indices instead of all CASing slot 0.
    cursor: AtomicUsize,
    /// Bounded-overflow fallback: snapshot → number of in-flight reads,
    /// used only when every slot is busy (or the snapshot packs to the
    /// free sentinel).
    overflow: Mutex<BTreeMap<u64, usize>>,
    /// How many registrations took the overflow path (observability).
    overflow_registrations: AtomicU64,
}

impl Default for StableFrontier {
    fn default() -> Self {
        StableFrontier::with_slots(DEFAULT_READ_SLOTS)
    }
}

/// Error returned when a snapshot read is requested below the published
/// GC horizon: versions it should observe may already be reclaimed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaleSnapshot {
    /// The rejected snapshot.
    pub snapshot: Timestamp,
    /// The `S_old` horizon it fell below.
    pub s_old: Timestamp,
}

impl std::fmt::Display for StaleSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "snapshot {} is below the GC horizon {}",
            self.snapshot, self.s_old
        )
    }
}

impl std::error::Error for StaleSnapshot {}

impl StableFrontier {
    /// A frontier at time zero with the default slot count.
    pub fn new() -> Self {
        StableFrontier::default()
    }

    /// A frontier at time zero with `slots` atomic read slots. `0`
    /// disables the slot registry entirely — every read registers through
    /// the mutexed overflow map (the pre-slot behavior; benches use this
    /// to measure what the slots buy).
    pub fn with_slots(slots: usize) -> Self {
        StableFrontier {
            ust: AtomicU64::new(0),
            s_old: AtomicU64::new(0),
            slots: (0..slots).map(|_| AtomicU64::new(SLOT_FREE)).collect(),
            cursor: AtomicUsize::new(0),
            overflow: Mutex::new(BTreeMap::new()),
            overflow_registrations: AtomicU64::new(0),
        }
    }

    /// Number of atomic read slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// How many registrations missed the slot array and took the mutexed
    /// overflow path so far.
    pub fn overflow_registrations(&self) -> u64 {
        self.overflow_registrations.load(Ordering::Relaxed)
    }

    /// The published universal stable time.
    pub fn ust(&self) -> Timestamp {
        Timestamp::from_u64(self.ust.load(Ordering::SeqCst))
    }

    /// The published GC horizon `S_old`.
    pub fn s_old(&self) -> Timestamp {
        Timestamp::from_u64(self.s_old.load(Ordering::SeqCst))
    }

    /// Monotonically advances the UST to at least `ts` and returns the
    /// post-advance value (`ust ← max(ust, ts)`, Alg. 2 line 2 /
    /// Alg. 3 lines 2 & 11).
    pub fn max_ust(&self, ts: Timestamp) -> Timestamp {
        let prev = self.ust.fetch_max(ts.as_u64(), Ordering::SeqCst);
        Timestamp::from_u64(prev.max(ts.as_u64()))
    }

    /// Advances the UST to `ts` if that moves it forward; returns whether
    /// it did (Alg. 4 line 38 monotonicity — callers log the advance).
    pub fn advance_ust(&self, ts: Timestamp) -> bool {
        self.ust.fetch_max(ts.as_u64(), Ordering::SeqCst) < ts.as_u64()
    }

    /// Monotonically advances `S_old` to at least `ts`.
    pub fn advance_s_old(&self, ts: Timestamp) {
        self.s_old.fetch_max(ts.as_u64(), Ordering::SeqCst);
    }

    /// Registers an off-loop snapshot read, pinning the GC horizon at or
    /// below `snapshot` until the returned guard drops. Admission is one
    /// CAS on a free slot; only slot exhaustion falls back to a mutex.
    ///
    /// # Errors
    ///
    /// Returns [`StaleSnapshot`] if `snapshot` is already below `S_old` —
    /// versions the read should observe may be reclaimed, so it must be
    /// punted to the single-writer loop. The registration happens *before*
    /// the horizon check (see the module docs), so a concurrent GC either
    /// sees the registration (and spares the versions) or advanced first
    /// (and the check fails): there is no window in which the read
    /// proceeds over reclaimed data.
    pub fn begin_read(self: &Arc<Self>, snapshot: Timestamp) -> Result<ReadGuard, StaleSnapshot> {
        let slot = self.register(snapshot);
        let s_old = self.s_old();
        if snapshot < s_old {
            self.release(snapshot, slot);
            return Err(StaleSnapshot { snapshot, s_old });
        }
        Ok(ReadGuard {
            frontier: Arc::clone(self),
            snapshot,
            slot,
        })
    }

    /// Publishes one in-flight read; returns the claimed slot index, or
    /// `None` when the registration went through the overflow map.
    fn register(&self, snapshot: Timestamp) -> Option<usize> {
        let packed = snapshot.as_u64();
        if packed != SLOT_FREE && !self.slots.is_empty() {
            let start = self.cursor.fetch_add(1, Ordering::Relaxed);
            for i in 0..self.slots.len() {
                let idx = (start + i) % self.slots.len();
                if self.slots[idx]
                    .compare_exchange(SLOT_FREE, packed, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok()
                {
                    return Some(idx);
                }
            }
        }
        self.overflow_registrations.fetch_add(1, Ordering::Relaxed);
        let mut overflow = self.overflow.lock().expect("overflow poisoned");
        *overflow.entry(packed).or_insert(0) += 1;
        None
    }

    /// Releases one registration made by [`StableFrontier::register`].
    fn release(&self, snapshot: Timestamp, slot: Option<usize>) {
        match slot {
            Some(idx) => {
                let prev = self.slots[idx].swap(SLOT_FREE, Ordering::SeqCst);
                debug_assert_eq!(prev, snapshot.as_u64(), "slot clobbered while held");
            }
            None => {
                let mut overflow = self.overflow.lock().expect("overflow poisoned");
                match overflow.get_mut(&snapshot.as_u64()) {
                    Some(n) if *n > 1 => *n -= 1,
                    Some(_) => {
                        overflow.remove(&snapshot.as_u64());
                    }
                    None => debug_assert!(false, "unbalanced release"),
                }
            }
        }
    }

    /// The oldest snapshot of any in-flight off-loop read, if any.
    pub fn oldest_inflight(&self) -> Option<Timestamp> {
        let slot_min = self
            .slots
            .iter()
            .map(|s| s.load(Ordering::SeqCst))
            .filter(|&raw| raw != SLOT_FREE)
            .min();
        let overflow_min = self
            .overflow
            .lock()
            .expect("overflow poisoned")
            .keys()
            .next()
            .copied();
        match (slot_min, overflow_min) {
            (Some(a), Some(b)) => Some(Timestamp::from_u64(a.min(b))),
            (Some(a), None) => Some(Timestamp::from_u64(a)),
            (None, Some(b)) => Some(Timestamp::from_u64(b)),
            (None, None) => None,
        }
    }

    /// The horizon garbage collection may trim to right now:
    /// `min(S_old, oldest in-flight read)`. The `S_old` load precedes the
    /// slot scan — the ordering the no-TOCTOU argument relies on (module
    /// docs).
    pub fn gc_horizon(&self) -> Timestamp {
        let s_old = self.s_old();
        match self.oldest_inflight() {
            Some(oldest) => s_old.min(oldest),
            None => s_old,
        }
    }
}

/// RAII registration of one in-flight snapshot read (see
/// [`StableFrontier::begin_read`]).
#[derive(Debug)]
pub struct ReadGuard {
    frontier: Arc<StableFrontier>,
    snapshot: Timestamp,
    /// Claimed slot index; `None` when registered via the overflow map.
    slot: Option<usize>,
}

impl ReadGuard {
    /// The snapshot this guard pins.
    pub fn snapshot(&self) -> Timestamp {
        self.snapshot
    }
}

impl Drop for ReadGuard {
    fn drop(&mut self) {
        self.frontier.release(self.snapshot, self.slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(t: u64) -> Timestamp {
        Timestamp::from_physical_micros(t)
    }

    #[test]
    fn starts_at_zero() {
        let f = StableFrontier::new();
        assert_eq!(f.ust(), Timestamp::ZERO);
        assert_eq!(f.s_old(), Timestamp::ZERO);
        assert_eq!(f.gc_horizon(), Timestamp::ZERO);
        assert!(f.oldest_inflight().is_none());
        assert_eq!(f.slot_count(), DEFAULT_READ_SLOTS);
        assert_eq!(f.overflow_registrations(), 0);
    }

    #[test]
    fn max_ust_is_monotonic() {
        let f = StableFrontier::new();
        assert_eq!(f.max_ust(ts(10)), ts(10));
        assert_eq!(f.max_ust(ts(5)), ts(10), "never regresses");
        assert_eq!(f.ust(), ts(10));
    }

    #[test]
    fn advance_ust_reports_movement() {
        let f = StableFrontier::new();
        assert!(f.advance_ust(ts(10)));
        assert!(!f.advance_ust(ts(10)), "equal value is not an advance");
        assert!(!f.advance_ust(ts(3)));
        assert!(f.advance_ust(ts(11)));
    }

    #[test]
    fn inflight_reads_pin_the_gc_horizon() {
        let f = Arc::new(StableFrontier::new());
        f.advance_s_old(ts(100));
        let g1 = f.begin_read(ts(120)).unwrap();
        let g2 = f.begin_read(ts(150)).unwrap();
        assert_eq!(f.gc_horizon(), ts(100), "S_old is already the minimum");
        f.advance_s_old(ts(140));
        assert_eq!(f.gc_horizon(), ts(120), "pinned by the oldest read");
        drop(g1);
        assert_eq!(f.gc_horizon(), ts(140));
        drop(g2);
        assert_eq!(f.gc_horizon(), ts(140));
        assert!(f.oldest_inflight().is_none());
        assert_eq!(f.overflow_registrations(), 0, "slots sufficed");
    }

    #[test]
    fn duplicate_snapshots_each_hold_a_slot() {
        let f = Arc::new(StableFrontier::new());
        let a = f.begin_read(ts(7)).unwrap();
        let b = f.begin_read(ts(7)).unwrap();
        assert_eq!(a.snapshot(), ts(7));
        drop(a);
        assert_eq!(f.oldest_inflight(), Some(ts(7)), "second read still pins");
        drop(b);
        assert!(f.oldest_inflight().is_none());
    }

    #[test]
    fn reads_below_s_old_are_rejected() {
        let f = Arc::new(StableFrontier::new());
        f.advance_s_old(ts(50));
        let err = f.begin_read(ts(49)).unwrap_err();
        assert_eq!(err.snapshot, ts(49));
        assert_eq!(err.s_old, ts(50));
        assert!(err.to_string().contains("GC horizon"));
        assert!(f.oldest_inflight().is_none(), "rejection deregisters");
        // At the horizon is safe: GC keeps the freshest version ≤ S_old.
        assert!(f.begin_read(ts(50)).is_ok());
    }

    #[test]
    fn slot_exhaustion_falls_back_to_the_overflow_map() {
        let f = Arc::new(StableFrontier::with_slots(2));
        let _a = f.begin_read(ts(10)).unwrap();
        let _b = f.begin_read(ts(20)).unwrap();
        assert_eq!(f.overflow_registrations(), 0);
        let c = f.begin_read(ts(5)).unwrap(); // third read: slots full
        assert_eq!(f.overflow_registrations(), 1);
        assert_eq!(f.oldest_inflight(), Some(ts(5)), "overflow still pins");
        assert_eq!(f.gc_horizon(), Timestamp::ZERO);
        f.advance_s_old(ts(8));
        assert_eq!(f.gc_horizon(), ts(5), "overflow entry bounds the horizon");
        drop(c);
        assert_eq!(f.oldest_inflight(), Some(ts(10)));
    }

    #[test]
    fn overflow_rejection_deregisters() {
        let f = Arc::new(StableFrontier::with_slots(1));
        f.advance_s_old(ts(50));
        let _pin = f.begin_read(ts(60)).unwrap(); // occupies the only slot
        let err = f.begin_read(ts(40)).unwrap_err(); // overflow + stale
        assert_eq!(err.s_old, ts(50));
        assert_eq!(f.overflow_registrations(), 1);
        assert_eq!(f.oldest_inflight(), Some(ts(60)), "overflow entry gone");
    }

    #[test]
    fn zero_slots_is_the_pure_mutex_registry() {
        let f = Arc::new(StableFrontier::with_slots(0));
        assert_eq!(f.slot_count(), 0);
        let g = f.begin_read(ts(30)).unwrap();
        assert_eq!(f.overflow_registrations(), 1, "every read overflows");
        assert_eq!(f.oldest_inflight(), Some(ts(30)));
        drop(g);
        assert!(f.oldest_inflight().is_none());
    }

    #[test]
    fn max_timestamp_snapshot_uses_the_overflow_path() {
        // Timestamp::MAX packs to the free sentinel; it must never be
        // written into a slot (it would look vacant) yet must still pin.
        let f = Arc::new(StableFrontier::new());
        let g = f.begin_read(Timestamp::MAX).unwrap();
        assert_eq!(f.overflow_registrations(), 1);
        assert_eq!(f.oldest_inflight(), Some(Timestamp::MAX));
        drop(g);
        assert!(f.oldest_inflight().is_none());
    }

    #[test]
    fn released_slots_are_reclaimed() {
        let f = Arc::new(StableFrontier::with_slots(2));
        for round in 0..100u64 {
            let g1 = f.begin_read(ts(round + 1)).unwrap();
            let g2 = f.begin_read(ts(round + 2)).unwrap();
            drop(g1);
            drop(g2);
        }
        assert_eq!(f.overflow_registrations(), 0, "two slots always suffice");
        assert!(f.oldest_inflight().is_none());
    }
}
