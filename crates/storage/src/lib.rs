//! Multi-version key-value storage for PaRiS partitions.
//!
//! Each server owns one partition of the keyspace and stores, per key, a
//! *version chain*: every committed update creates a new [`Version`]
//! (paper §II-C, "multi-version data store"). Reads are snapshot reads —
//! "for each key, the version within the snapshot with the highest
//! timestamp" (Alg. 3 lines 4–7) — with ties broken by the
//! (timestamp, transaction id, source DC) total order of §IV-B.
//!
//! Old versions are garbage-collected up to the oldest snapshot visible to
//! any running transaction (`S_old`, §IV-B "Garbage collection"): the chain
//! keeps every version newer than `S_old` plus the freshest version at or
//! below it, which is exactly the set a future read may return.
//!
//! The store is sharded: keys hash over N chain shards, each behind its
//! own `RwLock`, and the published stable timestamps (UST, `S_old`) live
//! in the atomic [`StableFrontier`] — so snapshot reads run concurrently
//! on any number of threads while the single-writer server applies updates
//! (the paper's *parallel non-blocking reads*, §I).
//!
//! Storage sits behind the [`Engine`] trait: [`MemEngine`] is the sharded
//! in-memory store above, and [`DurableEngine`] wraps it with an
//! append-only write-ahead log plus immutable checkpoints of the ≤ UST
//! stable prefix, giving crash recovery ([`DurableEngine::open`]) at a
//! configurable fsync cost ([`FsyncPolicy`]).
//!
//! # Example
//!
//! ```
//! use paris_storage::PartitionStore;
//! use paris_types::{DcId, Key, PartitionId, ServerId, Timestamp, TxId, Value};
//!
//! let store = PartitionStore::new();
//! let tx = TxId::new(ServerId::new(DcId(0), PartitionId(0)), 1);
//! store.apply(Key(7), Value::from("a"), Timestamp::from_physical_micros(10), tx, DcId(0));
//! store.apply(Key(7), Value::from("b"), Timestamp::from_physical_micros(20), tx, DcId(0));
//!
//! // A snapshot at t=15 sees the first write only.
//! let v = store.read_at(Key(7), Timestamp::from_physical_micros(15)).unwrap();
//! assert_eq!(v.value.as_bytes(), b"a");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chain;
pub mod checkpoint;
mod durable;
mod engine;
mod stable;
mod store;
pub mod wal;

pub use chain::VersionChain;
pub use durable::{
    DurableConfig, DurableEngine, DurableError, FsyncPolicy, RecoveryInfo,
    DEFAULT_CHECKPOINT_INTERVAL_MICROS,
};
pub use engine::{DurableStats, Engine};
pub use stable::{ReadGuard, StableFrontier, StaleSnapshot, DEFAULT_READ_SLOTS};
pub use store::{MemEngine, StoreStats, DEFAULT_SHARDS};

pub use paris_types::Version;

/// The historical name of [`MemEngine`], kept for call sites that want
/// the concrete in-memory store rather than a `dyn Engine`.
pub type PartitionStore = MemEngine;
