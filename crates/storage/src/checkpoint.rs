//! Immutable checkpoints of the ≤ UST stable prefix.
//!
//! The key PaRiS-specific observation (borrowed from reth's static-file
//! model) is that the prefix of the version history at or below the
//! universal stable time is **immutable**: every DC has already received
//! it and no snapshot read below it can start once GC passes. Freezing
//! exactly that prefix therefore needs no coordination — the
//! `StableFrontier` the stabilization protocol already maintains *is*
//! the checkpoint barrier.
//!
//! A checkpoint is one compact segment file:
//!
//! ```text
//! checkpoint := magic(4) format(2) ust(8 LE) s_old(8 LE) crc(4 LE) record*
//! ```
//!
//! The header CRC covers everything before it, so a corrupted frontier
//! stamp is caught just like a corrupted record.
//!
//! where each record is a framed WAL record ([`crate::wal`]) for one
//! retained version with `ut ≤ ust`. Files are written to a temp name
//! and atomically renamed into place, so a crash mid-write never leaves
//! a half checkpoint under the real name; any decode error on load
//! rejects the whole file (the loader then falls back to an older
//! checkpoint or a plain WAL replay). The file name carries the frozen
//! frontier (`ckpt-<ust>.seg`) so recovery can order checkpoints without
//! opening them.

use std::fs::{self, File};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use paris_types::{Timestamp, Version};

use crate::durable::DurableError;
use crate::wal;

/// First four bytes of every checkpoint segment file.
pub const CKPT_MAGIC: [u8; 4] = *b"PCKP";

/// Checkpoint format version.
pub const CKPT_FORMAT: u16 = 1;

/// Fixed header: magic, format, frozen UST, frozen S_old, header CRC.
pub const CKPT_HEADER_LEN: usize = CKPT_MAGIC.len() + 2 + 8 + 8 + 4;

/// The frontier a checkpoint froze, read back from its header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// Universal stable time at freeze: every record has `ut ≤ ust`.
    pub ust: Timestamp,
    /// GC horizon at freeze (recovery re-seeds the frontier with it).
    pub s_old: Timestamp,
}

/// Path of the checkpoint frozen at `ust` under `dir`.
pub fn checkpoint_path(dir: &Path, ust: Timestamp) -> PathBuf {
    dir.join(format!("ckpt-{:020}.seg", ust.as_u64()))
}

/// Parses the frozen UST out of a checkpoint file name, if it is one.
pub fn parse_checkpoint_name(name: &str) -> Option<Timestamp> {
    let rest = name.strip_prefix("ckpt-")?.strip_suffix(".seg")?;
    rest.parse().ok().map(Timestamp::from_u64)
}

/// Writes a checkpoint of `versions` frozen at `meta` into `dir`,
/// atomically (temp file + rename). `sync` additionally fsyncs before
/// the rename so the checkpoint survives power loss, not just a crash.
///
/// Returns the final path and the file size in bytes.
///
/// # Errors
///
/// Any I/O failure surfaces as [`DurableError::Io`]; the temp file is
/// left behind only on failure (and harmlessly ignored by the loader).
pub fn write_checkpoint(
    dir: &Path,
    meta: CheckpointMeta,
    versions: &[Version],
    sync: bool,
) -> Result<(PathBuf, u64), DurableError> {
    let final_path = checkpoint_path(dir, meta.ust);
    let tmp_path = final_path.with_extension("tmp");
    let mut bytes = 0u64;
    {
        let mut file = BufWriter::new(File::create(&tmp_path)?);
        let mut header = Vec::with_capacity(CKPT_HEADER_LEN);
        header.extend_from_slice(&CKPT_MAGIC);
        header.extend_from_slice(&CKPT_FORMAT.to_le_bytes());
        header.extend_from_slice(&meta.ust.as_u64().to_le_bytes());
        header.extend_from_slice(&meta.s_old.as_u64().to_le_bytes());
        let crc = wal::crc32(&header);
        header.extend_from_slice(&crc.to_le_bytes());
        file.write_all(&header)?;
        bytes += CKPT_HEADER_LEN as u64;
        for v in versions {
            let record = wal::encode_record(v);
            file.write_all(&record)?;
            bytes += record.len() as u64;
        }
        file.flush()?;
        if sync {
            file.get_ref().sync_data()?;
        }
    }
    fs::rename(&tmp_path, &final_path)?;
    Ok((final_path, bytes))
}

/// Loads a checkpoint file in full.
///
/// # Errors
///
/// [`DurableError::Corrupt`] for a bad header **or** any bad record —
/// unlike the WAL, a checkpoint admits no torn tail: it was renamed into
/// place whole, so any damage rejects the entire file.
pub fn load_checkpoint(path: &Path) -> Result<(CheckpointMeta, Vec<Version>), DurableError> {
    let bytes = fs::read(path)?;
    if bytes.len() < CKPT_HEADER_LEN || bytes[..4] != CKPT_MAGIC {
        return Err(DurableError::corrupt("checkpoint missing magic"));
    }
    if u16::from_le_bytes([bytes[4], bytes[5]]) != CKPT_FORMAT {
        return Err(DurableError::corrupt("checkpoint format unknown"));
    }
    let declared = u32::from_le_bytes(bytes[22..26].try_into().expect("4-byte slice"));
    if wal::crc32(&bytes[..22]) != declared {
        return Err(DurableError::corrupt("checkpoint header CRC mismatch"));
    }
    let ust = Timestamp::from_u64(u64::from_le_bytes(
        bytes[6..14].try_into().expect("8-byte slice"),
    ));
    let s_old = Timestamp::from_u64(u64::from_le_bytes(
        bytes[14..22].try_into().expect("8-byte slice"),
    ));
    // Reuse the WAL record stream parser, but demand it consumed the
    // whole file: a torn tail here means a corrupt checkpoint.
    let mut framed = Vec::with_capacity(bytes.len() - CKPT_HEADER_LEN + wal::SEGMENT_HEADER_LEN);
    framed.extend_from_slice(&wal::WAL_MAGIC);
    framed.extend_from_slice(&wal::WAL_FORMAT.to_le_bytes());
    framed.extend_from_slice(&bytes[CKPT_HEADER_LEN..]);
    let replay = wal::replay_segment(&framed)?;
    if replay.good_len != framed.len() {
        return Err(DurableError::corrupt("checkpoint has a torn record"));
    }
    Ok((CheckpointMeta { ust, s_old }, replay.versions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use paris_types::{DcId, Key, PartitionId, ServerId, TxId, Value};

    fn version(key: u64, ut: u64) -> Version {
        Version::new(
            Key(key),
            Value::filled(8, ut),
            Timestamp::from_physical_micros(ut),
            TxId::new(ServerId::new(DcId(0), PartitionId(0)), ut),
            DcId(0),
        )
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("paris-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn checkpoint_roundtrips() {
        let dir = tmpdir("roundtrip");
        let meta = CheckpointMeta {
            ust: Timestamp::from_physical_micros(30),
            s_old: Timestamp::from_physical_micros(10),
        };
        let versions = vec![version(1, 10), version(2, 20), version(1, 30)];
        let (path, bytes) = write_checkpoint(&dir, meta, &versions, true).unwrap();
        assert_eq!(bytes, fs::metadata(&path).unwrap().len());
        let (meta2, versions2) = load_checkpoint(&path).unwrap();
        assert_eq!(meta2, meta);
        assert_eq!(versions2, versions);
        assert_eq!(
            parse_checkpoint_name(path.file_name().unwrap().to_str().unwrap()),
            Some(meta.ust)
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damaged_checkpoint_is_rejected_whole() {
        let dir = tmpdir("damaged");
        let meta = CheckpointMeta {
            ust: Timestamp::from_physical_micros(5),
            s_old: Timestamp::ZERO,
        };
        let (path, _) = write_checkpoint(&dir, meta, &[version(1, 5)], false).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(load_checkpoint(&path).is_err());
        // Truncation (a "torn tail") also rejects the whole file.
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(load_checkpoint(&path).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_names_sort_by_frontier() {
        assert_eq!(parse_checkpoint_name("ckpt-x.seg"), None);
        assert_eq!(parse_checkpoint_name("wal-1.log"), None);
        let a = checkpoint_path(Path::new("/d"), Timestamp::from_physical_micros(1));
        let b = checkpoint_path(Path::new("/d"), Timestamp::from_physical_micros(2));
        assert!(a < b, "zero-padded names sort numerically");
    }
}
