//! Per-key version chains.

use paris_types::{Timestamp, Version, VersionOrd};

/// The version chain of one key: all retained versions, newest first.
///
/// Versions are kept sorted descending by the total order of §IV-B
/// (timestamp, then transaction id, then source DC). Insertion is
/// tolerant of arbitrary arrival orders — remote replication batches can
/// interleave with local commits in any way — and is idempotent: applying
/// the same (tx, ut) version twice keeps a single copy, which makes
/// at-least-once replication delivery safe.
#[derive(Debug, Clone, Default)]
pub struct VersionChain {
    /// Retained versions, sorted descending by `VersionOrd`.
    versions: Vec<Version>,
}

impl VersionChain {
    /// Creates an empty chain.
    pub fn new() -> Self {
        VersionChain::default()
    }

    /// Number of retained versions.
    #[inline]
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// Whether the chain holds no versions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// Inserts a version, keeping the chain sorted (newest first).
    ///
    /// Returns `true` if the version was inserted, `false` if an identical
    /// version (same total-order key) was already present.
    pub fn insert(&mut self, version: Version) -> bool {
        let ord = version.order();
        // Newest-first: find the first element whose order is <= ord.
        match self.versions.binary_search_by(|v| ord.cmp(&v.order())) {
            Ok(_) => false,
            Err(pos) => {
                self.versions.insert(pos, version);
                true
            }
        }
    }

    /// The freshest version visible in the snapshot `ts`: the version with
    /// the largest total order whose `ut ≤ ts` (Alg. 3 lines 5–6).
    ///
    /// The chain is sorted descending by [`VersionOrd`], whose leading
    /// component is `ut`, so `ut` is non-increasing along the vector and
    /// the answer is found by binary search — this is the hottest path in
    /// the system (every key of every slice read lands here).
    pub fn read_at(&self, ts: Timestamp) -> Option<&Version> {
        let idx = self.versions.partition_point(|v| v.ut > ts);
        self.versions.get(idx)
    }

    /// The freshest version regardless of snapshot (diagnostics, checker).
    pub fn latest(&self) -> Option<&Version> {
        self.versions.first()
    }

    /// Iterates over retained versions, newest first.
    pub fn iter(&self) -> impl Iterator<Item = &Version> {
        self.versions.iter()
    }

    /// Garbage-collects versions older than the oldest active snapshot.
    ///
    /// Keeps every version with `ut > s_old` **plus** the freshest version
    /// with `ut ≤ s_old` (the paper keeps "all the versions up to and
    /// including the oldest one within `S_old`", §IV-B) — i.e. exactly the
    /// versions some current or future transaction may still read.
    ///
    /// Returns the number of versions removed.
    pub fn gc(&mut self, s_old: Timestamp) -> usize {
        // Index of the first version with ut <= s_old (they are sorted
        // newest-first, so everything after the *next* index is dead).
        let Some(first_at_or_below) = self.versions.iter().position(|v| v.ut <= s_old) else {
            return 0; // nothing at or below the horizon
        };
        let keep = first_at_or_below + 1;
        let removed = self.versions.len().saturating_sub(keep);
        self.versions.truncate(keep);
        removed
    }

    /// The total order key of the freshest version, if any.
    pub fn latest_order(&self) -> Option<VersionOrd> {
        self.versions.first().map(Version::order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paris_types::{DcId, Key, PartitionId, ServerId, TxId, Value};
    use proptest::prelude::*;

    fn tx(dc: u16, seq: u64) -> TxId {
        TxId::new(ServerId::new(DcId(dc), PartitionId(0)), seq)
    }

    fn ver(ut: u64, dc: u16, seq: u64) -> Version {
        Version::new(
            Key(1),
            Value::from(format!("{ut}-{dc}-{seq}").as_str()),
            Timestamp::from_physical_micros(ut),
            tx(dc, seq),
            DcId(dc),
        )
    }

    #[test]
    fn empty_chain_reads_nothing() {
        let chain = VersionChain::new();
        assert!(chain.read_at(Timestamp::MAX).is_none());
        assert!(chain.latest().is_none());
        assert!(chain.is_empty());
    }

    #[test]
    fn read_at_returns_freshest_within_snapshot() {
        let mut chain = VersionChain::new();
        chain.insert(ver(10, 0, 1));
        chain.insert(ver(20, 0, 2));
        chain.insert(ver(30, 0, 3));
        let at = |t: u64| {
            chain
                .read_at(Timestamp::from_physical_micros(t))
                .map(|v| v.ut.physical_micros())
        };
        assert_eq!(at(5), None);
        assert_eq!(at(10), Some(10));
        assert_eq!(at(25), Some(20));
        assert_eq!(at(99), Some(30));
    }

    #[test]
    fn insert_out_of_order_keeps_sorted() {
        let mut chain = VersionChain::new();
        chain.insert(ver(30, 0, 3));
        chain.insert(ver(10, 0, 1));
        chain.insert(ver(20, 0, 2));
        let uts: Vec<u64> = chain.iter().map(|v| v.ut.physical_micros()).collect();
        assert_eq!(uts, vec![30, 20, 10]);
    }

    #[test]
    fn insert_is_idempotent() {
        let mut chain = VersionChain::new();
        assert!(chain.insert(ver(10, 0, 1)));
        assert!(!chain.insert(ver(10, 0, 1)), "duplicate rejected");
        assert_eq!(chain.len(), 1);
    }

    #[test]
    fn concurrent_versions_totally_ordered_by_tx_then_dc() {
        let mut chain = VersionChain::new();
        // Same timestamp, different transactions from different DCs.
        chain.insert(ver(10, 2, 1));
        chain.insert(ver(10, 1, 9));
        // tx from dc1 (seq 9) < tx from dc2 (seq 1) because TxId orders by
        // dc first — the dc2 write is "last writer".
        let winner = chain.read_at(Timestamp::from_physical_micros(10)).unwrap();
        assert_eq!(winner.src, DcId(2));
    }

    #[test]
    fn gc_keeps_horizon_version_and_newer() {
        let mut chain = VersionChain::new();
        for t in [10, 20, 30, 40] {
            chain.insert(ver(t, 0, t));
        }
        // S_old = 25: versions 10 is dead; 20 (freshest ≤ 25), 30, 40 live.
        let removed = chain.gc(Timestamp::from_physical_micros(25));
        assert_eq!(removed, 1);
        let uts: Vec<u64> = chain.iter().map(|v| v.ut.physical_micros()).collect();
        assert_eq!(uts, vec![40, 30, 20]);
        // A read at the horizon still succeeds.
        assert!(chain.read_at(Timestamp::from_physical_micros(25)).is_some());
    }

    #[test]
    fn gc_with_horizon_below_all_versions_removes_nothing() {
        let mut chain = VersionChain::new();
        chain.insert(ver(10, 0, 1));
        assert_eq!(chain.gc(Timestamp::from_physical_micros(5)), 0);
        assert_eq!(chain.len(), 1);
    }

    #[test]
    fn gc_with_horizon_above_all_keeps_only_latest() {
        let mut chain = VersionChain::new();
        for t in [10, 20, 30] {
            chain.insert(ver(t, 0, t));
        }
        assert_eq!(chain.gc(Timestamp::from_physical_micros(99)), 2);
        assert_eq!(chain.len(), 1);
        assert_eq!(chain.latest().unwrap().ut.physical_micros(), 30);
    }

    #[test]
    fn latest_order_matches_latest() {
        let mut chain = VersionChain::new();
        chain.insert(ver(10, 0, 1));
        chain.insert(ver(20, 0, 2));
        assert_eq!(
            chain.latest_order().unwrap(),
            chain.latest().unwrap().order()
        );
    }

    proptest! {
        /// Reads after arbitrary insertion orders return the max-order
        /// version with ut ≤ snapshot — the chain is equivalent to a sorted
        /// set no matter how replication interleaves.
        #[test]
        fn prop_read_at_is_max_leq_snapshot(
            entries in proptest::collection::vec((1u64..1_000, 0u16..5, 0u64..50), 1..60),
            snapshot in 0u64..1_100,
        ) {
            let mut chain = VersionChain::new();
            for &(ut, dc, seq) in &entries {
                chain.insert(ver(ut, dc, seq));
            }
            let snap = Timestamp::from_physical_micros(snapshot);
            let expect = entries
                .iter()
                .map(|&(ut, dc, seq)| ver(ut, dc, seq))
                .filter(|v| v.ut <= snap)
                .max_by_key(|v| v.order());
            let got = chain.read_at(snap);
            prop_assert_eq!(got.map(|v| v.order()), expect.map(|v| v.order()));
        }

        /// GC never removes a version readable at any snapshot ≥ S_old.
        #[test]
        fn prop_gc_preserves_reads_at_or_above_horizon(
            entries in proptest::collection::vec((1u64..500, 0u16..3, 0u64..30), 1..40),
            horizon in 0u64..600,
            probe_offset in 0u64..200,
        ) {
            let mut chain = VersionChain::new();
            for &(ut, dc, seq) in &entries {
                chain.insert(ver(ut, dc, seq));
            }
            let s_old = Timestamp::from_physical_micros(horizon);
            let probe = Timestamp::from_physical_micros(horizon + probe_offset);
            let before = chain.read_at(probe).map(|v| v.order());
            chain.gc(s_old);
            let after = chain.read_at(probe).map(|v| v.order());
            prop_assert_eq!(before, after);
        }

        /// Insertion order never affects the final chain contents.
        #[test]
        fn prop_insertion_order_irrelevant(
            mut entries in proptest::collection::vec((1u64..100, 0u16..3, 0u64..10), 1..20)
        ) {
            let mut forward = VersionChain::new();
            for &(ut, dc, seq) in &entries {
                forward.insert(ver(ut, dc, seq));
            }
            entries.reverse();
            let mut backward = VersionChain::new();
            for &(ut, dc, seq) in &entries {
                backward.insert(ver(ut, dc, seq));
            }
            let f: Vec<_> = forward.iter().map(|v| v.order()).collect();
            let b: Vec<_> = backward.iter().map(|v| v.order()).collect();
            prop_assert_eq!(f, b);
        }
    }
}
