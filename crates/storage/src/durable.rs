//! The durable engine: a [`MemEngine`] with a WAL and checkpoints.
//!
//! Writes go to memory first (the protocol's visibility rules are
//! unchanged) and every *new* version is appended to the write-ahead log
//! before `apply` returns. Periodically the ≤ UST stable prefix is
//! frozen into an immutable checkpoint file and the log rotates; closed
//! segments fully covered by a checkpoint and below the GC horizon are
//! deleted. Recovery ([`DurableEngine::open`]) loads the newest intact
//! checkpoint, replays every WAL segment (truncating a torn tail), and
//! reports a [`RecoveryInfo`] the server uses to re-seed its version
//! vector, HLC and stable frontier — so a restarted server resumes
//! exactly where its log ends.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use paris_types::{DcId, Key, Timestamp, TxId, Value, Version};

use crate::chain::VersionChain;
use crate::checkpoint::{self, CheckpointMeta};
use crate::engine::{DurableStats, Engine};
use crate::store::{MemEngine, StoreStats};
use crate::wal::{self, ClosedSegment, SegmentWriter};

/// Default checkpoint cadence when none is configured: once per virtual
/// half-second, a few stabilization rounds at the default intervals.
pub const DEFAULT_CHECKPOINT_INTERVAL_MICROS: u64 = 500_000;

/// When to `fsync` the write-ahead log.
///
/// Records always reach the OS page cache per append (surviving a
/// killed process); the policy decides whether they also survive power
/// loss before `apply` acknowledges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Never fsync on the append path: group durability comes from
    /// checkpoints. Cheapest; loses at most the un-checkpointed WAL
    /// suffix on power loss (never on a plain crash).
    #[default]
    Never,
    /// Fsync after every appended record. Strongest; slowest.
    Always,
}

impl FsyncPolicy {
    /// Stable numeric tag for wire/env encodings of configs.
    pub const fn as_u8(self) -> u8 {
        match self {
            FsyncPolicy::Never => 0,
            FsyncPolicy::Always => 1,
        }
    }

    /// Inverse of [`FsyncPolicy::as_u8`].
    pub const fn from_u8(v: u8) -> Option<FsyncPolicy> {
        match v {
            0 => Some(FsyncPolicy::Never),
            1 => Some(FsyncPolicy::Always),
            _ => None,
        }
    }
}

/// Configuration for one server's [`DurableEngine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurableConfig {
    /// Directory holding this server's WAL segments and checkpoints.
    /// Each server must get its own directory.
    pub dir: PathBuf,
    /// WAL fsync policy.
    pub fsync: FsyncPolicy,
    /// Minimum interval between checkpoints, in the server's clock
    /// domain (virtual micros on the sim, wall micros elsewhere).
    pub checkpoint_interval_micros: u64,
}

impl DurableConfig {
    /// A config writing under `dir` with default cadence and no fsync.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurableConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Never,
            checkpoint_interval_micros: DEFAULT_CHECKPOINT_INTERVAL_MICROS,
        }
    }

    /// Sets the fsync policy.
    pub fn fsync(mut self, fsync: FsyncPolicy) -> Self {
        self.fsync = fsync;
        self
    }

    /// Sets the checkpoint cadence.
    pub fn checkpoint_interval_micros(mut self, micros: u64) -> Self {
        self.checkpoint_interval_micros = micros.max(1);
        self
    }
}

/// What recovery found on disk, for re-seeding the server's protocol
/// state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// UST frozen by the newest intact checkpoint (zero if none).
    pub ust: Timestamp,
    /// GC horizon frozen by that checkpoint.
    pub s_old: Timestamp,
    /// Per-source-DC maximum update timestamp across everything
    /// recovered — seeds the replication version vector and the HLC.
    pub max_ut_by_src: Vec<(DcId, Timestamp)>,
    /// Versions loaded from the checkpoint.
    pub checkpoint_versions: u64,
    /// Records replayed from WAL segments.
    pub replayed_records: u64,
    /// Bytes of torn WAL tail truncated away.
    pub truncated_bytes: u64,
}

impl RecoveryInfo {
    /// The largest update timestamp recovered from any source (at least
    /// the checkpoint UST). A restarted server's clock must start above
    /// this so new commits sort after everything persisted.
    pub fn max_recovered(&self) -> Timestamp {
        self.max_ut_by_src
            .iter()
            .map(|(_, ts)| *ts)
            .fold(self.ust, Timestamp::max)
    }
}

/// Errors from the durable engine's file I/O and decoding.
#[derive(Debug)]
pub enum DurableError {
    /// An operating-system I/O failure.
    Io(std::io::Error),
    /// A file failed structural validation.
    Corrupt(&'static str),
}

impl DurableError {
    pub(crate) fn corrupt(what: &'static str) -> Self {
        DurableError::Corrupt(what)
    }
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "durable storage i/o: {e}"),
            DurableError::Corrupt(what) => write!(f, "durable storage corrupt: {what}"),
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableError::Io(e) => Some(e),
            DurableError::Corrupt(_) => None,
        }
    }
}

impl From<std::io::Error> for DurableError {
    fn from(e: std::io::Error) -> Self {
        DurableError::Io(e)
    }
}

impl From<DurableError> for paris_types::Error {
    fn from(e: DurableError) -> Self {
        paris_types::Error::Storage(e.to_string())
    }
}

/// Log-side state serialized behind one mutex: the active segment plus
/// the pruning bookkeeping. The in-memory store keeps its own sharded
/// locks; appenders only contend here for the microseconds one record
/// write takes.
#[derive(Debug)]
struct LogState {
    writer: SegmentWriter,
    closed: Vec<ClosedSegment>,
    last_ckpt_ust: Timestamp,
    /// Cadence baseline; `None` until the first `maybe_checkpoint`
    /// observation so the first interval is measured, not assumed.
    last_ckpt_micros: Option<u64>,
    /// Set when a WAL append failed; durability is degraded and the
    /// failure has been reported once.
    wal_failed: bool,
}

/// A [`MemEngine`] wrapped with an append-only WAL and stable-prefix
/// checkpoints. See the module docs for the layout and invariants.
#[derive(Debug)]
pub struct DurableEngine {
    mem: MemEngine,
    cfg: DurableConfig,
    log: Mutex<LogState>,
    /// Last GC horizon observed, frozen into checkpoint headers.
    last_horizon: AtomicU64,
    wal_bytes: AtomicU64,
    wal_records: AtomicU64,
    wal_syncs: AtomicU64,
    checkpoints: AtomicU64,
    checkpoint_bytes: AtomicU64,
    segments_pruned: AtomicU64,
}

impl DurableEngine {
    /// Opens (or creates) the engine under `cfg.dir` with `shards` chain
    /// shards, running recovery: newest intact checkpoint, then every
    /// WAL segment in sequence order with torn tails truncated.
    ///
    /// # Errors
    ///
    /// Any I/O failure on the directory or its files. Corrupt
    /// checkpoints are skipped (older ones are tried), corrupt WAL
    /// content is truncated — neither is an error.
    pub fn open(
        cfg: DurableConfig,
        shards: usize,
    ) -> Result<(DurableEngine, RecoveryInfo), DurableError> {
        fs::create_dir_all(&cfg.dir)?;
        let mem = MemEngine::with_shards(shards);
        let mut info = RecoveryInfo::default();

        // Inventory the directory.
        let mut ckpts: Vec<(Timestamp, PathBuf)> = Vec::new();
        let mut segs: Vec<(u64, PathBuf)> = Vec::new();
        for entry in fs::read_dir(&cfg.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(ust) = checkpoint::parse_checkpoint_name(name) {
                ckpts.push((ust, entry.path()));
            } else if let Some(seq) = wal::parse_segment_name(name) {
                segs.push((seq, entry.path()));
            }
        }
        ckpts.sort_by_key(|(ust, _)| *ust);
        segs.sort_by_key(|(seq, _)| *seq);

        // Newest intact checkpoint wins; corrupt ones are skipped.
        for (_, path) in ckpts.iter().rev() {
            match checkpoint::load_checkpoint(path) {
                Ok((meta, versions)) => {
                    info.ust = meta.ust;
                    info.s_old = meta.s_old;
                    info.checkpoint_versions = versions.len() as u64;
                    for v in versions {
                        mem.apply(v.key, v.value, v.ut, v.tx, v.src);
                    }
                    break;
                }
                Err(DurableError::Io(e)) => return Err(DurableError::Io(e)),
                Err(DurableError::Corrupt(_)) => continue,
            }
        }

        // Replay every WAL segment; inserts are idempotent, so records
        // already covered by the checkpoint are harmless.
        let mut closed = Vec::with_capacity(segs.len());
        let mut next_seq = 0u64;
        for (seq, path) in &segs {
            next_seq = next_seq.max(seq + 1);
            let bytes = fs::read(path)?;
            let replay = match wal::replay_segment(&bytes) {
                Ok(r) => r,
                // A segment that is not even structurally a WAL file is
                // rejected whole, never replayed as data.
                Err(DurableError::Corrupt(_)) => continue,
                Err(e) => return Err(e),
            };
            if replay.good_len < bytes.len() {
                info.truncated_bytes += (bytes.len() - replay.good_len) as u64;
                let file = fs::OpenOptions::new().write(true).open(path)?;
                file.set_len(replay.good_len as u64)?;
            }
            let mut max_ut = Timestamp::ZERO;
            for v in replay.versions {
                max_ut = max_ut.max(v.ut);
                info.replayed_records += 1;
                mem.apply(v.key, v.value, v.ut, v.tx, v.src);
            }
            closed.push(ClosedSegment {
                path: path.clone(),
                seq: *seq,
                max_ut,
            });
        }

        // Everything recovered is in memory now; fold the per-source
        // high-water marks the server needs to restart its clocks.
        let mut by_src: std::collections::BTreeMap<DcId, Timestamp> =
            std::collections::BTreeMap::new();
        mem.for_each_chain(|_, chain| {
            for v in chain.iter() {
                let e = by_src.entry(v.src).or_insert(Timestamp::ZERO);
                *e = (*e).max(v.ut);
            }
        });
        info.max_ut_by_src = by_src.into_iter().collect();

        // New writes go to a fresh segment after the replayed ones.
        let writer = SegmentWriter::create(&cfg.dir, next_seq)?;
        let engine = DurableEngine {
            mem,
            log: Mutex::new(LogState {
                writer,
                closed,
                last_ckpt_ust: info.ust,
                last_ckpt_micros: None,
                wal_failed: false,
            }),
            last_horizon: AtomicU64::new(info.s_old.as_u64()),
            cfg,
            wal_bytes: AtomicU64::new(0),
            wal_records: AtomicU64::new(0),
            wal_syncs: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            checkpoint_bytes: AtomicU64::new(0),
            segments_pruned: AtomicU64::new(0),
        };
        Ok((engine, info))
    }

    /// The engine's configuration.
    pub fn config(&self) -> &DurableConfig {
        &self.cfg
    }

    fn append_to_wal(&self, v: &Version) {
        let mut log = self.log.lock().expect("wal state poisoned");
        if log.wal_failed {
            return;
        }
        let result = log.writer.append(v).and_then(|bytes| {
            self.wal_bytes.fetch_add(bytes, Ordering::Relaxed);
            self.wal_records.fetch_add(1, Ordering::Relaxed);
            if self.cfg.fsync == FsyncPolicy::Always {
                self.wal_syncs.fetch_add(1, Ordering::Relaxed);
                log.writer.sync()?;
            }
            Ok(())
        });
        if let Err(e) = result {
            // `apply` cannot fail (the in-memory write already
            // happened); degrade to memory-only and say so once.
            log.wal_failed = true;
            eprintln!(
                "paris-storage: WAL append failed, durability degraded: {e} ({})",
                self.cfg.dir.display()
            );
        }
    }

    /// Deletes closed segments whose every record is both frozen into a
    /// checkpoint and at or below `cover`.
    fn prune_segments(&self, log: &mut LogState, cover: Timestamp) {
        let before = log.closed.len();
        let mut kept = Vec::with_capacity(before);
        for seg in log.closed.drain(..) {
            if seg.max_ut <= cover {
                let _ = fs::remove_file(&seg.path);
            } else {
                kept.push(seg);
            }
        }
        self.segments_pruned
            .fetch_add((before - kept.len()) as u64, Ordering::Relaxed);
        log.closed = kept;
    }

    /// Deletes checkpoint files older than the newest one.
    fn prune_checkpoints(&self, newest: Timestamp) {
        let Ok(entries) = fs::read_dir(&self.cfg.dir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(ust) = checkpoint::parse_checkpoint_name(name) {
                if ust < newest {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
    }
}

impl Engine for DurableEngine {
    fn apply(&self, key: Key, value: Value, ut: Timestamp, tx: TxId, src: DcId) -> bool {
        let inserted = self.mem.apply(key, value.clone(), ut, tx, src);
        if inserted {
            self.append_to_wal(&Version::new(key, value, ut, tx, src));
        }
        inserted
    }

    fn read_at(&self, key: Key, ts: Timestamp) -> Option<Version> {
        self.mem.read_at(key, ts)
    }

    fn latest(&self, key: Key) -> Option<Version> {
        self.mem.latest(key)
    }

    fn chain(&self, key: Key) -> Option<VersionChain> {
        self.mem.chain(key)
    }

    fn gc(&self, s_old: Timestamp) -> usize {
        self.last_horizon
            .fetch_max(s_old.as_u64(), Ordering::Relaxed);
        let removed = self.mem.gc(s_old);
        // Log truncation rides the GC horizon: a closed segment may go
        // once a checkpoint covers it *and* the horizon passed it, so
        // nothing below S_old ever needs the log again.
        let mut log = self.log.lock().expect("wal state poisoned");
        let cover = log.last_ckpt_ust.min(s_old);
        self.prune_segments(&mut log, cover);
        removed
    }

    fn for_each_chain(&self, f: &mut dyn FnMut(Key, &VersionChain)) {
        self.mem.for_each_chain(f);
    }

    fn stats(&self) -> StoreStats {
        self.mem.stats()
    }

    fn shard_count(&self) -> usize {
        self.mem.shard_count()
    }

    fn shard_index(&self, key: Key) -> usize {
        self.mem.shard_index(key)
    }

    fn maybe_checkpoint(&self, ust: Timestamp, now_micros: u64) -> bool {
        let mut log = self.log.lock().expect("wal state poisoned");
        match log.last_ckpt_micros {
            None => {
                // First observation sets the cadence baseline.
                log.last_ckpt_micros = Some(now_micros);
                return false;
            }
            Some(at) if now_micros.saturating_sub(at) < self.cfg.checkpoint_interval_micros => {
                return false;
            }
            Some(_) => {}
        }
        if ust <= log.last_ckpt_ust || ust == Timestamp::ZERO {
            return false;
        }

        // Collect the stable prefix under the log lock: any version
        // whose WAL record made it into the closing segment was applied
        // to memory before we took this lock, so the scan cannot miss a
        // record the rotation is about to seal (see prune rule below).
        let mut stable: Vec<Version> = Vec::new();
        self.mem.for_each_chain(|_, chain| {
            for v in chain.iter() {
                if v.ut <= ust {
                    stable.push(v.clone());
                }
            }
        });
        let meta = CheckpointMeta {
            ust,
            s_old: Timestamp::from_u64(self.last_horizon.load(Ordering::Relaxed)),
        };
        let sync = self.cfg.fsync == FsyncPolicy::Always;
        match checkpoint::write_checkpoint(&self.cfg.dir, meta, &stable, sync) {
            Ok((_, bytes)) => {
                self.checkpoints.fetch_add(1, Ordering::Relaxed);
                self.checkpoint_bytes.fetch_add(bytes, Ordering::Relaxed);
            }
            Err(e) => {
                eprintln!(
                    "paris-storage: checkpoint failed: {e} ({})",
                    self.cfg.dir.display()
                );
                return false;
            }
        }

        // Rotate the log and drop everything the checkpoint now covers.
        let next_seq = log.writer.seq() + 1;
        match SegmentWriter::create(&self.cfg.dir, next_seq) {
            Ok(fresh) => {
                let sealed = std::mem::replace(&mut log.writer, fresh);
                log.closed.push(sealed.close());
            }
            Err(e) => {
                eprintln!(
                    "paris-storage: WAL rotation failed: {e} ({})",
                    self.cfg.dir.display()
                );
            }
        }
        self.prune_segments(&mut log, ust);
        self.prune_checkpoints(ust);
        log.last_ckpt_ust = ust;
        log.last_ckpt_micros = Some(now_micros);
        true
    }

    fn durable_stats(&self) -> Option<DurableStats> {
        Some(DurableStats {
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
            wal_records: self.wal_records.load(Ordering::Relaxed),
            wal_syncs: self.wal_syncs.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            checkpoint_bytes: self.checkpoint_bytes.load(Ordering::Relaxed),
            segments_pruned: self.segments_pruned.load(Ordering::Relaxed),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paris_types::{PartitionId, ServerId};

    fn tx(src: u16, seq: u64) -> TxId {
        TxId::new(ServerId::new(DcId(src), PartitionId(0)), seq)
    }

    fn ts(t: u64) -> Timestamp {
        Timestamp::from_physical_micros(t)
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("paris-durable-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn cfg(dir: &PathBuf) -> DurableConfig {
        DurableConfig::new(dir).checkpoint_interval_micros(1_000)
    }

    #[test]
    fn reopen_recovers_applied_versions_from_wal_alone() {
        let dir = tmpdir("wal-only");
        {
            let (eng, info) = DurableEngine::open(cfg(&dir), 4).unwrap();
            assert_eq!(info, RecoveryInfo::default());
            for t in 1..=20u64 {
                assert!(eng.apply(Key(t % 5), Value::filled(8, t), ts(t), tx(0, t), DcId(0)));
            }
        }
        let (eng, info) = DurableEngine::open(cfg(&dir), 4).unwrap();
        assert_eq!(info.replayed_records, 20);
        assert_eq!(info.checkpoint_versions, 0);
        assert_eq!(info.max_ut_by_src, vec![(DcId(0), ts(20))]);
        assert_eq!(eng.stats().versions, 20);
        assert_eq!(eng.latest(Key(0)).unwrap().ut, ts(20));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_then_reopen_uses_it_and_prunes_log() {
        let dir = tmpdir("ckpt");
        {
            let (eng, _) = DurableEngine::open(cfg(&dir), 4).unwrap();
            for t in 1..=10u64 {
                eng.apply(Key(t), Value::filled(8, t), ts(t), tx(1, t), DcId(1));
            }
            assert!(
                !eng.maybe_checkpoint(ts(10), 0),
                "first call only arms cadence"
            );
            assert!(eng.maybe_checkpoint(ts(10), 2_000), "interval elapsed");
            // Everything ≤ 10 froze; the pre-rotation segment is gone.
            assert_eq!(eng.durable_stats().unwrap().checkpoints, 1);
            assert_eq!(eng.durable_stats().unwrap().segments_pruned, 1);
            // Writes after the checkpoint land in the fresh segment.
            eng.apply(Key(99), Value::filled(8, 11), ts(11), tx(1, 11), DcId(1));
        }
        let (eng, info) = DurableEngine::open(cfg(&dir), 4).unwrap();
        assert_eq!(info.ust, ts(10));
        assert_eq!(info.checkpoint_versions, 10);
        assert_eq!(info.replayed_records, 1, "only the post-checkpoint suffix");
        assert_eq!(info.max_recovered(), ts(11));
        assert_eq!(eng.stats().versions, 11);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_wal_tail_is_truncated_on_open() {
        let dir = tmpdir("torn");
        {
            let (eng, _) = DurableEngine::open(cfg(&dir), 4).unwrap();
            for t in 1..=5u64 {
                eng.apply(Key(t), Value::filled(8, t), ts(t), tx(0, t), DcId(0));
            }
        }
        // Tear the last record of the only non-empty segment.
        let seg = wal::segment_path(&dir, 0);
        let bytes = fs::read(&seg).unwrap();
        fs::write(&seg, &bytes[..bytes.len() - 2]).unwrap();
        let (eng, info) = DurableEngine::open(cfg(&dir), 4).unwrap();
        assert_eq!(info.replayed_records, 4);
        assert!(info.truncated_bytes > 0);
        assert_eq!(eng.stats().versions, 4);
        assert!(eng.latest(Key(5)).is_none(), "torn record is gone");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_checkpoint_falls_back_to_older_or_wal() {
        let dir = tmpdir("fallback");
        {
            let (eng, _) = DurableEngine::open(cfg(&dir), 4).unwrap();
            for t in 1..=6u64 {
                eng.apply(Key(t), Value::filled(8, t), ts(t), tx(0, t), DcId(0));
            }
            assert!(!eng.maybe_checkpoint(ts(6), 0));
            assert!(eng.maybe_checkpoint(ts(6), 5_000));
        }
        // Corrupt the (only) checkpoint: recovery must still rebuild
        // from whatever WAL suffix remains — but the pre-checkpoint
        // segment was pruned, so only post-checkpoint data survives.
        // Write more first, then corrupt.
        {
            let (eng, _) = DurableEngine::open(cfg(&dir), 4).unwrap();
            eng.apply(Key(7), Value::filled(8, 7), ts(7), tx(0, 7), DcId(0));
        }
        let ckpt = checkpoint::checkpoint_path(&dir, ts(6));
        let mut bytes = fs::read(&ckpt).unwrap();
        bytes[6] ^= 0xFF;
        fs::write(&ckpt, &bytes).unwrap();
        let (eng, info) = DurableEngine::open(cfg(&dir), 4).unwrap();
        assert_eq!(info.ust, Timestamp::ZERO, "corrupt checkpoint skipped");
        assert_eq!(info.checkpoint_versions, 0);
        assert_eq!(eng.stats().versions, info.replayed_records as usize);
        assert!(eng.latest(Key(7)).is_some(), "WAL suffix still replayed");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gc_prunes_covered_segments_under_horizon() {
        let dir = tmpdir("gc-prune");
        let (eng, _) = DurableEngine::open(cfg(&dir), 4).unwrap();
        for t in 1..=4u64 {
            eng.apply(Key(t), Value::filled(8, t), ts(t), tx(0, t), DcId(0));
        }
        assert!(!eng.maybe_checkpoint(ts(4), 0));
        assert!(eng.maybe_checkpoint(ts(4), 2_000));
        // Segment 1 gets records above the checkpoint.
        for t in 5..=6u64 {
            eng.apply(Key(t), Value::filled(8, t), ts(t), tx(0, t), DcId(0));
        }
        assert!(eng.maybe_checkpoint(ts(5), 4_000), "second checkpoint at 5");
        // Segment 1's max_ut is 6 > 5: still needed, not pruned.
        assert_eq!(eng.durable_stats().unwrap().segments_pruned, 1);
        // Checkpoint 6 covers it, and GC passing the horizon prunes it.
        assert!(eng.maybe_checkpoint(ts(6), 6_000));
        eng.gc(ts(6));
        assert_eq!(eng.durable_stats().unwrap().segments_pruned, 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durable_engine_is_a_usable_engine_object() {
        let dir = tmpdir("object");
        let (eng, _) = DurableEngine::open(cfg(&dir), 4).unwrap();
        let eng: std::sync::Arc<dyn Engine> = std::sync::Arc::new(eng);
        eng.apply(Key(1), Value::filled(8, 1), ts(1), tx(0, 1), DcId(0));
        assert_eq!(eng.read_at(Key(1), ts(1)).unwrap().ut, ts(1));
        let mut seen = 0;
        eng.for_each_chain(&mut |_, _| seen += 1);
        assert_eq!(seen, 1);
        assert!(eng.durable_stats().unwrap().wal_records == 1);
        fs::remove_dir_all(&dir).unwrap();
    }
}
