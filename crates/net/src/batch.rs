//! Per-link coalescing of background traffic.
//!
//! PaRiS's data path ships one wire message per replication push and one
//! gossip frame per tree edge per tick, so per-message overhead — not
//! metadata — dominates once deployments grow. The [`Coalescer`] sits
//! between the protocol state machines and a substrate (simulated network
//! or threaded router): background envelopes are queued per directed link
//! and folded into at most one [`Msg::ReplicateBatch`] and one
//! [`Msg::GossipDigest`] wire message, flushed when
//! [`BatchConfig::max_batch`] logical frames have accumulated or the
//! oldest frame reaches the link's [`FlushPolicy`] deadline.
//!
//! Deadlines come in two flavours: `Fixed` flushes a constant interval
//! after a link's first queued frame, while `Adaptive` (the default)
//! gives each link its own controller — a [`LinkLoad`] EWMA of the
//! frame inter-arrival gap — so a hot link flushes after roughly two
//! gaps (small delay, still folding) and a quiet link stretches its
//! deadline toward the configured ceiling. The deadline is always inside
//! the configured `[min_flush, max_flush]` bounds.
//!
//! Foreground transaction traffic (client operations, read fan-out, 2PC)
//! is latency-critical and always passes through untouched.
//!
//! The fold is exact, not lossy, because every coalesced protocol is
//! monotonic over FIFO links:
//!
//! * `Replicate` frames concatenate in order (frame *n+1*'s transactions
//!   all have `ct` above frame *n*'s watermark) and keep the newest
//!   watermark; `Heartbeat`s fold into that watermark.
//! * `GstReport` / `RootGst` / `UstBroadcast` handlers keep only the
//!   freshest value per source, so the digest keeps the latest report per
//!   partition, the latest GST per DC and the maximum UST.

use std::collections::BTreeMap;

use paris_proto::wire::envelope_len_with;
use paris_proto::{DigestReport, Endpoint, Envelope, Msg, ReplicatedTx};
use paris_types::{BatchConfig, DcId, FlushPolicy, PartitionId, Timestamp, WireFormat};

/// Per-link arrival-rate estimate feeding the adaptive [`FlushPolicy`]:
/// an exponentially-weighted moving average of the gap between
/// consecutive background frames on one directed link. The state
/// survives flushes (unlike the link's frame queue), so the controller
/// remembers how busy a link was across batch windows.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkLoad {
    last_arrival: Option<u64>,
    ewma_gap: Option<u64>,
}

impl LinkLoad {
    /// Weight of history in the gap EWMA: `new = (3·old + sample) / 4`.
    /// Converges within a handful of frames without whipsawing on one
    /// odd gap.
    const HISTORY_WEIGHT: u64 = 3;

    /// Records a frame arrival at `now` (monotone microseconds).
    pub fn observe(&mut self, now: u64) {
        if let Some(last) = self.last_arrival {
            let sample = now.saturating_sub(last);
            self.ewma_gap = Some(match self.ewma_gap {
                None => sample,
                Some(ewma) => {
                    (Self::HISTORY_WEIGHT
                        .saturating_mul(ewma)
                        .saturating_add(sample))
                        / (Self::HISTORY_WEIGHT + 1)
                }
            });
        }
        self.last_arrival = Some(self.last_arrival.unwrap_or(0).max(now));
    }

    /// The estimated mean inter-arrival gap, once two frames have been
    /// seen.
    pub fn gap_micros(&self) -> Option<u64> {
        self.ewma_gap
    }

    /// The flush deadline `policy` assigns this link right now.
    pub fn deadline_micros(&self, policy: &FlushPolicy) -> u64 {
        policy.interval_micros(self.ewma_gap)
    }
}

/// Outcome of [`Coalescer::offer`].
#[derive(Debug)]
pub enum Offer {
    /// Not coalescable (foreground traffic) or batching disabled: send the
    /// envelope as-is, now.
    Pass(Envelope),
    /// The envelope was queued and its link hit the size trigger: send
    /// these flushed wire messages now.
    Flush(Vec<Envelope>),
    /// The envelope was queued; nothing to send until `next_due` (the
    /// earliest flush deadline across all links), when the caller should
    /// invoke [`Coalescer::poll`].
    Queued {
        /// Earliest pending flush deadline, in the caller's microsecond
        /// timebase.
        next_due: u64,
    },
}

/// Running totals of what the coalescer has seen and produced.
///
/// Byte totals are envelope-framed sizes in the coalescer's active
/// [`WireFormat`]: `bytes_in` is what the queued frames would have cost
/// sent as-is, `bytes_out` what the folded wire messages actually cost —
/// so `bytes_in - bytes_out` is the wire traffic coalescing saved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoalescerStats {
    /// Logical background frames offered and queued.
    pub frames_in: u64,
    /// Wire messages flushed out.
    pub messages_out: u64,
    /// Link flushes triggered by the size bound (`max_batch`).
    pub size_flushes: u64,
    /// Link flushes triggered by a deadline (or a forced `flush_all`).
    pub deadline_flushes: u64,
    /// Encoded bytes of the frames offered and queued.
    pub bytes_in: u64,
    /// Encoded bytes of the wire messages flushed out.
    pub bytes_out: u64,
}

#[derive(Debug)]
struct RepAccum {
    partition: PartitionId,
    txs: Vec<ReplicatedTx>,
    watermark: Timestamp,
}

#[derive(Debug, Default)]
struct LinkQueue {
    /// Flush deadline: first enqueue time + flush interval (not extended
    /// by later frames, so no frame waits longer than one interval).
    due: u64,
    /// Replication-class logical frames folded in so far.
    rep_frames: u32,
    /// Gossip-class logical frames folded in so far.
    gossip_frames: u32,
    rep: Option<RepAccum>,
    reports: Vec<DigestReport>,
    roots: Vec<(DcId, Timestamp, Timestamp)>,
    ust: Option<(Timestamp, Timestamp)>,
}

impl LinkQueue {
    fn fold(&mut self, msg: Msg) {
        match msg {
            Msg::Replicate {
                partition,
                txs,
                watermark,
            } => {
                self.rep_frames += 1;
                self.fold_rep(partition, txs, watermark);
            }
            Msg::Heartbeat {
                partition,
                watermark,
            } => {
                self.rep_frames += 1;
                self.fold_rep(partition, Vec::new(), watermark);
            }
            Msg::ReplicateBatch {
                partition,
                txs,
                watermark,
                frames,
            } => {
                self.rep_frames += frames;
                self.fold_rep(partition, txs, watermark);
            }
            Msg::GstReport {
                partition,
                mins,
                oldest_active,
            } => {
                self.gossip_frames += 1;
                self.fold_report(DigestReport {
                    partition,
                    mins,
                    oldest_active,
                });
            }
            Msg::RootGst {
                dc,
                gst,
                oldest_active,
            } => {
                self.gossip_frames += 1;
                self.fold_root(dc, gst, oldest_active);
            }
            Msg::UstBroadcast { ust, s_old } => {
                self.gossip_frames += 1;
                self.fold_ust(ust, s_old);
            }
            Msg::GossipDigest {
                reports,
                roots,
                ust,
                frames,
            } => {
                self.gossip_frames += frames;
                for r in reports {
                    self.fold_report(r);
                }
                for (dc, gst, oldest) in roots {
                    self.fold_root(dc, gst, oldest);
                }
                if let Some((u, s)) = ust {
                    self.fold_ust(u, s);
                }
            }
            other => unreachable!("foreground message offered to fold: {}", other.kind()),
        }
    }

    fn frames(&self) -> u32 {
        self.rep_frames + self.gossip_frames
    }

    fn fold_rep(&mut self, partition: PartitionId, txs: Vec<ReplicatedTx>, watermark: Timestamp) {
        match self.rep.as_mut() {
            None => {
                self.rep = Some(RepAccum {
                    partition,
                    txs,
                    watermark,
                })
            }
            Some(acc) => {
                debug_assert_eq!(acc.partition, partition, "one partition per replica link");
                acc.txs.extend(txs);
                acc.watermark = acc.watermark.max(watermark);
            }
        }
    }

    fn fold_report(&mut self, report: DigestReport) {
        match self
            .reports
            .iter_mut()
            .find(|r| r.partition == report.partition)
        {
            // FIFO makes the later report the fresher one.
            Some(slot) => *slot = report,
            None => self.reports.push(report),
        }
    }

    fn fold_root(&mut self, dc: DcId, gst: Timestamp, oldest: Timestamp) {
        match self.roots.iter_mut().find(|(d, _, _)| *d == dc) {
            Some((_, g, o)) => {
                *g = (*g).max(gst);
                *o = (*o).max(oldest);
            }
            None => self.roots.push((dc, gst, oldest)),
        }
    }

    fn fold_ust(&mut self, ust: Timestamp, s_old: Timestamp) {
        let (u, s) = self.ust.unwrap_or((Timestamp::ZERO, Timestamp::ZERO));
        self.ust = Some((u.max(ust), s.max(s_old)));
    }

    fn into_messages(self) -> Vec<Msg> {
        let mut out = Vec::with_capacity(2);
        if let Some(rep) = self.rep {
            out.push(Msg::ReplicateBatch {
                partition: rep.partition,
                txs: rep.txs,
                watermark: rep.watermark,
                frames: self.rep_frames,
            });
        }
        if !self.reports.is_empty() || !self.roots.is_empty() || self.ust.is_some() {
            out.push(Msg::GossipDigest {
                reports: self.reports,
                roots: self.roots,
                ust: self.ust,
                frames: self.gossip_frames,
            });
        }
        out
    }
}

/// The per-link batching queue. See the module docs.
#[derive(Debug)]
pub struct Coalescer {
    cfg: BatchConfig,
    /// Encoding the owning link speaks; sizes the byte accounting.
    wire: WireFormat,
    links: BTreeMap<(Endpoint, Endpoint), LinkQueue>,
    /// Per-link arrival-rate controllers; unlike `links`, entries persist
    /// across flushes so the adaptive deadline remembers link load.
    loads: BTreeMap<(Endpoint, Endpoint), LinkLoad>,
    stats: CoalescerStats,
}

impl Coalescer {
    /// Creates a coalescer with the given policy, accounting bytes in the
    /// given (negotiated) wire format.
    pub fn new(cfg: BatchConfig, wire: WireFormat) -> Self {
        Coalescer {
            cfg,
            wire,
            links: BTreeMap::new(),
            loads: BTreeMap::new(),
            stats: CoalescerStats::default(),
        }
    }

    /// Whether this coalescer batches anything at all.
    pub fn is_enabled(&self) -> bool {
        self.cfg.is_enabled()
    }

    /// Whether `msg` belongs to the background classes the coalescer may
    /// delay and fold.
    pub fn is_coalescable(msg: &Msg) -> bool {
        msg.is_background()
    }

    /// Offers an envelope at time `now` (microseconds, caller's timebase).
    pub fn offer(&mut self, env: Envelope, now: u64) -> Offer {
        if !self.cfg.is_enabled() || !Self::is_coalescable(&env.msg) {
            return Offer::Pass(env);
        }
        let key = (env.src, env.dst);
        let deadline = match self.cfg.flush {
            // Fixed deadlines don't depend on link load: keep the PR-2
            // hot path free of per-frame rate bookkeeping.
            FlushPolicy::Fixed { interval_micros } => interval_micros,
            FlushPolicy::Adaptive { .. } => {
                let load = self.loads.entry(key).or_default();
                load.observe(now);
                load.deadline_micros(&self.cfg.flush)
            }
        };
        let queue = self.links.entry(key).or_insert_with(|| LinkQueue {
            due: now + deadline,
            ..LinkQueue::default()
        });
        self.stats.bytes_in += envelope_len_with(&env, self.wire) as u64;
        queue.fold(env.msg);
        self.stats.frames_in += 1;
        if queue.frames() as usize >= self.cfg.max_batch {
            let queue = self.links.remove(&key).expect("just inserted");
            self.stats.size_flushes += 1;
            Offer::Flush(self.drain(key, queue))
        } else {
            Offer::Queued {
                next_due: self.next_due().expect("just queued"),
            }
        }
    }

    /// Flushes every link whose deadline has passed; returns the wire
    /// messages to send.
    pub fn poll(&mut self, now: u64) -> Vec<Envelope> {
        let due: Vec<(Endpoint, Endpoint)> = self
            .links
            .iter()
            .filter(|(_, q)| q.due <= now)
            .map(|(k, _)| *k)
            .collect();
        let mut out = Vec::new();
        for key in due {
            let queue = self.links.remove(&key).expect("collected above");
            self.stats.deadline_flushes += 1;
            out.extend(self.drain(key, queue));
        }
        out
    }

    /// Flushes everything regardless of deadlines (shutdown, quiesce).
    pub fn flush_all(&mut self) -> Vec<Envelope> {
        let keys: Vec<(Endpoint, Endpoint)> = self.links.keys().copied().collect();
        let mut out = Vec::new();
        for key in keys {
            let queue = self.links.remove(&key).expect("keyed");
            self.stats.deadline_flushes += 1;
            out.extend(self.drain(key, queue));
        }
        out
    }

    /// The arrival-rate estimate of one directed link (tests, metrics).
    pub fn link_load(&self, src: Endpoint, dst: Endpoint) -> Option<LinkLoad> {
        self.loads.get(&(src, dst)).copied()
    }

    /// The earliest pending flush deadline, if any link is queued.
    pub fn next_due(&self) -> Option<u64> {
        self.links.values().map(|q| q.due).min()
    }

    /// Number of links currently holding queued frames.
    pub fn pending_links(&self) -> usize {
        self.links.len()
    }

    /// Running totals.
    pub fn stats(&self) -> CoalescerStats {
        self.stats
    }

    fn drain(&mut self, key: (Endpoint, Endpoint), queue: LinkQueue) -> Vec<Envelope> {
        let (src, dst) = key;
        let msgs = queue.into_messages();
        self.stats.messages_out += msgs.len() as u64;
        let out: Vec<Envelope> = msgs
            .into_iter()
            .map(|msg| Envelope { src, dst, msg })
            .collect();
        self.stats.bytes_out += out
            .iter()
            .map(|env| envelope_len_with(env, self.wire) as u64)
            .sum::<u64>();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paris_types::{ClientId, Key, ServerId, TxId, Value, WriteSetEntry};

    fn cfg(max_batch: usize, flush: u64) -> BatchConfig {
        BatchConfig::fixed(max_batch, flush)
    }

    fn coal(cfg: BatchConfig) -> Coalescer {
        Coalescer::new(cfg, WireFormat::V1)
    }

    fn srv(dc: u16, p: u32) -> ServerId {
        ServerId::new(DcId(dc), PartitionId(p))
    }

    fn ts(t: u64) -> Timestamp {
        Timestamp::from_physical_micros(t)
    }

    fn replicate(seq: u64, ct: u64, wm: u64) -> Msg {
        Msg::Replicate {
            partition: PartitionId(0),
            txs: vec![ReplicatedTx {
                tx: TxId::new(srv(0, 0), seq),
                ct: ts(ct),
                src: DcId(0),
                writes: vec![WriteSetEntry::new(Key(seq), Value::from("v"))],
            }],
            watermark: ts(wm),
        }
    }

    fn env(msg: Msg) -> Envelope {
        Envelope::new(srv(0, 0), srv(1, 0), msg)
    }

    #[test]
    fn disabled_coalescer_passes_everything_through() {
        let mut c = coal(BatchConfig::DISABLED);
        assert!(!c.is_enabled());
        match c.offer(env(replicate(1, 10, 20)), 0) {
            Offer::Pass(e) => assert!(matches!(e.msg, Msg::Replicate { .. })),
            other => panic!("expected pass-through, got {other:?}"),
        }
        assert_eq!(c.pending_links(), 0);
    }

    #[test]
    fn foreground_traffic_is_never_batched() {
        let mut c = coal(cfg(8, 1_000));
        let fg = Envelope::new(
            ClientId::new(DcId(0), 1),
            srv(0, 0),
            Msg::StartTxReq {
                client_ust: Timestamp::ZERO,
            },
        );
        assert!(matches!(c.offer(fg, 0), Offer::Pass(_)));
    }

    #[test]
    fn size_trigger_flushes_a_merged_batch_in_order() {
        let mut c = coal(cfg(3, 1_000_000));
        assert!(matches!(
            c.offer(env(replicate(1, 10, 20)), 0),
            Offer::Queued { .. }
        ));
        assert!(matches!(
            c.offer(env(replicate(2, 30, 40)), 5),
            Offer::Queued { .. }
        ));
        let flushed = match c.offer(env(replicate(3, 50, 60)), 9) {
            Offer::Flush(envs) => envs,
            other => panic!("expected size flush, got {other:?}"),
        };
        assert_eq!(flushed.len(), 1);
        match &flushed[0].msg {
            Msg::ReplicateBatch {
                txs,
                watermark,
                frames,
                ..
            } => {
                assert_eq!(*frames, 3);
                assert_eq!(*watermark, ts(60), "newest watermark survives");
                let cts: Vec<u64> = txs.iter().map(|t| t.ct.physical_micros()).collect();
                assert_eq!(cts, vec![10, 30, 50], "ct order preserved across frames");
            }
            other => panic!("expected ReplicateBatch, got {}", other.kind()),
        }
        assert_eq!(c.pending_links(), 0);
    }

    #[test]
    fn heartbeats_fold_into_the_watermark() {
        let mut c = coal(cfg(2, 1_000));
        let hb = |wm: u64| {
            env(Msg::Heartbeat {
                partition: PartitionId(0),
                watermark: ts(wm),
            })
        };
        c.offer(hb(10), 0);
        let flushed = match c.offer(hb(20), 1) {
            Offer::Flush(envs) => envs,
            other => panic!("expected flush, got {other:?}"),
        };
        match &flushed[0].msg {
            Msg::ReplicateBatch {
                txs,
                watermark,
                frames,
                ..
            } => {
                assert!(txs.is_empty());
                assert_eq!(*watermark, ts(20));
                assert_eq!(*frames, 2);
            }
            other => panic!("unexpected {}", other.kind()),
        }
    }

    #[test]
    fn time_trigger_flushes_on_poll() {
        let mut c = coal(cfg(100, 500));
        match c.offer(env(replicate(1, 10, 20)), 1_000) {
            Offer::Queued { next_due } => assert_eq!(next_due, 1_500),
            other => panic!("expected queue, got {other:?}"),
        }
        assert!(c.poll(1_499).is_empty(), "not due yet");
        let flushed = c.poll(1_500);
        assert_eq!(flushed.len(), 1);
        assert_eq!(c.next_due(), None);
    }

    #[test]
    fn gossip_folds_to_freshest_per_source() {
        let mut c = coal(cfg(100, 1_000));
        let report = |wm: u64, oldest: u64| {
            Envelope::new(
                srv(0, 1),
                srv(0, 0),
                Msg::GstReport {
                    partition: PartitionId(1),
                    mins: vec![(DcId(0), ts(wm))],
                    oldest_active: ts(oldest),
                },
            )
        };
        c.offer(report(10, 5), 0);
        c.offer(report(30, 25), 10);
        c.offer(
            Envelope::new(
                srv(0, 1),
                srv(0, 0),
                Msg::UstBroadcast {
                    ust: ts(8),
                    s_old: ts(4),
                },
            ),
            20,
        );
        let flushed = c.flush_all();
        assert_eq!(flushed.len(), 1, "one digest for the whole link");
        match &flushed[0].msg {
            Msg::GossipDigest {
                reports,
                roots,
                ust,
                frames,
            } => {
                assert_eq!(*frames, 3);
                assert_eq!(reports.len(), 1, "stale report superseded");
                assert_eq!(reports[0].mins[0].1, ts(30));
                assert_eq!(reports[0].oldest_active, ts(25));
                assert!(roots.is_empty());
                assert_eq!(*ust, Some((ts(8), ts(4))));
            }
            other => panic!("unexpected {}", other.kind()),
        }
    }

    #[test]
    fn mixed_link_produces_batch_and_digest() {
        let mut c = coal(cfg(100, 1_000));
        c.offer(env(replicate(1, 10, 20)), 0);
        c.offer(
            env(Msg::RootGst {
                dc: DcId(0),
                gst: ts(7),
                oldest_active: ts(3),
            }),
            0,
        );
        let flushed = c.flush_all();
        assert_eq!(flushed.len(), 2);
        assert!(matches!(flushed[0].msg, Msg::ReplicateBatch { .. }));
        assert!(matches!(flushed[1].msg, Msg::GossipDigest { .. }));
        let stats = c.stats();
        assert_eq!(stats.frames_in, 2);
        assert_eq!(stats.messages_out, 2);
    }

    #[test]
    fn links_are_independent() {
        let mut c = coal(cfg(2, 1_000));
        let to = |dst: ServerId| Envelope::new(srv(0, 0), dst, replicate(1, 10, 20));
        assert!(matches!(c.offer(to(srv(1, 0)), 0), Offer::Queued { .. }));
        assert!(matches!(c.offer(to(srv(2, 0)), 0), Offer::Queued { .. }));
        assert_eq!(c.pending_links(), 2);
        // A second frame on the first link flushes only that link.
        assert!(matches!(c.offer(to(srv(1, 0)), 1), Offer::Flush(_)));
        assert_eq!(c.pending_links(), 1);
    }

    #[test]
    fn adaptive_deadline_shortens_on_a_hot_link_and_stretches_when_quiet() {
        let mut c = coal(BatchConfig::adaptive(1_000, 500, 10_000));
        // First frame ever: no gap estimate yet, the link is presumed
        // quiet and gets the ceiling.
        match c.offer(env(replicate(1, 10, 20)), 0) {
            Offer::Queued { next_due } => assert_eq!(next_due, 10_000),
            other => panic!("expected queue, got {other:?}"),
        }
        c.poll(10_000);
        // A hot burst (100 µs gaps) drives the deadline to the floor.
        let mut now = 10_000;
        for seq in 2..40 {
            now += 100;
            c.offer(env(replicate(seq, 10 * seq, 20 * seq)), now);
            c.poll(now + 20_000); // drain so windows keep reopening
        }
        let src = srv(0, 0).into();
        let dst = srv(1, 0).into();
        let load = c.link_load(src, dst).expect("tracked");
        assert_eq!(
            load.deadline_micros(&c.cfg.flush),
            500,
            "hot link must flush at the floor (gap ≈ 100 µs)"
        );
        // A long idle period stretches the estimate back toward quiet.
        now += 1_000_000;
        c.offer(env(replicate(99, 990, 999)), now);
        let load = c.link_load(src, dst).expect("tracked");
        assert_eq!(
            load.deadline_micros(&c.cfg.flush),
            10_000,
            "a 1 s gap must stretch the deadline to the ceiling"
        );
    }

    #[test]
    fn adaptive_load_state_survives_flushes() {
        let mut c = coal(BatchConfig::adaptive(2, 500, 10_000));
        // Size-trigger flush after two frames 200 µs apart.
        c.offer(env(replicate(1, 10, 20)), 0);
        assert!(matches!(
            c.offer(env(replicate(2, 30, 40)), 200),
            Offer::Flush(_)
        ));
        assert_eq!(c.pending_links(), 0, "queue gone after flush");
        // The controller remembered the 200 µs gap: the next window opens
        // with a floor deadline, not the quiet ceiling.
        match c.offer(env(replicate(3, 50, 60)), 400) {
            Offer::Queued { next_due } => assert_eq!(next_due, 400 + 500),
            other => panic!("expected queue, got {other:?}"),
        }
        let stats = c.stats();
        assert_eq!(stats.size_flushes, 1);
    }

    #[test]
    fn stats_distinguish_size_and_deadline_flushes() {
        let mut c = coal(cfg(2, 1_000));
        c.offer(env(replicate(1, 10, 20)), 0);
        c.offer(env(replicate(2, 30, 40)), 1); // size flush
        c.offer(env(replicate(3, 50, 60)), 2);
        assert_eq!(c.poll(5_000).len(), 1); // deadline flush
        c.offer(env(replicate(4, 70, 80)), 6_000);
        assert_eq!(c.flush_all().len(), 1); // forced flush
        let stats = c.stats();
        assert_eq!(stats.size_flushes, 1);
        assert_eq!(stats.deadline_flushes, 2);
        assert_eq!(stats.frames_in, 4);
    }

    #[test]
    fn reoffered_batch_frames_merge_with_exact_counts() {
        let mut c = coal(cfg(100, 1_000));
        c.offer(
            env(Msg::ReplicateBatch {
                partition: PartitionId(0),
                txs: vec![],
                watermark: ts(5),
                frames: 4,
            }),
            0,
        );
        c.offer(env(replicate(9, 30, 40)), 1);
        let flushed = c.flush_all();
        match &flushed[0].msg {
            Msg::ReplicateBatch {
                frames, watermark, ..
            } => {
                assert_eq!(*frames, 5);
                assert_eq!(*watermark, ts(40));
            }
            other => panic!("unexpected {}", other.kind()),
        }
    }

    #[test]
    fn byte_accounting_follows_the_active_encoding_exactly() {
        use paris_proto::wire::envelope_len_with;

        for wire in [WireFormat::V1, WireFormat::V2] {
            let mut c = Coalescer::new(cfg(100, 1_000), wire);
            let offered = [env(replicate(1, 10, 20)), env(replicate(2, 30, 40))];
            let expect_in: u64 = offered
                .iter()
                .map(|e| envelope_len_with(e, wire) as u64)
                .sum();
            for e in offered {
                c.offer(e, 0);
            }
            let flushed = c.flush_all();
            let expect_out: u64 = flushed
                .iter()
                .map(|e| envelope_len_with(e, wire) as u64)
                .sum();
            let stats = c.stats();
            assert_eq!(stats.bytes_in, expect_in, "{wire} bytes_in exact");
            assert_eq!(stats.bytes_out, expect_out, "{wire} bytes_out exact");
            assert!(
                stats.bytes_out < stats.bytes_in,
                "{wire}: folding two frames into one batch must save bytes"
            );
        }
    }
}
