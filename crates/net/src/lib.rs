//! Network substrates for the PaRiS reproduction.
//!
//! The paper evaluates PaRiS on a real AWS deployment spanning up to ten
//! regions. This crate provides the two substitutes used here:
//!
//! * [`sim`] — a deterministic discrete-event simulation: an event queue,
//!   a WAN latency model seeded with measured AWS inter-region RTTs
//!   ([`sim::RegionMatrix::aws_10`]), per-link FIFO enforcement (the paper
//!   assumes lossless FIFO channels, §II-C), a CPU service-time model for
//!   throughput fidelity, and fault injection (DC partitions hold — never
//!   drop — traffic, like TCP does).
//! * [`threaded`] — a real multi-threaded in-process transport built on
//!   crossbeam channels with a delay-wheel latency injector, used by
//!   integration tests to exercise the protocol under true concurrency.
//! * [`socket`] — a real TCP substrate for *multi-process* deployments:
//!   loopback listeners, per-link writer threads and framed envelopes,
//!   the closest shape to the paper's actual testbed.
//!
//! Both substrates carry the same [`paris_proto::Envelope`]s and drive the
//! same protocol state machines, and both can interpose the [`batch`]
//! coalescing layer that folds background traffic into
//! `ReplicateBatch`/`GossipDigest` wire frames.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod sim;
pub mod socket;
pub mod threaded;

pub use batch::{Coalescer, CoalescerStats, LinkLoad, Offer};
