//! Real multi-threaded in-process transport.
//!
//! Endpoints register an inbox; a *delay wheel* thread injects the same
//! WAN latencies as the simulated network (optionally scaled down so tests
//! run fast) while preserving per-link FIFO order. This substrate runs the
//! protocol state machines under genuine concurrency and is what the
//! integration tests use to catch races the deterministic simulator
//! cannot.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Mutex;

use paris_proto::wire::encoded_len_with;
use paris_proto::{Endpoint, Envelope, Msg};
use paris_types::{BatchConfig, DcId, WireFormat};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::batch::{Coalescer, Offer};
use crate::sim::RegionMatrix;

/// Configuration of the threaded transport.
#[derive(Debug, Clone)]
pub struct ThreadedNetConfig {
    /// Inter-DC latency matrix.
    pub matrix: RegionMatrix,
    /// Multiplier applied to every latency (e.g. `0.01` compresses a 70 ms
    /// RTT to 0.7 ms so tests finish quickly while preserving relative
    /// latency structure).
    pub scale: f64,
    /// Jitter fraction (±), applied before scaling.
    pub jitter: f64,
    /// RNG seed for jitter.
    pub seed: u64,
    /// Background-traffic coalescing, applied by the delay wheel before
    /// latency injection. Flush deadlines are wall-clock and *not* scaled
    /// by [`ThreadedNetConfig::scale`].
    pub batch: BatchConfig,
    /// Wire encoding sizing the router's byte accounting (the in-process
    /// wheel never serializes, but reports what the traffic would cost).
    pub wire: WireFormat,
}

impl ThreadedNetConfig {
    /// A fast-test configuration: `dcs` DCs on the AWS matrix compressed
    /// by 100×, no jitter, no batching.
    pub fn fast(dcs: u16) -> Self {
        ThreadedNetConfig {
            matrix: RegionMatrix::aws_10(dcs),
            scale: 0.01,
            jitter: 0.0,
            seed: 0,
            batch: BatchConfig::DISABLED,
            wire: WireFormat::default(),
        }
    }
}

/// Snapshot of the router's traffic counters: everything scheduled onto
/// the (simulated) wire after coalescing, sized in the configured
/// [`ThreadedNetConfig::wire`] encoding.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Wire messages scheduled.
    pub messages: u64,
    /// Encoded message bytes scheduled.
    pub bytes: u64,
    /// The subset of `bytes` carried by background traffic
    /// (replication, heartbeats, stabilization gossip).
    pub background_bytes: u64,
}

#[derive(Debug, Default)]
struct NetCounters {
    messages: AtomicU64,
    bytes: AtomicU64,
    background_bytes: AtomicU64,
}

impl NetCounters {
    fn record(&self, env: &Envelope, wire: WireFormat) {
        let frame = encoded_len_with(&env.msg, wire) as u64;
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(frame, Ordering::Relaxed);
        if env.msg.is_background() {
            self.background_bytes.fetch_add(frame, Ordering::Relaxed);
        }
    }

    fn snapshot(&self) -> NetStats {
        NetStats {
            messages: self.messages.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            background_bytes: self.background_bytes.load(Ordering::Relaxed),
        }
    }
}

enum WheelCmd {
    Send {
        env: Envelope,
        sent_at: Instant,
    },
    /// Fault injection: reconfigure one inter-DC link. Shares the command
    /// channel with `Send`, so a partition is totally ordered against the
    /// traffic around it.
    SetLink {
        a: DcId,
        b: DcId,
        op: LinkOp,
    },
    Shutdown,
}

enum LinkOp {
    /// Cut the link; cross-DC traffic on it is held (TCP semantics), not
    /// dropped.
    Partition,
    /// Reconnect the link and schedule everything held, in FIFO order.
    Heal,
    /// Multiply the link's one-way latency by the factor (≤ 1.0 restores
    /// the nominal latency).
    Scale(f64),
}

/// The unordered map key of the `a`–`b` link.
fn link_key(a: DcId, b: DcId) -> (DcId, DcId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

struct Registry {
    inboxes: HashMap<Endpoint, Sender<Envelope>>,
    read_tap: Option<ReadTap>,
    write_tap: Option<WriteTap>,
    /// Bumped on every [`Router::set_read_tap`] /
    /// [`Router::set_write_tap`], so a pruning delivery that raced a tap
    /// replacement never removes a healthy lane of the new tap.
    tap_epoch: u64,
}

/// Round-robin fan-out of server-bound read-path deliveries
/// (`ReadSliceReq` and `StartTxReq`) into read-pool lanes (see
/// [`Router::set_read_tap`]).
struct ReadTap {
    lanes: Vec<Sender<Envelope>>,
    next: usize,
    epoch: u64,
}

/// Source-keyed fan-out of server-bound write-path deliveries into
/// write-pool lanes (see [`Router::set_write_tap`]). Unlike the read
/// tap there is no round-robin cursor: the lane is a pure function of
/// the envelope's source, so all traffic of one source stays FIFO on
/// one lane — the ordering the commit and replication handlers rely on.
struct WriteTap {
    lanes: Vec<Sender<Envelope>>,
    epoch: u64,
}

/// The in-process network router.
///
/// Create one [`Router`], [`Router::register`] every endpoint (each gets a
/// private [`Receiver`]), then hand cloned [`NetHandle`]s to the threads
/// that drive servers and clients. Dropping the router shuts the wheel
/// down after draining.
pub struct Router {
    registry: Arc<Mutex<Registry>>,
    wheel_tx: Sender<WheelCmd>,
    wheel: Option<JoinHandle<()>>,
    counters: Arc<NetCounters>,
}

/// A cheap cloneable sender into the network.
#[derive(Clone)]
pub struct NetHandle {
    wheel_tx: Sender<WheelCmd>,
}

impl NetHandle {
    /// Sends an envelope; it will be delivered to the destination inbox
    /// after the configured link latency. Messages to unregistered
    /// endpoints are dropped (the destination may have shut down).
    pub fn send(&self, env: Envelope) {
        // Ignore errors: the wheel is gone only during teardown.
        let _ = self.wheel_tx.send(WheelCmd::Send {
            env,
            sent_at: Instant::now(),
        });
    }
}

/// A cheap cloneable fault-injection handle: link partition, heal and
/// latency scaling, executed by the delay-wheel thread in arrival order
/// relative to the traffic around each command.
///
/// A partitioned link *holds* cross-DC traffic instead of dropping it
/// (the TCP model, matching the simulated network); healing releases the
/// held messages in FIFO order. Intra-DC traffic is never affected.
#[derive(Clone)]
pub struct LinkControl {
    wheel_tx: Sender<WheelCmd>,
}

impl LinkControl {
    /// Cuts the `a`–`b` link (both directions).
    pub fn partition_link(&self, a: DcId, b: DcId) {
        let _ = self.wheel_tx.send(WheelCmd::SetLink {
            a,
            b,
            op: LinkOp::Partition,
        });
    }

    /// Reconnects the `a`–`b` link, releasing held traffic.
    pub fn heal_link(&self, a: DcId, b: DcId) {
        let _ = self.wheel_tx.send(WheelCmd::SetLink {
            a,
            b,
            op: LinkOp::Heal,
        });
    }

    /// Multiplies the `a`–`b` link latency by `factor` (≥ 1.0); `1.0`
    /// restores the nominal latency.
    pub fn set_link_scale(&self, a: DcId, b: DcId, factor: f64) {
        let _ = self.wheel_tx.send(WheelCmd::SetLink {
            a,
            b,
            op: LinkOp::Scale(factor),
        });
    }

    /// Cuts every link between `dc` and the other `dcs` DCs.
    pub fn isolate_dc(&self, dc: DcId, dcs: u16) {
        for other in 0..dcs {
            if DcId(other) != dc {
                self.partition_link(dc, DcId(other));
            }
        }
    }

    /// Reconnects every link between `dc` and the other `dcs` DCs.
    pub fn rejoin_dc(&self, dc: DcId, dcs: u16) {
        for other in 0..dcs {
            if DcId(other) != dc {
                self.heal_link(dc, DcId(other));
            }
        }
    }
}

impl Router {
    /// Starts the router and its delay-wheel thread.
    pub fn start(config: ThreadedNetConfig) -> Self {
        let registry = Arc::new(Mutex::new(Registry {
            inboxes: HashMap::new(),
            read_tap: None,
            write_tap: None,
            tap_epoch: 0,
        }));
        let (wheel_tx, wheel_rx) = channel::<WheelCmd>();
        let wheel_registry = Arc::clone(&registry);
        let counters = Arc::new(NetCounters::default());
        let wheel_counters = Arc::clone(&counters);
        let wheel = std::thread::Builder::new()
            .name("paris-net-wheel".into())
            .spawn(move || wheel_loop(config, wheel_rx, wheel_registry, wheel_counters))
            .expect("spawn delay wheel");
        Router {
            registry,
            wheel_tx,
            wheel: Some(wheel),
            counters,
        }
    }

    /// Traffic scheduled onto the wire so far (post-coalescing).
    pub fn net_stats(&self) -> NetStats {
        self.counters.snapshot()
    }

    /// Registers an endpoint, returning the inbox it should drain.
    ///
    /// Re-registering an endpoint replaces its inbox (the old receiver
    /// starts reporting disconnection once the sender is dropped).
    pub fn register(&self, endpoint: impl Into<Endpoint>) -> Receiver<Envelope> {
        let (tx, rx) = channel();
        self.registry
            .lock()
            .expect("registry poisoned")
            .inboxes
            .insert(endpoint.into(), tx);
        rx
    }

    /// Removes an endpoint; in-flight messages to it are dropped on
    /// delivery.
    pub fn deregister(&self, endpoint: impl Into<Endpoint>) {
        self.registry
            .lock()
            .expect("registry poisoned")
            .inboxes
            .remove(&endpoint.into());
    }

    /// A sender handle for use by server/client threads.
    pub fn handle(&self) -> NetHandle {
        NetHandle {
            wheel_tx: self.wheel_tx.clone(),
        }
    }

    /// A fault-injection handle (see [`LinkControl`]).
    pub fn link_control(&self) -> LinkControl {
        LinkControl {
            wheel_tx: self.wheel_tx.clone(),
        }
    }

    /// Installs the read tap: from now on, read-path envelopes bound for
    /// *server* endpoints — `ReadSliceReq` slice reads, `StartTxReq`
    /// snapshot assignments, unbatched `GstReport` stabilization
    /// reports and whole coalesced `GossipDigest`s, all served against
    /// shared (lock-free or table-folded) state — are delivered
    /// round-robin into `lanes` (after their normal link latency)
    /// instead of the destination inbox; the runtime's read-thread pool
    /// drains the lanes and serves them off the server loop. All other
    /// traffic is unaffected. A lane that has shut down is
    /// pruned from the tap on first failed delivery (the tap uninstalls
    /// itself when the last lane goes), and the envelope is retried on the
    /// surviving lanes, falling back to the server inbox — so no request
    /// is ever lost and dead lanes are not paid for again. Passing an
    /// empty vector uninstalls the tap.
    pub fn set_read_tap(&self, lanes: Vec<Sender<Envelope>>) {
        let mut reg = self.registry.lock().expect("registry poisoned");
        reg.tap_epoch += 1;
        let epoch = reg.tap_epoch;
        reg.read_tap = if lanes.is_empty() {
            None
        } else {
            Some(ReadTap {
                lanes,
                next: 0,
                epoch,
            })
        };
    }

    /// Installs the write tap: from now on, write-path envelopes bound
    /// for *server* endpoints — `PrepareReq`, `CommitTx`, `Replicate`,
    /// `ReplicateBatch` and `Heartbeat` — are delivered (after their
    /// normal link latency) into `lanes[source.route_key() % lanes]`
    /// instead of the destination inbox; the runtime's write-thread pool
    /// drains the lanes and runs the store-touching half of each off the
    /// server loop. Routing is **source-keyed**, never round-robin: a
    /// `CommitTx` must trail its `PrepareReq` and a watermark its
    /// applies, and per-src FIFO on one lane preserves exactly that.
    /// (Coalesced gossip — `GossipDigest` — carries loop-owned
    /// components and is never tapped.) Dead lanes are pruned like the
    /// read tap's — the envelope re-routes by the shrunken lane set, and
    /// when the last lane dies the tap uninstalls and traffic falls back
    /// to the server inboxes. Passing an empty vector uninstalls the
    /// tap.
    pub fn set_write_tap(&self, lanes: Vec<Sender<Envelope>>) {
        let mut reg = self.registry.lock().expect("registry poisoned");
        reg.tap_epoch += 1;
        let epoch = reg.tap_epoch;
        reg.write_tap = if lanes.is_empty() {
            None
        } else {
            Some(WriteTap { lanes, epoch })
        };
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        let _ = self.wheel_tx.send(WheelCmd::Shutdown);
        if let Some(h) = self.wheel.take() {
            let _ = h.join();
        }
    }
}

struct Pending {
    due: Instant,
    seq: u64,
    env: Envelope,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

/// The latency-injection state of the wheel: everything needed to turn an
/// accepted envelope into a delayed, per-link-FIFO delivery.
struct WheelState {
    heap: BinaryHeap<Reverse<Pending>>,
    fifo: HashMap<(Endpoint, Endpoint), Instant>,
    rng: StdRng,
    seq: u64,
    counters: Arc<NetCounters>,
    /// Partitioned DC pairs (stored with a ≤ b).
    blocked: HashSet<(DcId, DcId)>,
    /// Traffic held on blocked links, per ordered (src DC, dst DC), FIFO.
    held: HashMap<(DcId, DcId), VecDeque<Envelope>>,
    /// Per-link latency multipliers (stored with a ≤ b); absent = nominal.
    link_scale: HashMap<(DcId, DcId), f64>,
}

impl WheelState {
    fn schedule(&mut self, config: &ThreadedNetConfig, env: Envelope, sent_at: Instant) {
        // Every envelope entering the wheel is one wire message leaving
        // the "NIC" — coalesced traffic was already folded upstream. Held
        // traffic counts as sent (it left the source; the link lost it),
        // matching the simulated network's accounting.
        self.counters.record(&env, config.wire);
        let (sdc, ddc) = (env.src.dc(), env.dst.dc());
        if sdc != ddc && self.blocked.contains(&link_key(sdc, ddc)) {
            self.held.entry((sdc, ddc)).or_default().push_back(env);
            return;
        }
        self.schedule_now(config, env, sent_at);
    }

    /// Latency injection without the partition check — the release path
    /// for healed traffic, which must not be re-held or re-counted.
    fn schedule_now(&mut self, config: &ThreadedNetConfig, env: Envelope, sent_at: Instant) {
        let (sdc, ddc) = (env.src.dc(), env.dst.dc());
        let mut base = config.matrix.one_way(sdc, ddc) as f64;
        if sdc != ddc {
            if let Some(scale) = self.link_scale.get(&link_key(sdc, ddc)) {
                base *= scale;
            }
        }
        let jittered = if config.jitter > 0.0 {
            base * (1.0 + config.jitter * (self.rng.gen::<f64>() * 2.0 - 1.0))
        } else {
            base
        };
        let delay = Duration::from_micros((jittered * config.scale).max(0.0) as u64);
        let link = (env.src, env.dst);
        let natural = sent_at + delay;
        let due = match self.fifo.get(&link) {
            Some(prev) => natural.max(*prev + Duration::from_nanos(1)),
            None => natural,
        };
        self.fifo.insert(link, due);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Pending { due, seq, env }));
    }

    fn set_link(&mut self, config: &ThreadedNetConfig, a: DcId, b: DcId, op: LinkOp) {
        let key = link_key(a, b);
        match op {
            LinkOp::Partition => {
                self.blocked.insert(key);
            }
            LinkOp::Heal => {
                self.blocked.remove(&key);
                let now = Instant::now();
                let mut release = Vec::new();
                if let Some(q) = self.held.remove(&(a, b)) {
                    release.extend(q);
                }
                if let Some(q) = self.held.remove(&(b, a)) {
                    release.extend(q);
                }
                for env in release {
                    self.schedule_now(config, env, now);
                }
            }
            LinkOp::Scale(factor) => {
                if factor > 1.0 {
                    self.link_scale.insert(key, factor);
                } else {
                    self.link_scale.remove(&key);
                }
            }
        }
    }

    /// Shutdown path: nothing may stay held past teardown — heal every
    /// link and schedule all held traffic for delivery.
    fn release_all(&mut self, config: &ThreadedNetConfig) {
        self.blocked.clear();
        let now = Instant::now();
        let mut links: Vec<(DcId, DcId)> = self.held.keys().copied().collect();
        links.sort_unstable();
        for link in links {
            if let Some(q) = self.held.remove(&link) {
                for env in q {
                    self.schedule_now(config, env, now);
                }
            }
        }
    }
}

/// Delivers one due envelope: read-tapped traffic (server-bound
/// `ReadSliceReq`/`StartTxReq`/`GstReport`/`GossipDigest`) goes to a
/// pool lane (round-robin), the rest to the destination inbox. On the tapped happy path only the lane
/// sender is cloned under the registry lock — the inbox is looked up only
/// when delivery actually falls back. A lane whose receiver is gone is
/// pruned from the tap (uninstalling the tap when the last lane dies) so
/// later deliveries never pay for it again.
fn deliver(registry: &Arc<Mutex<Registry>>, mut env: Envelope) {
    let server_bound = matches!(env.dst, Endpoint::Server(_));
    let is_tapped_read = matches!(
        env.msg,
        Msg::ReadSliceReq { .. }
            | Msg::StartTxReq { .. }
            | Msg::GstReport { .. }
            | Msg::GossipDigest { .. }
    ) && server_bound;
    let is_tapped_write = matches!(
        env.msg,
        Msg::PrepareReq { .. }
            | Msg::CommitTx { .. }
            | Msg::Replicate { .. }
            | Msg::ReplicateBatch { .. }
            | Msg::Heartbeat { .. }
    ) && server_bound;
    if is_tapped_write {
        loop {
            let picked = {
                let mut reg = registry.lock().expect("registry poisoned");
                reg.write_tap.as_mut().map(|tap| {
                    // Source-keyed, not round-robin: one source, one lane,
                    // FIFO (see `set_write_tap`).
                    let idx = (env.src.route_key() as usize) % tap.lanes.len();
                    (tap.epoch, idx, tap.lanes[idx].clone())
                })
            };
            let Some((epoch, idx, lane)) = picked else {
                break; // no tap (or it just uninstalled): inbox fallback
            };
            match lane.send(env) {
                Ok(()) => return,
                Err(std::sync::mpsc::SendError(returned)) => {
                    env = returned;
                    let mut reg = registry.lock().expect("registry poisoned");
                    if let Some(tap) = reg.write_tap.as_mut() {
                        if tap.epoch == epoch {
                            tap.lanes.remove(idx);
                            if tap.lanes.is_empty() {
                                reg.write_tap = None;
                            }
                        }
                    }
                }
            }
        }
    }
    if is_tapped_read {
        loop {
            let picked = {
                let mut reg = registry.lock().expect("registry poisoned");
                reg.read_tap.as_mut().map(|tap| {
                    let idx = tap.next % tap.lanes.len();
                    tap.next = tap.next.wrapping_add(1);
                    (tap.epoch, idx, tap.lanes[idx].clone())
                })
            };
            let Some((epoch, idx, lane)) = picked else {
                break; // no tap (or it just uninstalled): inbox fallback
            };
            match lane.send(env) {
                Ok(()) => return,
                Err(std::sync::mpsc::SendError(returned)) => {
                    env = returned;
                    let mut reg = registry.lock().expect("registry poisoned");
                    if let Some(tap) = reg.read_tap.as_mut() {
                        // Only prune from the tap the dead lane came from;
                        // a replacement installed meanwhile keeps all its
                        // (healthy) lanes.
                        if tap.epoch == epoch {
                            tap.lanes.remove(idx);
                            if tap.lanes.is_empty() {
                                reg.read_tap = None;
                            }
                        }
                    }
                }
            }
        }
    }
    let inbox = {
        let reg = registry.lock().expect("registry poisoned");
        reg.inboxes.get(&env.dst).cloned()
    };
    if let Some(tx) = inbox {
        let _ = tx.send(env);
    }
}

fn wheel_loop(
    config: ThreadedNetConfig,
    rx: Receiver<WheelCmd>,
    registry: Arc<Mutex<Registry>>,
    counters: Arc<NetCounters>,
) {
    let mut wheel = WheelState {
        heap: BinaryHeap::new(),
        fifo: HashMap::new(),
        rng: StdRng::seed_from_u64(config.seed),
        seq: 0,
        counters,
        blocked: HashSet::new(),
        held: HashMap::new(),
        link_scale: HashMap::new(),
    };
    // The coalescer runs on a wall-clock microsecond timebase anchored at
    // wheel start; envelopes it holds back get their link latency applied
    // from flush time (the batch leaves the "NIC" when it flushes).
    let epoch = Instant::now();
    let mut coalescer = Coalescer::new(config.batch, config.wire);
    let mut shutting_down = false;

    loop {
        // Flush coalescing deadlines that have passed.
        let now_micros = epoch.elapsed().as_micros() as u64;
        for env in coalescer.poll(now_micros) {
            wheel.schedule(&config, env, Instant::now());
        }
        // Deliver everything due.
        let now = Instant::now();
        while wheel.heap.peek().is_some_and(|Reverse(p)| p.due <= now) {
            let Reverse(p) = wheel.heap.pop().expect("peeked");
            deliver(&registry, p.env);
        }
        if shutting_down && wheel.heap.is_empty() && coalescer.pending_links() == 0 {
            return;
        }
        // Wait for the next delivery, the next flush deadline, or a new
        // command — whichever comes first.
        let heap_wait = wheel
            .heap
            .peek()
            .map(|Reverse(p)| p.due.saturating_duration_since(Instant::now()));
        let flush_wait = coalescer.next_due().map(|due| {
            Duration::from_micros(due.saturating_sub(epoch.elapsed().as_micros() as u64))
        });
        let timeout = [heap_wait, flush_wait]
            .into_iter()
            .flatten()
            .min()
            .unwrap_or(Duration::from_millis(50));
        match rx.recv_timeout(timeout) {
            Ok(WheelCmd::Send { env, sent_at }) if shutting_down => {
                // Past shutdown, nothing may be parked again — a queued
                // frame would hold the wheel (and `Router::drop`) hostage
                // for up to a flush interval.
                wheel.schedule(&config, env, sent_at);
            }
            Ok(WheelCmd::Send { env, sent_at }) => {
                let now_micros = epoch.elapsed().as_micros() as u64;
                match coalescer.offer(env, now_micros) {
                    Offer::Pass(env) => wheel.schedule(&config, env, sent_at),
                    Offer::Flush(envs) => {
                        for env in envs {
                            wheel.schedule(&config, env, sent_at);
                        }
                    }
                    Offer::Queued { .. } => {}
                }
            }
            Ok(WheelCmd::SetLink { a, b, op }) => {
                // Past shutdown a fresh partition would strand traffic in
                // the held queues and hang `Router::drop`; heals and scale
                // changes stay harmless.
                if !(shutting_down && matches!(op, LinkOp::Partition)) {
                    wheel.set_link(&config, a, b, op);
                }
            }
            Ok(WheelCmd::Shutdown) => {
                shutting_down = true;
                // Nothing may stay parked or held past teardown.
                for env in coalescer.flush_all() {
                    wheel.schedule(&config, env, Instant::now());
                }
                wheel.release_all(&config);
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                shutting_down = true;
                for env in coalescer.flush_all() {
                    wheel.schedule(&config, env, Instant::now());
                }
                wheel.release_all(&config);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paris_proto::Msg;
    use paris_types::{ClientId, DcId, PartitionId, ServerId, Timestamp};

    fn hb(n: u32) -> Msg {
        Msg::Heartbeat {
            partition: PartitionId(n),
            watermark: Timestamp::ZERO,
        }
    }

    #[test]
    fn delivers_to_registered_inbox() {
        let router = Router::start(ThreadedNetConfig::fast(2));
        let a = ServerId::new(DcId(0), PartitionId(0));
        let b = ServerId::new(DcId(1), PartitionId(1));
        let rx = router.register(b);
        router.handle().send(Envelope::new(a, b, hb(1)));
        let got = rx.recv_timeout(Duration::from_secs(2)).expect("delivered");
        assert_eq!(got.msg, hb(1));
    }

    #[test]
    fn preserves_fifo_per_link() {
        let router = Router::start(ThreadedNetConfig {
            jitter: 0.5, // try hard to reorder
            ..ThreadedNetConfig::fast(2)
        });
        let a = ServerId::new(DcId(0), PartitionId(0));
        let b = ServerId::new(DcId(1), PartitionId(1));
        let rx = router.register(b);
        let h = router.handle();
        for i in 0..100 {
            h.send(Envelope::new(a, b, hb(i)));
        }
        for i in 0..100 {
            let got = rx.recv_timeout(Duration::from_secs(2)).expect("delivered");
            assert_eq!(got.msg, hb(i), "message {i} out of order");
        }
    }

    #[test]
    fn unregistered_destination_drops_silently() {
        let router = Router::start(ThreadedNetConfig::fast(2));
        let a = ServerId::new(DcId(0), PartitionId(0));
        let ghost = ServerId::new(DcId(1), PartitionId(9));
        // No panic, no deadlock.
        router.handle().send(Envelope::new(a, ghost, hb(0)));
        std::thread::sleep(Duration::from_millis(20));
    }

    #[test]
    fn latency_scale_compresses_wan_delay() {
        let router = Router::start(ThreadedNetConfig {
            matrix: RegionMatrix::uniform(2, 30_000), // 30 ms one-way
            scale: 0.01,                              // → 300 µs
            jitter: 0.0,
            seed: 0,
            batch: BatchConfig::DISABLED,
            wire: WireFormat::default(),
        });
        let a = ClientId::new(DcId(0), 0);
        let b = ServerId::new(DcId(1), PartitionId(0));
        let rx = router.register(b);
        let start = Instant::now();
        router.handle().send(Envelope::new(
            a,
            b,
            Msg::StartTxReq {
                client_ust: Timestamp::ZERO,
            },
        ));
        rx.recv_timeout(Duration::from_secs(2)).expect("delivered");
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_micros(250), "latency applied");
        assert!(elapsed < Duration::from_millis(200), "latency scaled down");
    }

    #[test]
    fn deregister_stops_delivery() {
        let router = Router::start(ThreadedNetConfig::fast(2));
        let a = ServerId::new(DcId(0), PartitionId(0));
        let b = ServerId::new(DcId(1), PartitionId(1));
        let rx = router.register(b);
        router.deregister(b);
        router.handle().send(Envelope::new(a, b, hb(1)));
        assert!(rx.recv_timeout(Duration::from_millis(100)).is_err());
    }

    #[test]
    fn counters_report_scheduled_traffic_in_the_configured_encoding() {
        for wire in [WireFormat::V1, WireFormat::V2] {
            let router = Router::start(ThreadedNetConfig {
                wire,
                ..ThreadedNetConfig::fast(2)
            });
            let a = ServerId::new(DcId(0), PartitionId(0));
            let b = ServerId::new(DcId(1), PartitionId(1));
            let rx = router.register(b);
            let background = Envelope::new(a, b, hb(1));
            let foreground = Envelope::new(
                ClientId::new(DcId(0), 0),
                b,
                Msg::StartTxReq {
                    client_ust: Timestamp::ZERO,
                },
            );
            let expect_bg = encoded_len_with(&background.msg, wire) as u64;
            let expect_total = expect_bg + encoded_len_with(&foreground.msg, wire) as u64;
            router.handle().send(background);
            router.handle().send(foreground);
            for _ in 0..2 {
                rx.recv_timeout(Duration::from_secs(2)).expect("delivered");
            }
            let stats = router.net_stats();
            assert_eq!(stats.messages, 2, "{wire}");
            assert_eq!(stats.bytes, expect_total, "{wire}");
            assert_eq!(
                stats.background_bytes, expect_bg,
                "{wire}: only the heartbeat is background"
            );
        }
    }

    #[test]
    fn batching_coalesces_heartbeats_into_one_frame() {
        let router = Router::start(ThreadedNetConfig {
            batch: BatchConfig::fixed(4, 2_000_000), // force the size trigger
            ..ThreadedNetConfig::fast(2)
        });
        let a = ServerId::new(DcId(0), PartitionId(0));
        let b = ServerId::new(DcId(1), PartitionId(0));
        let rx = router.register(b);
        let h = router.handle();
        for i in 1..=4u64 {
            h.send(Envelope::new(
                a,
                b,
                Msg::Heartbeat {
                    partition: PartitionId(0),
                    watermark: Timestamp::from_physical_micros(i * 10),
                },
            ));
        }
        let got = rx.recv_timeout(Duration::from_secs(2)).expect("delivered");
        match got.msg {
            Msg::ReplicateBatch {
                frames, watermark, ..
            } => {
                assert_eq!(frames, 4);
                assert_eq!(watermark, Timestamp::from_physical_micros(40));
            }
            other => panic!("expected a coalesced batch, got {}", other.kind()),
        }
        // Exactly one wire message came out.
        assert!(rx.recv_timeout(Duration::from_millis(100)).is_err());
    }

    #[test]
    fn batching_flushes_on_deadline() {
        let router = Router::start(ThreadedNetConfig {
            batch: BatchConfig::fixed(1_000, 20_000), // never hit the size trigger
            ..ThreadedNetConfig::fast(2)
        });
        let a = ServerId::new(DcId(0), PartitionId(0));
        let b = ServerId::new(DcId(1), PartitionId(0));
        let rx = router.register(b);
        router.handle().send(Envelope::new(a, b, hb(0)));
        let got = rx.recv_timeout(Duration::from_secs(2)).expect("delivered");
        assert!(matches!(got.msg, Msg::ReplicateBatch { frames: 1, .. }));
    }

    #[test]
    fn shutdown_flushes_parked_frames() {
        let rx;
        {
            let router = Router::start(ThreadedNetConfig {
                batch: BatchConfig::fixed(1_000, 60_000_000), // would park for a minute
                ..ThreadedNetConfig::fast(2)
            });
            let a = ServerId::new(DcId(0), PartitionId(0));
            let b = ServerId::new(DcId(1), PartitionId(1));
            rx = router.register(b);
            router.handle().send(Envelope::new(a, b, hb(1)));
            // Router dropped: the parked frame must still arrive.
        }
        let got = rx.recv_timeout(Duration::from_secs(2)).expect("flushed");
        assert!(matches!(got.msg, Msg::ReplicateBatch { .. }));
    }

    fn read_req(tx_seq: u64) -> Msg {
        Msg::ReadSliceReq {
            tx: paris_types::TxId::new(ServerId::new(DcId(0), PartitionId(0)), tx_seq),
            snapshot: Timestamp::ZERO,
            keys: vec![paris_types::Key(1)],
            reply_to: ServerId::new(DcId(0), PartitionId(0)),
        }
    }

    #[test]
    fn read_tap_diverts_slice_reads_round_robin() {
        let router = Router::start(ThreadedNetConfig::fast(2));
        let a = ServerId::new(DcId(0), PartitionId(0));
        let b = ServerId::new(DcId(1), PartitionId(0));
        let inbox = router.register(b);
        let (l1_tx, l1) = std::sync::mpsc::channel();
        let (l2_tx, l2) = std::sync::mpsc::channel();
        router.set_read_tap(vec![l1_tx, l2_tx]);
        let h = router.handle();
        for i in 0..4 {
            h.send(Envelope::new(a, b, read_req(i)));
        }
        // Non-read traffic still reaches the inbox.
        h.send(Envelope::new(a, b, hb(9)));
        for lane in [&l1, &l2] {
            for _ in 0..2 {
                let got = lane.recv_timeout(Duration::from_secs(2)).expect("tapped");
                assert!(matches!(got.msg, Msg::ReadSliceReq { .. }));
            }
        }
        let got = inbox.recv_timeout(Duration::from_secs(2)).expect("inbox");
        assert_eq!(got.msg, hb(9));
        assert!(inbox.recv_timeout(Duration::from_millis(100)).is_err());
    }

    #[test]
    fn read_tap_falls_back_to_inbox_when_lane_closes() {
        let router = Router::start(ThreadedNetConfig::fast(2));
        let a = ServerId::new(DcId(0), PartitionId(0));
        let b = ServerId::new(DcId(1), PartitionId(0));
        let inbox = router.register(b);
        let (lane_tx, lane_rx) = std::sync::mpsc::channel();
        router.set_read_tap(vec![lane_tx]);
        drop(lane_rx); // pool died
        router.handle().send(Envelope::new(a, b, read_req(1)));
        let got = inbox
            .recv_timeout(Duration::from_secs(2))
            .expect("fallback");
        assert!(matches!(got.msg, Msg::ReadSliceReq { .. }));
        // The dead lane took the tap with it (it was the only lane), so
        // later reads go straight to the inbox too.
        router.handle().send(Envelope::new(a, b, read_req(2)));
        let got = inbox
            .recv_timeout(Duration::from_secs(2))
            .expect("tap uninstalled");
        assert!(matches!(got.msg, Msg::ReadSliceReq { .. }));
    }

    #[test]
    fn read_tap_prunes_a_dead_lane_and_keeps_the_survivor() {
        let router = Router::start(ThreadedNetConfig::fast(2));
        let a = ServerId::new(DcId(0), PartitionId(0));
        let b = ServerId::new(DcId(1), PartitionId(0));
        let inbox = router.register(b);
        let (l1_tx, l1_rx) = std::sync::mpsc::channel();
        let (l2_tx, l2) = std::sync::mpsc::channel();
        router.set_read_tap(vec![l1_tx, l2_tx]);
        drop(l1_rx); // one pool thread died
        let h = router.handle();
        for i in 0..6 {
            h.send(Envelope::new(a, b, read_req(i)));
        }
        // Every read lands on the surviving lane: the first delivery that
        // hits the dead lane prunes it and retries, and once pruned the
        // dead lane is never offered traffic again (nothing reaches the
        // inbox, which is where a failed lane send would fall back to).
        for i in 0..6 {
            let got = l2
                .recv_timeout(Duration::from_secs(2))
                .unwrap_or_else(|e| panic!("read {i} missing from survivor: {e}"));
            assert!(matches!(got.msg, Msg::ReadSliceReq { .. }));
        }
        assert!(
            inbox.recv_timeout(Duration::from_millis(100)).is_err(),
            "a read fell back to the inbox after the dead lane was pruned"
        );
    }

    #[test]
    fn read_tap_diverts_start_tx_requests() {
        let router = Router::start(ThreadedNetConfig::fast(2));
        let a = ClientId::new(DcId(0), 3);
        let b = ServerId::new(DcId(1), PartitionId(0));
        let inbox = router.register(b);
        let (lane_tx, lane) = std::sync::mpsc::channel();
        router.set_read_tap(vec![lane_tx]);
        router.handle().send(Envelope::new(
            a,
            b,
            Msg::StartTxReq {
                client_ust: Timestamp::ZERO,
            },
        ));
        let got = lane.recv_timeout(Duration::from_secs(2)).expect("tapped");
        assert!(matches!(got.msg, Msg::StartTxReq { .. }));
        assert!(inbox.recv_timeout(Duration::from_millis(100)).is_err());
    }

    #[test]
    fn client_bound_reads_are_never_tapped() {
        // Defensive: the tap keys on Server destinations only.
        let router = Router::start(ThreadedNetConfig::fast(2));
        let a = ServerId::new(DcId(0), PartitionId(0));
        let c = ClientId::new(DcId(1), 7);
        let inbox = router.register(c);
        let (lane_tx, _lane_rx) = std::sync::mpsc::channel();
        router.set_read_tap(vec![lane_tx]);
        router.handle().send(Envelope::new(a, c, read_req(1)));
        let got = inbox.recv_timeout(Duration::from_secs(2)).expect("inbox");
        assert!(matches!(got.msg, Msg::ReadSliceReq { .. }));
    }

    fn commit_tx(tx_seq: u64, coordinator: ServerId) -> Msg {
        Msg::CommitTx {
            tx: paris_types::TxId::new(coordinator, tx_seq),
            ct: Timestamp::from_physical_micros(10),
        }
    }

    #[test]
    fn write_tap_routes_by_source_not_round_robin() {
        let router = Router::start(ThreadedNetConfig::fast(2));
        let src_a = ServerId::new(DcId(0), PartitionId(0));
        let src_b = ServerId::new(DcId(0), PartitionId(1));
        let dst = ServerId::new(DcId(1), PartitionId(0));
        let inbox = router.register(dst);
        let (l1_tx, l1) = std::sync::mpsc::channel();
        let (l2_tx, l2) = std::sync::mpsc::channel();
        router.set_write_tap(vec![l1_tx, l2_tx]);
        let h = router.handle();
        // Several messages from each source: all of a source's traffic
        // must land on one lane, in order.
        for i in 0..3 {
            h.send(Envelope::new(src_a, dst, commit_tx(i, src_a)));
            h.send(Envelope::new(src_b, dst, commit_tx(i, src_b)));
        }
        let lane_of = |src: ServerId| (Endpoint::Server(src).route_key() as usize) % 2;
        let lanes = [&l1, &l2];
        for (src, n) in [(src_a, 3u64), (src_b, 3)] {
            let lane = lanes[lane_of(src)];
            for i in 0..n {
                let got = lane.recv_timeout(Duration::from_secs(2)).expect("tapped");
                assert_eq!(got.msg, commit_tx(i, src), "per-src FIFO on one lane");
            }
        }
        assert!(inbox.recv_timeout(Duration::from_millis(100)).is_err());
    }

    #[test]
    fn write_tap_diverts_the_whole_write_path_and_nothing_else() {
        let router = Router::start(ThreadedNetConfig::fast(2));
        let a = ServerId::new(DcId(0), PartitionId(0));
        let b = ServerId::new(DcId(1), PartitionId(0));
        let inbox = router.register(b);
        let (lane_tx, lane) = std::sync::mpsc::channel();
        router.set_write_tap(vec![lane_tx]);
        let h = router.handle();
        h.send(Envelope::new(a, b, hb(1))); // Heartbeat: tapped (ordering!)
        h.send(Envelope::new(
            a,
            b,
            Msg::Replicate {
                partition: PartitionId(0),
                txs: Vec::new(),
                watermark: Timestamp::ZERO,
            },
        ));
        // Read-path traffic is NOT the write tap's business.
        h.send(Envelope::new(a, b, read_req(1)));
        let got = lane.recv_timeout(Duration::from_secs(2)).expect("tapped");
        assert_eq!(got.msg, hb(1));
        let got = lane.recv_timeout(Duration::from_secs(2)).expect("tapped");
        assert!(matches!(got.msg, Msg::Replicate { .. }));
        let got = inbox.recv_timeout(Duration::from_secs(2)).expect("inbox");
        assert!(matches!(got.msg, Msg::ReadSliceReq { .. }));
        assert!(lane.recv_timeout(Duration::from_millis(100)).is_err());
    }

    #[test]
    fn write_tap_falls_back_to_inbox_when_lane_closes() {
        let router = Router::start(ThreadedNetConfig::fast(2));
        let a = ServerId::new(DcId(0), PartitionId(0));
        let b = ServerId::new(DcId(1), PartitionId(0));
        let inbox = router.register(b);
        let (lane_tx, lane_rx) = std::sync::mpsc::channel();
        router.set_write_tap(vec![lane_tx]);
        drop(lane_rx); // pool died
        router.handle().send(Envelope::new(a, b, commit_tx(1, a)));
        let got = inbox
            .recv_timeout(Duration::from_secs(2))
            .expect("fallback");
        assert!(matches!(got.msg, Msg::CommitTx { .. }));
        // The dead lane took the tap with it; later writes skip it.
        router.handle().send(Envelope::new(a, b, commit_tx(2, a)));
        let got = inbox
            .recv_timeout(Duration::from_secs(2))
            .expect("tap uninstalled");
        assert!(matches!(got.msg, Msg::CommitTx { .. }));
    }

    #[test]
    fn read_and_write_taps_coexist() {
        let router = Router::start(ThreadedNetConfig::fast(2));
        let a = ServerId::new(DcId(0), PartitionId(0));
        let b = ServerId::new(DcId(1), PartitionId(0));
        let inbox = router.register(b);
        let (r_tx, r_lane) = std::sync::mpsc::channel();
        let (w_tx, w_lane) = std::sync::mpsc::channel();
        router.set_read_tap(vec![r_tx]);
        router.set_write_tap(vec![w_tx]);
        let h = router.handle();
        h.send(Envelope::new(a, b, read_req(1)));
        h.send(Envelope::new(a, b, commit_tx(1, a)));
        h.send(Envelope::new(
            a,
            b,
            Msg::UstBroadcast {
                ust: Timestamp::ZERO,
                s_old: Timestamp::ZERO,
            },
        ));
        assert!(matches!(
            r_lane.recv_timeout(Duration::from_secs(2)).unwrap().msg,
            Msg::ReadSliceReq { .. }
        ));
        assert!(matches!(
            w_lane.recv_timeout(Duration::from_secs(2)).unwrap().msg,
            Msg::CommitTx { .. }
        ));
        // Loop-owned traffic (stabilization broadcast) is untapped.
        assert!(matches!(
            inbox.recv_timeout(Duration::from_secs(2)).unwrap().msg,
            Msg::UstBroadcast { .. }
        ));
    }

    #[test]
    fn partitioned_link_holds_and_heal_releases_in_order() {
        let router = Router::start(ThreadedNetConfig::fast(3));
        let a = ServerId::new(DcId(0), PartitionId(0));
        let b = ServerId::new(DcId(1), PartitionId(1));
        let c = ServerId::new(DcId(2), PartitionId(2));
        let rx_b = router.register(b);
        let rx_c = router.register(c);
        let ctl = router.link_control();
        ctl.partition_link(DcId(0), DcId(1));
        let h = router.handle();
        for i in 0..5 {
            h.send(Envelope::new(a, b, hb(i)));
        }
        // The unrelated 0–2 link is unaffected.
        h.send(Envelope::new(a, c, hb(99)));
        assert_eq!(
            rx_c.recv_timeout(Duration::from_secs(2)).expect("0-2").msg,
            hb(99)
        );
        assert!(
            rx_b.recv_timeout(Duration::from_millis(150)).is_err(),
            "partitioned link must hold traffic"
        );
        ctl.heal_link(DcId(1), DcId(0)); // unordered: either orientation heals
        for i in 0..5 {
            let got = rx_b.recv_timeout(Duration::from_secs(2)).expect("released");
            assert_eq!(got.msg, hb(i), "held traffic must release in order");
        }
    }

    #[test]
    fn isolate_dc_cuts_every_link_and_rejoin_restores() {
        let router = Router::start(ThreadedNetConfig::fast(3));
        let a = ServerId::new(DcId(0), PartitionId(0));
        let b = ServerId::new(DcId(1), PartitionId(1));
        let rx = router.register(b);
        let ctl = router.link_control();
        ctl.isolate_dc(DcId(1), 3);
        router.handle().send(Envelope::new(a, b, hb(1)));
        assert!(rx.recv_timeout(Duration::from_millis(150)).is_err());
        ctl.rejoin_dc(DcId(1), 3);
        let got = rx.recv_timeout(Duration::from_secs(2)).expect("rejoined");
        assert_eq!(got.msg, hb(1));
    }

    #[test]
    fn slow_link_stretches_delivery_and_restore_undoes_it() {
        let router = Router::start(ThreadedNetConfig {
            matrix: RegionMatrix::uniform(2, 2_000), // 2 ms one-way
            scale: 1.0,
            jitter: 0.0,
            seed: 0,
            batch: BatchConfig::DISABLED,
            wire: WireFormat::default(),
        });
        let a = ServerId::new(DcId(0), PartitionId(0));
        let b = ServerId::new(DcId(1), PartitionId(1));
        let rx = router.register(b);
        let ctl = router.link_control();
        ctl.set_link_scale(DcId(0), DcId(1), 25.0); // → 50 ms
        let start = Instant::now();
        router.handle().send(Envelope::new(a, b, hb(1)));
        rx.recv_timeout(Duration::from_secs(2)).expect("delivered");
        assert!(
            start.elapsed() >= Duration::from_millis(40),
            "slowdown factor must apply"
        );
        ctl.set_link_scale(DcId(0), DcId(1), 1.0);
        let start = Instant::now();
        router.handle().send(Envelope::new(a, b, hb(2)));
        rx.recv_timeout(Duration::from_secs(2)).expect("delivered");
        assert!(
            start.elapsed() < Duration::from_millis(40),
            "restore must return to nominal latency"
        );
    }

    #[test]
    fn dropping_a_router_with_held_traffic_releases_it() {
        let rx;
        {
            let router = Router::start(ThreadedNetConfig::fast(2));
            let a = ServerId::new(DcId(0), PartitionId(0));
            let b = ServerId::new(DcId(1), PartitionId(1));
            rx = router.register(b);
            router.link_control().partition_link(DcId(0), DcId(1));
            router.handle().send(Envelope::new(a, b, hb(7)));
            // Router dropped with the link still cut: the held message
            // must not hang the wheel thread, and still arrives.
        }
        let got = rx.recv_timeout(Duration::from_secs(2)).expect("released");
        assert_eq!(got.msg, hb(7));
    }

    #[test]
    fn shutdown_drains_cleanly() {
        let rx;
        {
            let router = Router::start(ThreadedNetConfig::fast(2));
            let a = ServerId::new(DcId(0), PartitionId(0));
            let b = ServerId::new(DcId(1), PartitionId(1));
            rx = router.register(b);
            for i in 0..10 {
                router.handle().send(Envelope::new(a, b, hb(i)));
            }
            // Router dropped here: wheel must drain pending messages first.
        }
        let mut got = 0;
        while rx.recv_timeout(Duration::from_secs(2)).is_ok() {
            got += 1;
            if got == 10 {
                break;
            }
        }
        assert_eq!(got, 10);
    }
}
