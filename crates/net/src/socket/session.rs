//! Outbound peer sessions: one writer thread per directed TCP link.
//!
//! A [`PeerLink`] owns the dialed connection to one peer and a dedicated
//! writer thread that drains an in-process queue onto the wire. The
//! thread also hosts the link's [`Coalescer`], so background traffic
//! folds into batch frames exactly as on the in-process backends — the
//! socket substrate reuses the same batching layer rather than
//! reimplementing it.
//!
//! Links are unidirectional by design: the dialing side only writes, the
//! accepting side only reads. That keeps every TCP stream single-owner
//! (no lock around a socket shared by a reader and a writer) at the cost
//! of two connections per bidirectional peer pair, which is fine on
//! loopback and commonplace in real deployments.
//!
//! ## Lifecycle
//!
//! * **Connect**: [`PeerLink::connect`] dials with exponential backoff
//!   inside a configurable window (the listener may not be up yet during
//!   deployment bring-up), then exchanges preambles — both sides verify
//!   magic and protocol version before any frame flows.
//! * **Steady state**: the writer blocks on its queue with a timeout
//!   bounded by the coalescer's next flush deadline, so batch deadlines
//!   fire on time even when the link goes quiet.
//! * **Failure**: on a write error the thread redials once (the peer may
//!   have restarted); if that fails the link marks itself dead and
//!   drains its queue to the floor. The owning node notices `is_dead`,
//!   discards the link and surfaces the loss to callers as
//!   [`Error::Transport`].
//! * **Shutdown**: dropping the link closes the queue; the writer flushes
//!   any coalesced residue onto the wire and exits, and `Drop` joins it.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use paris_proto::Envelope;
use paris_types::{BatchConfig, Error, WireFormat};

use crate::batch::{Coalescer, Offer};
use crate::socket::framing::{
    deadline_in, negotiate, read_preamble, write_envelope, write_preamble,
};

/// Wire-level traffic counters shared by every link and reader of one
/// node. All counts are message/byte totals actually put on (or taken
/// off) a TCP stream — after coalescing, so they are comparable to the
/// in-process backends' router counters.
#[derive(Debug, Default)]
pub struct WireCounters {
    /// Wire messages written.
    pub messages_out: AtomicU64,
    /// Wire bytes written (frame headers included).
    pub bytes_out: AtomicU64,
    /// Wire messages read.
    pub messages_in: AtomicU64,
    /// Wire bytes read (frame headers included).
    pub bytes_in: AtomicU64,
    /// Envelopes dropped because their link was dead.
    pub dropped: AtomicU64,
}

/// Options governing one outbound link.
#[derive(Debug, Clone)]
pub struct LinkOptions {
    /// Batching configuration for this link's coalescer.
    pub batch: BatchConfig,
    /// Total window within which the initial dial must succeed.
    pub connect_timeout: Duration,
    /// Write timeout applied to the stream (a peer that stops reading for
    /// this long is treated as lost).
    pub write_timeout: Duration,
    /// The wire encoding this node is configured for. The link speaks
    /// this or whatever lower version the peer advertises during the
    /// handshake (see [`negotiate`]).
    pub wire: WireFormat,
}

/// Dials `addr`, retrying with exponential backoff until `connect_timeout`
/// elapses. Bring-up races (listener not bound yet) resolve within the
/// first retries; a genuinely absent peer fails the whole window.
fn dial_with_backoff(addr: SocketAddr, connect_timeout: Duration) -> Result<TcpStream, Error> {
    let deadline = deadline_in(connect_timeout);
    let per_attempt = Duration::from_millis(500).min(connect_timeout);
    let mut backoff = Duration::from_millis(10);
    loop {
        match TcpStream::connect_timeout(&addr, per_attempt) {
            Ok(stream) => return Ok(stream),
            Err(_) if Instant::now() + backoff < deadline => {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_millis(200));
            }
            Err(_) => return Err(Error::Transport("could not connect to peer")),
        }
    }
}

/// Dials, configures and handshakes a write-side stream; returns the
/// stream plus the wire format the handshake negotiated.
fn open_stream(addr: SocketAddr, opts: &LinkOptions) -> Result<(TcpStream, WireFormat), Error> {
    let mut stream = dial_with_backoff(addr, opts.connect_timeout)?;
    let _ = stream.set_nodelay(true);
    stream
        .set_write_timeout(Some(opts.write_timeout))
        .map_err(|_| Error::Transport("could not configure peer socket"))?;
    // The dialer must also *read* the acceptor's preamble; bound that read.
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .map_err(|_| Error::Transport("could not configure peer socket"))?;
    write_preamble(&mut stream, opts.wire.version())?;
    let peer = read_preamble(&mut stream, deadline_in(opts.connect_timeout))?;
    Ok((stream, negotiate(opts.wire, peer)))
}

/// An outbound link to one peer: a queue, a writer thread, a coalescer.
#[derive(Debug)]
pub struct PeerLink {
    tx: Option<Sender<Envelope>>,
    dead: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl PeerLink {
    /// Opens a link to `addr`: dials (with backoff), handshakes, spawns
    /// the writer thread.
    pub fn connect(
        addr: SocketAddr,
        opts: LinkOptions,
        counters: Arc<WireCounters>,
    ) -> Result<PeerLink, Error> {
        let (stream, wire) = open_stream(addr, &opts)?;
        let (tx, rx) = channel();
        let dead = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&dead);
        let handle = std::thread::Builder::new()
            .name(format!("paris-link-{}", addr.port()))
            .spawn(move || writer_loop(stream, wire, addr, opts, rx, flag, counters))
            .map_err(|_| Error::Transport("could not spawn link writer"))?;
        Ok(PeerLink {
            tx: Some(tx),
            dead,
            handle: Some(handle),
        })
    }

    /// Queues an envelope for the writer. `false` means the link is dead
    /// (or shutting down) and the envelope was not accepted.
    pub fn send(&self, env: Envelope) -> bool {
        if self.dead.load(Ordering::Acquire) {
            return false;
        }
        match &self.tx {
            Some(tx) => tx.send(env).is_ok(),
            None => false,
        }
    }

    /// Whether the writer has given up on the peer.
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }
}

impl Drop for PeerLink {
    fn drop(&mut self) {
        // Closing the queue is the shutdown signal; the writer flushes its
        // coalescer residue and exits.
        drop(self.tx.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Writes `env` onto the stream, updating counters. On failure, redials
/// once and retries (re-negotiating the wire format, in case the peer
/// restarted with a different configuration); a second failure is fatal
/// for the link.
fn write_with_retry(
    stream: &mut TcpStream,
    wire: &mut WireFormat,
    env: &Envelope,
    addr: SocketAddr,
    opts: &LinkOptions,
    counters: &WireCounters,
) -> Result<(), Error> {
    let first = write_envelope(stream, env, *wire);
    let bytes = match first {
        Ok(bytes) => bytes,
        Err(_) => {
            // The peer may have restarted; give it one fresh connection.
            let (mut fresh, renegotiated) = open_stream(addr, opts)?;
            let bytes = write_envelope(&mut fresh, env, renegotiated)?;
            *stream = fresh;
            *wire = renegotiated;
            bytes
        }
    };
    counters.messages_out.fetch_add(1, Ordering::Relaxed);
    counters.bytes_out.fetch_add(bytes, Ordering::Relaxed);
    Ok(())
}

fn writer_loop(
    mut stream: TcpStream,
    mut wire: WireFormat,
    addr: SocketAddr,
    opts: LinkOptions,
    rx: Receiver<Envelope>,
    dead: Arc<AtomicBool>,
    counters: Arc<WireCounters>,
) {
    // The coalescer wants a monotone microsecond timebase; which epoch is
    // irrelevant because only deltas matter for flush deadlines.
    let epoch = Instant::now();
    let now_micros = || epoch.elapsed().as_micros() as u64;
    let mut coalescer = Coalescer::new(opts.batch, wire);

    let die = |counters: &WireCounters, rx: &Receiver<Envelope>, dead: &AtomicBool| {
        dead.store(true, Ordering::Release);
        // Drain so senders never block on a full queue (unbounded today,
        // but the drain also makes the drop counter meaningful).
        while rx.try_recv().is_ok() {
            counters.dropped.fetch_add(1, Ordering::Relaxed);
        }
    };

    loop {
        // Sleep until the next envelope or the next coalescer deadline.
        let wait = match coalescer.next_due() {
            Some(due) => Duration::from_micros(due.saturating_sub(now_micros())),
            None => Duration::from_millis(100),
        }
        .min(Duration::from_millis(100));
        let incoming = match rx.recv_timeout(wait) {
            Ok(env) => Some(env),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => {
                // Owner dropped the link: flush residue and exit cleanly.
                for env in coalescer.flush_all() {
                    if write_with_retry(&mut stream, &mut wire, &env, addr, &opts, &counters)
                        .is_err()
                    {
                        break;
                    }
                }
                let _ = stream.flush();
                return;
            }
        };

        let mut to_write = Vec::new();
        if let Some(env) = incoming {
            match coalescer.offer(env, now_micros()) {
                Offer::Pass(env) => to_write.push(env),
                Offer::Flush(batch) => to_write.extend(batch),
                Offer::Queued { .. } => {}
            }
        }
        to_write.extend(coalescer.poll(now_micros()));

        for env in to_write {
            if write_with_retry(&mut stream, &mut wire, &env, addr, &opts, &counters).is_err() {
                die(&counters, &rx, &dead);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::socket::framing::{decode_envelope_frame, read_frame, FrameRead, PREAMBLE_LEN};
    use paris_proto::Msg;
    use paris_types::{ClientId, DcId, PartitionId, ServerId, Timestamp};
    use std::io::Read;
    use std::net::TcpListener;

    fn opts() -> LinkOptions {
        LinkOptions {
            batch: BatchConfig::DISABLED,
            connect_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            wire: WireFormat::default(),
        }
    }

    fn env(seq: u32) -> Envelope {
        Envelope::new(
            ClientId::new(DcId(0), seq),
            ServerId::new(DcId(0), PartitionId(0)),
            Msg::StartTxReq {
                client_ust: Timestamp::from_parts(seq as u64, 0),
            },
        )
    }

    /// Accepts one connection and performs the acceptor-side handshake
    /// advertising `version` — concurrently, because
    /// [`PeerLink::connect`] blocks until the acceptor answers the
    /// preamble.
    fn accept_with_version(
        listener: TcpListener,
        version: u16,
    ) -> std::thread::JoinHandle<TcpStream> {
        std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let mut preamble = [0u8; PREAMBLE_LEN];
            conn.read_exact(&mut preamble).unwrap();
            write_preamble(&mut conn, version).unwrap();
            conn
        })
    }

    fn accept_handshaken(listener: TcpListener) -> std::thread::JoinHandle<TcpStream> {
        accept_with_version(listener, paris_proto::wire::PROTOCOL_VERSION)
    }

    #[test]
    fn link_handshakes_and_delivers_in_order() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let acceptor = accept_handshaken(listener);
        let counters = Arc::new(WireCounters::default());
        let link = PeerLink::connect(addr, opts(), Arc::clone(&counters)).unwrap();
        let mut conn = acceptor.join().unwrap();

        for seq in 0..3 {
            assert!(link.send(env(seq)));
        }
        for seq in 0..3 {
            let FrameRead::Frame(payload) = read_frame(&mut conn).unwrap() else {
                panic!("expected frame {seq}");
            };
            assert_eq!(decode_envelope_frame(&payload).unwrap(), env(seq));
        }
        drop(link);
        // After a clean shutdown the acceptor sees EOF.
        assert!(matches!(read_frame(&mut conn).unwrap(), FrameRead::Eof));
        assert_eq!(counters.messages_out.load(Ordering::Relaxed), 3);
        assert!(counters.bytes_out.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn v2_dialer_speaks_v1_to_a_v1_only_peer() {
        // Interop: a current (v2-configured) node dialing an old peer
        // that only advertises v1 must drop to v1 frames — the exact
        // bytes an old decoder understands, with no v2 marker.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let acceptor = accept_with_version(listener, 1);
        let link = PeerLink::connect(addr, opts(), Arc::new(WireCounters::default())).unwrap();
        let mut conn = acceptor.join().unwrap();

        assert!(link.send(env(7)));
        let FrameRead::Frame(payload) = read_frame(&mut conn).unwrap() else {
            panic!("expected frame");
        };
        assert_eq!(
            payload,
            paris_proto::wire::encode_envelope(&env(7)).as_ref(),
            "negotiated-down link must emit bit-for-bit v1 frames"
        );
        assert_eq!(decode_envelope_frame(&payload).unwrap(), env(7));
    }

    #[test]
    fn unsupported_peer_version_refuses_the_link() {
        // A "future" peer advertising v3 is refused during the
        // handshake: the dialer never treats the connection as open.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let acceptor = accept_with_version(listener, paris_proto::wire::PROTOCOL_VERSION + 1);
        let got = PeerLink::connect(addr, opts(), Arc::new(WireCounters::default()));
        assert!(matches!(
            got,
            Err(Error::Transport("protocol version mismatch"))
        ));
        let _ = acceptor.join();
    }

    #[test]
    fn link_to_nowhere_fails_within_the_connect_window() {
        // Bind-then-drop yields a port with (very likely) no listener.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let started = Instant::now();
        let got = PeerLink::connect(
            addr,
            LinkOptions {
                connect_timeout: Duration::from_millis(200),
                write_timeout: Duration::from_secs(1),
                ..opts()
            },
            Arc::new(WireCounters::default()),
        );
        assert!(matches!(got, Err(Error::Transport(_))));
        assert!(started.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn dead_peer_eventually_marks_the_link_dead() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let acceptor = accept_handshaken(listener);
        let counters = Arc::new(WireCounters::default());
        let link = PeerLink::connect(
            addr,
            LinkOptions {
                connect_timeout: Duration::from_millis(300),
                write_timeout: Duration::from_millis(300),
                ..opts()
            },
            Arc::clone(&counters),
        )
        .unwrap();
        // Kill the accepting side (the listener already dropped with the
        // acceptor thread): the reconnect attempt must also fail, so the
        // link gives up.
        drop(acceptor.join().unwrap());

        let deadline = Instant::now() + Duration::from_secs(10);
        let mut seq = 0;
        while !link.is_dead() {
            assert!(Instant::now() < deadline, "link never noticed dead peer");
            link.send(env(seq));
            seq += 1;
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(!link.send(env(seq)), "dead link must refuse traffic");
    }
}
