//! Real-TCP substrate for multi-process deployments.
//!
//! Where [`crate::sim`] simulates the network and [`crate::threaded`]
//! routes between threads of one process, this module carries the same
//! [`paris_proto::Envelope`]s over `std::net::TcpStream` between OS
//! processes — the deployment shape the paper actually evaluates
//! (separate machines per partition server), scaled down to loopback.
//!
//! Layering, bottom up:
//!
//! * [`framing`] — the byte protocol: magic + version preamble per
//!   connection, length-prefixed frames bounded by
//!   [`paris_proto::wire::MAX_FRAME_LEN`] *before* allocation, and the
//!   envelope/control codecs on top. Hardened against garbage input.
//! * [`session`] — outbound links: one writer thread per directed peer
//!   connection, hosting that link's [`crate::batch::Coalescer`], with
//!   dial backoff, one reconnect attempt and dead-link marking.
//! * [`node`] — a process's endpoint: loopback listener, per-connection
//!   reader threads, route table, and a [`node::SocketHandle`] whose
//!   `send` mirrors the threaded router's.
//!
//! The runtime crate builds the multi-process control plane (process
//! spawning, peer-map distribution, stats collection) on top of this.

pub mod framing;
pub mod node;
pub mod session;

pub use framing::{FrameRead, PREAMBLE_LEN};
pub use node::{NodeIdentity, SocketConfig, SocketHandle, SocketNode};
pub use session::{LinkOptions, PeerLink, WireCounters};
