//! A TCP node: one process's endpoint in a socket deployment.
//!
//! A [`SocketNode`] binds a loopback listener, accepts inbound
//! connections (each served by its own reader thread feeding the node's
//! inbox), and lazily opens outbound [`PeerLink`]s as traffic demands.
//! Identity decides local delivery: a node hosting a server delivers
//! envelopes addressed to that server straight to its inbox without
//! touching the wire; the client-host node does the same for every
//! client endpoint (all client sessions of a deployment live in the
//! parent process, mirroring the in-process backends' client loops).
//!
//! Routing is static after setup: the control plane learns every
//! server's data port during deployment bring-up and installs the full
//! map via [`SocketNode::set_routes`]. There is no discovery protocol —
//! deployments here are parent-spawned, so the parent *is* the
//! discovery service.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use paris_proto::{Endpoint, Envelope};
use paris_types::{BatchConfig, Error, ServerId, WireFormat};

use crate::socket::framing::{
    deadline_in, decode_envelope_frame, read_frame, read_preamble, write_preamble, FrameRead,
};
use crate::socket::session::{LinkOptions, PeerLink, WireCounters};

/// How long a failed peer stays on the no-redial blacklist. Retrying a
/// dead address on every send would stall the caller for a connect
/// timeout each time; one cooldown per window bounds that cost.
const REDIAL_COOLDOWN: Duration = Duration::from_secs(1);

/// Tuning for a socket node.
#[derive(Debug, Clone)]
pub struct SocketConfig {
    /// Batching applied to every outbound link.
    pub batch: BatchConfig,
    /// Window within which an outbound dial (plus handshake) must succeed.
    pub connect_timeout: Duration,
    /// Read timeout of inbound connections; bounds how long a reader
    /// thread can ignore the stop flag.
    pub read_timeout: Duration,
    /// Wire encoding this node advertises; every link speaks this or
    /// whatever lower version its peer negotiates down to.
    pub wire: WireFormat,
}

impl Default for SocketConfig {
    fn default() -> Self {
        SocketConfig {
            batch: BatchConfig::DISABLED,
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_millis(100),
            wire: WireFormat::default(),
        }
    }
}

/// What this process hosts, deciding which envelopes are local.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeIdentity {
    /// The parent process: hosts every client session of the deployment.
    ClientHost,
    /// A child process hosting exactly one partition server.
    Server(ServerId),
}

#[derive(Debug, Default)]
struct RouteTable {
    client_host: Option<SocketAddr>,
    servers: HashMap<ServerId, SocketAddr>,
}

#[derive(Debug)]
struct NodeShared {
    cfg: SocketConfig,
    identity: NodeIdentity,
    stop: AtomicBool,
    routes: Mutex<RouteTable>,
    links: Mutex<HashMap<SocketAddr, PeerLink>>,
    down_until: Mutex<HashMap<SocketAddr, Instant>>,
    inbox_tx: Sender<Envelope>,
    counters: Arc<WireCounters>,
    readers: Mutex<Vec<JoinHandle<()>>>,
}

impl NodeShared {
    fn local(&self, dst: &Endpoint) -> bool {
        match (dst, self.identity) {
            (Endpoint::Client(_), NodeIdentity::ClientHost) => true,
            (Endpoint::Server(s), NodeIdentity::Server(own)) => *s == own,
            _ => false,
        }
    }

    fn route(&self, dst: &Endpoint) -> Option<SocketAddr> {
        // A poisoned table (a panicked peer thread) routes nothing; the
        // caller surfaces that as a clean "no route" transport error.
        let routes = self.routes.lock().ok()?;
        match dst {
            Endpoint::Client(_) => routes.client_host,
            Endpoint::Server(s) => routes.servers.get(s).copied(),
        }
    }

    fn send(&self, env: Envelope) -> Result<(), Error> {
        if self.local(&env.dst) {
            // Wire counters only count the wire: local delivery skips
            // them, matching the in-process routers' accounting.
            return self
                .inbox_tx
                .send(env)
                .map_err(|_| Error::Transport("node inbox closed"));
        }
        let Some(addr) = self.route(&env.dst) else {
            self.counters.dropped.fetch_add(1, Ordering::Relaxed);
            return Err(Error::Transport("no route to destination"));
        };

        let mut links = self
            .links
            .lock()
            .map_err(|_| Error::Transport("link table poisoned"))?;
        if let Some(link) = links.get(&addr) {
            if link.send(env) {
                return Ok(());
            }
            // The writer gave up on this peer: discard the link and put
            // the address on cooldown so we don't redial in a hot loop.
            links.remove(&addr);
            if let Ok(mut down) = self.down_until.lock() {
                down.insert(addr, Instant::now() + REDIAL_COOLDOWN);
            }
            self.counters.dropped.fetch_add(1, Ordering::Relaxed);
            return Err(Error::Transport("peer connection lost"));
        }

        let cooling = self
            .down_until
            .lock()
            .map(|down| down.get(&addr).is_some_and(|until| Instant::now() < *until))
            .unwrap_or(false);
        if cooling {
            self.counters.dropped.fetch_add(1, Ordering::Relaxed);
            return Err(Error::Transport("peer is down"));
        }

        let link = PeerLink::connect(
            addr,
            LinkOptions {
                batch: self.cfg.batch,
                connect_timeout: self.cfg.connect_timeout,
                write_timeout: Duration::from_secs(5),
                wire: self.cfg.wire,
            },
            Arc::clone(&self.counters),
        );
        match link {
            Ok(link) => {
                let ok = link.send(env);
                links.insert(addr, link);
                if ok {
                    Ok(())
                } else {
                    Err(Error::Transport("peer connection lost"))
                }
            }
            Err(e) => {
                if let Ok(mut down) = self.down_until.lock() {
                    down.insert(addr, Instant::now() + REDIAL_COOLDOWN);
                }
                self.counters.dropped.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }
}

/// A cloneable sending handle onto a node — the socket analogue of the
/// threaded router's handle.
#[derive(Debug, Clone)]
pub struct SocketHandle {
    inner: Arc<NodeShared>,
}

impl SocketHandle {
    /// Routes `env`: locally into the inbox, or over TCP to its peer.
    ///
    /// # Errors
    ///
    /// [`Error::Transport`] when the destination has no route, its peer
    /// is down (with a cooldown to bound redial stalls), or the node is
    /// shutting down.
    pub fn send(&self, env: Envelope) -> Result<(), Error> {
        self.inner.send(env)
    }

    /// Fire-and-forget send for callers with no failure channel (protocol
    /// background traffic; losses surface via peer liveness instead).
    pub fn send_lossy(&self, env: Envelope) {
        let _ = self.inner.send(env);
    }
}

/// One process's TCP endpoint: listener, readers, outbound links, inbox.
#[derive(Debug)]
pub struct SocketNode {
    inner: Arc<NodeShared>,
    local_addr: SocketAddr,
    accept_handle: Option<JoinHandle<()>>,
    inbox: Option<Receiver<Envelope>>,
}

impl SocketNode {
    /// Binds a loopback listener and starts accepting.
    pub fn bind(identity: NodeIdentity, cfg: SocketConfig) -> Result<SocketNode, Error> {
        let listener = TcpListener::bind("127.0.0.1:0")
            .map_err(|_| Error::Transport("could not bind loopback listener"))?;
        let local_addr = listener
            .local_addr()
            .map_err(|_| Error::Transport("could not read listener address"))?;
        listener
            .set_nonblocking(true)
            .map_err(|_| Error::Transport("could not configure listener"))?;

        let (inbox_tx, inbox_rx) = channel();
        let inner = Arc::new(NodeShared {
            cfg,
            identity,
            stop: AtomicBool::new(false),
            routes: Mutex::new(RouteTable::default()),
            links: Mutex::new(HashMap::new()),
            down_until: Mutex::new(HashMap::new()),
            inbox_tx,
            counters: Arc::new(WireCounters::default()),
            readers: Mutex::new(Vec::new()),
        });
        let shared = Arc::clone(&inner);
        let accept_handle = std::thread::Builder::new()
            .name(format!("paris-accept-{}", local_addr.port()))
            .spawn(move || accept_loop(listener, shared))
            .map_err(|_| Error::Transport("could not spawn accept loop"))?;
        Ok(SocketNode {
            inner,
            local_addr,
            accept_handle: Some(accept_handle),
            inbox: Some(inbox_rx),
        })
    }

    /// The loopback address the listener bound.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// This node's identity.
    pub fn identity(&self) -> NodeIdentity {
        self.inner.identity
    }

    /// Installs the deployment's full route map.
    pub fn set_routes(
        &self,
        client_host: Option<SocketAddr>,
        servers: impl IntoIterator<Item = (ServerId, SocketAddr)>,
    ) {
        let Ok(mut routes) = self.inner.routes.lock() else {
            return;
        };
        routes.client_host = client_host;
        routes.servers.extend(servers);
    }

    /// A cloneable sending handle.
    pub fn handle(&self) -> SocketHandle {
        SocketHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Takes the inbox receiver (once): every locally-delivered and
    /// wire-received envelope arrives here, in per-connection FIFO order.
    pub fn take_inbox(&mut self) -> Option<Receiver<Envelope>> {
        self.inbox.take()
    }

    /// Wire traffic counters (shared with all links and readers).
    pub fn counters(&self) -> Arc<WireCounters> {
        Arc::clone(&self.inner.counters)
    }

    /// Stops accepting, closes every outbound link (flushing coalesced
    /// residue), and joins all I/O threads.
    pub fn shutdown(&mut self) {
        self.inner.stop.store(true, Ordering::Release);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        // Dropping links closes their queues; writers flush and exit.
        if let Ok(mut links) = self.inner.links.lock() {
            links.clear();
        }
        let readers: Vec<_> = match self.inner.readers.lock() {
            Ok(mut readers) => readers.drain(..).collect(),
            Err(_) => Vec::new(),
        };
        for handle in readers {
            let _ = handle.join();
        }
    }
}

impl Drop for SocketNode {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<NodeShared>) {
    while !shared.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_shared = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name("paris-reader".into())
                    .spawn(move || reader_loop(stream, conn_shared));
                if let Ok(handle) = spawned {
                    if let Ok(mut readers) = shared.readers.lock() {
                        readers.push(handle);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn reader_loop(mut stream: TcpStream, shared: Arc<NodeShared>) {
    let _ = stream.set_nodelay(true);
    if stream
        .set_read_timeout(Some(shared.cfg.read_timeout))
        .is_err()
    {
        return;
    }
    // Acceptor handshake: validate the dialer's preamble, answer with our
    // configured version. The reader itself is encoding-agnostic —
    // frames are self-describing — so only the dialer needs the
    // negotiation result.
    if read_preamble(&mut stream, deadline_in(shared.cfg.connect_timeout)).is_err() {
        return;
    }
    if write_preamble(&mut stream, shared.cfg.wire.version()).is_err() {
        return;
    }
    while !shared.stop.load(Ordering::Acquire) {
        match read_frame(&mut stream) {
            Ok(FrameRead::Frame(payload)) => {
                let Ok(env) = decode_envelope_frame(&payload) else {
                    // A peer speaking garbage mid-stream: drop the
                    // connection, it will redial if it recovers.
                    return;
                };
                shared.counters.messages_in.fetch_add(1, Ordering::Relaxed);
                shared
                    .counters
                    .bytes_in
                    .fetch_add(4 + payload.len() as u64, Ordering::Relaxed);
                if shared.inbox_tx.send(env).is_err() {
                    return;
                }
            }
            Ok(FrameRead::Eof) | Err(_) => return,
            Ok(FrameRead::TimedOut) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paris_proto::Msg;
    use paris_types::{ClientId, DcId, PartitionId, Timestamp};

    fn server(dc: u16, p: u32) -> ServerId {
        ServerId::new(DcId(dc), PartitionId(p))
    }

    fn env(src: impl Into<Endpoint>, dst: impl Into<Endpoint>, seq: u64) -> Envelope {
        Envelope::new(
            src,
            dst,
            Msg::StartTxReq {
                client_ust: Timestamp::from_parts(seq, 0),
            },
        )
    }

    #[test]
    fn two_nodes_exchange_envelopes_both_ways() {
        let a_id = server(0, 0);
        let b_id = server(0, 1);
        let mut a = SocketNode::bind(NodeIdentity::Server(a_id), SocketConfig::default()).unwrap();
        let mut b = SocketNode::bind(NodeIdentity::Server(b_id), SocketConfig::default()).unwrap();
        a.set_routes(None, [(b_id, b.local_addr())]);
        b.set_routes(None, [(a_id, a.local_addr())]);
        let a_inbox = a.take_inbox().unwrap();
        let b_inbox = b.take_inbox().unwrap();

        a.handle().send(env(a_id, b_id, 1)).unwrap();
        let got = b_inbox.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got, env(a_id, b_id, 1));

        b.handle().send(env(b_id, a_id, 2)).unwrap();
        let got = a_inbox.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got, env(b_id, a_id, 2));

        assert_eq!(a.counters().messages_out.load(Ordering::Relaxed), 1);
        assert_eq!(a.counters().messages_in.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn local_destinations_skip_the_wire() {
        let id = server(1, 0);
        let mut node = SocketNode::bind(NodeIdentity::Server(id), SocketConfig::default()).unwrap();
        let inbox = node.take_inbox().unwrap();
        node.handle().send(env(id, id, 9)).unwrap();
        assert_eq!(
            inbox.recv_timeout(Duration::from_secs(1)).unwrap(),
            env(id, id, 9)
        );
        assert_eq!(node.counters().messages_out.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn client_endpoints_route_to_the_client_host() {
        let s = server(0, 0);
        let client = ClientId::new(DcId(0), 3);
        let mut host = SocketNode::bind(NodeIdentity::ClientHost, SocketConfig::default()).unwrap();
        let child = SocketNode::bind(NodeIdentity::Server(s), SocketConfig::default()).unwrap();
        child.set_routes(Some(host.local_addr()), []);
        let host_inbox = host.take_inbox().unwrap();

        child.handle().send(env(s, client, 4)).unwrap();
        assert_eq!(
            host_inbox.recv_timeout(Duration::from_secs(5)).unwrap(),
            env(s, client, 4)
        );
    }

    #[test]
    fn unrouted_and_down_destinations_error_cleanly() {
        let id = server(0, 0);
        let other = server(0, 1);
        let node = SocketNode::bind(NodeIdentity::Server(id), SocketConfig::default()).unwrap();
        assert_eq!(
            node.handle().send(env(id, other, 1)),
            Err(Error::Transport("no route to destination"))
        );

        // Route to a dead port: first send pays the connect window, the
        // follow-up is refused instantly by the cooldown.
        let dead_addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let node = SocketNode::bind(
            NodeIdentity::Server(id),
            SocketConfig {
                connect_timeout: Duration::from_millis(150),
                ..SocketConfig::default()
            },
        )
        .unwrap();
        node.set_routes(None, [(other, dead_addr)]);
        assert!(matches!(
            node.handle().send(env(id, other, 1)),
            Err(Error::Transport(_))
        ));
        let started = Instant::now();
        assert_eq!(
            node.handle().send(env(id, other, 2)),
            Err(Error::Transport("peer is down"))
        );
        assert!(started.elapsed() < Duration::from_millis(100), "cooldown");
        assert_eq!(node.counters().dropped.load(Ordering::Relaxed), 2);
    }
}
